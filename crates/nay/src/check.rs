//! Algorithm 1: `CheckUnrealizable(G, ψ, E)` (§4.3).
//!
//! The grammar is first rewritten into `Minus`-free form (`h(G)`, §5.2) and
//! trimmed; the GFA equations are then solved exactly — with the LIA
//! procedure of §5 or the CLIA procedure of §6 — and the symbolic
//! concretization of the start symbol's abstraction is conjoined with the
//! specification instantiated on the examples. The resulting QF-LIA formula
//! is handed to the `logic` solver:
//!
//! * unsatisfiable ⇒ the example-restricted problem `sy_E` is
//!   **unrealizable** (and so is `sy`, Lemma 3.5);
//! * satisfiable ⇒ `sy_E` is **realizable** (the abstraction is exact, so
//!   this direction holds too — Thm. 4.5(2));
//! * unknown ⇒ the check is inconclusive (solver budget exceeded).
//!
//! The `Horn` mode replaces the exact solve with the approximate
//! abstract-interpretation Horn solver of the `chc` crate, which can only
//! return *unrealizable* or *unknown*.

use crate::clia;
use crate::lia;
use crate::modes::Mode;
use chc::{HornSolver, HornVerdict};
use logic::{Formula, LinearExpr, Solver, SolverResult, Var};
use semilinear::concretize_semilinear;
use std::time::{Duration, Instant};
use sygus::{ExampleSet, Problem, Sort, SygusError};

/// The verdict of Alg. 1 on the example-restricted problem `sy_E`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// No term of `L(G)` satisfies the specification on the examples — and
    /// therefore the full SyGuS problem is unrealizable (Lemma 3.5).
    Unrealizable,
    /// Some output vector allowed by the (exact) abstraction satisfies the
    /// specification on the examples, so `sy_E` is realizable and more
    /// examples are needed to prove the full problem unrealizable.
    Realizable,
    /// The check was inconclusive (approximate mode, or solver budget).
    Unknown,
}

impl Verdict {
    /// Stable lower-case name used by the benchmark report
    /// (`unrealizable`, `realizable`, `unknown`).
    pub fn name(&self) -> &'static str {
        match self {
            Verdict::Unrealizable => "unrealizable",
            Verdict::Realizable => "realizable",
            Verdict::Unknown => "unknown",
        }
    }
}

/// The outcome of a single unrealizability check, with statistics used by
/// the benchmark harness.
#[derive(Clone, Debug)]
pub struct CheckOutcome {
    /// The verdict on `sy_E`.
    pub verdict: Verdict,
    /// Size of the abstraction computed for the start symbol (Σ|Vᵢ|+1 for
    /// semi-linear sets, set cardinality for Boolean-vector sets).
    pub abstraction_size: usize,
    /// Number of equation-solver iterations (Newton / SolveMutual rounds).
    pub solver_iterations: usize,
    /// Wall-clock time spent in the check.
    pub elapsed: Duration,
}

/// Runs Algorithm 1 on `(problem.grammar(), problem.spec())` restricted to
/// `examples`, using the given [`Mode`].
pub fn check_unrealizable(problem: &Problem, examples: &ExampleSet, mode: &Mode) -> CheckOutcome {
    let started = Instant::now();
    let outcome = |verdict, abstraction_size, solver_iterations| CheckOutcome {
        verdict,
        abstraction_size,
        solver_iterations,
        elapsed: started.elapsed(),
    };

    // With no examples the specification ψ^E is vacuously true, so sy_E is
    // realizable exactly when the grammar derives any term at all.
    if examples.is_empty() {
        let trimmed = problem.grammar().trim();
        let has_terms = trimmed.productions_of(trimmed.start()).next().is_some();
        return outcome(
            if has_terms {
                Verdict::Realizable
            } else {
                Verdict::Unrealizable
            },
            0,
            0,
        );
    }

    match mode {
        Mode::Horn => {
            let verdict = match HornSolver::new().check(problem.grammar(), examples, problem.spec())
            {
                HornVerdict::Unrealizable => Verdict::Unrealizable,
                HornVerdict::Unknown => Verdict::Unknown,
            };
            outcome(verdict, 0, 0)
        }
        Mode::SemiLinear { stratified, prune } => {
            check_semilinear(problem, examples, *stratified, *prune, started)
        }
    }
}

fn check_semilinear(
    problem: &Problem,
    examples: &ExampleSet,
    stratified: bool,
    prune: bool,
    started: Instant,
) -> CheckOutcome {
    let outcome = |verdict, abstraction_size, solver_iterations| CheckOutcome {
        verdict,
        abstraction_size,
        solver_iterations,
        elapsed: started.elapsed(),
    };

    let rewritten = match sygus::rewrite::to_plus_form(problem.grammar()) {
        Ok(g) => g,
        Err(SygusError::GrammarError(_)) | Err(_) => {
            return outcome(Verdict::Unknown, 0, 0);
        }
    };

    let outputs: Vec<Var> = (0..examples.len())
        .map(|j| Var::indexed("o", j + 1))
        .collect();
    let spec_formula = problem.spec().conjunction_over(examples, &outputs);

    // γ̂(n(Start), o⃗)
    let (gamma, abstraction_size, solver_iterations) = if rewritten.is_lia() {
        match lia::analyze(&rewritten, examples, stratified, prune) {
            Ok(analysis) => {
                let start = analysis.start_value(&rewritten).clone();
                (
                    concretize_semilinear(&start, &outputs),
                    analysis.start_size,
                    analysis.newton_iterations,
                )
            }
            Err(_) => return outcome(Verdict::Unknown, 0, 0),
        }
    } else {
        match clia::analyze(&rewritten, examples, stratified, prune) {
            Ok(analysis) => {
                let size = analysis.start_size(&rewritten);
                let iterations = analysis.outer_iterations;
                let gamma = match rewritten.sort_of(rewritten.start()) {
                    Some(Sort::Int) => {
                        concretize_semilinear(&analysis.int_values[rewritten.start()], &outputs)
                    }
                    Some(Sort::Bool) => {
                        // the start symbol is Boolean-valued: its abstraction
                        // is a finite set of Boolean vectors, concretized as a
                        // disjunction of 0/1 assignments to the outputs
                        let bset = &analysis.bool_values[rewritten.start()];
                        Formula::or(bset.iter().map(|b| {
                            Formula::and((0..examples.len()).map(|j| {
                                Formula::eq(
                                    LinearExpr::var(outputs[j].clone()),
                                    LinearExpr::constant(i64::from(b[j])),
                                )
                            }))
                        }))
                    }
                    None => Formula::False,
                };
                (gamma, size, iterations)
            }
            Err(_) => return outcome(Verdict::Unknown, 0, 0),
        }
    };

    // P := γ̂(n(Start), o⃗) ∧ ⋀ⱼ ψ(oⱼ, iⱼ)   (Thm. 4.5)
    let query = Formula::and(vec![gamma, spec_formula]);
    let verdict = match Solver::default().check(&query) {
        SolverResult::Unsat => Verdict::Unrealizable,
        SolverResult::Sat(_) => Verdict::Realizable,
        SolverResult::Unknown => Verdict::Unknown,
    };
    outcome(verdict, abstraction_size, solver_iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use logic::{Formula, LinearExpr, Var};
    use sygus::{GrammarBuilder, Spec, Symbol};

    fn spec_2x_plus_2() -> Spec {
        Spec::output_equals(
            LinearExpr::var(Var::new("x")).scale(2) + LinearExpr::constant(2),
            vec!["x".to_string()],
        )
    }

    /// §2, grammar G1.
    fn section2_lia() -> Problem {
        let grammar = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .nonterminal("S1", Sort::Int)
            .nonterminal("S2", Sort::Int)
            .nonterminal("S3", Sort::Int)
            .production("Start", Symbol::Plus, &["S1", "Start"])
            .production("Start", Symbol::Num(0), &[])
            .production("S1", Symbol::Plus, &["S2", "S3"])
            .production("S2", Symbol::Plus, &["S3", "S3"])
            .production("S3", Symbol::Var("x".to_string()), &[])
            .build()
            .unwrap();
        Problem::new("section2-lia", grammar, spec_2x_plus_2())
    }

    /// §2, grammar G2 (CLIA).
    fn section2_clia() -> Problem {
        let grammar = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .nonterminal("BExp", Sort::Bool)
            .nonterminal("Exp2", Sort::Int)
            .nonterminal("Exp3", Sort::Int)
            .nonterminal("X", Sort::Int)
            .nonterminal("N0", Sort::Int)
            .nonterminal("N2", Sort::Int)
            .production("Start", Symbol::IfThenElse, &["BExp", "Exp3", "Start"])
            .chain("Start", "Exp2")
            .chain("Start", "Exp3")
            .production("BExp", Symbol::LessThan, &["X", "N2"])
            .production("BExp", Symbol::LessThan, &["N0", "Start"])
            .production("BExp", Symbol::And, &["BExp", "BExp"])
            .production("Exp2", Symbol::Plus, &["X", "X", "Exp2"])
            .production("Exp2", Symbol::Num(0), &[])
            .production("Exp3", Symbol::Plus, &["X", "X", "X", "Exp3"])
            .production("Exp3", Symbol::Num(0), &[])
            .production("X", Symbol::Var("x".to_string()), &[])
            .production("N0", Symbol::Num(0), &[])
            .production("N2", Symbol::Num(2), &[])
            .build()
            .unwrap();
        Problem::new("section2-clia", grammar, spec_2x_plus_2())
    }

    #[test]
    fn section2_lia_is_unrealizable_with_one_example() {
        let problem = section2_lia();
        let examples = ExampleSet::for_single_var("x", [1]);
        let outcome = check_unrealizable(&problem, &examples, &Mode::default());
        assert_eq!(outcome.verdict, Verdict::Unrealizable);
        assert!(outcome.abstraction_size >= 1);
    }

    #[test]
    fn section2_lia_with_x2_alone_is_realizable() {
        // With only x = 2 the required output 6 = 3·2 is producible (x+x+x),
        // so the example-restricted problem is realizable.
        let problem = section2_lia();
        let examples = ExampleSet::for_single_var("x", [2]);
        let outcome = check_unrealizable(&problem, &examples, &Mode::default());
        assert_eq!(outcome.verdict, Verdict::Realizable);
    }

    #[test]
    fn section2_clia_verdicts() {
        let problem = section2_clia();
        // x = 1 alone: realizable (2x + 2x = 4 works)
        let one = ExampleSet::for_single_var("x", [1]);
        assert_eq!(
            check_unrealizable(&problem, &one, &Mode::default()).verdict,
            Verdict::Realizable
        );
        // x = 1 and x = 2: still realizable — unlike the paper's §2 narrative
        // there is a witness term, ite(0 < ite(x<2, 0, 3x), 3x, 4x), mapping
        // (1, 2) to (4, 6); the exact procedure correctly reports Realizable.
        let two = ExampleSet::for_single_var("x", [1, 2]);
        assert_eq!(
            check_unrealizable(&problem, &two, &Mode::default()).verdict,
            Verdict::Realizable
        );
        // x = 0 forces every term of G2 to output 0 ≠ 2·0 + 2: unrealizable.
        let zero = ExampleSet::for_single_var("x", [0]);
        assert_eq!(
            check_unrealizable(&problem, &zero, &Mode::default()).verdict,
            Verdict::Unrealizable
        );
        // and adding x = 0 to the two previous examples keeps it unrealizable
        let three = ExampleSet::for_single_var("x", [1, 2, 0]);
        assert_eq!(
            check_unrealizable(&problem, &three, &Mode::default()).verdict,
            Verdict::Unrealizable
        );
    }

    #[test]
    fn horn_mode_proves_the_lia_example() {
        let problem = section2_lia();
        let examples = ExampleSet::for_single_var("x", [1]);
        let outcome = check_unrealizable(&problem, &examples, &Mode::horn());
        assert_eq!(outcome.verdict, Verdict::Unrealizable);
    }

    #[test]
    fn minus_grammars_are_rewritten_automatically() {
        // Start ::= Minus(Start, Start) | Num(2): parity argument — every
        // derivable value is even... actually 2 - (2 - 2) = 2, 2-2 = 0, all
        // values are even. Spec f(x) = 3 is unrealizable.
        let grammar = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .production("Start", Symbol::Minus, &["Start", "Start"])
            .production("Start", Symbol::Num(2), &[])
            .build()
            .unwrap();
        let spec = Spec::output_equals(LinearExpr::constant(3), vec!["x".to_string()]);
        let problem = Problem::new("minus", grammar, spec);
        let examples = ExampleSet::for_single_var("x", [0]);
        let outcome = check_unrealizable(&problem, &examples, &Mode::default());
        assert_eq!(outcome.verdict, Verdict::Unrealizable);
    }

    #[test]
    fn unstratified_mode_agrees() {
        let problem = section2_lia();
        let examples = ExampleSet::for_single_var("x", [1, 2]);
        let a = check_unrealizable(&problem, &examples, &Mode::default());
        let b = check_unrealizable(&problem, &examples, &Mode::semi_linear_unstratified());
        assert_eq!(a.verdict, b.verdict);
        assert_eq!(a.verdict, Verdict::Unrealizable);
    }

    #[test]
    fn empty_example_set() {
        let problem = section2_lia();
        let outcome = check_unrealizable(&problem, &ExampleSet::new(), &Mode::default());
        assert_eq!(outcome.verdict, Verdict::Realizable);
    }

    #[test]
    fn boolean_output_grammar() {
        // Synthesize a predicate: Start ::= LessThan(X, N0); spec f(x) = 1
        // (always true). With example x = 5 the only producible value is
        // "5 < 0" = false, so sy_E is unrealizable.
        let grammar = GrammarBuilder::new("StartB")
            .nonterminal("StartB", Sort::Bool)
            .nonterminal("X", Sort::Int)
            .nonterminal("N0", Sort::Int)
            .production("StartB", Symbol::LessThan, &["X", "N0"])
            .production("X", Symbol::Var("x".to_string()), &[])
            .production("N0", Symbol::Num(0), &[])
            .build()
            .unwrap();
        let spec = Spec::new(
            Formula::eq(LinearExpr::var(Spec::output_var()), LinearExpr::constant(1)),
            vec!["x".to_string()],
            Sort::Bool,
        );
        let problem = Problem::new("predicate", grammar, spec);
        let examples = ExampleSet::for_single_var("x", [5]);
        let outcome = check_unrealizable(&problem, &examples, &Mode::default());
        assert_eq!(outcome.verdict, Verdict::Unrealizable);
        // with x = -3 the predicate is true, so it becomes realizable
        let realizable = ExampleSet::for_single_var("x", [-3]);
        assert_eq!(
            check_unrealizable(&problem, &realizable, &Mode::default()).verdict,
            Verdict::Realizable
        );
    }
}
