//! The numbers reported in Table 1 and Table 2 of the paper, used by the
//! harness to print paper-vs-measured comparisons in EXPERIMENTS.md.

use crate::Family;

/// One row of Table 1 or Table 2 as printed in the paper.
#[derive(Clone, Debug)]
pub struct PaperRow {
    /// Benchmark name.
    pub name: &'static str,
    /// The family the row belongs to.
    pub family: Family,
    /// `|N|`: nonterminals of the problem grammar.
    pub nonterminals: usize,
    /// `|δ|`: productions of the problem grammar.
    pub productions: usize,
    /// `|V|`: variables of the problem grammar.
    pub variables: usize,
    /// `|E|`: examples needed to prove unrealizability (`None` = timeout, "-").
    pub examples: Option<usize>,
    /// naySL running time in seconds (`None` = timeout ✗).
    pub naysl_seconds: Option<f64>,
    /// nayHorn running time in seconds (`None` = timeout ✗).
    pub nayhorn_seconds: Option<f64>,
    /// nope running time in seconds (`None` = timeout ✗).
    pub nope_seconds: Option<f64>,
}

/// The rows of Table 1 (LimitedPlus and LimitedIf benchmarks solved by at
/// least one tool).
pub fn table1_rows() -> Vec<PaperRow> {
    use Family::{LimitedIf as LIf, LimitedPlus as LP};
    let row = |name,
               family,
               n,
               d,
               v,
               e: Option<usize>,
               sl: Option<f64>,
               horn: Option<f64>,
               nope: Option<f64>| PaperRow {
        name,
        family,
        nonterminals: n,
        productions: d,
        variables: v,
        examples: e,
        naysl_seconds: sl,
        nayhorn_seconds: horn,
        nope_seconds: nope,
    };
    vec![
        // LimitedPlus
        row("plus_guard1", LP, 7, 24, 3, Some(2), Some(0.24), None, None),
        row(
            "plus_guard2",
            LP,
            9,
            34,
            3,
            Some(3),
            Some(12.86),
            None,
            None,
        ),
        row(
            "plus_guard3",
            LP,
            11,
            41,
            3,
            Some(1),
            Some(0.07),
            None,
            None,
        ),
        row(
            "plus_guard4",
            LP,
            11,
            72,
            3,
            Some(4),
            Some(147.50),
            None,
            None,
        ),
        row(
            "plus_plane1",
            LP,
            2,
            5,
            2,
            Some(1),
            Some(0.07),
            Some(0.55),
            Some(0.69),
        ),
        row(
            "plus_plane2",
            LP,
            17,
            60,
            2,
            Some(2),
            Some(0.90),
            None,
            None,
        ),
        row(
            "plus_plane3",
            LP,
            29,
            122,
            2,
            Some(2),
            Some(15.73),
            None,
            None,
        ),
        row("plus_ite1", LP, 7, 2, 3, Some(2), Some(1.05), None, None),
        row("plus_ite2", LP, 9, 34, 3, Some(4), Some(294.88), None, None),
        row(
            "plus_sum_2_5",
            LP,
            11,
            40,
            2,
            Some(4),
            Some(15.48),
            None,
            None,
        ),
        row(
            "plus_search_2",
            LP,
            5,
            16,
            3,
            Some(3),
            Some(1.21),
            None,
            None,
        ),
        row(
            "plus_search_3",
            LP,
            7,
            25,
            4,
            Some(4),
            Some(2.65),
            None,
            None,
        ),
        // LimitedIf
        row(
            "if_max2",
            LIf,
            1,
            5,
            2,
            Some(4),
            Some(0.13),
            Some(1.13),
            Some(1.48),
        ),
        row(
            "if_max3",
            LIf,
            3,
            15,
            3,
            None,
            None,
            Some(9.67),
            Some(58.57),
        ),
        row(
            "if_sum_2_5",
            LIf,
            1,
            5,
            2,
            Some(3),
            Some(0.17),
            Some(0.61),
            Some(0.69),
        ),
        row(
            "if_sum_2_15",
            LIf,
            1,
            5,
            2,
            Some(3),
            Some(0.17),
            Some(0.56),
            Some(0.87),
        ),
        row(
            "if_sum_3_5",
            LIf,
            3,
            15,
            3,
            None,
            None,
            Some(17.85),
            Some(101.44),
        ),
        row(
            "if_sum_3_15",
            LIf,
            3,
            15,
            3,
            None,
            None,
            Some(16.65),
            Some(134.87),
        ),
        row(
            "if_search_2",
            LIf,
            3,
            15,
            3,
            None,
            None,
            Some(25.85),
            Some(112.78),
        ),
        row(
            "if_example1",
            LIf,
            3,
            10,
            2,
            Some(3),
            Some(0.14),
            Some(0.73),
            Some(1.12),
        ),
        row(
            "if_guard1",
            LIf,
            1,
            6,
            2,
            Some(4),
            Some(0.13),
            Some(0.44),
            Some(0.43),
        ),
        row(
            "if_guard2",
            LIf,
            1,
            6,
            2,
            Some(4),
            Some(0.22),
            Some(0.33),
            Some(0.49),
        ),
        row(
            "if_guard3",
            LIf,
            1,
            6,
            2,
            Some(4),
            Some(0.16),
            Some(0.27),
            Some(0.46),
        ),
        row(
            "if_guard4",
            LIf,
            1,
            6,
            2,
            Some(4),
            Some(0.11),
            Some(0.72),
            Some(0.58),
        ),
        row(
            "if_ite1",
            LIf,
            3,
            15,
            3,
            None,
            None,
            Some(2.68),
            Some(369.57),
        ),
    ]
}

/// The rows of Table 2 (LimitedConst benchmarks).
pub fn table2_rows() -> Vec<PaperRow> {
    let row = |name, d, v, sl: f64, horn: f64, nope: f64| PaperRow {
        name,
        family: Family::LimitedConst,
        nonterminals: 2,
        productions: d,
        variables: v,
        examples: Some(2),
        naysl_seconds: Some(sl),
        nayhorn_seconds: Some(horn),
        nope_seconds: Some(nope),
    };
    let mut rows = vec![
        row("array_search_2", 10, 3, 0.17, 0.04, 0.78),
        row("array_search_3", 11, 4, 0.30, 0.04, 1.26),
        row("array_search_4", 12, 5, 0.47, 0.01, 1.25),
        row("array_search_5", 13, 6, 0.57, 0.04, 1.01),
        row("array_search_6", 14, 7, 0.77, 0.03, 0.87),
        row("array_search_7", 15, 8, 0.97, 0.03, 0.85),
        row("array_search_8", 16, 9, 1.28, 0.04, 0.97),
        row("array_search_9", 17, 10, 1.58, 0.04, 0.70),
        row("array_search_10", 18, 11, 1.88, 0.04, 0.80),
        row("array_search_11", 19, 12, 2.21, 0.01, 1.09),
        row("array_search_12", 20, 13, 2.62, 0.02, 1.13),
        row("array_search_13", 21, 14, 3.05, 0.05, 0.73),
        row("array_search_14", 22, 15, 3.49, 0.05, 0.77),
        row("array_search_15", 23, 16, 3.79, 0.03, 1.06),
        row("array_sum_2_5", 9, 2, 0.13, 0.04, 1.30),
        row("array_sum_2_15", 9, 2, 0.14, 0.01, 1.46),
        row("array_sum_3_5", 10, 3, 0.07, 0.01, 1.31),
        row("array_sum_3_15", 10, 3, 0.07, 0.04, 1.28),
        row("array_sum_4_5", 11, 4, 0.13, 0.03, 2.52),
        row("array_sum_4_15", 11, 4, 0.34, 0.05, 1.35),
        row("array_sum_5_5", 12, 5, 0.07, 0.02, 1.41),
        row("array_sum_5_15", 12, 5, 0.34, 0.07, 1.43),
        row("array_sum_6_5", 13, 6, 0.14, 0.10, 2.37),
        row("array_sum_6_15", 13, 6, 0.34, 0.02, 1.56),
        row("array_sum_7_5", 14, 7, 0.14, 0.01, 0.76),
        row("array_sum_7_15", 14, 7, 0.34, 0.08, 1.87),
        row("array_sum_8_5", 15, 8, 0.07, 0.09, 1.33),
        row("array_sum_8_15", 15, 8, 0.13, 0.10, 1.53),
        row("array_sum_9_5", 16, 9, 0.07, 0.01, 1.50),
        row("array_sum_9_15", 16, 9, 0.34, 0.03, 1.44),
        row("array_sum_10_5", 17, 10, 0.07, 0.03, 2.29),
        row("array_sum_10_15", 17, 10, 0.27, 0.07, 0.87),
    ];
    let mpg = |name, d, v, e, sl: f64, horn: f64, nope: f64| PaperRow {
        name,
        family: Family::LimitedConst,
        nonterminals: 2,
        productions: d,
        variables: v,
        examples: Some(e),
        naysl_seconds: Some(sl),
        nayhorn_seconds: Some(horn),
        nope_seconds: Some(nope),
    };
    rows.extend(vec![
        mpg("mpg_example1", 9, 2, 1, 0.07, 0.05, 0.36),
        mpg("mpg_example2", 9, 3, 3, 5.17, 0.09, 0.50),
        mpg("mpg_example3", 10, 3, 1, 0.07, 0.03, 0.57),
        mpg("mpg_example4", 11, 4, 1, 0.07, 0.04, 0.44),
        mpg("mpg_example5", 9, 2, 1, 0.01, 0.08, 0.99),
        mpg("mpg_guard1", 10, 3, 3, 15.84, 0.01, 3.08),
        mpg("mpg_guard2", 10, 3, 3, 16.44, 0.03, 2.49),
        mpg("mpg_guard3", 10, 3, 3, 15.57, 0.08, 0.44),
        mpg("mpg_guard4", 10, 3, 3, 15.70, 1.44, 24.18),
        mpg("mpg_ite1", 10, 3, 1, 0.01, 0.02, 0.33),
        mpg("mpg_ite2", 10, 3, 1, 0.07, 0.18, 0.41),
        mpg("mpg_plane2", 10, 3, 1, 0.07, 0.12, 0.47),
        mpg("mpg_plane3", 10, 3, 1, 0.07, 0.08, 0.74),
    ]);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_sizes() {
        assert_eq!(table1_rows().len(), 25);
        assert_eq!(table2_rows().len(), 45);
    }

    #[test]
    fn headline_counts_from_section_8() {
        // naySL solves 70/132, nayHorn and nope solve 59/132; within the
        // tabulated rows naySL solves 11 LimitedPlus benchmarks nope cannot.
        let t1 = table1_rows();
        let nay_only: Vec<&PaperRow> = t1
            .iter()
            .filter(|r| r.naysl_seconds.is_some() && r.nope_seconds.is_none())
            .collect();
        assert_eq!(nay_only.len(), 11);
        let nope_only: Vec<&PaperRow> = t1
            .iter()
            .filter(|r| r.naysl_seconds.is_none() && r.nope_seconds.is_some())
            .collect();
        assert_eq!(nope_only.len(), 5);
    }
}
