//! The experiment harness: functions that regenerate every table and figure
//! of the paper's evaluation (§8) on the reproduced benchmark suite.
//!
//! Each `reproduce_*` function returns a plain-text report (the same rows or
//! series the paper presents); the `reproduce` binary prints them and
//! EXPERIMENTS.md records a snapshot together with the paper's numbers.
//!
//! Execution is layered on `crates/runner`: the evaluation functions
//! ([`eval_nay`], [`eval_nope`]) are *pure* — they run a tool and report its
//! verdict and iteration count, nothing else — while all wall-clock timing,
//! parallelism, per-job timeouts, and panic isolation live in the runner's
//! work-stealing pool. The suite module assembles the (benchmark, tool)
//! jobs and the schema-versioned JSON [`runner::Report`] that the CI
//! perf-regression gate diffs against the committed `BENCH_quick.json`
//! baseline. The [`run_solve`] front-end drives the same machinery over
//! on-disk SyGuS-IF corpora, racing [`portfolio::Portfolio`] or a single
//! engine per file, and the [`run_fuzz`] front-end streams `crates/gen`'s
//! seeded problem generator straight through the engines with the
//! differential-soundness oracles armed.
//!
//! Absolute times differ from the paper (different machine, different SMT
//! substrate); what is expected to match is the *shape*: which tool solves
//! which benchmark, how running time grows with `|N|` and `|E|`, and the
//! effect of the stratification optimisation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod fuzz;
mod serve;
mod solve;
mod suite;

pub use analysis::{has_analyze_errors, render_analyze, run_analyze, AnalyzeRow};
pub use fuzz::{
    render_fuzz, render_presolve_diff, run_fuzz, run_fuzz_observed, run_gen, run_presolve_diff,
    FuzzConfig, FuzzEngine, FuzzMemStats, FuzzOutcome, FuzzRow, PresolveDiffOutcome,
    MAX_KEPT_VIOLATIONS,
};
pub use serve::{
    corpus_workload, gen_workload, render_load, run_load, Expected, LoadConfig, LoadOutcome,
    PassSummary, WorkItem,
};
pub use solve::{
    check_manifest, collect_sl_files, load_problem, problem_name, render_solve, run_solve, Engine,
    Manifest, SolveRow, SolveTotals, DEFAULT_SOLVE_TIMEOUT,
};
pub use suite::{
    render_family_table, render_summary, run_benches, run_family, run_suite, FAMILIES, TOOLS,
};

use benchmarks::{Benchmark, Family};
use nay::check::{check_unrealizable, Verdict};
use nay::Mode;
use nope::{NopeSolver, NopeVerdict};
use runner::{measure, PoolConfig, Report};
use std::fmt::Write as _;

/// The timing-free outcome of running one tool on one benchmark: what the
/// runner's jobs return, with the wall clock hoisted into the pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Evaluation {
    /// The tool's realizability verdict (`unrealizable`, `realizable`,
    /// `unknown`).
    pub verdict: &'static str,
    /// Whether the tool proved unrealizability.
    pub proved: bool,
    /// Solver iterations (equation-solver rounds for nay, abstract-
    /// interpretation passes for nope).
    pub iterations: usize,
}

/// Runs one of the nay modes on a benchmark's witness example set.
/// Pure with respect to timing: measure it with [`runner::measure`] or run
/// it as a pool job.
pub fn eval_nay(bench: &Benchmark, mode: &Mode) -> Evaluation {
    let outcome = check_unrealizable(&bench.problem, &bench.witness_examples, mode);
    Evaluation {
        verdict: outcome.verdict.name(),
        proved: outcome.verdict == Verdict::Unrealizable,
        iterations: outcome.solver_iterations,
    }
}

/// Runs the nope baseline on a benchmark's witness example set (pure, like
/// [`eval_nay`]).
pub fn eval_nope(bench: &Benchmark) -> Evaluation {
    let (verdict, stats) = NopeSolver::new().check(&bench.problem, &bench.witness_examples);
    Evaluation {
        verdict: verdict.name(),
        proved: verdict == NopeVerdict::Unrealizable,
        iterations: stats.abstract_iterations,
    }
}

/// The result of running one tool on one benchmark, with its wall-clock
/// time (the serial-measurement convenience wrapper around [`eval_nay`] /
/// [`eval_nope`]).
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Benchmark name.
    pub benchmark: String,
    /// Tool name (`naySL`, `nayHorn`, `nope`).
    pub tool: &'static str,
    /// Whether the tool proved unrealizability.
    pub proved: bool,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// Runs one of the nay modes on a benchmark, measured.
pub fn run_nay(bench: &Benchmark, mode: &Mode) -> Measurement {
    let (eval, elapsed) = measure(|| eval_nay(bench, mode));
    Measurement {
        benchmark: bench.name.clone(),
        tool: if *mode == Mode::Horn {
            "nayHorn"
        } else {
            "naySL"
        },
        proved: eval.proved,
        seconds: elapsed.as_secs_f64(),
    }
}

/// Runs the nope baseline on a benchmark, measured.
pub fn run_nope(bench: &Benchmark) -> Measurement {
    let (eval, elapsed) = measure(|| eval_nope(bench));
    Measurement {
        benchmark: bench.name.clone(),
        tool: "nope",
        proved: eval.proved,
        seconds: elapsed.as_secs_f64(),
    }
}

/// Selects the benchmarks of a family that are cheap enough for the `quick`
/// harness mode (small grammars and few examples); the full mode runs all of
/// them.
pub fn select(family: Family, quick: bool) -> Vec<Benchmark> {
    benchmarks::all()
        .into_iter()
        .filter(|b| b.family == family)
        .filter(|b| {
            if !quick {
                return true;
            }
            let masks = 1usize << b.num_examples().min(4);
            let cost = b.num_nonterminals()
                * if b.problem.grammar().has_ite() {
                    masks
                } else {
                    1
                };
            cost <= 32 && b.num_examples() <= 4
        })
        .collect()
}

fn family_table(title: &str, family: Family, quick: bool, config: &PoolConfig) -> String {
    let entries = run_family(family, quick, config);
    render_family_table(title, family, quick, &entries)
}

/// Table 1 (LimitedPlus rows): naySL vs nayHorn vs nope.
pub fn reproduce_table1_plus(quick: bool) -> String {
    reproduce_table1_plus_with(quick, &PoolConfig::serial())
}

/// [`reproduce_table1_plus`] with an explicit pool configuration.
pub fn reproduce_table1_plus_with(quick: bool, config: &PoolConfig) -> String {
    family_table("Table 1 — LimitedPlus", Family::LimitedPlus, quick, config)
}

/// Table 1 (LimitedIf rows).
pub fn reproduce_table1_if(quick: bool) -> String {
    reproduce_table1_if_with(quick, &PoolConfig::serial())
}

/// [`reproduce_table1_if`] with an explicit pool configuration.
pub fn reproduce_table1_if_with(quick: bool, config: &PoolConfig) -> String {
    family_table("Table 1 — LimitedIf", Family::LimitedIf, quick, config)
}

/// Table 2 (LimitedConst rows).
pub fn reproduce_table2(quick: bool) -> String {
    reproduce_table2_with(quick, &PoolConfig::serial())
}

/// [`reproduce_table2`] with an explicit pool configuration.
pub fn reproduce_table2_with(quick: bool, config: &PoolConfig) -> String {
    family_table(
        "Table 2 — LimitedConst",
        Family::LimitedConst,
        quick,
        config,
    )
}

/// Fig. 2: time to compute the semi-linear set of the start symbol as a
/// function of `|N|`, one series per number of examples.
///
/// The scaling figures stay serial on purpose: their whole point is the
/// per-point timing curve, which concurrent load would distort.
pub fn reproduce_fig2(quick: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Fig. 2 — naySL semi-linear solving time vs |N|");
    let _ = writeln!(
        out,
        "{:<6} {:<6} {:>12} {:>10}",
        "|N|", "|E|", "seconds", "verdict"
    );
    let max_n = if quick { 8 } else { 16 };
    let max_e = if quick { 3 } else { 4 };
    for num_examples in 1..=max_e {
        for n in (2..=max_n).step_by(2) {
            let problem = benchmarks::scaling_problem(n);
            let examples = sygus::ExampleSet::for_single_var(
                "x",
                (1..=num_examples as i64).collect::<Vec<_>>(),
            );
            let (outcome, elapsed) =
                measure(|| check_unrealizable(&problem, &examples, &Mode::default()));
            let _ = writeln!(
                out,
                "{:<6} {:<6} {:>12.4} {:>10}",
                n + 1,
                num_examples,
                elapsed.as_secs_f64(),
                format!("{:?}", outcome.verdict)
            );
        }
    }
    out
}

/// Fig. 3 and Fig. 5: nayHorn / nope running time as a function of `|E|`,
/// one series per `|N|` (serial, like [`reproduce_fig2`]).
pub fn reproduce_fig3_fig5(quick: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Fig. 3 / Fig. 5 — nayHorn and nope time vs |E|");
    let _ = writeln!(
        out,
        "{:<6} {:<6} {:>14} {:>14}",
        "|N|", "|E|", "nayHorn (s)", "nope (s)"
    );
    let max_e = if quick { 5 } else { 9 };
    for n in 1..=3usize {
        for e in 1..=max_e {
            let problem = benchmarks::scaling_problem(n);
            let examples =
                sygus::ExampleSet::for_single_var("x", (1..=e as i64).collect::<Vec<_>>());
            let (_, horn_elapsed) =
                measure(|| check_unrealizable(&problem, &examples, &Mode::horn()));
            let (_, nope_elapsed) = measure(|| NopeSolver::new().check(&problem, &examples));
            let _ = writeln!(
                out,
                "{:<6} {:<6} {:>14.4} {:>14.4}",
                n + 1,
                e,
                horn_elapsed.as_secs_f64(),
                nope_elapsed.as_secs_f64()
            );
        }
    }
    out
}

/// Fig. 4: the effect of the stratification optimisation on naySL's
/// semi-linear solving time (per benchmark, with vs without; serial).
pub fn reproduce_fig4(quick: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Fig. 4 — stratification speed-up");
    let _ = writeln!(
        out,
        "{:<22} {:>14} {:>14} {:>8}",
        "benchmark", "stratified (s)", "no opt. (s)", "speedup"
    );
    let mut row = |name: &str, problem: &sygus::Problem, examples: &sygus::ExampleSet| {
        let (_, stratified) = measure(|| check_unrealizable(problem, examples, &Mode::default()));
        let (_, unstratified) =
            measure(|| check_unrealizable(problem, examples, &Mode::semi_linear_unstratified()));
        let stratified = stratified.as_secs_f64();
        let unstratified = unstratified.as_secs_f64();
        let _ = writeln!(
            out,
            "{:<22} {:>14.4} {:>14.4} {:>8.2}",
            name,
            stratified,
            unstratified,
            unstratified / stratified.max(1e-9)
        );
    };
    let max_n = if quick { 10 } else { 20 };
    for n in (2..=max_n).step_by(2) {
        let problem = benchmarks::scaling_problem(n);
        let examples = sygus::ExampleSet::for_single_var("x", [1, 2]);
        row(&format!("scaling_n{n}"), &problem, &examples);
    }
    // also a couple of the table benchmarks
    for bench in select(Family::LimitedConst, true).into_iter().take(4) {
        row(&bench.name, &bench.problem, &bench.witness_examples);
    }
    out
}

/// The §8.1 headline numbers: how many benchmarks each tool proves
/// unrealizable, and how many naySL solves that nope does not.
pub fn reproduce_summary(quick: bool) -> String {
    reproduce_summary_with(quick, &PoolConfig::serial())
}

/// [`reproduce_summary`] with an explicit pool configuration.
pub fn reproduce_summary_with(quick: bool, config: &PoolConfig) -> String {
    let report = run_suite(quick, config);
    render_summary(&report.entries, quick)
}

/// Runs every experiment and concatenates the reports.
pub fn reproduce_all(quick: bool) -> String {
    reproduce_all_with(quick, &PoolConfig::serial()).0
}

/// Runs every experiment with an explicit pool configuration.
///
/// The table suite runs exactly once on the pool; the three tables and the
/// §8.1 summary are rendered from that single sweep, which is also returned
/// as the JSON-ready [`Report`] (`--json` writes it to disk). The scaling
/// figures are appended as text, measured serially.
pub fn reproduce_all_with(quick: bool, config: &PoolConfig) -> (String, Report) {
    let report = run_suite(quick, config);
    let mut out = String::new();
    for part in [
        render_family_table(
            "Table 1 — LimitedPlus",
            Family::LimitedPlus,
            quick,
            &report.entries,
        ),
        render_family_table(
            "Table 1 — LimitedIf",
            Family::LimitedIf,
            quick,
            &report.entries,
        ),
        render_family_table(
            "Table 2 — LimitedConst",
            Family::LimitedConst,
            quick,
            &report.entries,
        ),
        reproduce_fig2(quick),
        reproduce_fig3_fig5(quick),
        reproduce_fig4(quick),
        render_summary(&report.entries, quick),
    ] {
        out.push_str(&part);
        out.push('\n');
    }
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_selection_is_nonempty_for_every_family() {
        assert!(!select(Family::LimitedPlus, true).is_empty());
        assert!(!select(Family::LimitedIf, true).is_empty());
        assert!(!select(Family::LimitedConst, true).is_empty());
    }

    #[test]
    fn measurements_have_sane_fields() {
        let bench = select(Family::LimitedConst, true)
            .into_iter()
            .next()
            .expect("at least one quick benchmark");
        let m = run_nay(&bench, &Mode::default());
        assert_eq!(m.tool, "naySL");
        assert!(m.seconds >= 0.0);
    }

    #[test]
    fn evaluations_are_pure_and_consistent_with_measurements() {
        let bench = select(Family::LimitedConst, true)
            .into_iter()
            .next()
            .expect("at least one quick benchmark");
        let eval = eval_nay(&bench, &Mode::default());
        let m = run_nay(&bench, &Mode::default());
        assert_eq!(eval.proved, m.proved);
        assert_eq!(eval.proved, eval.verdict == "unrealizable");
    }

    #[test]
    fn fig2_report_has_the_expected_shape() {
        let report = reproduce_fig2(true);
        assert!(report.contains("Fig. 2"));
        assert!(report.lines().count() > 5);
    }
}
