//! Behavioral specifications `ψ(f(x̄), x̄)` (Def. 3.2).

use crate::example::{Example, ExampleSet};
use crate::semantics::Value;
use crate::term::Sort;
use logic::{Formula, LinearExpr, Model, Var};
use std::fmt;

/// A single-invocation behavioral specification.
///
/// The specification is a QF-LIA formula over
///
/// * the input variables `x̄` of the function being synthesized (referred to
///   by name), and
/// * the reserved output variable [`Spec::output_var`] standing for `f(x̄)`.
///
/// Boolean-valued functions use the usual 0/1 integer encoding of their
/// output.
///
/// # Example
/// ```
/// use sygus::{Spec, Example};
/// use logic::{Formula, LinearExpr, Var};
/// // ψ(f, x) :=  f(x) = 2x + 2
/// let spec = Spec::new(
///     Formula::eq(
///         LinearExpr::var(Spec::output_var()),
///         LinearExpr::var(Var::new("x")).scale(2) + LinearExpr::constant(2),
///     ),
///     vec!["x".to_string()],
///     sygus::Sort::Int,
/// );
/// assert!(spec.holds(&Example::from_pairs([("x", 1)]), 4));
/// assert!(!spec.holds(&Example::from_pairs([("x", 1)]), 3));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Spec {
    formula: Formula,
    input_vars: Vec<String>,
    output_sort: Sort,
}

impl Spec {
    /// The reserved logical variable standing for the output `f(x̄)`.
    pub fn output_var() -> Var {
        Var::new("__f_out")
    }

    /// Creates a specification from a formula over the inputs and
    /// [`Spec::output_var`].
    pub fn new(formula: Formula, input_vars: Vec<String>, output_sort: Sort) -> Self {
        Spec {
            formula,
            input_vars,
            output_sort,
        }
    }

    /// The common special case `f(x̄) = rhs(x̄)` for an integer-valued target.
    pub fn output_equals(rhs: LinearExpr, input_vars: Vec<String>) -> Self {
        Spec::new(
            Formula::eq(LinearExpr::var(Spec::output_var()), rhs),
            input_vars,
            Sort::Int,
        )
    }

    /// The raw specification formula.
    pub fn formula(&self) -> &Formula {
        &self.formula
    }

    /// The declared input variables `x̄`.
    pub fn input_vars(&self) -> &[String] {
        &self.input_vars
    }

    /// The sort of the synthesized function's output.
    pub fn output_sort(&self) -> Sort {
        self.output_sort
    }

    /// Instantiates `ψ(oⱼ, iⱼ)`: the input variables are replaced by the
    /// example's values and the output variable is renamed to `output`.
    pub fn instantiate(&self, example: &Example, output: &Var) -> Formula {
        let mut f = self
            .formula
            .substitute(&Spec::output_var(), &LinearExpr::var(output.clone()));
        for (x, v) in example.iter() {
            f = f.substitute(&Var::new(x), &LinearExpr::constant(v));
        }
        f
    }

    /// The conjunction `⋀ⱼ ψ(oⱼ, iⱼ)` over an example set (Def. 3.4), with
    /// output variables `o_1, …, o_n`.
    pub fn conjunction_over(&self, examples: &ExampleSet, outputs: &[Var]) -> Formula {
        assert_eq!(
            examples.len(),
            outputs.len(),
            "one output variable per example is required"
        );
        Formula::and(
            examples
                .iter()
                .zip(outputs)
                .map(|(e, o)| self.instantiate(e, o)),
        )
    }

    /// `true` iff the specification holds for the given input example and
    /// output value (Booleans encoded as 0/1).
    pub fn holds(&self, example: &Example, output: i64) -> bool {
        let mut model = Model::new();
        model.set(Spec::output_var(), output);
        for (x, v) in example.iter() {
            model.set(Var::new(x), v);
        }
        self.formula.eval(&model)
    }

    /// `true` iff the specification holds for a [`Value`] output.
    pub fn holds_value(&self, example: &Example, output: Value) -> bool {
        self.holds(example, output.as_i64())
    }

    /// Builds an [`Example`] for this specification's input variables from a
    /// logical model (missing variables default to 0). Used to turn
    /// counterexample models into new CEGIS examples.
    pub fn example_from_model(&self, model: &Model) -> Example {
        Example::from_pairs(
            self.input_vars
                .iter()
                .map(|x| (x.clone(), model.get_or_zero(&Var::new(x)))),
        )
    }
}

impl fmt::Debug for Spec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Spec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ψ({}, {}) := {}",
            Spec::output_var(),
            self.input_vars.join(", "),
            self.formula
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logic::{Solver, SolverResult};

    fn spec_2x_plus_2() -> Spec {
        Spec::output_equals(
            LinearExpr::var(Var::new("x")).scale(2) + LinearExpr::constant(2),
            vec!["x".to_string()],
        )
    }

    #[test]
    fn holds_on_examples() {
        let spec = spec_2x_plus_2();
        assert!(spec.holds(&Example::from_pairs([("x", 1)]), 4));
        assert!(spec.holds(&Example::from_pairs([("x", 2)]), 6));
        assert!(!spec.holds(&Example::from_pairs([("x", 2)]), 8));
    }

    #[test]
    fn instantiation_substitutes_inputs() {
        let spec = spec_2x_plus_2();
        let o1 = Var::indexed("o", 1);
        let f = spec.instantiate(&Example::from_pairs([("x", 1)]), &o1);
        // f should be  o1 = 2·1 + 2, satisfiable only by o1 = 4
        let mut m = Model::new();
        m.set(o1.clone(), 4);
        assert!(f.eval(&m));
        m.set(o1, 5);
        assert!(!f.eval(&m));
    }

    #[test]
    fn conjunction_over_examples() {
        let spec = spec_2x_plus_2();
        let examples = ExampleSet::for_single_var("x", [1, 2]);
        let outputs = vec![Var::indexed("o", 1), Var::indexed("o", 2)];
        let f = spec.conjunction_over(&examples, &outputs);
        let solver = Solver::default();
        match solver.check(&f) {
            SolverResult::Sat(m) => {
                assert_eq!(m.get(&outputs[0]), Some(4));
                assert_eq!(m.get(&outputs[1]), Some(6));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn inequality_spec() {
        // ψ(f, x) := f(x) > x  (the Gconst example, Ex. 3.8)
        let spec = Spec::new(
            Formula::gt(
                LinearExpr::var(Spec::output_var()),
                LinearExpr::var(Var::new("x")),
            ),
            vec!["x".to_string()],
            Sort::Int,
        );
        assert!(spec.holds(&Example::from_pairs([("x", 3)]), 4));
        assert!(!spec.holds(&Example::from_pairs([("x", 3)]), 3));
    }

    #[test]
    fn example_from_model_round_trip() {
        let spec = spec_2x_plus_2();
        let mut m = Model::new();
        m.set(Var::new("x"), 17);
        let e = spec.example_from_model(&m);
        assert_eq!(e.get("x"), Some(17));
    }
}
