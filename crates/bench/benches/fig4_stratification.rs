//! Criterion bench for Fig. 4: stratified vs monolithic Newton solving.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nay::check::check_unrealizable;
use nay::Mode;
use sygus::ExampleSet;

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_stratification");
    group.sample_size(10);
    for n in [4usize, 8, 12] {
        let problem = benchmarks::scaling_problem(n);
        let examples = ExampleSet::for_single_var("x", [1, 2]);
        group.bench_with_input(BenchmarkId::new("stratified", n), &n, |b, _| {
            b.iter(|| check_unrealizable(&problem, &examples, &Mode::default()))
        });
        group.bench_with_input(BenchmarkId::new("no_opt", n), &n, |b, _| {
            b.iter(|| check_unrealizable(&problem, &examples, &Mode::semi_linear_unstratified()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
