//! Quantifier-free LIA formulas.

use crate::expr::{LinearExpr, Var};
use crate::model::Model;
use std::collections::BTreeSet;
use std::fmt;

/// A comparison relation between two linear expressions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Rel {
    /// Equality `=`.
    Eq,
    /// Disequality `≠`.
    Ne,
    /// Less-or-equal `≤`.
    Le,
    /// Strictly-less `<`.
    Lt,
    /// Greater-or-equal `≥`.
    Ge,
    /// Strictly-greater `>`.
    Gt,
}

impl Rel {
    /// The relation obtained by logical negation (`¬(a ≤ b)` is `a > b`).
    pub fn negate(self) -> Rel {
        match self {
            Rel::Eq => Rel::Ne,
            Rel::Ne => Rel::Eq,
            Rel::Le => Rel::Gt,
            Rel::Lt => Rel::Ge,
            Rel::Ge => Rel::Lt,
            Rel::Gt => Rel::Le,
        }
    }

    /// Evaluates the relation on two integers.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            Rel::Eq => a == b,
            Rel::Ne => a != b,
            Rel::Le => a <= b,
            Rel::Lt => a < b,
            Rel::Ge => a >= b,
            Rel::Gt => a > b,
        }
    }
}

impl fmt::Display for Rel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rel::Eq => "=",
            Rel::Ne => "!=",
            Rel::Le => "<=",
            Rel::Lt => "<",
            Rel::Ge => ">=",
            Rel::Gt => ">",
        };
        write!(f, "{s}")
    }
}

/// An atomic constraint `lhs REL rhs` over linear integer expressions.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Left-hand side.
    pub lhs: LinearExpr,
    /// Comparison relation.
    pub rel: Rel,
    /// Right-hand side.
    pub rhs: LinearExpr,
}

impl Atom {
    /// Creates a new atom.
    pub fn new(lhs: LinearExpr, rel: Rel, rhs: LinearExpr) -> Self {
        Atom { lhs, rel, rhs }
    }

    /// The atom with the relation negated.
    pub fn negate(&self) -> Atom {
        Atom {
            lhs: self.lhs.clone(),
            rel: self.rel.negate(),
            rhs: self.rhs.clone(),
        }
    }

    /// Evaluates the atom under a model (missing variables read as 0).
    pub fn eval(&self, model: &Model) -> bool {
        let a = self.lhs.eval_with(|v| model.get(v));
        let b = self.rhs.eval_with(|v| model.get(v));
        self.rel.eval(a, b)
    }

    /// `lhs - rhs` as a single expression (so the atom reads `diff REL 0`).
    pub fn difference(&self) -> LinearExpr {
        self.lhs.clone() - self.rhs.clone()
    }

    /// Substitutes a variable in both sides.
    pub fn substitute(&self, var: &Var, by: &LinearExpr) -> Atom {
        Atom {
            lhs: self.lhs.substitute(var, by),
            rel: self.rel,
            rhs: self.rhs.substitute(var, by),
        }
    }

    /// If both sides are constant, evaluates the atom to a Boolean.
    pub fn const_eval(&self) -> Option<bool> {
        if self.lhs.is_constant() && self.rhs.is_constant() {
            Some(
                self.rel
                    .eval(self.lhs.constant_part(), self.rhs.constant_part()),
            )
        } else {
            None
        }
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.rel, self.rhs)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.rel, self.rhs)
    }
}

/// A quantifier-free LIA formula.
///
/// Formulas are Boolean combinations of [`Atom`]s. Construction helpers keep
/// formulas lightly simplified (flattening of nested conjunctions and
/// disjunctions, constant folding of `True`/`False`).
///
/// # Example
/// ```
/// use logic::{Formula, LinearExpr, Var};
/// let x = LinearExpr::var(Var::new("x"));
/// let f = Formula::or(vec![
///     Formula::lt(x.clone(), LinearExpr::constant(0)),
///     Formula::ge(x, LinearExpr::constant(0)),
/// ]);
/// assert_eq!(f.atoms().count(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// The true formula.
    True,
    /// The false formula.
    False,
    /// An atomic linear constraint.
    Atom(Atom),
    /// Negation.
    Not(Box<Formula>),
    /// N-ary conjunction.
    And(Vec<Formula>),
    /// N-ary disjunction.
    Or(Vec<Formula>),
}

impl Formula {
    /// Builds an atom `lhs = rhs`.
    pub fn eq(lhs: impl Into<LinearExpr>, rhs: impl Into<LinearExpr>) -> Formula {
        Formula::Atom(Atom::new(lhs.into(), Rel::Eq, rhs.into()))
    }
    /// Builds an atom `lhs ≠ rhs`.
    pub fn ne(lhs: impl Into<LinearExpr>, rhs: impl Into<LinearExpr>) -> Formula {
        Formula::Atom(Atom::new(lhs.into(), Rel::Ne, rhs.into()))
    }
    /// Builds an atom `lhs ≤ rhs`.
    pub fn le(lhs: impl Into<LinearExpr>, rhs: impl Into<LinearExpr>) -> Formula {
        Formula::Atom(Atom::new(lhs.into(), Rel::Le, rhs.into()))
    }
    /// Builds an atom `lhs < rhs`.
    pub fn lt(lhs: impl Into<LinearExpr>, rhs: impl Into<LinearExpr>) -> Formula {
        Formula::Atom(Atom::new(lhs.into(), Rel::Lt, rhs.into()))
    }
    /// Builds an atom `lhs ≥ rhs`.
    pub fn ge(lhs: impl Into<LinearExpr>, rhs: impl Into<LinearExpr>) -> Formula {
        Formula::Atom(Atom::new(lhs.into(), Rel::Ge, rhs.into()))
    }
    /// Builds an atom `lhs > rhs`.
    pub fn gt(lhs: impl Into<LinearExpr>, rhs: impl Into<LinearExpr>) -> Formula {
        Formula::Atom(Atom::new(lhs.into(), Rel::Gt, rhs.into()))
    }

    /// N-ary conjunction with flattening and constant folding.
    pub fn and(parts: impl IntoIterator<Item = Formula>) -> Formula {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Formula::True => {}
                Formula::False => return Formula::False,
                Formula::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::True,
            1 => out.pop().expect("len checked"),
            _ => Formula::And(out),
        }
    }

    /// N-ary disjunction with flattening and constant folding.
    pub fn or(parts: impl IntoIterator<Item = Formula>) -> Formula {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Formula::False => {}
                Formula::True => return Formula::True,
                Formula::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::False,
            1 => out.pop().expect("len checked"),
            _ => Formula::Or(out),
        }
    }

    /// Logical negation with constant folding.
    // `not` is a constructor taking the formula by value, like `and`/`or`
    // above, not a candidate for the `std::ops::Not` trait.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        match f {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner) => *inner,
            other => Formula::Not(Box::new(other)),
        }
    }

    /// Implication `a → b`.
    pub fn implies(a: Formula, b: Formula) -> Formula {
        Formula::or(vec![Formula::not(a), b])
    }

    /// Bi-implication `a ↔ b`.
    pub fn iff(a: Formula, b: Formula) -> Formula {
        Formula::or(vec![
            Formula::and(vec![a.clone(), b.clone()]),
            Formula::and(vec![Formula::not(a), Formula::not(b)]),
        ])
    }

    /// If-then-else over formulas: `(c ∧ t) ∨ (¬c ∧ e)`.
    pub fn ite(c: Formula, t: Formula, e: Formula) -> Formula {
        Formula::or(vec![
            Formula::and(vec![c.clone(), t]),
            Formula::and(vec![Formula::not(c), e]),
        ])
    }

    /// All atoms occurring in the formula, in depth-first order.
    pub fn atoms(&self) -> Box<dyn Iterator<Item = &Atom> + '_> {
        match self {
            Formula::True | Formula::False => Box::new(std::iter::empty()),
            Formula::Atom(a) => Box::new(std::iter::once(a)),
            Formula::Not(f) => f.atoms(),
            Formula::And(fs) | Formula::Or(fs) => Box::new(fs.iter().flat_map(|f| f.atoms())),
        }
    }

    /// The set of free variables of the formula.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        for a in self.atoms() {
            out.extend(a.lhs.vars().cloned());
            out.extend(a.rhs.vars().cloned());
        }
        out
    }

    /// Evaluates the formula under a model (missing variables read as 0).
    pub fn eval(&self, model: &Model) -> bool {
        match self {
            Formula::True => true,
            Formula::False => false,
            Formula::Atom(a) => a.eval(model),
            Formula::Not(f) => !f.eval(model),
            Formula::And(fs) => fs.iter().all(|f| f.eval(model)),
            Formula::Or(fs) => fs.iter().any(|f| f.eval(model)),
        }
    }

    /// Substitutes a variable by a linear expression everywhere.
    pub fn substitute(&self, var: &Var, by: &LinearExpr) -> Formula {
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Atom(a) => Formula::Atom(a.substitute(var, by)),
            Formula::Not(f) => Formula::not(f.substitute(var, by)),
            Formula::And(fs) => Formula::and(fs.iter().map(|f| f.substitute(var, by))),
            Formula::Or(fs) => Formula::or(fs.iter().map(|f| f.substitute(var, by))),
        }
    }

    /// Substitutes several variables by integer constants.
    pub fn substitute_consts<'a>(
        &self,
        bindings: impl IntoIterator<Item = (&'a Var, i64)>,
    ) -> Formula {
        let mut f = self.clone();
        for (v, c) in bindings {
            f = f.substitute(v, &LinearExpr::constant(c));
        }
        f
    }

    /// Negation normal form: negations pushed to atoms and eliminated by
    /// flipping relations.
    pub fn to_nnf(&self) -> Formula {
        self.nnf(false)
    }

    fn nnf(&self, negate: bool) -> Formula {
        match self {
            Formula::True => {
                if negate {
                    Formula::False
                } else {
                    Formula::True
                }
            }
            Formula::False => {
                if negate {
                    Formula::True
                } else {
                    Formula::False
                }
            }
            Formula::Atom(a) => {
                let a = if negate { a.negate() } else { a.clone() };
                match a.const_eval() {
                    Some(true) => Formula::True,
                    Some(false) => Formula::False,
                    None => Formula::Atom(a),
                }
            }
            Formula::Not(f) => f.nnf(!negate),
            Formula::And(fs) => {
                if negate {
                    Formula::or(fs.iter().map(|f| f.nnf(true)))
                } else {
                    Formula::and(fs.iter().map(|f| f.nnf(false)))
                }
            }
            Formula::Or(fs) => {
                if negate {
                    Formula::and(fs.iter().map(|f| f.nnf(true)))
                } else {
                    Formula::or(fs.iter().map(|f| f.nnf(false)))
                }
            }
        }
    }

    /// Disjunctive normal form: a vector of cubes, each cube a vector of
    /// atoms. The formula is satisfiable iff some cube is.
    ///
    /// `Ne` atoms are split into `<` and `>` so every returned atom is one of
    /// `=, ≤, <, ≥, >`.
    ///
    /// The expansion is capped at `max_cubes`; if exceeded, `None` is
    /// returned and the caller should fall back to a different strategy.
    pub fn to_dnf(&self, max_cubes: usize) -> Option<Vec<Vec<Atom>>> {
        let nnf = self.to_nnf();
        let cubes = nnf.dnf_rec(max_cubes)?;
        // split disequalities
        let mut out = Vec::new();
        for cube in cubes {
            let mut expanded = vec![Vec::new()];
            for atom in cube {
                if atom.rel == Rel::Ne {
                    let lt = Atom::new(atom.lhs.clone(), Rel::Lt, atom.rhs.clone());
                    let gt = Atom::new(atom.lhs.clone(), Rel::Gt, atom.rhs.clone());
                    let mut next = Vec::with_capacity(expanded.len() * 2);
                    for e in &expanded {
                        let mut a = e.clone();
                        a.push(lt.clone());
                        next.push(a);
                        let mut b = e.clone();
                        b.push(gt.clone());
                        next.push(b);
                    }
                    expanded = next;
                    if expanded.len() > max_cubes {
                        return None;
                    }
                } else {
                    for e in &mut expanded {
                        e.push(atom.clone());
                    }
                }
            }
            out.extend(expanded);
            if out.len() > max_cubes {
                return None;
            }
        }
        Some(out)
    }

    fn dnf_rec(&self, max_cubes: usize) -> Option<Vec<Vec<Atom>>> {
        match self {
            Formula::True => Some(vec![Vec::new()]),
            Formula::False => Some(Vec::new()),
            Formula::Atom(a) => Some(vec![vec![a.clone()]]),
            Formula::Not(_) => unreachable!("negations eliminated by NNF"),
            Formula::Or(fs) => {
                let mut out = Vec::new();
                for f in fs {
                    out.extend(f.dnf_rec(max_cubes)?);
                    if out.len() > max_cubes {
                        return None;
                    }
                }
                Some(out)
            }
            Formula::And(fs) => {
                let mut out: Vec<Vec<Atom>> = vec![Vec::new()];
                for f in fs {
                    let sub = f.dnf_rec(max_cubes)?;
                    let mut next = Vec::new();
                    for cube in &out {
                        for s in &sub {
                            let mut merged = cube.clone();
                            merged.extend(s.iter().cloned());
                            next.push(merged);
                            if next.len() > max_cubes {
                                return None;
                            }
                        }
                    }
                    out = next;
                }
                Some(out)
            }
        }
    }

    /// A crude size metric: number of atoms plus connectives, used by tests
    /// and diagnostics.
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) => 1,
            Formula::Not(f) => 1 + f.size(),
            Formula::And(fs) | Formula::Or(fs) => 1 + fs.iter().map(|f| f.size()).sum::<usize>(),
        }
    }
}

impl fmt::Debug for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Atom(a) => write!(f, "{a}"),
            Formula::Not(inner) => write!(f, "!({inner})"),
            Formula::And(fs) => {
                write!(f, "(")?;
                for (i, p) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " && ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                write!(f, "(")?;
                for (i, p) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " || ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    fn x() -> LinearExpr {
        LinearExpr::var(Var::new("x"))
    }
    fn y() -> LinearExpr {
        LinearExpr::var(Var::new("y"))
    }

    #[test]
    fn constant_folding() {
        assert_eq!(
            Formula::and(vec![Formula::True, Formula::True]),
            Formula::True
        );
        assert_eq!(
            Formula::and(vec![Formula::True, Formula::False]),
            Formula::False
        );
        assert_eq!(
            Formula::or(vec![Formula::False, Formula::False]),
            Formula::False
        );
        assert_eq!(
            Formula::or(vec![Formula::True, Formula::False]),
            Formula::True
        );
        assert_eq!(Formula::not(Formula::True), Formula::False);
    }

    #[test]
    fn flattening() {
        let f = Formula::and(vec![
            Formula::and(vec![
                Formula::eq(x(), LinearExpr::constant(1)),
                Formula::eq(y(), LinearExpr::constant(2)),
            ]),
            Formula::eq(x(), y()),
        ]);
        match f {
            Formula::And(parts) => assert_eq!(parts.len(), 3),
            other => panic!("expected And, got {other}"),
        }
    }

    #[test]
    fn nnf_pushes_negation() {
        let f = Formula::not(Formula::and(vec![
            Formula::le(x(), LinearExpr::constant(0)),
            Formula::ge(y(), LinearExpr::constant(0)),
        ]));
        let nnf = f.to_nnf();
        match nnf {
            Formula::Or(parts) => {
                assert_eq!(parts.len(), 2);
                for p in parts {
                    assert!(matches!(p, Formula::Atom(_)));
                }
            }
            other => panic!("expected Or, got {other}"),
        }
    }

    #[test]
    fn eval_respects_model() {
        let f = Formula::and(vec![
            Formula::gt(x(), LinearExpr::constant(0)),
            Formula::lt(y(), LinearExpr::constant(5)),
        ]);
        let mut m = Model::new();
        m.set(Var::new("x"), 1);
        m.set(Var::new("y"), 3);
        assert!(f.eval(&m));
        m.set(Var::new("y"), 7);
        assert!(!f.eval(&m));
    }

    #[test]
    fn dnf_counts() {
        // (a || b) && (c || d) has 4 cubes
        let a = Formula::eq(x(), LinearExpr::constant(1));
        let b = Formula::eq(x(), LinearExpr::constant(2));
        let c = Formula::eq(y(), LinearExpr::constant(3));
        let d = Formula::eq(y(), LinearExpr::constant(4));
        let f = Formula::and(vec![Formula::or(vec![a, b]), Formula::or(vec![c, d])]);
        let dnf = f.to_dnf(100).expect("within budget");
        assert_eq!(dnf.len(), 4);
        assert!(dnf.iter().all(|cube| cube.len() == 2));
    }

    #[test]
    fn dnf_budget_exceeded() {
        let mut parts = Vec::new();
        for i in 0..20 {
            parts.push(Formula::or(vec![
                Formula::eq(x(), LinearExpr::constant(i as i64)),
                Formula::eq(y(), LinearExpr::constant(i as i64)),
            ]));
        }
        let f = Formula::and(parts);
        assert!(f.to_dnf(1000).is_none());
    }

    #[test]
    fn disequality_split() {
        let f = Formula::ne(x(), LinearExpr::constant(3));
        let dnf = f.to_dnf(10).expect("small");
        assert_eq!(dnf.len(), 2);
        assert!(dnf.iter().all(|c| c.len() == 1));
        assert!(dnf.iter().any(|c| c[0].rel == Rel::Lt));
        assert!(dnf.iter().any(|c| c[0].rel == Rel::Gt));
    }

    #[test]
    fn substitution() {
        let f = Formula::eq(x(), y());
        let g = f.substitute(&Var::new("x"), &LinearExpr::constant(4));
        let mut m = Model::new();
        m.set(Var::new("y"), 4);
        assert!(g.eval(&m));
        m.set(Var::new("y"), 5);
        assert!(!g.eval(&m));
    }

    #[test]
    fn free_vars() {
        let f = Formula::and(vec![
            Formula::eq(x(), LinearExpr::constant(1)),
            Formula::le(y(), x()),
        ]);
        let vars = f.free_vars();
        assert_eq!(vars.len(), 2);
        assert!(vars.contains(&Var::new("x")));
        assert!(vars.contains(&Var::new("y")));
    }
}
