//! The `reproduce solve` front-end: run the portfolio (or a single engine)
//! over on-disk SyGuS-IF files and emit runner-schema JSON.
//!
//! A corpus is a directory of `.sl` files plus an optional `MANIFEST`
//! recording the expected verdict per file and engine; [`check_manifest`]
//! turns a solve report plus a manifest into a list of mismatches, which
//! is what the CI `corpus-check` job gates on.

use portfolio::{solve_nay, solve_nope, Cancel, NopeEngine, Portfolio, SolveVerdict};
use runner::{run_jobs, Entry, Job, JobStatus, PoolConfig, Report};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// The per-engine wall-clock budget `run_solve` applies when the caller
/// does not pass one (solo and race alike): generous enough for any sane
/// corpus instance, finite so a diverging engine becomes a `timed_out`
/// entry instead of a hung run.
pub const DEFAULT_SOLVE_TIMEOUT: Duration = Duration::from_secs(600);

/// Which engine `reproduce solve` drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// The exact CHC/GFA-based CEGIS engine.
    Nay,
    /// The approximate program-reachability engine.
    Nope,
    /// Both engines raced with cooperative cancellation.
    Race,
}

impl Engine {
    /// The CLI / MANIFEST name of the engine.
    pub fn name(&self) -> &'static str {
        match self {
            Engine::Nay => "nay",
            Engine::Nope => "nope",
            Engine::Race => "race",
        }
    }

    /// Inverse of [`Engine::name`].
    pub fn parse(s: &str) -> Option<Engine> {
        match s {
            "nay" => Some(Engine::Nay),
            "nope" => Some(Engine::Nope),
            "race" => Some(Engine::Race),
            _ => None,
        }
    }
}

/// Collects the `.sl` files of a corpus path: a single file, or every
/// `*.sl` in a directory (sorted by name, for deterministic reports).
///
/// # Errors
/// Returns a message when the path does not exist, is not readable, or a
/// directory contains no `.sl` file.
pub fn collect_sl_files(path: &Path) -> Result<Vec<PathBuf>, String> {
    if path.is_file() {
        return Ok(vec![path.to_path_buf()]);
    }
    if !path.is_dir() {
        return Err(format!(
            "`{}` is neither a file nor a directory",
            path.display()
        ));
    }
    let mut files: Vec<PathBuf> = std::fs::read_dir(path)
        .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "sl"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("`{}` contains no .sl files", path.display()));
    }
    Ok(files)
}

/// The file stem used as the benchmark name in reports and the MANIFEST.
pub fn problem_name(path: &Path) -> String {
    path.file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string())
}

/// Parses one `.sl` file into a [`sygus::Problem`] named after the file.
///
/// # Errors
/// Returns a message naming the file on I/O or parse errors; parse errors
/// come out `file:line:col: message` so editors and humans can jump to the
/// offending token.
pub fn load_problem(path: &Path) -> Result<sygus::Problem, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
    sygus::parser::parse_problem(&text, &problem_name(path)).map_err(|e| match e {
        sygus::SygusError::ParseError(p) => {
            format!("{}:{}:{}: {}", path.display(), p.line, p.col, p.msg)
        }
        other => format!("parse error in `{}`: {other}", path.display()),
    })
}

/// One row of the human-readable solve table.
#[derive(Clone, Debug)]
pub struct SolveRow {
    /// Benchmark (file stem).
    pub name: String,
    /// The verdict of the driven engine (the race verdict for `race`).
    pub verdict: String,
    /// Which engine won the race, when racing.
    pub winner: Option<&'static str>,
    /// Wall-clock milliseconds of the run (race wall clock for `race`).
    pub millis: f64,
    /// The losing engine's cancellation latency, when racing.
    pub loser_cancel_millis: Option<f64>,
    /// Peak term-arena size of the run (the larger side for `race`).
    pub arena_terms: usize,
    /// The solve's span tree, when tracing was requested (race engine
    /// only: solo engines have no phase structure worth a waterfall).
    pub trace: Option<obs::Trace>,
}

/// Run-level totals of a solve sweep, printed in the summary line.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolveTotals {
    /// Wall-clock milliseconds of the whole sweep (parsing included).
    pub wall_millis: f64,
    /// Largest per-run term-arena size across the sweep.
    pub peak_arena_terms: usize,
}

/// Runs the chosen engine over the files and returns the human-readable
/// rows plus the runner-schema JSON [`Report`] (suite `solve-<engine>`).
///
/// Per file the report contains one entry with the engine's name as the
/// tool; a race additionally contributes `race/nay` and `race/nope`
/// entries carrying each engine's own timing, verdict (`cancelled` for the
/// cancelled loser), and iteration count, so the loser's cancellation
/// latency is `race/<loser>.millis − race/<winner>.millis`.
///
/// Engines run under a wall-clock budget of `timeout`, defaulting to
/// [`DEFAULT_SOLVE_TIMEOUT`] for solo and race alike, so a diverging
/// engine always lands as a `timed_out` entry instead of hanging the run.
///
/// When racing with the presolve stage enabled, each race additionally
/// contributes a `race/presolve` entry carrying the static analyzer's own
/// verdict (`unknown` when it abstained) and milliseconds; the stage is
/// verdict-preserving (see [`Portfolio::with_presolve`]) so the `race`
/// entries the MANIFEST gates on are unaffected.
///
/// With `trace` set, each race row additionally carries an [`obs::Trace`]
/// span tree (parse, presolve, per-engine race spans, loser cancellation)
/// that `reproduce solve --trace` renders as a waterfall.
///
/// # Errors
/// Returns the first file that fails to load or parse.
pub fn run_solve(
    files: &[PathBuf],
    engine: Engine,
    timeout: Option<Duration>,
    presolve: bool,
    trace: bool,
) -> Result<(Vec<SolveRow>, Report, SolveTotals), String> {
    let sweep_started = Instant::now();
    let timeout = timeout.unwrap_or(DEFAULT_SOLVE_TIMEOUT);
    let mut entries: Vec<Entry> = Vec::new();
    let mut rows: Vec<SolveRow> = Vec::new();
    for path in files {
        let parse_started = Instant::now();
        let problem = load_problem(path)?;
        let parse_millis = parse_started.elapsed().as_secs_f64() * 1000.0;
        let name = problem_name(path);
        match engine {
            Engine::Race => {
                let report = Portfolio::new()
                    .with_timeout(timeout)
                    .with_presolve(presolve)
                    .race(&problem);
                // The race entry surfaces the *worst* engine status: a
                // panicking engine is a crash and a budget-exhausting
                // engine is a timeout even when the other side produced a
                // verdict — the corpus gate must fail on either (a loser
                // that observes the cancel exits Ok with verdict
                // `cancelled`, so healthy races are unaffected).
                let race_status = report.nay.status.worst(report.nope.status);
                entries.push(Entry {
                    benchmark: name.clone(),
                    tool: "race".into(),
                    status: race_status,
                    verdict: report.verdict.name().into(),
                    proved: report.verdict == SolveVerdict::Unrealizable,
                    iterations: report.nay.iterations + report.nope.iterations,
                    millis: report.wall_millis,
                    tainted: report.nay.tainted || report.nope.tainted,
                    family: String::new(),
                });
                for side in [&report.nay, &report.nope] {
                    entries.push(Entry {
                        benchmark: name.clone(),
                        tool: format!("race/{}", side.engine),
                        status: side.status,
                        verdict: side.verdict.name().into(),
                        proved: side.verdict == SolveVerdict::Unrealizable,
                        iterations: side.iterations,
                        millis: side.millis,
                        tainted: side.tainted,
                        family: String::new(),
                    });
                }
                if let Some(stage) = &report.presolve {
                    entries.push(Entry {
                        benchmark: name.clone(),
                        tool: "race/presolve".into(),
                        status: JobStatus::Ok,
                        verdict: stage.verdict.name().into(),
                        proved: stage.verdict == SolveVerdict::Unrealizable,
                        iterations: 0,
                        millis: stage.millis,
                        tainted: false,
                        family: String::new(),
                    });
                }
                rows.push(SolveRow {
                    trace: trace
                        .then(|| report.trace_with(obs::fresh_trace_id(), parse_millis, None)),
                    name,
                    verdict: report.verdict.name().into(),
                    winner: report.winner,
                    millis: report.wall_millis,
                    loser_cancel_millis: report.loser_cancel_millis,
                    arena_terms: report.nay.arena_terms.max(report.nope.arena_terms),
                });
            }
            Engine::Nay | Engine::Nope => {
                let job_problem = problem.clone();
                let job = Job::new(name.clone(), move || match engine {
                    Engine::Nay => solve_nay(&job_problem, &Cancel::never(), &nay::Nay::default()),
                    _ => solve_nope(&job_problem, &Cancel::never(), &NopeEngine::default()),
                });
                let config = PoolConfig {
                    jobs: 1,
                    timeout: Some(timeout),
                };
                let result = run_jobs(vec![job], &config)
                    .pop()
                    .expect("one job, one result");
                let millis = result.elapsed.as_secs_f64() * 1000.0;
                let (verdict, iterations, arena_terms) = match &result.output {
                    Some(outcome) => (
                        outcome.verdict.name().to_string(),
                        outcome.iterations,
                        outcome.arena_terms,
                    ),
                    None => ("-".to_string(), 0, 0),
                };
                entries.push(Entry {
                    benchmark: name.clone(),
                    tool: engine.name().into(),
                    status: result.status,
                    verdict: verdict.clone(),
                    proved: verdict == "unrealizable",
                    iterations,
                    millis,
                    tainted: result.tainted,
                    family: String::new(),
                });
                rows.push(SolveRow {
                    name,
                    verdict,
                    winner: None,
                    millis,
                    loser_cancel_millis: None,
                    arena_terms,
                    trace: None,
                });
            }
        }
    }
    let report = Report::new(format!("solve-{}", engine.name()), entries);
    let totals = SolveTotals {
        wall_millis: sweep_started.elapsed().as_secs_f64() * 1000.0,
        peak_arena_terms: rows.iter().map(|r| r.arena_terms).max().unwrap_or(0),
    };
    Ok((rows, report, totals))
}

/// Renders the human-readable solve table, ending with a summary line
/// carrying the sweep's total wall clock and peak term-arena size.
pub fn render_solve(rows: &[SolveRow], engine: Engine, totals: &SolveTotals) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# solve — engine: {}", engine.name());
    let _ = writeln!(
        out,
        "{:<22} {:>12} {:>8} {:>12} {:>14} {:>12}",
        "benchmark", "verdict", "winner", "millis", "loser-abort-ms", "arena-terms"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:<22} {:>12} {:>8} {:>12.1} {:>14} {:>12}",
            row.name,
            row.verdict,
            row.winner.unwrap_or("-"),
            row.millis,
            row.loser_cancel_millis
                .map(|l| format!("{l:.1}"))
                .unwrap_or_else(|| "-".to_string()),
            row.arena_terms,
        );
    }
    let _ = writeln!(
        out,
        "{} benchmark(s); total wall-clock {:.1} ms; peak term-arena {} terms",
        rows.len(),
        totals.wall_millis,
        totals.peak_arena_terms
    );
    for row in rows {
        if let Some(trace) = &row.trace {
            let _ = writeln!(out, "\n## {}", row.name);
            out.push_str(&trace.render_waterfall());
        }
    }
    out
}

/// A parsed `corpus/MANIFEST`: per benchmark, the expected verdict of each
/// engine. The format is line-oriented:
///
/// ```text
/// # comment
/// <file.sl> nay=<verdict> nope=<verdict> race=<verdict>
/// ```
#[derive(Clone, Debug, Default)]
pub struct Manifest {
    expected: BTreeMap<String, BTreeMap<String, String>>,
}

impl Manifest {
    /// Parses the MANIFEST text.
    ///
    /// # Errors
    /// Returns a message naming the offending line on malformed input.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let mut expected = BTreeMap::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let file = parts
                .next()
                .ok_or_else(|| format!("MANIFEST line {}: missing file name", lineno + 1))?;
            let name = file.strip_suffix(".sl").unwrap_or(file).to_string();
            let mut verdicts = BTreeMap::new();
            for part in parts {
                let Some((engine, verdict)) = part.split_once('=') else {
                    return Err(format!(
                        "MANIFEST line {}: `{part}` is not engine=verdict",
                        lineno + 1
                    ));
                };
                if Engine::parse(engine).is_none() {
                    return Err(format!(
                        "MANIFEST line {}: unknown engine `{engine}`",
                        lineno + 1
                    ));
                }
                verdicts.insert(engine.to_string(), verdict.to_string());
            }
            expected.insert(name, verdicts);
        }
        Ok(Manifest { expected })
    }

    /// Loads `MANIFEST` from a corpus directory, if present.
    ///
    /// # Errors
    /// Propagates read and parse errors (a present-but-broken manifest must
    /// fail the run, not silently skip the gate).
    pub fn load(dir: &Path) -> Result<Option<Manifest>, String> {
        let path = dir.join("MANIFEST");
        if !path.is_file() {
            return Ok(None);
        }
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
        Manifest::parse(&text).map(Some)
    }

    /// The expected verdict for a benchmark under an engine, if recorded.
    pub fn expected(&self, benchmark: &str, engine: Engine) -> Option<&str> {
        self.expected
            .get(benchmark)
            .and_then(|v| v.get(engine.name()))
            .map(String::as_str)
    }

    /// The benchmarks the manifest covers.
    pub fn benchmarks(&self) -> impl Iterator<Item = &str> {
        self.expected.keys().map(String::as_str)
    }
}

/// Diffs a solve report against the manifest: verdict mismatches, files
/// missing from the manifest, manifest rows without a corpus file (only
/// when `require_complete` — i.e. the whole corpus directory ran, not a
/// single file), and jobs that did not complete. An empty result means the
/// corpus gate passes.
pub fn check_manifest(
    report: &Report,
    engine: Engine,
    manifest: &Manifest,
    require_complete: bool,
) -> Vec<String> {
    let mut problems = Vec::new();
    let tool = engine.name();
    for entry in report.entries.iter().filter(|e| e.tool == tool) {
        if entry.status != JobStatus::Ok {
            problems.push(format!(
                "{}/{tool}: did not complete (status {})",
                entry.benchmark,
                entry.status.as_str()
            ));
            continue;
        }
        match manifest.expected(&entry.benchmark, engine) {
            None => problems.push(format!(
                "{}: not covered by the MANIFEST (add `{}.sl {tool}={}`)",
                entry.benchmark, entry.benchmark, entry.verdict
            )),
            Some(expected) if expected != entry.verdict => problems.push(format!(
                "{}/{tool}: expected verdict `{expected}`, got `{}`",
                entry.benchmark, entry.verdict
            )),
            Some(_) => {}
        }
    }
    for benchmark in manifest.benchmarks() {
        if require_complete
            && manifest.expected(benchmark, engine).is_some()
            && !report
                .entries
                .iter()
                .any(|e| e.tool == tool && e.benchmark == benchmark)
        {
            problems.push(format!(
                "{benchmark}: listed in the MANIFEST but absent from the corpus run"
            ));
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_names_round_trip() {
        for engine in [Engine::Nay, Engine::Nope, Engine::Race] {
            assert_eq!(Engine::parse(engine.name()), Some(engine));
        }
        assert_eq!(Engine::parse("cvc4"), None);
    }

    #[test]
    fn manifest_parses_and_answers_lookups() {
        let text = "# corpus expectations\nsection2_g1.sl nay=unrealizable nope=unrealizable race=unrealizable\nxplus2.sl nay=realizable nope=unknown race=realizable\n";
        let manifest = Manifest::parse(text).unwrap();
        assert_eq!(
            manifest.expected("section2_g1", Engine::Nay),
            Some("unrealizable")
        );
        assert_eq!(
            manifest.expected("xplus2", Engine::Race),
            Some("realizable")
        );
        assert_eq!(manifest.expected("missing", Engine::Race), None);
        assert_eq!(manifest.benchmarks().count(), 2);
    }

    #[test]
    fn malformed_manifests_are_rejected() {
        assert!(Manifest::parse("a.sl nay:unrealizable").is_err());
        assert!(Manifest::parse("a.sl cvc4=unrealizable").is_err());
        assert!(Manifest::parse("# only comments\n").is_ok());
    }

    #[test]
    fn manifest_mismatches_are_reported() {
        let manifest =
            Manifest::parse("a.sl race=unrealizable\nb.sl race=realizable\nc.sl race=unknown\n")
                .unwrap();
        let report = Report::new(
            "solve-race",
            vec![
                Entry {
                    benchmark: "a".into(),
                    tool: "race".into(),
                    status: JobStatus::Ok,
                    verdict: "unrealizable".into(),
                    proved: true,
                    iterations: 1,
                    millis: 1.0,
                    tainted: false,
                    family: String::new(),
                },
                Entry {
                    benchmark: "b".into(),
                    tool: "race".into(),
                    status: JobStatus::Ok,
                    verdict: "unknown".into(), // mismatch
                    proved: false,
                    iterations: 1,
                    millis: 1.0,
                    tainted: false,
                    family: String::new(),
                },
                Entry {
                    benchmark: "d".into(), // not in manifest
                    tool: "race".into(),
                    status: JobStatus::Ok,
                    verdict: "unknown".into(),
                    proved: false,
                    iterations: 1,
                    millis: 1.0,
                    tainted: false,
                    family: String::new(),
                },
            ],
        );
        let problems = check_manifest(&report, Engine::Race, &manifest, true);
        assert_eq!(problems.len(), 3, "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("b/race")));
        assert!(problems.iter().any(|p| p.contains("not covered")));
        assert!(problems
            .iter()
            .any(|p| p.contains("absent from the corpus run")));
        // a partial (single-file) run does not demand corpus completeness
        let partial = check_manifest(&report, Engine::Race, &manifest, false);
        assert_eq!(partial.len(), 2, "{partial:?}");
    }
}
