//! Criterion bench for Fig. 3 and Fig. 5: nayHorn / nope time vs |E|.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nay::check::check_unrealizable;
use nay::Mode;
use nope::NopeSolver;
use sygus::ExampleSet;

fn bench_fig3_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_fig5_examples");
    group.sample_size(10);
    for n in 1..=3usize {
        for e in [1usize, 3, 5] {
            let problem = benchmarks::scaling_problem(n);
            let examples = ExampleSet::for_single_var("x", (1..=e as i64).collect::<Vec<_>>());
            group.bench_with_input(BenchmarkId::new(format!("nayHorn/N{n}"), e), &e, |b, _| {
                b.iter(|| check_unrealizable(&problem, &examples, &Mode::horn()))
            });
            group.bench_with_input(BenchmarkId::new(format!("nope/N{n}"), e), &e, |b, _| {
                b.iter(|| NopeSolver::new().check(&problem, &examples))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig3_fig5);
criterion_main!(benches);
