//! Semi-linear sets and Boolean-vector sets — the abstract domains of the
//! unrealizability framework.
//!
//! A *linear set* `⟨u, {v₁,…,vₖ}⟩` denotes `{u + λ₁v₁ + … + λₖvₖ | λᵢ ∈ ℕ}`;
//! a *semi-linear set* is a finite union of linear sets (§5.3 of the paper).
//! Together with
//!
//! * `⊕` (union, [`SemiLinearSet::combine`]),
//! * `⊗` (Minkowski sum, [`SemiLinearSet::extend`]),
//! * `⊛` (iterated addition, [`SemiLinearSet::star`]),
//!
//! semi-linear sets form a commutative idempotent ω-continuous semiring,
//! which is exactly what Newton's method (crate `gfa`) needs to solve the
//! grammar-flow equations of LIA⁺ grammars *exactly*.
//!
//! For CLIA grammars, Boolean nonterminals are abstracted by finite sets of
//! Boolean vectors ([`BoolVecSet`], §6.2), and [`SemiLinearSet::project`]
//! implements the `projSL` operation used to express the abstract semantics
//! of `IfThenElse`.
//!
//! Symbolic concretization (γ̂, §5.4) renders a semi-linear set as a QF-LIA
//! formula over output variables, enabling the final SMT check of Alg. 1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod boolvec;
mod concretize;
mod linear;
mod set;
mod vector;

pub use boolvec::{BoolVec, BoolVecSet};
pub use concretize::{concretize_linear, concretize_semilinear, concretize_semilinear_prefixed};
pub use linear::LinearSet;
pub use set::SemiLinearSet;
pub use vector::IntVec;
