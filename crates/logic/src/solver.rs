//! Satisfiability checking for QF-LIA formulas.

use crate::expr::Var;
use crate::formula::{Atom, Formula, Rel};
use crate::ilp::{Constraint, IlpProblem, IlpResult};
use crate::model::Model;
use crate::simplex::LpRel;
use std::collections::BTreeMap;

/// The verdict of a satisfiability check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolverResult {
    /// The formula is satisfiable; the model witnesses it.
    Sat(Model),
    /// The formula has no integer model.
    Unsat,
    /// The solver exceeded its budget (DNF explosion or branch-and-bound cap).
    Unknown,
}

impl SolverResult {
    /// `true` if the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SolverResult::Sat(_))
    }
    /// `true` if the result is `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, SolverResult::Unsat)
    }
    /// The model, if the result is `Sat`.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SolverResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

/// A QF-LIA satisfiability solver.
///
/// The solver is complete on formulas whose DNF stays within the cube budget
/// and whose cubes stay within the branch-and-bound budget; otherwise it
/// reports [`SolverResult::Unknown`]. All the queries issued by the
/// unrealizability checker fall well inside those budgets.
///
/// # Example
/// ```
/// use logic::{Formula, LinearExpr, Solver, Var};
/// let x = LinearExpr::var(Var::new("x"));
/// let f = Formula::and(vec![
///     Formula::gt(x.clone(), LinearExpr::constant(3)),
///     Formula::lt(x, LinearExpr::constant(10)),
/// ]);
/// let result = Solver::default().check(&f);
/// let m = result.model().expect("satisfiable");
/// let v = m.get(&Var::new("x")).unwrap();
/// assert!(v > 3 && v < 10);
/// ```
#[derive(Clone, Debug)]
pub struct Solver {
    max_cubes: usize,
    node_budget: usize,
}

impl Default for Solver {
    fn default() -> Self {
        Solver {
            max_cubes: 4096,
            node_budget: 4000,
        }
    }
}

impl Solver {
    /// Creates a solver with the default budgets.
    pub fn new() -> Self {
        Solver::default()
    }

    /// Overrides the maximum number of DNF cubes explored.
    pub fn with_max_cubes(mut self, max_cubes: usize) -> Self {
        self.max_cubes = max_cubes;
        self
    }

    /// Overrides the branch-and-bound node budget used per cube.
    pub fn with_node_budget(mut self, budget: usize) -> Self {
        self.node_budget = budget;
        self
    }

    /// Checks satisfiability of `formula`.
    pub fn check(&self, formula: &Formula) -> SolverResult {
        let vars: Vec<Var> = formula.free_vars().into_iter().collect();
        let index: BTreeMap<Var, usize> = vars
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, v)| (v, i))
            .collect();

        let Some(cubes) = formula.to_dnf(self.max_cubes) else {
            return SolverResult::Unknown;
        };
        if cubes.is_empty() {
            return SolverResult::Unsat;
        }

        let mut saw_unknown = false;
        for cube in &cubes {
            match self.check_cube(cube, &vars, &index) {
                IlpResult::Sat(point) => {
                    let model = vars
                        .iter()
                        .cloned()
                        .zip(point.iter().copied())
                        .collect::<Model>();
                    debug_assert!(
                        formula.eval(&model),
                        "internal error: model {model} does not satisfy {formula}"
                    );
                    return SolverResult::Sat(model);
                }
                IlpResult::Unsat => {}
                IlpResult::Unknown => saw_unknown = true,
            }
        }
        if saw_unknown {
            SolverResult::Unknown
        } else {
            SolverResult::Unsat
        }
    }

    /// Convenience wrapper: `true` iff the formula is provably unsatisfiable.
    pub fn is_unsat(&self, formula: &Formula) -> bool {
        self.check(formula).is_unsat()
    }

    /// Convenience wrapper: `true` iff the formula is provably valid
    /// (its negation is unsatisfiable).
    pub fn is_valid(&self, formula: &Formula) -> bool {
        self.is_unsat(&Formula::not(formula.clone()))
    }

    fn check_cube(&self, cube: &[Atom], vars: &[Var], index: &BTreeMap<Var, usize>) -> IlpResult {
        let mut problem = IlpProblem::new(vars.len()).with_node_budget(self.node_budget);
        for atom in cube {
            let diff = atom.difference();
            let mut coeffs = vec![0i64; vars.len()];
            for (v, c) in diff.terms() {
                coeffs[index[v]] = c;
            }
            let constant = diff.constant_part();
            // diff REL 0  ⟺  coeffs·x REL -constant
            let (rel, rhs) = match atom.rel {
                Rel::Eq => (LpRel::Eq, -constant),
                Rel::Le => (LpRel::Le, -constant),
                Rel::Lt => (LpRel::Le, -constant - 1),
                Rel::Ge => (LpRel::Ge, -constant),
                Rel::Gt => (LpRel::Ge, -constant + 1),
                Rel::Ne => unreachable!("disequalities are split during DNF conversion"),
            };
            problem.add(Constraint::new(coeffs, rel, rhs));
        }
        problem.solve()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinearExpr;

    fn var(name: &str) -> LinearExpr {
        LinearExpr::var(Var::new(name))
    }

    #[test]
    fn trivial_formulas() {
        let s = Solver::default();
        assert!(s.check(&Formula::True).is_sat());
        assert_eq!(s.check(&Formula::False), SolverResult::Unsat);
    }

    #[test]
    fn sat_with_model() {
        let s = Solver::default();
        let f = Formula::and(vec![
            Formula::ge(var("x"), LinearExpr::constant(2)),
            Formula::le(var("x"), LinearExpr::constant(2)),
        ]);
        match s.check(&f) {
            SolverResult::Sat(m) => assert_eq!(m.get(&Var::new("x")), Some(2)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unsat_conjunction() {
        let s = Solver::default();
        let f = Formula::and(vec![
            Formula::gt(var("x"), LinearExpr::constant(5)),
            Formula::lt(var("x"), LinearExpr::constant(3)),
        ]);
        assert_eq!(s.check(&f), SolverResult::Unsat);
    }

    #[test]
    fn disjunction_finds_the_sat_branch() {
        let s = Solver::default();
        let f = Formula::or(vec![
            Formula::and(vec![
                Formula::gt(var("x"), LinearExpr::constant(5)),
                Formula::lt(var("x"), LinearExpr::constant(3)),
            ]),
            Formula::eq(var("x"), LinearExpr::constant(9)),
        ]);
        match s.check(&f) {
            SolverResult::Sat(m) => assert_eq!(m.get(&Var::new("x")), Some(9)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn paper_equation_four() {
        // ∃λ. i1 = 1 ∧ o1 = 0 + 3λ ∧ λ ≥ 0 ∧ o1 = 2·i1 + 2  — unsat
        let s = Solver::default();
        let f = Formula::and(vec![
            Formula::eq(var("i1"), LinearExpr::constant(1)),
            Formula::eq(var("o1"), var("lam").scale(3)),
            Formula::ge(var("lam"), LinearExpr::constant(0)),
            Formula::eq(var("o1"), var("i1").scale(2) + LinearExpr::constant(2)),
        ]);
        assert_eq!(s.check(&f), SolverResult::Unsat);
    }

    #[test]
    fn paper_equation_four_satisfiable_variant() {
        // with i1 = 2 the output 2·2+2 = 6 = 3·2 is producible
        let s = Solver::default();
        let f = Formula::and(vec![
            Formula::eq(var("i1"), LinearExpr::constant(2)),
            Formula::eq(var("o1"), var("lam").scale(3)),
            Formula::ge(var("lam"), LinearExpr::constant(0)),
            Formula::eq(var("o1"), var("i1").scale(2) + LinearExpr::constant(2)),
        ]);
        match s.check(&f) {
            SolverResult::Sat(m) => {
                assert_eq!(m.get(&Var::new("o1")), Some(6));
                assert_eq!(m.get(&Var::new("lam")), Some(2));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negation_and_validity() {
        let s = Solver::default();
        // x ≤ 3 ∨ x > 3 is valid
        let f = Formula::or(vec![
            Formula::le(var("x"), LinearExpr::constant(3)),
            Formula::gt(var("x"), LinearExpr::constant(3)),
        ]);
        assert!(s.is_valid(&f));
        // x ≤ 3 alone is not valid
        assert!(!s.is_valid(&Formula::le(var("x"), LinearExpr::constant(3))));
    }

    #[test]
    fn disequality_handling() {
        let s = Solver::default();
        let f = Formula::and(vec![
            Formula::ge(var("x"), LinearExpr::constant(0)),
            Formula::le(var("x"), LinearExpr::constant(1)),
            Formula::ne(var("x"), LinearExpr::constant(0)),
            Formula::ne(var("x"), LinearExpr::constant(1)),
        ]);
        assert_eq!(s.check(&f), SolverResult::Unsat);
    }

    #[test]
    fn model_eval_round_trip() {
        let s = Solver::default();
        let f = Formula::and(vec![
            Formula::eq(var("x") + var("y"), LinearExpr::constant(10)),
            Formula::ge(var("x") - var("y"), LinearExpr::constant(4)),
        ]);
        match s.check(&f) {
            SolverResult::Sat(m) => assert!(f.eval(&m)),
            other => panic!("unexpected {other:?}"),
        }
    }
}
