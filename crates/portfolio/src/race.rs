//! The racer: a static presolve in front, then both engines on `runner`'s
//! pool, first definitive verdict wins, the loser is cancelled
//! cooperatively.
//!
//! # The presolve stage
//!
//! Every race starts (unless disabled via [`Portfolio::with_presolve`])
//! with crate `analyze`'s static presolve: an interval×parity abstract
//! interpretation plus a finite-language lane that can settle a problem
//! without dispatching either engine. A definitive presolve verdict is
//! only trusted after it passes [`Presolver::recheck`], which re-derives
//! the proof from scratch; a verdict that fails its own recheck is
//! discarded and the engines race as if the presolve had abstained. The
//! stage is therefore *verdict-preserving by construction*: it can only
//! replace an engine verdict with the same verdict, or settle a problem
//! the engines would have left `unknown` — never flip one.
//!
//! # Cancellation and deadlines
//!
//! Engines poll one shared [`Cancel`] token once per loop iteration. In a
//! plain [`Portfolio::race`] the token is internal: the first engine to
//! reach a definitive verdict trips it and the loser aborts. A serving
//! layer that needs *deadlines* passes its own token to
//! [`Portfolio::race_with_cancel`] (or the warm-pool variant
//! [`Portfolio::race_on_pool`]): tripping that token from outside — e.g.
//! when a request's deadline expires — cancels **both** engines within
//! one loop iteration each, and the race returns with verdict `unknown`
//! and both sides reporting `cancelled`. Because winners also trip the
//! shared token, a caller must hand each race a fresh token and must not
//! interpret a tripped token as "deadline exceeded" — the race report's
//! verdict is the source of truth.

use crate::engines::{solve_nay, solve_nope, NopeEngine, SolveVerdict};
use analyze::{PresolveVerdict, Presolver};
use nay::Nay;
use runner::{measure, run_jobs, Cancel, Job, JobResult, JobStatus, PoolConfig, WarmPool};
use std::time::Duration;
use sygus::{Problem, Term};

/// What one engine did inside a race: its verdict plus the wall-clock view
/// the pool measured for it.
#[derive(Clone, Debug)]
pub struct EngineReport {
    /// Engine name (`nay` or `nope`).
    pub engine: &'static str,
    /// How the engine's pool job ended (a diverging engine that exceeds the
    /// race timeout reports [`JobStatus::TimedOut`]).
    pub status: JobStatus,
    /// The engine's verdict ([`SolveVerdict::Cancelled`] when it lost and
    /// aborted on the shared token).
    pub verdict: SolveVerdict,
    /// Engine iterations (CEGIS iterations for `nay`, abstract fixpoint
    /// iterations for `nope`); 0 when the job did not complete.
    pub iterations: u64,
    /// The engine's peak term-arena size (see
    /// [`crate::EngineOutcome::arena_terms`]); 0 when the job did not
    /// complete.
    pub arena_terms: usize,
    /// The engine's own wall-clock milliseconds on the pool.
    pub millis: f64,
    /// `true` when the job shared the pool sweep with an abandoned
    /// (timed-out) job thread, making `millis` untrustworthy (see
    /// [`runner::JobResult::tainted`]).
    pub tainted: bool,
    /// Milliseconds the engine job waited in a [`WarmPool`] queue before a
    /// worker picked it up; 0 on the scoped-pool path (no queue).
    pub queue_millis: f64,
}

impl EngineReport {
    /// `true` when the engine aborted because the other engine won.
    pub fn was_cancelled(&self) -> bool {
        self.verdict == SolveVerdict::Cancelled
    }
}

/// What the static presolve (crate `analyze`) did in front of a race.
#[derive(Clone, Debug)]
pub struct PresolveSummary {
    /// The presolve verdict in the engines' vocabulary; `Unknown` when the
    /// presolve abstained (or a definitive outcome failed its own
    /// [`Presolver::recheck`] gate, in which case the reason says so).
    pub verdict: SolveVerdict,
    /// The rendered [`analyze::PresolveReason`].
    pub reason: String,
    /// Wall-clock milliseconds of the presolve, recheck included.
    pub millis: f64,
}

/// The outcome of racing both engines on one problem.
#[derive(Clone, Debug)]
pub struct RaceReport {
    /// The portfolio's verdict: the winner's definitive verdict, or
    /// `Unknown` when neither engine settled the problem.
    pub verdict: SolveVerdict,
    /// Which engine produced the definitive verdict first, if any.
    pub winner: Option<&'static str>,
    /// The `nay` side of the race.
    pub nay: EngineReport,
    /// The `nope` side of the race.
    pub nope: EngineReport,
    /// Wall-clock milliseconds of the whole race (both engines, from
    /// submission to the last one stopping).
    pub wall_millis: f64,
    /// How long the losing engine kept running after the winner finished
    /// before it observed the cancellation — the portfolio's overhead over
    /// a hypothetical hard kill. `None` when there was no cancelled loser.
    pub loser_cancel_millis: Option<f64>,
    /// The verified solution term when the verdict is `Realizable`.
    pub solution: Option<Term>,
    /// What the static presolve concluded before any engine was
    /// dispatched; `None` when the presolve stage was disabled.
    pub presolve: Option<PresolveSummary>,
}

impl RaceReport {
    /// Builds the solve trace for this race: a span tree under one root
    /// `solve` span, with the phases laid out sequentially — parse, then
    /// the optional cache lookup (daemon path), then the optional
    /// presolve, then (unless the presolve settled the problem) the
    /// engine race with per-engine `queue`/`run` sub-spans and a `cancel`
    /// tail when a loser was cancelled.
    ///
    /// Offsets are microseconds relative to the solve start, rebuilt from
    /// the report's own phase durations, so the *structure* is a pure
    /// function of what happened (snapshot-testable) while the values
    /// carry the measured wall clock. The `queue` sub-span is emitted even
    /// at zero duration so the span shape does not depend on pool load.
    pub fn trace_with(
        &self,
        trace_id: impl Into<String>,
        parse_millis: f64,
        cache_lookup_millis: Option<f64>,
    ) -> obs::Trace {
        let us = |millis: f64| (millis * 1000.0).max(0.0) as u64;
        let mut trace = obs::Trace::new(trace_id);
        // Span 0 is the root; its duration is patched to the full extent
        // once every child is placed.
        trace.push(obs::trace::phase::SOLVE, 0, 0, 0, "");
        let mut cursor = 0u64;
        trace.push(obs::trace::phase::PARSE, 1, cursor, us(parse_millis), "");
        cursor += us(parse_millis);
        if let Some(cache_millis) = cache_lookup_millis {
            trace.push(
                obs::trace::phase::CACHE,
                1,
                cursor,
                us(cache_millis),
                "miss",
            );
            cursor += us(cache_millis);
        }
        if let Some(presolve) = &self.presolve {
            trace.push(
                obs::trace::phase::PRESOLVE,
                1,
                cursor,
                us(presolve.millis),
                format!("{} ({})", presolve.verdict.name(), presolve.reason),
            );
            cursor += us(presolve.millis);
        }
        if self.winner != Some("presolve") {
            let race_start = cursor;
            let race_end = race_start + us(self.wall_millis);
            trace.push(
                obs::trace::phase::RACE,
                1,
                race_start,
                us(self.wall_millis),
                self.winner.map_or(String::new(), |w| format!("winner {w}")),
            );
            for (phase, engine) in [
                (obs::trace::phase::NAY, &self.nay),
                (obs::trace::phase::NOPE, &self.nope),
            ] {
                let queue_us = us(engine.queue_millis);
                let run_us = us(engine.millis);
                trace.push(
                    phase,
                    2,
                    race_start,
                    queue_us + run_us,
                    engine.verdict.name().to_string(),
                );
                trace.push(obs::trace::phase::QUEUE, 3, race_start, queue_us, "");
                trace.push(obs::trace::phase::RUN, 3, race_start + queue_us, run_us, "");
            }
            if let Some(cancel_millis) = self.loser_cancel_millis {
                let cancel_us = us(cancel_millis);
                let loser = match self.winner {
                    Some("nay") => "nope",
                    Some("nope") => "nay",
                    _ => "",
                };
                trace.push(
                    obs::trace::phase::CANCEL,
                    2,
                    race_end.saturating_sub(cancel_us),
                    cancel_us,
                    loser,
                );
            }
        }
        let total = trace.total_us();
        trace.spans[0].dur_us = total;
        trace
    }
}

/// The portfolio configuration: one `nay` and one `nope` engine plus an
/// optional per-race wall-clock budget, with a static presolve stage in
/// front (on by default).
#[derive(Clone, Debug)]
pub struct Portfolio {
    nay: Nay,
    nope: NopeEngine,
    timeout: Option<Duration>,
    presolve: bool,
}

impl Default for Portfolio {
    fn default() -> Self {
        Portfolio {
            nay: Nay::default(),
            nope: NopeEngine::default(),
            timeout: None,
            presolve: true,
        }
    }
}

impl Portfolio {
    /// A portfolio with both engines at their default budgets.
    pub fn new() -> Self {
        Portfolio::default()
    }

    /// Enables or disables the static presolve stage (default: enabled).
    pub fn with_presolve(mut self, presolve: bool) -> Self {
        self.presolve = presolve;
        self
    }

    /// Replaces the `nay` engine configuration.
    pub fn with_nay(mut self, nay: Nay) -> Self {
        self.nay = nay;
        self
    }

    /// Replaces the `nope` engine configuration.
    pub fn with_nope(mut self, nope: NopeEngine) -> Self {
        self.nope = nope;
        self
    }

    /// Sets a wall-clock budget per engine job; an engine exceeding it is
    /// abandoned by the pool and reported as timed out.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Races both engines on the problem and returns the first definitive
    /// verdict, with per-engine timing and the loser's cancellation
    /// latency.
    ///
    /// Both engines run as jobs on `runner`'s work-stealing pool (two
    /// workers, so they genuinely overlap). Each engine trips the shared
    /// [`Cancel`] token the moment it reaches a definitive verdict; the
    /// other engine polls the token once per loop iteration and aborts.
    /// When an engine is inapplicable or out of budget it returns
    /// `Unknown` and the race simply degrades to the other engine's
    /// answer.
    ///
    /// When the presolve stage is enabled (the default), the static
    /// analyzer runs first; if it settles the problem — *and* its outcome
    /// passes the independent [`Presolver::recheck`] gate — the engines
    /// are skipped entirely and the winner is `"presolve"`. The presolve
    /// is sound by construction and the gate re-derives its proof, so
    /// enabling it can never change a race verdict: it only ever replaces
    /// an engine's definitive verdict with the same verdict, or adds a
    /// definitive verdict where the engines would have said `Unknown`.
    pub fn race(&self, problem: &Problem) -> RaceReport {
        self.race_with_cancel(problem, &Cancel::new())
    }

    /// [`Portfolio::race`] with a caller-supplied cancellation token.
    ///
    /// The token is the race's shared token: tripping it from outside
    /// (e.g. on a request deadline) cancels both engines within one loop
    /// iteration each, and the race returns verdict `unknown` with both
    /// sides `cancelled`. The race also trips the token itself the moment
    /// one engine reaches a definitive verdict, so hand every race a
    /// fresh token — see the [module docs](self).
    pub fn race_with_cancel(&self, problem: &Problem, cancel: &Cancel) -> RaceReport {
        let presolve_summary = match self.presolve_stage(problem) {
            Ok(report) => return report,
            Err(summary) => summary,
        };

        let (nay_job, nope_job) = self.engine_jobs(problem, cancel);
        let config = PoolConfig {
            jobs: 2,
            timeout: self.timeout,
        };
        let (mut results, wall) = measure(|| run_jobs(vec![nay_job, nope_job], &config));
        // A timed-out engine's thread is abandoned, not killed; trip the
        // token so it exits at its next poll instead of burning CPU for the
        // rest of the process.
        cancel.cancel();

        let nope_result = results.pop().expect("two jobs, two results");
        let nay_result = results.pop().expect("two jobs, two results");
        assemble_race_report(
            nay_result,
            nope_result,
            wall.as_secs_f64() * 1000.0,
            presolve_summary,
        )
    }

    /// Races both engines as jobs on a persistent [`WarmPool`] instead of
    /// a per-race scoped pool — the serving path, where engine workers are
    /// reused across requests.
    ///
    /// Differences from [`Portfolio::race`]:
    ///
    /// * **no abandonment timeout** — a warm worker cannot be abandoned,
    ///   so the per-engine budget set by [`Portfolio::with_timeout`] does
    ///   not apply here; the caller enforces deadlines by tripping
    ///   `cancel`, which both engines observe within one loop iteration
    ///   (see [`Portfolio::race_with_cancel`] for the token contract);
    /// * **queueing** — under load an engine job may wait for a free
    ///   worker; `wall_millis` then includes queueing time (the serving
    ///   latency view) while each engine's own `millis` measures its body
    ///   only, so `loser_cancel_millis` remains an engine-time delta.
    pub fn race_on_pool(&self, problem: &Problem, pool: &WarmPool, cancel: &Cancel) -> RaceReport {
        let presolve_summary = match self.presolve_stage(problem) {
            Ok(report) => return report,
            Err(summary) => summary,
        };

        let (nay_job, nope_job) = self.engine_jobs(problem, cancel);
        let ((nay_result, nope_result), wall) = measure(|| {
            let nay_ticket = pool.submit(nay_job);
            let nope_ticket = pool.submit(nope_job);
            (nay_ticket.wait(), nope_ticket.wait())
        });
        assemble_race_report(
            nay_result,
            nope_result,
            wall.as_secs_f64() * 1000.0,
            presolve_summary,
        )
    }

    /// Runs the presolve stage when enabled. `Ok` carries the finished
    /// race report of a statically settled problem (engines skipped);
    /// `Err` carries the presolve summary (or `None` when the stage is
    /// disabled) and the engines must race.
    fn presolve_stage(&self, problem: &Problem) -> Result<RaceReport, Option<PresolveSummary>> {
        if self.presolve {
            let presolver = Presolver::new();
            let ((outcome, gated), elapsed) = measure(|| {
                let outcome = presolver.presolve(problem);
                let gated = outcome.is_definitive() && presolver.recheck(problem, &outcome);
                (outcome, gated)
            });
            let millis = elapsed.as_secs_f64() * 1000.0;
            if gated {
                let verdict = match outcome.verdict {
                    PresolveVerdict::Realizable => SolveVerdict::Realizable,
                    PresolveVerdict::Unrealizable => SolveVerdict::Unrealizable,
                    PresolveVerdict::Unknown => SolveVerdict::Unknown,
                };
                return Ok(RaceReport {
                    verdict,
                    winner: Some("presolve"),
                    solution: outcome.witness.clone(),
                    nay: skipped_report("nay"),
                    nope: skipped_report("nope"),
                    wall_millis: millis,
                    loser_cancel_millis: None,
                    presolve: Some(PresolveSummary {
                        verdict,
                        reason: outcome.reason.to_string(),
                        millis,
                    }),
                });
            }
            let reason = if outcome.is_definitive() {
                // a definitive outcome that failed its own recheck is a
                // bug in the presolver; never trust it, race the engines
                format!("recheck failed, ignoring: {}", outcome.reason)
            } else {
                outcome.reason.to_string()
            };
            Err(Some(PresolveSummary {
                verdict: SolveVerdict::Unknown,
                reason,
                millis,
            }))
        } else {
            Err(None)
        }
    }

    /// Builds the two engine jobs sharing one cancellation token. Each
    /// engine trips the token the moment it reaches a definitive verdict,
    /// cancelling the other side.
    fn engine_jobs(
        &self,
        problem: &Problem,
        cancel: &Cancel,
    ) -> (Job<crate::EngineOutcome>, Job<crate::EngineOutcome>) {
        let nay_job = {
            let problem = problem.clone();
            let cancel = cancel.clone();
            let nay = self.nay.clone();
            Job::new("nay", move || {
                let outcome = solve_nay(&problem, &cancel, &nay);
                if outcome.verdict.is_definitive() {
                    cancel.cancel();
                }
                outcome
            })
        };
        let nope_job = {
            let problem = problem.clone();
            let cancel = cancel.clone();
            let nope = self.nope.clone();
            Job::new("nope", move || {
                let outcome = solve_nope(&problem, &cancel, &nope);
                if outcome.verdict.is_definitive() {
                    cancel.cancel();
                }
                outcome
            })
        };
        (nay_job, nope_job)
    }
}

/// Turns one engine job result into the race's per-engine view, plus the
/// solution term when the engine produced one.
fn engine_report(result: JobResult<crate::EngineOutcome>) -> (EngineReport, Option<Term>) {
    let millis = result.elapsed.as_secs_f64() * 1000.0;
    let (engine, verdict, iterations, arena_terms, solution) = match result.output {
        Some(outcome) => (
            outcome.engine,
            outcome.verdict,
            outcome.iterations,
            outcome.arena_terms,
            outcome.solution,
        ),
        None => (
            if result.id == "nay" { "nay" } else { "nope" },
            SolveVerdict::Unknown,
            0,
            0,
            None,
        ),
    };
    (
        EngineReport {
            engine,
            status: result.status,
            verdict,
            iterations,
            arena_terms,
            millis,
            tainted: result.tainted,
            queue_millis: result
                .queue_wait
                .map_or(0.0, |wait| wait.as_secs_f64() * 1000.0),
        },
        solution,
    )
}

/// Assembles the final [`RaceReport`] from the two engines' job results —
/// the tail shared by the scoped-pool and warm-pool race paths.
fn assemble_race_report(
    nay_result: JobResult<crate::EngineOutcome>,
    nope_result: JobResult<crate::EngineOutcome>,
    wall_millis: f64,
    presolve_summary: Option<PresolveSummary>,
) -> RaceReport {
    let (nay_report, nay_solution) = engine_report(nay_result);
    let (nope_report, _) = engine_report(nope_result);

    let (verdict, winner) = pick_winner(&nay_report, &nope_report);
    let loser_cancel_millis = match winner {
        Some("nay") if nope_report.was_cancelled() => {
            Some((nope_report.millis - nay_report.millis).max(0.0))
        }
        Some("nope") if nay_report.was_cancelled() => {
            Some((nay_report.millis - nope_report.millis).max(0.0))
        }
        _ => None,
    };
    RaceReport {
        verdict,
        winner,
        solution: if verdict == SolveVerdict::Realizable {
            nay_solution
        } else {
            None
        },
        nay: nay_report,
        nope: nope_report,
        wall_millis,
        loser_cancel_millis,
        presolve: presolve_summary,
    }
}

/// The report of an engine that never ran because the presolve settled
/// the problem first.
fn skipped_report(engine: &'static str) -> EngineReport {
    EngineReport {
        engine,
        status: JobStatus::Ok,
        verdict: SolveVerdict::Unknown,
        iterations: 0,
        arena_terms: 0,
        millis: 0.0,
        tainted: false,
        queue_millis: 0.0,
    }
}

/// The winner policy: the definitive verdict whose engine finished first.
/// Both engines are sound, so two definitive verdicts always agree and the
/// tie-break by elapsed time is only about attribution, never about the
/// answer.
fn pick_winner(nay: &EngineReport, nope: &EngineReport) -> (SolveVerdict, Option<&'static str>) {
    let definitive = |r: &EngineReport| r.status == JobStatus::Ok && r.verdict.is_definitive();
    match (definitive(nay), definitive(nope)) {
        (true, true) => {
            if nay.millis <= nope.millis {
                (nay.verdict, Some("nay"))
            } else {
                (nope.verdict, Some("nope"))
            }
        }
        (true, false) => (nay.verdict, Some("nay")),
        (false, true) => (nope.verdict, Some("nope")),
        (false, false) => (SolveVerdict::Unknown, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_problems::{realizable_xplus2, section2_lia};

    #[test]
    fn race_proves_unrealizability() {
        let report = Portfolio::new().race(&section2_lia());
        assert_eq!(report.verdict, SolveVerdict::Unrealizable);
        assert!(report.winner.is_some());
        assert!(report.wall_millis >= 0.0);
        // the losing engine either also finished (fast problem) or was
        // cancelled; either way both sides report a status
        assert_eq!(report.nay.engine, "nay");
        assert_eq!(report.nope.engine, "nope");
    }

    #[test]
    fn race_finds_solutions_and_reports_the_winner() {
        let report = Portfolio::new().race(&realizable_xplus2());
        // only nay can prove realizability, so it must win
        assert_eq!(report.verdict, SolveVerdict::Realizable);
        assert_eq!(report.winner, Some("nay"));
        assert!(report.solution.is_some());
    }

    #[test]
    fn loser_latency_is_reported_when_the_loser_was_cancelled() {
        let report = Portfolio::new().race(&section2_lia());
        if let Some(latency) = report.loser_cancel_millis {
            assert!(latency >= 0.0);
            let loser = if report.winner == Some("nay") {
                &report.nope
            } else {
                &report.nay
            };
            assert!(loser.was_cancelled());
        }
    }

    #[test]
    fn presolve_settles_section2_without_engines() {
        // at x = 0 the §2 grammar only produces 0, but the spec demands
        // 2·0 + 2 = 2 — the abstract refutation settles this statically
        let report = Portfolio::new().race(&section2_lia());
        assert_eq!(report.verdict, SolveVerdict::Unrealizable);
        assert_eq!(report.winner, Some("presolve"));
        let summary = report.presolve.as_ref().expect("presolve ran");
        assert_eq!(summary.verdict, SolveVerdict::Unrealizable);
        // the engines were never dispatched
        assert_eq!(report.nay.iterations, 0);
        assert_eq!(report.nope.iterations, 0);
    }

    #[test]
    fn disabling_presolve_restores_the_engine_race() {
        let report = Portfolio::new().with_presolve(false).race(&section2_lia());
        assert!(report.presolve.is_none());
        assert_eq!(report.verdict, SolveVerdict::Unrealizable);
        assert_ne!(report.winner, Some("presolve"));
    }

    #[test]
    fn presolve_never_flips_engine_verdicts() {
        for problem in [section2_lia(), realizable_xplus2()] {
            let with = Portfolio::new().race(&problem);
            let without = Portfolio::new().with_presolve(false).race(&problem);
            assert_eq!(
                with.verdict,
                without.verdict,
                "presolve flipped the verdict on {}",
                problem.name()
            );
        }
    }

    #[test]
    fn presolve_abstains_on_realizable_infinite_languages() {
        let report = Portfolio::new().race(&realizable_xplus2());
        assert_eq!(report.verdict, SolveVerdict::Realizable);
        assert_eq!(report.winner, Some("nay"));
        let summary = report.presolve.as_ref().expect("presolve ran");
        assert_eq!(summary.verdict, SolveVerdict::Unknown);
    }

    #[test]
    fn warm_pool_race_matches_the_scoped_race() {
        let pool = WarmPool::new(2);
        for problem in [section2_lia(), realizable_xplus2()] {
            let scoped = Portfolio::new().race(&problem);
            let warm = Portfolio::new().race_on_pool(&problem, &pool, &Cancel::new());
            assert_eq!(
                warm.verdict,
                scoped.verdict,
                "warm-pool race disagreed on {}",
                problem.name()
            );
        }
        // the same pool serves many races without respawning workers
        assert_eq!(pool.workers(), 2);
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn pre_tripped_cancel_returns_unknown_with_both_engines_cancelled() {
        let cancel = Cancel::new();
        cancel.cancel();
        let report = Portfolio::new()
            .with_presolve(false)
            .race_with_cancel(&section2_lia(), &cancel);
        assert_eq!(report.verdict, SolveVerdict::Unknown);
        assert_eq!(report.winner, None);
        assert_eq!(report.nay.verdict, SolveVerdict::Cancelled);
        assert_eq!(report.nope.verdict, SolveVerdict::Cancelled);
    }

    #[test]
    fn presolve_settled_trace_has_the_minimal_structure() {
        let report = Portfolio::new().race(&section2_lia());
        assert_eq!(report.winner, Some("presolve"));
        let trace = report.trace_with("t-test", 0.3, None);
        assert_eq!(trace.trace_id, "t-test");
        assert_eq!(
            trace.structure(),
            vec![
                (0, "solve".to_string()),
                (1, "parse".to_string()),
                (1, "presolve".to_string()),
            ]
        );
        // The root spans the whole request.
        assert_eq!(trace.spans[0].dur_us, trace.total_us());
    }

    #[test]
    fn engine_race_trace_nests_queue_and_run_under_each_engine() {
        let report = Portfolio::new().with_presolve(false).race(&section2_lia());
        let trace = report.trace_with("t-race", 0.1, Some(0.05));
        // The cancel span's presence depends on which engine won, so the
        // snapshot filters it; everything else is fixed.
        let structure: Vec<(usize, String)> = trace
            .structure()
            .into_iter()
            .filter(|(_, phase)| phase != "cancel")
            .collect();
        assert_eq!(
            structure,
            vec![
                (0, "solve".to_string()),
                (1, "parse".to_string()),
                (1, "cache".to_string()),
                (1, "race".to_string()),
                (2, "nay".to_string()),
                (3, "queue".to_string()),
                (3, "run".to_string()),
                (2, "nope".to_string()),
                (3, "queue".to_string()),
                (3, "run".to_string()),
            ]
        );
        // Offsets are monotone per depth-1 lane: parse ends before the
        // race starts.
        let parse = &trace.spans[1];
        let race = trace
            .spans
            .iter()
            .find(|s| s.phase == "race")
            .expect("race span");
        assert!(parse.start_us + parse.dur_us <= race.start_us);
        // The waterfall renders one line per span plus the header.
        let waterfall = trace.render_waterfall();
        assert_eq!(waterfall.lines().count(), trace.spans.len() + 1);
    }

    #[test]
    fn degrades_gracefully_when_neither_engine_answers() {
        // Gconst (Ex. 3.8): unrealizable but beyond both engines — nay's
        // CEGIS cannot converge and nope's domain cannot refute it. The
        // race must settle on Unknown instead of hanging or panicking.
        let problem = crate::test_problems::gconst();
        let portfolio = Portfolio::new()
            .with_nay(
                Nay::new()
                    .with_max_iterations(2)
                    .with_random_range(-5, 5)
                    .with_enumerator(enumerative::Enumerator::new().with_max_size(7)),
            )
            .with_nope(NopeEngine::new().with_max_rounds(2));
        let report = portfolio.race(&problem);
        assert_eq!(report.verdict, SolveVerdict::Unknown);
        assert_eq!(report.winner, None);
        assert_eq!(report.loser_cancel_millis, None);
    }
}
