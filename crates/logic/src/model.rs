//! Integer models (satisfying assignments).

use crate::expr::Var;
use std::collections::BTreeMap;
use std::fmt;

/// An assignment of integer values to variables.
///
/// Models are returned by the [`Solver`](crate::Solver) as witnesses of
/// satisfiability, and are used by the CEGIS loop to extract counterexample
/// inputs.
///
/// # Example
/// ```
/// use logic::{Model, Var};
/// let mut m = Model::new();
/// m.set(Var::new("x"), 7);
/// assert_eq!(m.get(&Var::new("x")), Some(7));
/// assert_eq!(m.get(&Var::new("y")), None);
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Model {
    values: BTreeMap<Var, i64>,
}

impl Model {
    /// Creates an empty model.
    pub fn new() -> Self {
        Model::default()
    }

    /// Creates a model from an iterator of bindings.
    pub fn from_bindings(bindings: impl IntoIterator<Item = (Var, i64)>) -> Self {
        Model {
            values: bindings.into_iter().collect(),
        }
    }

    /// Sets the value of a variable, returning any previous value.
    pub fn set(&mut self, var: Var, value: i64) -> Option<i64> {
        self.values.insert(var, value)
    }

    /// Looks up the value of a variable.
    pub fn get(&self, var: &Var) -> Option<i64> {
        self.values.get(var).copied()
    }

    /// Looks up the value of a variable, defaulting to 0 if unassigned.
    pub fn get_or_zero(&self, var: &Var) -> i64 {
        self.get(var).unwrap_or(0)
    }

    /// Iterates over the bindings in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, i64)> {
        self.values.iter().map(|(v, x)| (v, *x))
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Merges another model into this one (right-hand bindings win).
    pub fn extend(&mut self, other: &Model) {
        for (v, x) in other.iter() {
            self.values.insert(v.clone(), x);
        }
    }
}

impl fmt::Debug for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, x)) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v} = {x}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(Var, i64)> for Model {
    fn from_iter<T: IntoIterator<Item = (Var, i64)>>(iter: T) -> Self {
        Model::from_bindings(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut m = Model::new();
        assert!(m.is_empty());
        m.set(Var::new("a"), 1);
        m.set(Var::new("b"), -2);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&Var::new("a")), Some(1));
        assert_eq!(m.get_or_zero(&Var::new("zzz")), 0);
    }

    #[test]
    fn merge() {
        let mut a = Model::from_bindings([(Var::new("x"), 1)]);
        let b = Model::from_bindings([(Var::new("x"), 2), (Var::new("y"), 3)]);
        a.extend(&b);
        assert_eq!(a.get(&Var::new("x")), Some(2));
        assert_eq!(a.get(&Var::new("y")), Some(3));
    }

    #[test]
    fn display_nonempty() {
        let m = Model::from_bindings([(Var::new("x"), 1)]);
        assert_eq!(format!("{m}"), "{x = 1}");
    }
}
