//! Static semantic analysis of SyGuS problems.
//!
//! The paper's thesis is that unrealizability can often be settled by
//! analyzing the grammar and the specification instead of searching; this
//! crate applies the same idea *before* any engine runs. It provides three
//! layers, each usable on its own:
//!
//! 1. [`wellformed`] — a diagnostic checker over the raw s-expressions of a
//!    SyGuS-IF file: sort checking of grammar productions and constraint
//!    terms, unbound-variable / duplicate-nonterminal / arity diagnostics,
//!    each carrying a 1-based `line:col` source position. Unlike the parser
//!    (which stops at the first error) the checker keeps going and reports
//!    everything it finds, including problems the parser silently tolerates
//!    (e.g. applications of the synthesis function with the wrong number of
//!    arguments).
//! 2. [`grammar`] — structural analyses of a parsed [`sygus::Grammar`]:
//!    reachability, productivity, emptiness, useless productions, and
//!    finite-language detection with exact enumeration when the language is
//!    small.
//! 3. [`presolve`] — an abstract pre-solve: interval/parity abstract
//!    interpretation over the grammar's nonterminals that can statically
//!    return `Unrealizable` (the abstract output cannot satisfy the spec on
//!    some concrete input) or `Realizable` (a finite language contains a
//!    verified witness), always with a checkable reason
//!    ([`presolve::Presolver::recheck`]).
//!
//! The presolve verdicts are *sound by construction*: `Unrealizable` is only
//! reported when an exact QF-LIA query proves that no value in the abstract
//! output can satisfy the specification (or an exhaustive finite enumeration
//! rules every candidate out), and `Realizable` only when a concrete witness
//! term from the grammar passes the exact counterexample query. A sound
//! engine can therefore never contradict a presolve verdict — the portfolio
//! relies on this to skip engine dispatch without ever flipping a verdict.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

pub mod grammar;
pub mod presolve;
pub mod wellformed;

pub use grammar::{analyze_grammar, FiniteLanguage, GrammarReport};
pub use presolve::{
    AbsBool, AbsInt, AbsVal, Parity, PresolveOutcome, PresolveReason, PresolveVerdict, Presolver,
};
pub use wellformed::{Diagnostic, Severity};

use sygus::parser;

/// Everything the analyzer can say about one SyGuS-IF source text.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Well-formedness diagnostics, in source order.
    pub diagnostics: Vec<Diagnostic>,
    /// Grammar structure report; `None` when the problem did not parse.
    pub grammar: Option<GrammarReport>,
    /// Presolve outcome; `None` when the problem did not parse.
    pub presolve: Option<PresolveOutcome>,
}

impl AnalysisReport {
    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// `true` when the source produced no diagnostics at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Runs all three analysis layers on a SyGuS-IF source text.
///
/// The well-formedness checker always runs. The grammar report and the
/// presolve only run when the source parses into a [`sygus::Problem`]
/// (they need the resolved grammar and specification).
pub fn analyze_source(source: &str, name: &str) -> AnalysisReport {
    let diagnostics = wellformed::check(source);
    let (grammar, presolve) = match parser::parse_problem(source, name) {
        Ok(problem) => {
            let grammar = analyze_grammar(problem.grammar());
            let outcome = Presolver::new().presolve(&problem);
            (Some(grammar), Some(outcome))
        }
        Err(_) => (None, None),
    };
    AnalysisReport {
        diagnostics,
        grammar,
        presolve,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_problem_reports_all_layers() {
        let src = r#"
          (set-logic LIA)
          (synth-fun f ((x Int)) Int ((Start Int (x 0 (+ Start Start)))))
          (declare-var x Int)
          (constraint (= (f x) x))
          (check-synth)
        "#;
        let report = analyze_source(src, "clean");
        assert!(report.is_clean(), "unexpected {:?}", report.diagnostics);
        assert!(report.grammar.is_some());
        assert!(report.presolve.is_some());
    }

    #[test]
    fn broken_problem_reports_diagnostics_only() {
        let report = analyze_source("(synth-fun f ((x Int)) Int ((Start Int (y))))", "broken");
        assert!(report.error_count() > 0);
        assert!(report.grammar.is_none());
        assert!(report.presolve.is_none());
    }
}
