//! Determinism and round-tripping of the suite's JSON report: the
//! canonicalized report (wall-clock fields zeroed) must be byte-identical
//! across worker counts, and parsing the JSON back must reproduce the
//! report exactly.

use benchmarks::{Benchmark, Family};
use runner::{PoolConfig, Report};

fn sample_benches() -> Vec<Benchmark> {
    bench::select(Family::LimitedConst, true)
        .into_iter()
        .take(4)
        .collect()
}

fn run_with(jobs: usize) -> Report {
    let benches = sample_benches();
    let entries = bench::run_benches(
        &benches,
        &PoolConfig {
            jobs,
            timeout: None,
        },
    );
    Report::new("quick", entries)
}

#[test]
fn canonical_report_is_byte_identical_across_worker_counts() {
    let serial = run_with(1);
    let parallel = run_with(8);
    let serial_json = serial.canonicalized().to_json();
    let parallel_json = parallel.canonicalized().to_json();
    assert_eq!(
        serial_json, parallel_json,
        "jobs=1 and jobs=8 disagree after canonicalization"
    );
    // In particular every verdict matches, entry by entry.
    for (a, b) in serial.entries.iter().zip(&parallel.entries) {
        assert_eq!(a.verdict, b.verdict, "{}/{}", a.benchmark, a.tool);
        assert_eq!(a.proved, b.proved, "{}/{}", a.benchmark, a.tool);
    }
}

#[test]
fn suite_report_round_trips_through_json() {
    let report = run_with(2);
    let parsed = Report::from_json(&report.to_json()).expect("report parses back");
    assert_eq!(parsed, report);
    assert_eq!(parsed.to_json(), report.to_json());
}
