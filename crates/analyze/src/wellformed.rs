//! Well-formedness diagnostics over the raw s-expressions of a SyGuS-IF
//! file.
//!
//! The checker accepts exactly the fragment [`sygus::parser::parse_problem`]
//! accepts and, unlike the parser, keeps going after the first problem and
//! reports *all* diagnostics it finds, each anchored at the offending
//! token's 1-based `line:col`. It is also stricter where the parser is
//! silently forgiving: applications of the synthesis function with the
//! wrong number of arguments, duplicate nonterminal declarations, extra
//! operands on fixed-arity connectives, and return-sort/start-sort
//! mismatches are all parser-tolerated but reported here.

use std::collections::BTreeMap;
use std::fmt;

use logic::{LinearExpr, Var};
use sygus::parser::{parse_sexps, LineIndex, Sexp, Span};
use sygus::{Sort, SygusError};

/// How serious a [`Diagnostic`] is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Severity {
    /// Suspicious but parseable; the parser accepts the file.
    Warning,
    /// The file is rejected by the parser, or its meaning is not what the
    /// text says (e.g. silently dropped arguments).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding of the well-formedness checker.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// 1-based source line of the offending token.
    pub line: u32,
    /// 1-based source column (bytes) of the offending token.
    pub col: u32,
    /// Error or warning.
    pub severity: Severity,
    /// Stable machine-readable code, e.g. `arity-mismatch`.
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}[{}]: {}",
            self.line, self.col, self.severity, self.code, self.message
        )
    }
}

/// Checks one SyGuS-IF source text and returns every diagnostic found, in
/// source order.
pub fn check(source: &str) -> Vec<Diagnostic> {
    let idx = LineIndex::new(source);
    let sexps = match parse_sexps(source) {
        Ok(sexps) => sexps,
        Err(SygusError::ParseError(e)) => {
            return vec![Diagnostic {
                line: e.line,
                col: e.col,
                severity: Severity::Error,
                code: "parse-error",
                message: e.msg,
            }]
        }
        Err(other) => {
            return vec![Diagnostic {
                line: 1,
                col: 1,
                severity: Severity::Error,
                code: "parse-error",
                message: other.to_string(),
            }]
        }
    };
    let mut checker = Checker {
        idx,
        diags: Vec::new(),
        fun: None,
        declared: BTreeMap::new(),
    };
    checker.run(&sexps);
    checker.diags
}

/// What the checker knows about the `synth-fun` command.
struct FunInfo {
    name: String,
    params: Vec<(String, Sort)>,
    nts: BTreeMap<String, Sort>,
}

struct Checker {
    idx: LineIndex,
    diags: Vec<Diagnostic>,
    fun: Option<FunInfo>,
    declared: BTreeMap<String, Sort>,
}

impl Checker {
    fn report(&mut self, span: Span, severity: Severity, code: &'static str, message: String) {
        let (line, col) = self.idx.position(span.start);
        self.diags.push(Diagnostic {
            line,
            col,
            severity,
            code,
            message,
        });
    }

    fn error(&mut self, span: Span, code: &'static str, message: impl Into<String>) {
        self.report(span, Severity::Error, code, message.into());
    }

    fn warning(&mut self, span: Span, code: &'static str, message: impl Into<String>) {
        self.report(span, Severity::Warning, code, message.into());
    }

    fn run(&mut self, sexps: &[Sexp]) {
        // Pass 1: commands. Declarations are collected before constraints
        // are checked, so declaration order in the file does not matter
        // (it does not matter to the parser either).
        let mut constraints: Vec<Sexp> = Vec::new();
        let mut saw_check_synth = false;
        for s in sexps {
            let Some(items) = s.list() else {
                self.error(
                    s.span(),
                    "invalid-command",
                    "top-level atoms are not valid SyGuS commands",
                );
                continue;
            };
            let Some(head) = items.first().and_then(|h| h.atom()) else {
                self.warning(
                    s.span(),
                    "invalid-command",
                    "command head is not an atom; the parser ignores this form",
                );
                continue;
            };
            match head {
                "set-logic" => {
                    match items.get(1).and_then(|l| l.atom()) {
                        Some("LIA") | Some("CLIA") => {}
                        Some(other) => self.warning(
                            items[1].span(),
                            "unknown-logic",
                            format!("logic {other} is outside the supported LIA/CLIA fragment"),
                        ),
                        None => self.warning(
                            s.span(),
                            "unknown-logic",
                            "set-logic without a logic name",
                        ),
                    };
                }
                "check-synth" => saw_check_synth = true,
                "set-option" => {}
                "synth-fun" => {
                    if self.fun.is_some() {
                        self.error(
                            s.span(),
                            "duplicate-synth-fun",
                            "more than one synth-fun; the parser keeps only the last",
                        );
                    }
                    if let Some(fun) = self.check_synth_fun(s.span(), items) {
                        self.fun = Some(fun);
                    }
                }
                "declare-var" => self.check_declare_var(s.span(), items),
                "constraint" => match items.get(1) {
                    Some(f) => {
                        if items.len() > 2 {
                            self.error(
                                items[2].span(),
                                "arity-mismatch",
                                "constraint takes a single formula; extra forms are ignored by the parser",
                            );
                        }
                        constraints.push(f.clone());
                    }
                    None => self.error(
                        s.span(),
                        "malformed-constraint",
                        "constraint needs a formula",
                    ),
                },
                other => self.error(
                    items[0].span(),
                    "invalid-command",
                    format!("unsupported SyGuS command {other}"),
                ),
            }
        }

        if self.fun.is_none() {
            self.error(
                Span::new(0, 0),
                "missing-synth-fun",
                "no synth-fun command found",
            );
        }
        if constraints.is_empty() {
            self.warning(
                Span::new(0, 0),
                "no-constraint",
                "no constraint command: every grammar term trivially satisfies the empty specification",
            );
        }
        if !saw_check_synth {
            self.warning(
                Span::new(0, 0),
                "missing-check-synth",
                "no check-synth command found",
            );
        }

        // Pass 2: constraints, against the collected declarations.
        for c in &constraints {
            self.check_formula(c);
        }
    }

    fn check_sort(&mut self, s: &Sexp) -> Option<Sort> {
        match s.atom() {
            Some("Int") => Some(Sort::Int),
            Some("Bool") => Some(Sort::Bool),
            other => {
                self.error(
                    s.span(),
                    "unknown-sort",
                    format!("unsupported sort {other:?}; only Int and Bool are available"),
                );
                None
            }
        }
    }

    fn check_declare_var(&mut self, span: Span, items: &[Sexp]) {
        let Some(name) = items.get(1).and_then(|s| s.atom()) else {
            self.error(span, "malformed-declare-var", "declare-var needs a name");
            return;
        };
        let Some(sort_sexp) = items.get(2) else {
            self.error(span, "malformed-declare-var", "declare-var needs a sort");
            return;
        };
        let Some(sort) = self.check_sort(sort_sexp) else {
            return;
        };
        let name = name.to_string();
        match self.declared.get(&name) {
            Some(prev) if *prev != sort => self.error(
                items[1].span(),
                "conflicting-variable",
                format!("variable {name} is re-declared with sort {sort}, previously {prev}"),
            ),
            Some(_) => self.warning(
                items[1].span(),
                "duplicate-variable",
                format!("variable {name} is declared more than once"),
            ),
            None => {
                self.declared.insert(name, sort);
            }
        }
    }

    fn check_synth_fun(&mut self, span: Span, items: &[Sexp]) -> Option<FunInfo> {
        if items.len() < 4 {
            self.error(
                span,
                "malformed-synth-fun",
                "synth-fun needs a name, parameters and a return sort",
            );
            return None;
        }
        let name = match items[1].atom() {
            Some(n) => n.to_string(),
            None => {
                self.error(
                    items[1].span(),
                    "malformed-synth-fun",
                    "synth-fun name must be an atom",
                );
                return None;
            }
        };
        let mut params: Vec<(String, Sort)> = Vec::new();
        match items[2].list() {
            Some(plist) => {
                for p in plist {
                    let Some(pl) = p.list() else {
                        self.error(
                            p.span(),
                            "malformed-synth-fun",
                            "parameter must be (name Sort)",
                        );
                        continue;
                    };
                    if pl.len() != 2 {
                        self.error(
                            p.span(),
                            "malformed-synth-fun",
                            "parameter must be (name Sort)",
                        );
                        continue;
                    }
                    let Some(pname) = pl[0].atom() else {
                        self.error(
                            pl[0].span(),
                            "malformed-synth-fun",
                            "parameter name must be an atom",
                        );
                        continue;
                    };
                    let Some(psort) = self.check_sort(&pl[1]) else {
                        continue;
                    };
                    if params.iter().any(|(n, _)| n == pname) {
                        self.error(
                            pl[0].span(),
                            "duplicate-parameter",
                            format!("parameter {pname} is declared more than once"),
                        );
                        continue;
                    }
                    params.push((pname.to_string(), psort));
                }
            }
            None => self.error(
                items[2].span(),
                "malformed-synth-fun",
                "synth-fun parameter list expected",
            ),
        }
        let ret = self.check_sort(&items[3])?;

        // Grammar part, mirroring the parser: SyGuS-IF v2 places the grouped
        // rules at index 5 (after a predeclaration list at 4), the direct
        // format at index 4.
        let grouped_sexp = if items.len() >= 6 {
            &items[5]
        } else if items.len() == 5 {
            &items[4]
        } else {
            self.error(
                span,
                "malformed-synth-fun",
                "synth-fun must declare a grammar",
            );
            return None;
        };
        let Some(grouped) = grouped_sexp.list() else {
            self.error(
                grouped_sexp.span(),
                "malformed-synth-fun",
                "grouped grammar rules must be a list",
            );
            return None;
        };

        // Nonterminal declarations first, so rules can reference forward.
        let mut nts: BTreeMap<String, Sort> = BTreeMap::new();
        let mut order: Vec<(String, Sort)> = Vec::new();
        for g in grouped {
            let Some(gl) = g.list() else {
                self.error(
                    g.span(),
                    "malformed-synth-fun",
                    "grammar group must be (Name Sort (rules…))",
                );
                continue;
            };
            if gl.len() < 3 {
                self.error(
                    g.span(),
                    "malformed-synth-fun",
                    "grammar group must be (Name Sort (rules…))",
                );
                continue;
            }
            let Some(nt) = gl[0].atom() else {
                self.error(
                    gl[0].span(),
                    "malformed-synth-fun",
                    "nonterminal name must be an atom",
                );
                continue;
            };
            let Some(sort) = self.check_sort(&gl[1]) else {
                continue;
            };
            if nts.insert(nt.to_string(), sort).is_some() {
                self.error(
                    gl[0].span(),
                    "duplicate-nonterminal",
                    format!("nonterminal {nt} is declared more than once; the parser merges the rule groups"),
                );
            } else {
                order.push((nt.to_string(), sort));
            }
        }
        match order.first() {
            Some((start, start_sort)) => {
                if *start_sort != ret {
                    self.error(
                        items[3].span(),
                        "return-sort-mismatch",
                        format!(
                            "synth-fun returns {ret} but the start nonterminal {start} has sort {start_sort}"
                        ),
                    );
                }
            }
            None => {
                self.error(
                    grouped_sexp.span(),
                    "malformed-synth-fun",
                    "grammar has no nonterminals",
                );
                return None;
            }
        }

        let fun = FunInfo { name, params, nts };
        // Rules, now that every nonterminal is known.
        for g in grouped {
            let Some(gl) = g.list() else { continue };
            if gl.len() < 3 {
                continue;
            }
            let (Some(lhs), Some(lhs_sort)) = (
                gl[0].atom().map(str::to_string),
                gl[0].atom().and_then(|n| fun.nts.get(n)).copied(),
            ) else {
                continue;
            };
            let Some(rules) = gl[2].list() else {
                self.error(
                    gl[2].span(),
                    "malformed-synth-fun",
                    "grammar rules must be a parenthesised list",
                );
                continue;
            };
            for rule in rules {
                self.check_rule(&fun, &lhs, lhs_sort, rule);
            }
        }
        Some(fun)
    }

    fn check_rule(&mut self, fun: &FunInfo, lhs: &str, lhs_sort: Sort, rule: &Sexp) {
        if let Some(a) = rule.atom() {
            if a.parse::<i64>().is_ok() {
                if lhs_sort != Sort::Int {
                    self.error(
                        rule.span(),
                        "ill-sorted",
                        format!("integer literal {a} in rules of Boolean nonterminal {lhs}"),
                    );
                }
            } else if let Some((_, psort)) = fun.params.iter().find(|(p, _)| p == a) {
                if *psort != lhs_sort {
                    self.error(
                        rule.span(),
                        "ill-sorted",
                        format!("parameter {a} has sort {psort} but appears in rules of {lhs} ({lhs_sort})"),
                    );
                }
            } else if let Some(nt_sort) = fun.nts.get(a) {
                if *nt_sort != lhs_sort {
                    self.error(
                        rule.span(),
                        "ill-sorted",
                        format!("chain rule {lhs} ::= {a} mixes sorts {lhs_sort} and {nt_sort}"),
                    );
                }
            } else if a == "true" || a == "false" {
                self.error(
                    rule.span(),
                    "bool-literal-rule",
                    "Boolean literals in grammars are not supported; use comparisons",
                );
            } else {
                self.error(
                    rule.span(),
                    "unknown-atom",
                    format!("unknown grammar atom {a} in rules of {lhs}: not a literal, parameter, or nonterminal"),
                );
            }
            return;
        }
        let Some(items) = rule.list() else { return };
        let Some(op) = items.first().and_then(|s| s.atom()) else {
            self.error(
                rule.span(),
                "malformed-rule",
                "rule operator must be an atom",
            );
            return;
        };
        let symbol = match op {
            "+" => sygus::Symbol::Plus,
            "-" => sygus::Symbol::Minus,
            "ite" => sygus::Symbol::IfThenElse,
            "and" => sygus::Symbol::And,
            "or" => sygus::Symbol::Or,
            "not" => sygus::Symbol::Not,
            "<" => sygus::Symbol::LessThan,
            "=" => sygus::Symbol::Equal,
            other => {
                self.error(
                    items[0].span(),
                    "unknown-operator",
                    format!("unsupported grammar operator {other}"),
                );
                return;
            }
        };
        if symbol.sort() != lhs_sort {
            self.error(
                rule.span(),
                "ill-sorted",
                format!(
                    "operator {op} produces {} but appears in rules of {lhs} ({lhs_sort})",
                    symbol.sort()
                ),
            );
        }
        let args = &items[1..];
        match symbol.arity() {
            Some(a) if a != args.len() => self.error(
                rule.span(),
                "arity-mismatch",
                format!("operator {op} expects {a} arguments, got {}", args.len()),
            ),
            None if args.is_empty() => self.error(
                rule.span(),
                "arity-mismatch",
                "variadic + requires at least one argument".to_string(),
            ),
            _ => {}
        }
        for (i, arg) in args.iter().enumerate() {
            let Some(name) = arg.atom() else {
                self.error(
                    arg.span(),
                    "nested-rule",
                    format!(
                        "nested terms in grammar rules are not supported (rule of {lhs}); \
                         introduce an auxiliary nonterminal"
                    ),
                );
                continue;
            };
            let Some(arg_sort) = fun.nts.get(name) else {
                self.error(
                    arg.span(),
                    "unknown-atom",
                    format!("rule argument {name} of {lhs} is not a declared nonterminal"),
                );
                continue;
            };
            let expected = symbol.arg_sort(i);
            if *arg_sort != expected {
                self.error(
                    arg.span(),
                    "ill-sorted",
                    format!(
                        "argument {i} of {op} must be {expected}, but {name} has sort {arg_sort}"
                    ),
                );
            }
        }
    }

    /// Checks a constraint formula (Boolean context).
    fn check_formula(&mut self, sexp: &Sexp) {
        if let Some(a) = sexp.atom() {
            if a != "true" && a != "false" {
                self.error(
                    sexp.span(),
                    "unbound-variable",
                    format!("Boolean variables in constraints are not supported: {a}"),
                );
            }
            return;
        }
        let Some(items) = sexp.list() else { return };
        let Some(op) = items.first().and_then(|s| s.atom()) else {
            self.error(
                sexp.span(),
                "malformed-constraint",
                "operator must be an atom",
            );
            return;
        };
        let args = &items[1..];
        let exact = |n: usize, this: &mut Self| {
            if args.len() != n {
                this.error(
                    sexp.span(),
                    "arity-mismatch",
                    format!("operator {op} expects {n} operands, got {}", args.len()),
                );
            }
        };
        match op {
            "=" | "<" | "<=" | ">" | ">=" => {
                exact(2, self);
                for a in args.iter().take(2) {
                    self.check_int_expr(a);
                }
            }
            "and" | "or" => {
                for a in args {
                    self.check_formula(a);
                }
            }
            "not" => {
                exact(1, self);
                for a in args.iter().take(1) {
                    self.check_formula(a);
                }
            }
            "=>" => {
                exact(2, self);
                for a in args.iter().take(2) {
                    self.check_formula(a);
                }
            }
            "ite" => {
                exact(3, self);
                for a in args.iter().take(3) {
                    self.check_formula(a);
                }
            }
            other => self.error(
                items[0].span(),
                "unknown-operator",
                format!("unsupported Boolean operator {other}"),
            ),
        }
    }

    /// Checks an integer-context constraint term, building the same
    /// [`LinearExpr`] the parser builds so that linearity and constant-ness
    /// are judged by identical semantics (e.g. `(* (- x x) y)` is linear
    /// because the coefficients cancel).
    fn check_int_expr(&mut self, sexp: &Sexp) -> Option<LinearExpr> {
        if let Some(a) = sexp.atom() {
            if let Ok(c) = a.parse::<i64>() {
                return Some(LinearExpr::constant(c));
            }
            let param_sort = self
                .fun
                .as_ref()
                .and_then(|f| f.params.iter().find(|(p, _)| p == a).map(|(_, s)| *s));
            let sort = self.declared.get(a).copied().or(param_sort);
            return match sort {
                Some(Sort::Int) => Some(LinearExpr::var(Var::new(a))),
                Some(Sort::Bool) => {
                    self.error(
                        sexp.span(),
                        "ill-sorted",
                        format!("Boolean variable {a} used in an integer context"),
                    );
                    None
                }
                None => {
                    self.error(
                        sexp.span(),
                        "unbound-variable",
                        format!("unknown variable {a} in constraint"),
                    );
                    None
                }
            };
        }
        let items = sexp.list()?;
        let Some(op) = items.first().and_then(|s| s.atom()) else {
            self.error(
                sexp.span(),
                "malformed-constraint",
                "operator must be an atom",
            );
            return None;
        };
        let args = &items[1..];
        match op {
            "+" => {
                let mut sum = Some(LinearExpr::zero());
                for a in args {
                    let part = self.check_int_expr(a);
                    sum = match (sum, part) {
                        (Some(s), Some(p)) => Some(s + p),
                        _ => None,
                    };
                }
                sum
            }
            "-" => {
                if args.is_empty() {
                    self.error(
                        sexp.span(),
                        "arity-mismatch",
                        "operator - needs at least one operand",
                    );
                    return None;
                }
                if args.len() == 1 {
                    return Some(self.check_int_expr(&args[0])?.scale(-1));
                }
                let mut acc = self.check_int_expr(&args[0]);
                for a in &args[1..] {
                    let part = self.check_int_expr(a);
                    acc = match (acc, part) {
                        (Some(s), Some(p)) => Some(s - p),
                        _ => None,
                    };
                }
                acc
            }
            "*" => {
                if args.len() != 2 {
                    self.error(
                        sexp.span(),
                        "arity-mismatch",
                        "* must have exactly two operands",
                    );
                    return None;
                }
                let a = self.check_int_expr(&args[0])?;
                let b = self.check_int_expr(&args[1])?;
                if a.is_constant() {
                    Some(b.scale(a.constant_part()))
                } else if b.is_constant() {
                    Some(a.scale(b.constant_part()))
                } else {
                    self.error(
                        sexp.span(),
                        "nonlinear",
                        "non-linear multiplication is not supported",
                    );
                    None
                }
            }
            name if Some(name) == self.fun.as_ref().map(|f| f.name.as_str()) => {
                let params: Vec<String> = self
                    .fun
                    .as_ref()
                    .map(|f| f.params.iter().map(|(p, _)| p.clone()).collect())
                    .unwrap_or_default();
                if args.len() != params.len() {
                    self.error(
                        sexp.span(),
                        "arity-mismatch",
                        format!(
                            "application of {name} has {} arguments, but {name} declares {} parameters \
                             (the parser silently ignores the mismatch)",
                            args.len(),
                            params.len()
                        ),
                    );
                }
                for (arg, param) in args.iter().zip(&params) {
                    match arg.atom() {
                        Some(a) if a == param => {}
                        _ => self.error(
                            arg.span(),
                            "not-single-invocation",
                            "only single-invocation applications f(x̄) on the declared variables are supported",
                        ),
                    }
                }
                // the application stands for the reserved output variable
                Some(LinearExpr::var(Var::new("__analyze_out")))
            }
            other => {
                self.error(
                    items[0].span(),
                    "unknown-operator",
                    format!("unsupported integer operator {other}"),
                );
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<&'static str> {
        check(src).into_iter().map(|d| d.code).collect()
    }

    const CLEAN: &str = r#"
      (set-logic LIA)
      (synth-fun f ((x Int)) Int
        ((Start Int) (X Int))
        ((Start Int ((+ X Start) 0))
         (X Int (x))))
      (declare-var x Int)
      (constraint (= (f x) (+ (* 2 x) 2)))
      (check-synth)
    "#;

    #[test]
    fn clean_file_has_no_diagnostics() {
        assert_eq!(check(CLEAN), vec![]);
    }

    #[test]
    fn parse_errors_become_diagnostics() {
        let diags = check("(a (b)");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "parse-error");
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn unknown_grammar_atom_is_located() {
        let diags = check(
            "(synth-fun f ((x Int)) Int\n  ((Start Int (y))))\n(constraint (= (f x) x))\n(check-synth)",
        );
        let d = diags
            .iter()
            .find(|d| d.code == "unknown-atom")
            .expect("unknown-atom diagnostic");
        assert_eq!(d.line, 2);
        assert!(d.message.contains('y'));
    }

    #[test]
    fn f_arity_mismatch_is_reported_even_though_parser_accepts() {
        // the parser zips arguments with parameters and silently drops the
        // extras — the analyzer must flag it
        let src = r#"
          (synth-fun f ((x Int)) Int ((Start Int (x 0))))
          (declare-var x Int)
          (constraint (= (f x x) x))
          (check-synth)
        "#;
        assert!(codes(src).contains(&"arity-mismatch"), "{:?}", check(src));
        assert!(sygus::parser::parse_problem(src, "zip").is_ok());
    }

    #[test]
    fn duplicate_nonterminal_and_return_sort_mismatch() {
        let dup = r#"
          (synth-fun f ((x Int)) Int
            ((Start Int (x)) (Start Int (0))))
          (constraint (= (f x) x))
          (check-synth)
        "#;
        assert!(codes(dup).contains(&"duplicate-nonterminal"));
        let mismatch = r#"
          (synth-fun f ((x Int)) Bool ((Start Int (x))))
          (constraint (= (f x) x))
          (check-synth)
        "#;
        assert!(codes(mismatch).contains(&"return-sort-mismatch"));
    }

    #[test]
    fn ill_sorted_rules_are_reported() {
        let src = r#"
          (synth-fun f ((x Int)) Int
            ((Start Int) (B Bool))
            ((Start Int ((+ B Start) x))
             (B Bool ((< Start Start)))))
          (constraint (= (f x) x))
          (check-synth)
        "#;
        assert!(codes(src).contains(&"ill-sorted"));
    }

    #[test]
    fn constraint_diagnostics() {
        let unknown = r#"
          (synth-fun f ((x Int)) Int ((Start Int (x))))
          (constraint (= (f x) zz))
          (check-synth)
        "#;
        assert!(codes(unknown).contains(&"unbound-variable"));
        let nonlinear = r#"
          (synth-fun f ((x Int)) Int ((Start Int (x))))
          (declare-var x Int)
          (constraint (= (f x) (* x x)))
          (check-synth)
        "#;
        assert!(codes(nonlinear).contains(&"nonlinear"));
        // cancelling coefficients are linear, exactly as the parser judges
        let cancelling = r#"
          (synth-fun f ((x Int)) Int ((Start Int (x))))
          (declare-var x Int)
          (constraint (= (f x) (* (- x x) x)))
          (check-synth)
        "#;
        assert!(!codes(cancelling).contains(&"nonlinear"));
    }

    #[test]
    fn multiple_diagnostics_in_one_pass() {
        let src = r#"
          (bogus-command)
          (synth-fun f ((x Int)) Int ((Start Int (y z))))
          (constraint (= (f x) w))
          (check-synth)
        "#;
        let diags = check(src);
        assert!(
            diags.len() >= 4,
            "expected several diagnostics, got {diags:?}"
        );
    }

    #[test]
    fn missing_pieces_are_warned_or_errored() {
        let diags = check("(set-logic LIA)");
        let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"missing-synth-fun"));
        assert!(codes.contains(&"no-constraint"));
        assert!(codes.contains(&"missing-check-synth"));
    }

    #[test]
    fn diagnostics_render_with_position_and_code() {
        let d = Diagnostic {
            line: 3,
            col: 7,
            severity: Severity::Error,
            code: "ill-sorted",
            message: "example".to_string(),
        };
        assert_eq!(d.to_string(), "3:7: error[ill-sorted]: example");
    }
}
