; realizable_max2 — exported by `cargo run --example export_corpus`
(set-logic CLIA)
(synth-fun f ((x Int) (y Int)) Int
  ((Start Int (x y 0 (ite B Start Start)))
  (B Bool ((< Start Start)))))
(declare-var x Int)
(declare-var y Int)
(constraint (>= (f x y) x))
(constraint (>= (f x y) y))
(constraint (or (= (f x y) x) (= (f x y) y)))
(check-synth)
