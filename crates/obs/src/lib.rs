//! Observability substrate for the SyGuS-unrealizability stack.
//!
//! Std-only, dependency-free, and threaded through every layer:
//!
//! - [`LatencyHist`] — the one log₂ percentile implementation shared by
//!   the fuzz campaigns, the serving load harness, and the metrics
//!   registry.
//! - [`Counter`] / [`Gauge`] / [`Histogram`] / [`Registry`] — atomic
//!   instruments with deterministic, canonically-sorted Prometheus text
//!   exposition ([`Registry::render`]). [`global()`] offers a
//!   process-wide default; the server daemon builds a per-instance
//!   registry instead so concurrent tests stay isolated.
//! - [`Trace`] / [`Span`] — per-request span trees with monotonic
//!   relative offsets and a stable [`trace::phase`] catalogue, so span
//!   *structure* is snapshot-testable while wall-clock values float.
//!
//! The canonical metric-name catalogue lives in [`names`]; the span-phase
//! catalogue in [`trace::phase`]. `docs/OBSERVABILITY.md` documents both.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod metrics;
pub mod trace;

pub use hist::{bucket_of_micros, LatencyHist, BUCKETS};
pub use metrics::{global, names, Counter, Gauge, Histogram, Registry};
pub use trace::{fresh_trace_id, Span, Trace};
