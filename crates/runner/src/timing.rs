//! The one measured-execution helper shared by the pool and the harness.
//!
//! Every wall-clock measurement in the workspace goes through [`measure`],
//! so "how we time things" is defined in exactly one place.

use std::time::{Duration, Instant};

/// Runs `f` and returns its value together with the elapsed wall-clock time.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let started = Instant::now();
    let value = f();
    (value, started.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_the_value_and_a_nonnegative_duration() {
        let (v, elapsed) = measure(|| 6 * 7);
        assert_eq!(v, 42);
        assert!(elapsed >= Duration::ZERO);
    }
}
