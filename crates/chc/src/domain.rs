//! The abstract domain of the approximate Horn solver: per-example products
//! of intervals and congruences for integer nonterminals, three-valued
//! Booleans for Boolean nonterminals.

use logic::{Formula, LinearExpr, Var};

/// An integer interval with optional (±∞) bounds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interval {
    /// Lower bound (`None` = −∞).
    pub lo: Option<i64>,
    /// Upper bound (`None` = +∞).
    pub hi: Option<i64>,
}

impl Interval {
    /// The full interval `(−∞, +∞)`.
    pub fn top() -> Self {
        Interval { lo: None, hi: None }
    }

    /// The singleton interval `[c, c]`.
    pub fn constant(c: i64) -> Self {
        Interval {
            lo: Some(c),
            hi: Some(c),
        }
    }

    /// `true` if the interval contains `v`.
    pub fn contains(&self, v: i64) -> bool {
        self.lo.is_none_or(|lo| lo <= v) && self.hi.is_none_or(|hi| v <= hi)
    }

    /// Interval addition.
    pub fn add(&self, other: &Interval) -> Interval {
        Interval {
            lo: match (self.lo, other.lo) {
                (Some(a), Some(b)) => Some(a.saturating_add(b)),
                _ => None,
            },
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.saturating_add(b)),
                _ => None,
            },
        }
    }

    /// Interval negation.
    pub fn neg(&self) -> Interval {
        Interval {
            lo: self.hi.map(|h| -h),
            hi: self.lo.map(|l| -l),
        }
    }

    /// Join (convex hull).
    pub fn join(&self, other: &Interval) -> Interval {
        Interval {
            lo: match (self.lo, other.lo) {
                (Some(a), Some(b)) => Some(a.min(b)),
                _ => None,
            },
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            },
        }
    }

    /// Standard interval widening: bounds that grew are pushed to ±∞.
    pub fn widen(&self, newer: &Interval) -> Interval {
        Interval {
            lo: match (self.lo, newer.lo) {
                (Some(a), Some(b)) if b < a => None,
                (Some(a), Some(_)) => Some(a),
                _ => None,
            },
            hi: match (self.hi, newer.hi) {
                (Some(a), Some(b)) if b > a => None,
                (Some(a), Some(_)) => Some(a),
                _ => None,
            },
        }
    }
}

/// A congruence class `r (mod m)`.
///
/// `modulus == 0` encodes the exact constant `rem`; `modulus == 1` is top.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Congruence {
    /// The modulus `m ≥ 0`.
    pub modulus: u64,
    /// The remainder, normalised to `0 ≤ rem < m` when `m > 0`.
    pub rem: i64,
}

fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Congruence {
    /// The top element (`0 mod 1`): no congruence information.
    pub fn top() -> Self {
        Congruence { modulus: 1, rem: 0 }
    }

    /// The exact constant `c`.
    pub fn constant(c: i64) -> Self {
        Congruence { modulus: 0, rem: c }
    }

    fn normalise(self) -> Self {
        if self.modulus == 0 {
            self
        } else {
            let m = self.modulus as i64;
            Congruence {
                modulus: self.modulus,
                rem: self.rem.rem_euclid(m),
            }
        }
    }

    /// `true` if `v` is a member of the congruence class.
    pub fn contains(&self, v: i64) -> bool {
        if self.modulus == 0 {
            v == self.rem
        } else {
            (v - self.rem).rem_euclid(self.modulus as i64) == 0
        }
    }

    /// Abstract addition.
    pub fn add(&self, other: &Congruence) -> Congruence {
        Congruence {
            modulus: gcd(self.modulus, other.modulus),
            rem: self.rem + other.rem,
        }
        .normalise()
    }

    /// Abstract negation.
    pub fn neg(&self) -> Congruence {
        Congruence {
            modulus: self.modulus,
            rem: -self.rem,
        }
        .normalise()
    }

    /// Join: the least congruence containing both classes.
    pub fn join(&self, other: &Congruence) -> Congruence {
        let diff = (self.rem - other.rem).unsigned_abs();
        Congruence {
            modulus: gcd(gcd(self.modulus, other.modulus), diff),
            rem: self.rem,
        }
        .normalise()
    }
}

/// The abstract value of one output component: interval × congruence.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AbsInt {
    /// Range information.
    pub interval: Interval,
    /// Divisibility information.
    pub congruence: Congruence,
}

impl AbsInt {
    /// Top (no information).
    pub fn top() -> Self {
        AbsInt {
            interval: Interval::top(),
            congruence: Congruence::top(),
        }
    }

    /// The exact constant `c`.
    pub fn constant(c: i64) -> Self {
        AbsInt {
            interval: Interval::constant(c),
            congruence: Congruence::constant(c),
        }
    }

    /// Membership test.
    pub fn contains(&self, v: i64) -> bool {
        self.interval.contains(v) && self.congruence.contains(v)
    }

    /// Abstract addition.
    pub fn add(&self, other: &AbsInt) -> AbsInt {
        AbsInt {
            interval: self.interval.add(&other.interval),
            congruence: self.congruence.add(&other.congruence),
        }
    }

    /// Abstract negation.
    pub fn neg(&self) -> AbsInt {
        AbsInt {
            interval: self.interval.neg(),
            congruence: self.congruence.neg(),
        }
    }

    /// Join.
    pub fn join(&self, other: &AbsInt) -> AbsInt {
        AbsInt {
            interval: self.interval.join(&other.interval),
            congruence: self.congruence.join(&other.congruence),
        }
    }

    /// Widening (intervals widen; congruences have finite chains and join).
    pub fn widen(&self, newer: &AbsInt) -> AbsInt {
        AbsInt {
            interval: self.interval.widen(&newer.interval),
            congruence: self.congruence.join(&newer.congruence),
        }
    }

    /// Symbolic concretization: constraints satisfied by every member, over
    /// the output variable `out` (auxiliary congruence multiplier variables
    /// are named from `aux_name`).
    pub fn to_formula(&self, out: &Var, aux_name: &str) -> Formula {
        let mut conjuncts = Vec::new();
        let o = LinearExpr::var(out.clone());
        if let Some(lo) = self.interval.lo {
            conjuncts.push(Formula::ge(o.clone(), LinearExpr::constant(lo)));
        }
        if let Some(hi) = self.interval.hi {
            conjuncts.push(Formula::le(o.clone(), LinearExpr::constant(hi)));
        }
        if self.congruence.modulus == 0 {
            conjuncts.push(Formula::eq(o, LinearExpr::constant(self.congruence.rem)));
        } else if self.congruence.modulus > 1 {
            // o = rem + m·k for some integer k
            let k = Var::new(aux_name);
            let rhs = LinearExpr::var(k).scale(self.congruence.modulus as i64)
                + LinearExpr::constant(self.congruence.rem);
            conjuncts.push(Formula::eq(o, rhs));
        }
        Formula::and(conjuncts)
    }
}

/// A three-valued abstract Boolean.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AbsBool {
    /// Definitely true.
    True,
    /// Definitely false.
    False,
    /// Unknown (may be either).
    Top,
}

impl AbsBool {
    /// Abstraction of a concrete Boolean.
    pub fn of(b: bool) -> Self {
        if b {
            AbsBool::True
        } else {
            AbsBool::False
        }
    }

    /// Join.
    pub fn join(&self, other: &AbsBool) -> AbsBool {
        if self == other {
            *self
        } else {
            AbsBool::Top
        }
    }

    /// Three-valued negation.
    pub fn not(&self) -> AbsBool {
        match self {
            AbsBool::True => AbsBool::False,
            AbsBool::False => AbsBool::True,
            AbsBool::Top => AbsBool::Top,
        }
    }

    /// Three-valued conjunction.
    pub fn and(&self, other: &AbsBool) -> AbsBool {
        match (self, other) {
            (AbsBool::False, _) | (_, AbsBool::False) => AbsBool::False,
            (AbsBool::True, AbsBool::True) => AbsBool::True,
            _ => AbsBool::Top,
        }
    }

    /// Three-valued disjunction.
    pub fn or(&self, other: &AbsBool) -> AbsBool {
        match (self, other) {
            (AbsBool::True, _) | (_, AbsBool::True) => AbsBool::True,
            (AbsBool::False, AbsBool::False) => AbsBool::False,
            _ => AbsBool::Top,
        }
    }

    /// Abstract comparison of two [`AbsInt`]s.
    pub fn less_than(a: &AbsInt, b: &AbsInt) -> AbsBool {
        match (a.interval.hi, b.interval.lo) {
            (Some(ah), Some(bl)) if ah < bl => return AbsBool::True,
            _ => {}
        }
        match (a.interval.lo, b.interval.hi) {
            (Some(al), Some(bh)) if al >= bh => return AbsBool::False,
            _ => {}
        }
        AbsBool::Top
    }
}

/// The abstract value of a nonterminal: one component per input example,
/// or `Bottom` for a nonterminal that derives no terms yet.
#[derive(Clone, PartialEq, Debug)]
pub enum AbsValue {
    /// No derivable term (the least element).
    Bottom,
    /// An integer-sorted abstraction, one [`AbsInt`] per example.
    Int(Vec<AbsInt>),
    /// A Boolean-sorted abstraction, one [`AbsBool`] per example.
    Bool(Vec<AbsBool>),
}

impl AbsValue {
    /// Join of two abstract values.
    ///
    /// # Panics
    /// Panics when joining an integer value with a Boolean value.
    pub fn join(&self, other: &AbsValue) -> AbsValue {
        match (self, other) {
            (AbsValue::Bottom, v) | (v, AbsValue::Bottom) => v.clone(),
            (AbsValue::Int(a), AbsValue::Int(b)) => {
                AbsValue::Int(a.iter().zip(b).map(|(x, y)| x.join(y)).collect())
            }
            (AbsValue::Bool(a), AbsValue::Bool(b)) => {
                AbsValue::Bool(a.iter().zip(b).map(|(x, y)| x.join(y)).collect())
            }
            _ => panic!("cannot join values of different sorts"),
        }
    }

    /// Widening of two abstract values (old, new).
    pub fn widen(&self, newer: &AbsValue) -> AbsValue {
        match (self, newer) {
            (AbsValue::Bottom, v) | (v, AbsValue::Bottom) => v.clone(),
            (AbsValue::Int(a), AbsValue::Int(b)) => {
                AbsValue::Int(a.iter().zip(b).map(|(x, y)| x.widen(y)).collect())
            }
            (AbsValue::Bool(a), AbsValue::Bool(b)) => {
                AbsValue::Bool(a.iter().zip(b).map(|(x, y)| x.join(y)).collect())
            }
            _ => panic!("cannot widen values of different sorts"),
        }
    }

    /// `true` if this is the bottom element.
    pub fn is_bottom(&self) -> bool {
        matches!(self, AbsValue::Bottom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_operations() {
        let a = Interval::constant(3);
        let b = Interval {
            lo: Some(0),
            hi: None,
        };
        assert!(a.add(&a).contains(6));
        assert_eq!(a.neg(), Interval::constant(-3));
        let j = a.join(&Interval::constant(10));
        assert!(j.contains(3) && j.contains(10) && j.contains(7));
        assert!(!j.contains(11));
        assert!(b.contains(1_000_000));
        assert!(!b.contains(-1));
    }

    #[test]
    fn interval_widening_goes_to_infinity() {
        let old = Interval {
            lo: Some(0),
            hi: Some(3),
        };
        let new = Interval {
            lo: Some(0),
            hi: Some(6),
        };
        let w = old.widen(&new);
        assert_eq!(w.lo, Some(0));
        assert_eq!(w.hi, None);
    }

    #[test]
    fn congruence_operations() {
        let three = Congruence::constant(3);
        let six = Congruence::constant(6);
        // join of the constants 3 and 6 is 0 (mod 3)
        let j = three.join(&six);
        assert_eq!(j.modulus, 3);
        assert!(j.contains(0) && j.contains(9));
        assert!(!j.contains(4));
        // adding two multiples-of-3 stays a multiple of 3
        let sum = j.add(&j);
        assert_eq!(sum.modulus, 3);
        assert!(sum.contains(6));
        assert!(!sum.contains(7));
        assert!(Congruence::top().contains(-17));
    }

    #[test]
    fn absint_tracks_both_components() {
        // {0, 3, 6, …}: interval [0, ∞) and ≡ 0 (mod 3)
        let zero = AbsInt::constant(0);
        let three = AbsInt::constant(3);
        let mut acc = zero;
        for _ in 0..3 {
            acc = acc.join(&acc.add(&three));
        }
        let widened = zero.widen(&acc);
        assert!(widened.contains(0));
        assert!(widened.contains(300));
        assert!(!widened.contains(4), "4 is not ≡ 0 mod 3");
        assert!(!widened.contains(-3), "interval keeps the lower bound 0");
    }

    #[test]
    fn absint_formula_round_trip() {
        use logic::{Model, Solver};
        let a = AbsInt {
            interval: Interval {
                lo: Some(0),
                hi: None,
            },
            congruence: Congruence { modulus: 3, rem: 0 },
        };
        let out = Var::new("o");
        let f = a.to_formula(&out, "k");
        // 6 is a member, 4 is not, -3 is not
        let solver = Solver::default();
        let check = |v: i64| {
            let pinned = Formula::and(vec![
                f.clone(),
                Formula::eq(LinearExpr::var(out.clone()), LinearExpr::constant(v)),
            ]);
            solver.check(&pinned).is_sat()
        };
        assert!(check(6));
        assert!(!check(4));
        assert!(!check(-3));
        // direct model evaluation also works for members
        let mut m = Model::new();
        m.set(out.clone(), 6);
        m.set(Var::new("k"), 2);
        assert!(f.eval(&m));
    }

    #[test]
    fn absbool_lattice() {
        assert_eq!(AbsBool::True.join(&AbsBool::True), AbsBool::True);
        assert_eq!(AbsBool::True.join(&AbsBool::False), AbsBool::Top);
        assert_eq!(AbsBool::Top.not(), AbsBool::Top);
        assert_eq!(AbsBool::True.and(&AbsBool::Top), AbsBool::Top);
        assert_eq!(AbsBool::False.and(&AbsBool::Top), AbsBool::False);
        assert_eq!(AbsBool::True.or(&AbsBool::Top), AbsBool::True);
    }

    #[test]
    fn abstract_less_than() {
        let small = AbsInt {
            interval: Interval {
                lo: Some(0),
                hi: Some(1),
            },
            congruence: Congruence::top(),
        };
        let big = AbsInt {
            interval: Interval {
                lo: Some(5),
                hi: Some(9),
            },
            congruence: Congruence::top(),
        };
        assert_eq!(AbsBool::less_than(&small, &big), AbsBool::True);
        assert_eq!(AbsBool::less_than(&big, &small), AbsBool::False);
        assert_eq!(AbsBool::less_than(&small, &small), AbsBool::Top);
    }

    #[test]
    fn value_join_and_bottom() {
        let a = AbsValue::Int(vec![AbsInt::constant(1)]);
        let b = AbsValue::Int(vec![AbsInt::constant(5)]);
        let j = a.join(&b);
        match &j {
            AbsValue::Int(v) => {
                assert!(v[0].contains(1) && v[0].contains(5));
                assert!(!v[0].contains(2), "congruence 1 mod 4 excludes 2");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(AbsValue::Bottom.join(&a), a);
        assert!(AbsValue::Bottom.is_bottom());
    }
}
