//! Quickstart: prove the Section-2 LIA problem unrealizable.
//!
//! The grammar G₁ only generates terms equivalent to `3k·x`, while the
//! specification asks for `f(x) = 2x + 2`. With the single input example
//! `x = 1` the set of producible outputs is `{0, 3, 6, …}`, which never
//! contains the required output 4 — so the whole SyGuS problem is
//! unrealizable (Lemma 3.5 of the paper).
//!
//! Run with `cargo run --example quickstart`.

use nay::check::{check_unrealizable, Verdict};
use nay::{CegisOutcome, Mode, Nay};
use sygus::{parser, ExampleSet};

fn main() {
    let source = r#"
        ; Section 2 of the paper, grammar G1: Start ::= Plus(3x, Start) | 0
        (set-logic LIA)
        (synth-fun f ((x Int)) Int
          ((Start Int) (S1 Int) (S2 Int) (S3 Int))
          ((Start Int ((+ S1 Start) 0))
           (S1 Int ((+ S2 S3)))
           (S2 Int ((+ S3 S3)))
           (S3 Int (x))))
        (declare-var x Int)
        (constraint (= (f x) (+ (* 2 x) 2)))
        (check-synth)
    "#;
    let problem = parser::parse_problem(source, "section2-lia").expect("well-formed SyGuS input");
    println!("problem:\n{problem}");

    // One-shot check on a fixed example set (Algorithm 1).
    let examples = ExampleSet::for_single_var("x", [1]);
    let outcome = check_unrealizable(&problem, &examples, &Mode::default());
    println!(
        "Alg. 1 on E = {examples}: {:?}  (abstraction size {}, {:?})",
        outcome.verdict, outcome.abstraction_size, outcome.elapsed
    );
    assert_eq!(outcome.verdict, Verdict::Unrealizable);

    // Full CEGIS loop (Algorithm 2) starting from a random example.
    let (cegis_outcome, stats) = Nay::new().run(&problem);
    println!(
        "Alg. 2 (CEGIS): {:?} after {} iteration(s), {} example(s), {} GFA check(s), {:?}",
        cegis_outcome,
        stats.cegis_iterations,
        stats.num_examples,
        stats.gfa_checks,
        stats.total_time
    );
    assert_eq!(cegis_outcome, CegisOutcome::Unrealizable);
    println!("the SyGuS problem is unrealizable ✔");
}
