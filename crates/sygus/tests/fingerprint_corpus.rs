//! Collision sanity for [`sygus::Problem::fingerprint`] over the real
//! on-disk corpus: every checked-in `.sl` instance must fingerprint
//! distinctly (they are all semantically different problems), and the
//! fingerprint must be invariant under a print → parse round trip.

use std::collections::BTreeMap;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../corpus")
}

fn corpus_problems() -> Vec<(String, sygus::Problem)> {
    let dir = corpus_dir();
    assert!(
        dir.is_dir(),
        "corpus directory missing at {}",
        dir.display()
    );
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("readable corpus directory")
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "sl"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "corpus has no .sl files");
    files
        .into_iter()
        .map(|path| {
            let name = path.file_stem().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&path).expect("readable .sl file");
            let problem =
                sygus::parser::parse_problem(&text, &name).expect("corpus instance parses");
            (name, problem)
        })
        .collect()
}

#[test]
fn corpus_fingerprints_are_pairwise_distinct() {
    let mut seen: BTreeMap<u64, String> = BTreeMap::new();
    for (name, problem) in corpus_problems() {
        if let Some(clash) = seen.insert(problem.fingerprint(), name.clone()) {
            panic!("fingerprint collision between corpus instances `{clash}` and `{name}`");
        }
    }
    assert!(seen.len() >= 18, "expected the full corpus, got {seen:?}");
}

/// The committed fingerprint of every corpus instance, pinned at the
/// hash-consing refactor (PR 5) and verified byte-identical to the
/// pre-refactor values. Any change to the printer, the parser's
/// normalizations, or the hash itself shows up here as an explicit diff —
/// update the table only when such a change is intentional (and re-pin
/// with `reproduce solve corpus/` still green).
const PINNED_FINGERPRINTS: &[(&str, u64)] = &[
    ("array_search_2", 0xd9094cc5f442fee4),
    ("const_large", 0xb8f79c7b8bc26dc5),
    ("deep_plus", 0x815313f49b42da5b),
    ("gap_guard", 0x2a4f5ee972b876f5),
    ("gen_const_sum_00001", 0x7dc5b2df0e1ed916),
    ("gen_const_sum_00006", 0xf4dbdde504db396c),
    ("gen_guarded_const_00002", 0xad80d92aaa2371dd),
    ("gen_guarded_const_00016", 0xf05021643944e3c3),
    ("gen_max_gap_00004", 0x7b83e624c2f76500),
    ("gen_max_gap_00009", 0x40be24139408aa30),
    ("gen_pbe_points_00003", 0x8ff4f3db4d6f8b5a),
    ("gen_pbe_points_00008", 0x4435f1dfa0e25ff3),
    ("gen_plus_mod_00000", 0x4029db311a17c054),
    ("gen_plus_mod_00005", 0xa73e8acd7ecf8991),
    ("if_guard1", 0xc6989879337cd40b),
    ("if_max2", 0x1d5e1d13c70c15c9),
    ("ite_nested2", 0xae51e4460b59fe25),
    ("mpg_example1", 0xb2360eed0cebfb64),
    ("mpg_guard1", 0x1634841c477af7ec),
    ("mpg_guard4", 0xe042533869faaf07),
    ("mpg_ite1", 0x1eeff746baf22aa4),
    ("mpg_plane2", 0xe09e3b8157665e00),
    ("plus_example2", 0xeaccba30de95575d),
    ("plus_plane1", 0xf18257777c3ae268),
    ("realizable_max2", 0x67829b5ebe943c4e),
    ("realizable_xplus2", 0x866d5168f123ad54),
    ("section2_g1", 0x4d238261dfd0b567),
    ("unreal_parity", 0xcfcfd0f4b9167e06),
];

#[test]
fn corpus_fingerprints_are_byte_stable_across_refactors() {
    let pinned: BTreeMap<&str, u64> = PINNED_FINGERPRINTS.iter().copied().collect();
    for (name, problem) in corpus_problems() {
        let Some(&expected) = pinned.get(name.as_str()) else {
            panic!("corpus instance `{name}` has no pinned fingerprint — add it to the table");
        };
        assert_eq!(
            problem.fingerprint(),
            expected,
            "fingerprint of `{name}` drifted from the pinned value"
        );
    }
}

#[test]
fn corpus_fingerprints_survive_a_print_parse_round_trip() {
    for (name, problem) in corpus_problems() {
        let printed = sygus::parser::problem_to_sygus(&problem, "f");
        let reparsed =
            sygus::parser::parse_problem(&printed, &name).expect("printed corpus instance parses");
        assert_eq!(
            problem.fingerprint(),
            reparsed.fingerprint(),
            "fingerprint of `{name}` changed across print → parse"
        );
    }
}
