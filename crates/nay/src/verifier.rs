//! The candidate verifier of the CEGIS loop (Alg. 2, line 6).
//!
//! The paper uses CVC4 to check whether a candidate returned by the
//! enumerative synthesizer satisfies the specification on *all* inputs, and
//! to produce a counterexample input when it does not. Here the same query —
//! `∃ x̄. ¬ψ(⟦e⟧(x̄), x̄)` — is encoded by `sygus::encode` and discharged by
//! the `logic` solver.

use logic::{Solver, SolverResult};
use sygus::encode::counterexample_query;
use sygus::{Example, Spec, Term};

/// The result of verifying a candidate against the full specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verification {
    /// The candidate satisfies the specification on every input.
    Valid,
    /// The candidate violates the specification on the returned input.
    CounterExample(Example),
    /// The verifier could not decide (solver budget exceeded).
    Unknown,
}

/// Checks a candidate term against the specification over all inputs.
pub fn verify(candidate: &Term, spec: &Spec) -> Verification {
    let query = counterexample_query(candidate, spec);
    match Solver::default().check(&query) {
        SolverResult::Unsat => Verification::Valid,
        SolverResult::Sat(model) => {
            let example = spec.example_from_model(&model);
            Verification::CounterExample(example)
        }
        SolverResult::Unknown => Verification::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logic::{Formula, LinearExpr, Var};
    use sygus::{Sort, Symbol};

    fn spec_2x_plus_2() -> Spec {
        Spec::output_equals(
            LinearExpr::var(Var::new("x")).scale(2) + LinearExpr::constant(2),
            vec!["x".to_string()],
        )
    }

    #[test]
    fn valid_candidate() {
        let candidate = Term::apply(
            Symbol::Plus,
            vec![Term::var("x"), Term::var("x"), Term::num(2)],
        )
        .unwrap();
        assert_eq!(verify(&candidate, &spec_2x_plus_2()), Verification::Valid);
    }

    #[test]
    fn invalid_candidate_produces_a_true_counterexample() {
        // 3x is correct only on x = 2 for the spec 2x + 2... actually 3x = 2x+2
        // iff x = 2, so any other input is a counterexample.
        let candidate = Term::apply(
            Symbol::Plus,
            vec![Term::var("x"), Term::var("x"), Term::var("x")],
        )
        .unwrap();
        match verify(&candidate, &spec_2x_plus_2()) {
            Verification::CounterExample(cex) => {
                let out = candidate.eval(&cex).unwrap();
                assert!(!spec_2x_plus_2().holds_value(&cex, out));
                assert_ne!(cex.get("x"), Some(2));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn conditional_candidate() {
        // spec: f(x) ≥ x and f(x) ≥ 0
        let spec = Spec::new(
            Formula::and(vec![
                Formula::ge(
                    LinearExpr::var(Spec::output_var()),
                    LinearExpr::var(Var::new("x")),
                ),
                Formula::ge(LinearExpr::var(Spec::output_var()), LinearExpr::constant(0)),
            ]),
            vec!["x".to_string()],
            Sort::Int,
        );
        // ite(x < 0, 0, x) is exactly max(x, 0): valid
        let good = Term::ite(
            Term::less_than(Term::var("x"), Term::num(0)),
            Term::num(0),
            Term::var("x"),
        )
        .unwrap();
        assert_eq!(verify(&good, &spec), Verification::Valid);
        // the identity is not valid (fails for negative x)
        match verify(&Term::var("x"), &spec) {
            Verification::CounterExample(cex) => assert!(cex.get("x").unwrap() < 0),
            other => panic!("unexpected {other:?}"),
        }
    }
}
