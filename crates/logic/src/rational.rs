//! Exact rational arithmetic over `i128`, used by the simplex implementation.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// An exact rational number `num / den` with `den > 0`, always kept in lowest
/// terms.
///
/// The numerator and denominator are `i128`; all operations normalize the
/// result. This is sufficient for the linear programs produced by the
/// unrealizability checker, whose coefficients stay small.
///
/// # Example
/// ```
/// use logic::Rational;
/// let a = Rational::new(1, 3);
/// let b = Rational::new(1, 6);
/// assert_eq!(a + b, Rational::new(1, 2));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// The rational number zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational number one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates a new rational `num / den`.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "rational denominator must be non-zero");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den).max(1);
        Rational {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// Creates an integer-valued rational.
    pub fn from_int(v: i64) -> Self {
        Rational {
            num: v as i128,
            den: 1,
        }
    }

    /// The numerator (in lowest terms, sign carried here).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// The denominator (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// Returns `true` when the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Returns `true` when the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Returns `true` when the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// Returns `true` when the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// The floor of the rational, as an `i128`.
    pub fn floor(&self) -> i128 {
        if self.num >= 0 {
            self.num / self.den
        } else {
            -((-self.num + self.den - 1) / self.den)
        }
    }

    /// The ceiling of the rational, as an `i128`.
    pub fn ceil(&self) -> i128 {
        -((-*self).floor())
    }

    /// The multiplicative inverse.
    ///
    /// # Panics
    /// Panics when the value is zero.
    pub fn recip(&self) -> Rational {
        Rational::new(self.den, self.num)
    }

    /// Converts to `f64` (used only for display/diagnostics).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational::from_int(v)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.den - rhs.num * self.den, self.den * rhs.den)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.num, self.den * rhs.den)
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        assert!(!rhs.is_zero(), "division by zero rational");
        Rational::new(self.num * rhs.den, self.den * rhs.num)
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, 5), Rational::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Rational::new(1, 3);
        let b = Rational::new(1, 6);
        assert_eq!(a + b, Rational::new(1, 2));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 18));
        assert_eq!(a / b, Rational::from_int(2));
        assert_eq!(-a, Rational::new(-1, 3));
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(Rational::new(7, 2).floor(), 3);
        assert_eq!(Rational::new(7, 2).ceil(), 4);
        assert_eq!(Rational::new(-7, 2).floor(), -4);
        assert_eq!(Rational::new(-7, 2).ceil(), -3);
        assert_eq!(Rational::from_int(5).floor(), 5);
        assert_eq!(Rational::from_int(5).ceil(), 5);
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::ZERO);
        assert!(Rational::from_int(3) > Rational::new(5, 2));
    }

    #[test]
    fn integer_check() {
        assert!(Rational::new(4, 2).is_integer());
        assert!(!Rational::new(3, 2).is_integer());
    }
}
