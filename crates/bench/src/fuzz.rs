//! The `reproduce gen` / `reproduce fuzz` front-ends: corpus-scale
//! workload production and the differential fuzzing sweep.
//!
//! `run_gen` materializes a deterministic generated corpus on disk;
//! `run_fuzz` runs a sharded, constant-memory fuzz campaign: the draw
//! index space `0..count` is split into [`FuzzConfig::shards`] contiguous
//! ranges, each worker thread claims shards round-robin, **constructs its
//! instances locally** from per-instance seeds
//! ([`GenConfig::instance_at`] — no generator thread, no corpus on disk,
//! no queue of pending problems), solves them one at a time, and folds
//! every result into a per-shard single-pass accumulator (per-(family,
//! tool) counts, verdict tallies, latency histograms, peak arena size)
//! that is merged once, in shard order, at the end. At no point does more
//! than one instance per worker exist in memory, so the campaign's
//! footprint is flat from count 10³ to 10⁶⁺ — the 1BRC discipline,
//! end to end.
//!
//! The merged aggregate lands in the same schema-versioned [`Report`] the
//! rest of the harness speaks, now carrying a first-class
//! [`runner::Throughput`] block (instances/sec per family and total) that
//! `reproduce compare` gates on. Every instance is also pushed through
//! the three soundness oracles of [`gen::oracle`] plus the print→parse
//! round-trip gate; any violation fails the sweep loudly with the
//! reproducing seed and the offending `.sl` text.

use gen::{
    check_instance, roundtrip_violation, Claim, EngineClaim, Family, GenConfig, ProblemStream,
    ShardStream, Violation,
};
use portfolio::{solve_nay, solve_nope, Cancel, NopeEngine, Portfolio, SolveVerdict};
use runner::{DeadlineTimer, Entry, JobStatus, Report, Throughput};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Which engines a fuzz sweep drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FuzzEngine {
    /// Both engines, independently to completion (the strongest
    /// differential signal: neither engine is cancelled).
    Both,
    /// The portfolio race (first definitive verdict wins; the loser's
    /// claim is opportunistic — `cancelled` maps to no claim).
    Race,
    /// Only the exact engine.
    Nay,
    /// Only the approximate engine.
    Nope,
    /// No engine at all: generation plus the print→parse round-trip gate.
    /// The cheapest sweep that still validates the workload — used to
    /// calibrate raw generator throughput and by the constant-memory
    /// regression test.
    Check,
}

impl FuzzEngine {
    /// The CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            FuzzEngine::Both => "both",
            FuzzEngine::Race => "race",
            FuzzEngine::Nay => "nay",
            FuzzEngine::Nope => "nope",
            FuzzEngine::Check => "check",
        }
    }

    /// Inverse of [`FuzzEngine::name`].
    pub fn parse(s: &str) -> Option<FuzzEngine> {
        match s {
            "both" => Some(FuzzEngine::Both),
            "race" => Some(FuzzEngine::Race),
            "nay" => Some(FuzzEngine::Nay),
            "nope" => Some(FuzzEngine::Nope),
            "check" => Some(FuzzEngine::Check),
            _ => None,
        }
    }
}

/// Configuration of a `gen` or `fuzz` run.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// How many instances to generate (draw indices `0..count`).
    pub count: usize,
    /// The base seed; fixes the whole workload byte-for-byte.
    pub seed: u64,
    /// Which engines to drive (`fuzz` only).
    pub engine: FuzzEngine,
    /// Worker threads attacking the campaign (`fuzz` only).
    pub jobs: usize,
    /// Per-engine wall-clock budget.
    pub timeout: Duration,
    /// Restrict generation to these families (`None` = the full
    /// catalogue).
    pub families: Option<Vec<Family>>,
    /// Whether the portfolio's static presolve stage runs in front of
    /// each race (`fuzz` with `race` only; default: enabled).
    pub presolve: bool,
    /// How many contiguous index-space shards to split `0..count` into;
    /// `0` picks one shard per worker. Sharding never changes *what* is
    /// computed (instance `i` is a pure function of `(seed, i)`), only how
    /// the work is distributed — the merged aggregate is byte-identical
    /// to a serial run for any (shards, jobs) split.
    pub shards: usize,
}

/// The default per-engine budget of a fuzz sweep. Deliberately much
/// tighter than [`crate::DEFAULT_SOLVE_TIMEOUT`]: fuzzing is a throughput
/// tool, a handful of adversarial instances (the generator *does* produce
/// CLIA instances whose exact-engine cost explodes with the example
/// count) must cost seconds, not minutes, and a timeout is just an
/// `unknown` claim — never an oracle violation.
pub const DEFAULT_FUZZ_TIMEOUT: Duration = Duration::from_secs(10);

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            count: 200,
            seed: 7,
            engine: FuzzEngine::Both,
            jobs: 1,
            timeout: DEFAULT_FUZZ_TIMEOUT,
            families: None,
            presolve: true,
            shards: 0,
        }
    }
}

impl FuzzConfig {
    fn gen_config(&self) -> GenConfig {
        let config = GenConfig::new(self.seed);
        match &self.families {
            Some(families) => config.with_families(families.clone()),
            None => config,
        }
    }
}

/// Writes `count` generated instances into `dir` (see
/// [`gen::write_corpus`]) and returns the per-family emission counts.
///
/// # Errors
/// Propagates I/O errors.
pub fn run_gen(dir: &Path, config: &FuzzConfig) -> Result<BTreeMap<&'static str, usize>, String> {
    let instances = gen::write_corpus(dir, config.count, config.gen_config())?;
    let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    for instance in &instances {
        *counts.entry(instance.family.name()).or_insert(0) += 1;
    }
    Ok(counts)
}

// The campaign's latency histogram is the workspace-wide
// [`obs::LatencyHist`]: log₂ µs buckets whose merge is a plain `u64` add
// per bucket (commutative and exact, unlike merging f64 sums), with
// quantiles reported as upper bucket edges — within 2× of the true value,
// plenty for a p50/p99 trend line across nightly campaign artifacts.
use obs::LatencyHist;

/// The 1BRC-style accumulator: one per (family, tool), folded as results
/// stream off the workers, merged across shards at the end. Every field
/// merges commutatively (sums, maxes, per-bucket adds), so the merged
/// aggregate is independent of how the index space was sharded.
#[derive(Clone, Debug, Default)]
struct FamilyAgg {
    instances: u64,
    verdicts: BTreeMap<String, u64>,
    worst_status: Option<JobStatus>,
    iterations: u64,
    millis: f64,
    tainted: bool,
    peak_arena: usize,
    hist: LatencyHist,
}

impl FamilyAgg {
    fn fold(
        &mut self,
        status: JobStatus,
        verdict: &str,
        iterations: u64,
        millis: f64,
        tainted: bool,
        arena_terms: usize,
    ) {
        self.instances += 1;
        *self.verdicts.entry(verdict.to_string()).or_insert(0) += 1;
        self.worst_status = Some(self.worst_status.map_or(status, |w| w.worst(status)));
        self.iterations += iterations;
        self.millis += millis;
        self.tainted |= tainted;
        self.peak_arena = self.peak_arena.max(arena_terms);
        self.hist.record_millis(millis);
    }

    /// Folds another accumulator (one shard's worth) into this one.
    fn merge(&mut self, other: &FamilyAgg) {
        self.instances += other.instances;
        for (verdict, n) in &other.verdicts {
            *self.verdicts.entry(verdict.clone()).or_insert(0) += n;
        }
        self.worst_status = match (self.worst_status, other.worst_status) {
            (Some(a), Some(b)) => Some(a.worst(b)),
            (a, b) => a.or(b),
        };
        self.iterations += other.iterations;
        self.millis += other.millis;
        self.tainted |= other.tainted;
        self.peak_arena = self.peak_arena.max(other.peak_arena);
        self.hist.merge(&other.hist);
    }

    /// The verdict-distribution string, e.g.
    /// `realizable=12;unknown=3;unrealizable=85` (sorted by verdict name).
    /// Deterministic for a fixed seed only while every job stays within
    /// the wall-clock budget: timed-out and crashed jobs land in buckets
    /// named after their status, which depends on the machine's speed —
    /// so fuzz reports from different machines are not byte-comparable.
    fn verdict_distribution(&self) -> String {
        self.verdicts
            .iter()
            .map(|(v, n)| format!("{v}={n}"))
            .collect::<Vec<_>>()
            .join(";")
    }

    fn entry(&self, family: &str, tool: &str) -> Entry {
        let definitive: u64 = self
            .verdicts
            .iter()
            .filter(|(v, _)| v.as_str() == "unrealizable" || v.as_str() == "realizable")
            .map(|(_, n)| n)
            .sum();
        Entry {
            benchmark: format!("gen/{family}"),
            tool: tool.to_string(),
            status: self.worst_status.unwrap_or(JobStatus::Ok),
            verdict: self.verdict_distribution(),
            // For an aggregate row, "proved" means fully classified: every
            // instance of the family got a definitive verdict.
            proved: definitive == self.instances,
            iterations: self.iterations,
            millis: self.millis,
            tainted: self.tainted,
            family: family.to_string(),
        }
    }
}

/// One row of the human-readable fuzz table.
#[derive(Clone, Debug)]
pub struct FuzzRow {
    /// Family name.
    pub family: &'static str,
    /// Tool (engine) name.
    pub tool: String,
    /// Instances attacked.
    pub instances: u64,
    /// Verdict distribution string.
    pub verdicts: String,
    /// Total engine milliseconds.
    pub millis: f64,
    /// Largest per-instance term-arena size seen for this (family, tool).
    pub peak_arena: usize,
    /// Median per-instance latency (bucketed; see the histogram docs).
    pub p50_millis: f64,
    /// 99th-percentile per-instance latency (bucketed).
    pub p99_millis: f64,
}

/// Memory high-water marks of a sweep, tracked live by the workers. The
/// constant-memory claim in numbers: `peak_live_instances` is bounded by
/// the worker count, never by `--count`.
#[derive(Clone, Copy, Debug, Default)]
pub struct FuzzMemStats {
    /// Most generated instances alive simultaneously across all workers.
    pub peak_live_instances: usize,
}

/// Cap on the violations retained in [`FuzzOutcome::violations`]. A
/// campaign with a systematically broken oracle would otherwise
/// accumulate a million full `.sl` reproductions in memory —
/// `violations_total` keeps the true count while the list keeps the first
/// few dozen reproducible reports, which is what a human (or the nightly
/// failure artifact) actually reads.
pub const MAX_KEPT_VIOLATIONS: usize = 64;

/// What a fuzz sweep produced: the aggregate report, the human-readable
/// rows, and every oracle violation found.
#[derive(Clone, Debug)]
pub struct FuzzOutcome {
    /// Per-(family, tool) aggregate report (suite `fuzz-<engine>`),
    /// carrying the sweep's [`Throughput`] block.
    pub report: Report,
    /// The table rows, in report order.
    pub rows: Vec<FuzzRow>,
    /// The first [`MAX_KEPT_VIOLATIONS`] violations, in draw-index order;
    /// an empty list is a clean sweep ([`FuzzOutcome::violations_total`]
    /// holds the uncapped count).
    pub violations: Vec<Violation>,
    /// Total violations found, including any beyond the retention cap.
    pub violations_total: usize,
    /// Total instances generated and attacked (always the requested
    /// count: the sharded sweep draws `0..count` with no deduplication).
    pub instances: usize,
    /// Wall-clock milliseconds of the whole sweep (generation, solving
    /// and oracle checks).
    pub wall_millis: f64,
    /// Memory high-water marks observed during the sweep.
    pub mem: FuzzMemStats,
}

fn claim_of(verdict: SolveVerdict) -> Claim {
    match verdict {
        SolveVerdict::Unrealizable => Claim::Unrealizable,
        SolveVerdict::Realizable => Claim::Realizable,
        SolveVerdict::Unknown | SolveVerdict::Cancelled => Claim::Unknown,
    }
}

/// One shard's single-pass result: everything a worker accumulates while
/// walking its index range, and nothing per-instance. Merging shard
/// results in shard order reproduces the serial sweep exactly.
#[derive(Default)]
struct ShardResult {
    aggs: BTreeMap<(&'static str, String), FamilyAgg>,
    violations: Vec<Violation>,
    violations_total: usize,
    attacked: usize,
    family_counts: BTreeMap<&'static str, u64>,
}

impl ShardResult {
    fn push_violation(&mut self, violation: Violation) {
        self.violations_total += 1;
        if self.violations.len() < MAX_KEPT_VIOLATIONS {
            self.violations.push(violation);
        }
    }
}

/// Live gauge of how many generated instances exist at once — the "queue"
/// high-water mark of the constant-memory claim (there is no queue; the
/// gauge proves it stays at ≤ 1 instance per worker).
#[derive(Default)]
struct MemGauge {
    live: AtomicUsize,
    peak: AtomicUsize,
}

impl MemGauge {
    fn enter(&self) {
        let live = self.live.fetch_add(1, Ordering::SeqCst) + 1;
        self.peak.fetch_max(live, Ordering::SeqCst);
    }

    fn exit(&self) {
        self.live.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Attacks every instance of one shard, streaming: construct from the
/// per-instance seed, round-trip-gate, solve, judge, fold, drop.
fn run_shard(
    config: &FuzzConfig,
    gen_config: &GenConfig,
    start: u64,
    end: u64,
    timer: &DeadlineTimer,
    mem: &MemGauge,
    observer: &(impl Fn(u64, &str, &str) + Sync),
) -> ShardResult {
    let mut shard = ShardResult::default();
    // Engine state is per shard: the race portfolio is a small config
    // struct, and solo engines take a reusable cancel token armed per
    // instance by the shared deadline timer.
    let portfolio = Portfolio::new()
        .with_timeout(config.timeout)
        .with_presolve(config.presolve);
    for instance in ShardStream::new(gen_config.clone(), start, end) {
        mem.enter();
        let family = instance.family.name();
        shard.attacked += 1;
        *shard.family_counts.entry(family).or_insert(0) += 1;

        // Round-trip gate: generated text must parse back to identical
        // content before we spend engine time on it.
        if let Some(violation) = roundtrip_violation(&instance) {
            shard.push_violation(violation);
        }

        match config.engine {
            FuzzEngine::Check => {
                observer(instance.index, "check", instance.expected.name());
                shard
                    .aggs
                    .entry((family, "check".into()))
                    .or_default()
                    .fold(JobStatus::Ok, instance.expected.name(), 0, 0.0, false, 0);
            }
            FuzzEngine::Race => {
                let race = portfolio.race(&instance.problem);
                let mut claims = vec![
                    EngineClaim::new(
                        "race/nay",
                        if race.nay.status == JobStatus::Ok {
                            claim_of(race.nay.verdict)
                        } else {
                            Claim::Unknown
                        },
                        (race.nay.verdict == SolveVerdict::Realizable)
                            .then(|| race.solution.clone())
                            .flatten(),
                    ),
                    EngineClaim::new(
                        "race/nope",
                        if race.nope.status == JobStatus::Ok {
                            claim_of(race.nope.verdict)
                        } else {
                            Claim::Unknown
                        },
                        None,
                    ),
                ];
                if let Some(stage) = &race.presolve {
                    // The presolve's claim goes through the same
                    // by-construction oracle as the engines': a
                    // statically-settled verdict that contradicts the
                    // generator's ground truth is a violation.
                    claims.push(EngineClaim::new(
                        "race/presolve",
                        claim_of(stage.verdict),
                        (stage.verdict == SolveVerdict::Realizable)
                            .then(|| race.solution.clone())
                            .flatten(),
                    ));
                }
                for violation in check_instance(&instance, &claims) {
                    shard.push_violation(violation);
                }
                let race_status = race.nay.status.worst(race.nope.status);
                observer(instance.index, "race", race.verdict.name());
                shard.aggs.entry((family, "race".into())).or_default().fold(
                    race_status,
                    race.verdict.name(),
                    race.nay.iterations + race.nope.iterations,
                    race.wall_millis,
                    race.nay.tainted || race.nope.tainted,
                    race.nay.arena_terms.max(race.nope.arena_terms),
                );
                for side in [&race.nay, &race.nope] {
                    observer(
                        instance.index,
                        &format!("race/{}", side.engine),
                        side.verdict.name(),
                    );
                    shard
                        .aggs
                        .entry((family, format!("race/{}", side.engine)))
                        .or_default()
                        .fold(
                            side.status,
                            side.verdict.name(),
                            side.iterations,
                            side.millis,
                            side.tainted,
                            side.arena_terms,
                        );
                }
                if let Some(stage) = &race.presolve {
                    // The `race/presolve` aggregate's verdict
                    // distribution is the per-family `presolved`
                    // count: its definitive buckets are exactly the
                    // instances the analyzer settled statically.
                    observer(instance.index, "race/presolve", stage.verdict.name());
                    shard
                        .aggs
                        .entry((family, "race/presolve".into()))
                        .or_default()
                        .fold(
                            JobStatus::Ok,
                            stage.verdict.name(),
                            0,
                            stage.millis,
                            false,
                            0,
                        );
                }
            }
            FuzzEngine::Both | FuzzEngine::Nay | FuzzEngine::Nope => {
                let tools: &[&str] = match config.engine {
                    FuzzEngine::Both => &["nay", "nope"],
                    FuzzEngine::Nay => &["nay"],
                    _ => &["nope"],
                };
                let mut claims = Vec::new();
                for &tool in tools {
                    // Purely cooperative timeout: the shared timer trips a
                    // fresh token at the deadline and the engine exits at
                    // its next iteration poll — unlike the batch pool of
                    // old, no thread is ever abandoned, so no measurement
                    // is ever tainted and CPU is never burned past the
                    // budget.
                    let cancel = Cancel::new();
                    let guard = timer.register(&cancel, config.timeout);
                    let solve_started = Instant::now();
                    let outcome =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match tool {
                            "nay" => solve_nay(&instance.problem, &cancel, &nay::Nay::default()),
                            _ => solve_nope(&instance.problem, &cancel, &NopeEngine::default()),
                        }));
                    let millis = solve_started.elapsed().as_secs_f64() * 1000.0;
                    drop(guard);
                    let (status, claim, verdict_name, iterations, arena_terms, witness) =
                        match &outcome {
                            Ok(outcome) if outcome.verdict != SolveVerdict::Cancelled => (
                                JobStatus::Ok,
                                claim_of(outcome.verdict),
                                outcome.verdict.name(),
                                outcome.iterations,
                                outcome.arena_terms,
                                outcome.solution.clone(),
                            ),
                            // A cancelled verdict means the deadline tripped
                            // the token mid-search: a timeout, which claims
                            // nothing and lands in its own verdict bucket.
                            Ok(_) => (JobStatus::TimedOut, Claim::Unknown, "timed_out", 0, 0, None),
                            Err(_) => (JobStatus::Crashed, Claim::Unknown, "crashed", 0, 0, None),
                        };
                    claims.push(EngineClaim::new(tool, claim, witness));
                    observer(instance.index, tool, verdict_name);
                    shard
                        .aggs
                        .entry((family, tool.to_string()))
                        .or_default()
                        .fold(status, verdict_name, iterations, millis, false, arena_terms);
                }
                for violation in check_instance(&instance, &claims) {
                    shard.push_violation(violation);
                }
            }
        }
        mem.exit();
    }
    shard
}

/// Runs the differential fuzzing sweep. See the module docs; this is the
/// engine behind `reproduce fuzz`.
pub fn run_fuzz(config: &FuzzConfig) -> FuzzOutcome {
    run_fuzz_observed(config, |_, _, _| {})
}

/// [`run_fuzz`] with a per-result hook: `observer(draw_index, tool,
/// verdict)` fires for every (instance, tool) result, from worker
/// threads. Test instrumentation (the determinism-under-sharding proptest
/// compares per-instance verdict sets across shardings); not part of the
/// stable API.
#[doc(hidden)]
pub fn run_fuzz_observed(
    config: &FuzzConfig,
    observer: impl Fn(u64, &str, &str) + Sync,
) -> FuzzOutcome {
    let sweep_started = Instant::now();
    let gen_config = config.gen_config();
    let workers = config.jobs.max(1);
    let shards = match config.shards {
        0 => workers,
        n => n,
    };
    let chunk = (config.count as u64).div_ceil(shards as u64).max(1);
    let bounds = |shard: usize| {
        let start = (shard as u64 * chunk).min(config.count as u64);
        let end = ((shard as u64 + 1) * chunk).min(config.count as u64);
        (start, end)
    };

    let timer = DeadlineTimer::new();
    let mem = MemGauge::default();
    // One slot per shard, filled by whichever worker claims the shard
    // (worker w takes shards w, w+W, w+2W, …) and merged *in shard order*
    // afterwards, so the merged result is independent of the claim
    // schedule — including f64 time sums, which are order-sensitive.
    let mut slots: Vec<Option<ShardResult>> = Vec::with_capacity(shards);
    slots.resize_with(shards, || None);
    if workers == 1 {
        for (shard, slot) in slots.iter_mut().enumerate() {
            let (start, end) = bounds(shard);
            *slot = Some(run_shard(
                config,
                &gen_config,
                start,
                end,
                &timer,
                &mem,
                &observer,
            ));
        }
    } else {
        let observer = &observer;
        let (timer, mem, gen_config) = (&timer, &mem, &gen_config);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|worker| {
                    scope.spawn(move || {
                        let mut mine: Vec<(usize, ShardResult)> = Vec::new();
                        let mut shard = worker;
                        while shard < shards {
                            let (start, end) = bounds(shard);
                            mine.push((
                                shard,
                                run_shard(config, gen_config, start, end, timer, mem, observer),
                            ));
                            shard += workers;
                        }
                        mine
                    })
                })
                .collect();
            for handle in handles {
                for (shard, result) in handle.join().expect("fuzz worker panicked") {
                    slots[shard] = Some(result);
                }
            }
        });
    }

    // Merge once, in shard order.
    let mut aggs: BTreeMap<(&'static str, String), FamilyAgg> = BTreeMap::new();
    let mut violations: Vec<Violation> = Vec::new();
    let mut violations_total = 0usize;
    let mut attacked = 0usize;
    let mut family_counts: BTreeMap<String, u64> = BTreeMap::new();
    for slot in slots {
        let shard = slot.expect("every shard ran");
        for (key, agg) in &shard.aggs {
            aggs.entry(key.clone()).or_default().merge(agg);
        }
        violations_total += shard.violations_total;
        for violation in shard.violations {
            if violations.len() < MAX_KEPT_VIOLATIONS {
                violations.push(violation);
            }
        }
        attacked += shard.attacked;
        for (family, n) in &shard.family_counts {
            *family_counts.entry((*family).to_string()).or_insert(0) += n;
        }
    }

    // The aggs map iterates in (family, tool) order, which matches the
    // report's canonical (benchmark, tool) order because every benchmark
    // name is `gen/<family>`.
    let entries: Vec<Entry> = aggs
        .iter()
        .map(|((family, tool), agg)| agg.entry(family, tool))
        .collect();
    let rows: Vec<FuzzRow> = aggs
        .iter()
        .map(|((family, tool), agg)| FuzzRow {
            family,
            tool: tool.clone(),
            instances: agg.instances,
            verdicts: agg.verdict_distribution(),
            millis: agg.millis,
            peak_arena: agg.peak_arena,
            p50_millis: agg.hist.quantile_millis(0.50),
            p99_millis: agg.hist.quantile_millis(0.99),
        })
        .collect();
    let wall_millis = sweep_started.elapsed().as_secs_f64() * 1000.0;
    let throughput = Throughput::from_counts(wall_millis, workers, shards, &family_counts);
    let report =
        Report::new(format!("fuzz-{}", config.engine.name()), entries).with_throughput(throughput);
    FuzzOutcome {
        report,
        rows,
        violations,
        violations_total,
        instances: attacked,
        wall_millis,
        mem: FuzzMemStats {
            peak_live_instances: mem.peak.load(Ordering::SeqCst),
        },
    }
}

/// What the presolve differential sweep found.
#[derive(Clone, Debug)]
pub struct PresolveDiffOutcome {
    /// Verdict flips: instances where racing with the presolve enabled
    /// produced a different race verdict than racing without it. Any entry
    /// here is a soundness bug in the presolve (or an engine); the sweep
    /// must fail.
    pub flips: Vec<String>,
    /// Per family: instances the presolve settled statically.
    pub presolved: BTreeMap<&'static str, u64>,
    /// Per family: instances attacked.
    pub instances: BTreeMap<&'static str, u64>,
    /// Aggregate report (suite `presolve-diff`): per family one
    /// `race+presolve` and one `race-presolve` entry with the two verdict
    /// distributions, plus a `presolve` entry whose `iterations` field is
    /// the family's `presolved` count.
    pub report: Report,
    /// Wall-clock milliseconds of the whole sweep.
    pub wall_millis: f64,
}

/// Runs every generated instance through the portfolio twice — presolve
/// enabled and disabled — and diffs the race verdicts. The presolve is
/// verdict-preserving by construction (sound verdicts, recheck gate), so
/// any flip is a bug; this sweep is the empirical check of that guarantee,
/// and the engine behind `reproduce presolve-diff` and the CI `analyze`
/// job.
pub fn run_presolve_diff(config: &FuzzConfig) -> PresolveDiffOutcome {
    let sweep_started = Instant::now();
    let mut flips: Vec<String> = Vec::new();
    let mut presolved: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut instances: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut aggs: BTreeMap<(&'static str, &'static str), FamilyAgg> = BTreeMap::new();
    let with_presolve = Portfolio::new()
        .with_timeout(config.timeout)
        .with_presolve(true);
    let without_presolve = Portfolio::new()
        .with_timeout(config.timeout)
        .with_presolve(false);

    let mut stream = ProblemStream::new(config.gen_config());
    for instance in stream.by_ref().take(config.count) {
        let family = instance.family.name();
        *instances.entry(family).or_insert(0) += 1;
        let on = with_presolve.race(&instance.problem);
        let off = without_presolve.race(&instance.problem);
        // A sound presolve may *add* a definitive verdict where the
        // engines said unknown (that is its whole point on hard
        // instances), but it may never contradict a definitive engine
        // verdict — that is the flip this sweep hunts.
        let contradiction = on.verdict != off.verdict
            && on.verdict != SolveVerdict::Unknown
            && off.verdict != SolveVerdict::Unknown;
        let engines_lost_verdict =
            on.verdict == SolveVerdict::Unknown && off.verdict != SolveVerdict::Unknown;
        if contradiction || engines_lost_verdict {
            flips.push(format!(
                "{}: race verdict `{}` with presolve vs `{}` without (seed {})",
                instance.name(),
                on.verdict.name(),
                off.verdict.name(),
                instance.seed,
            ));
        }
        if on.winner == Some("presolve") {
            *presolved.entry(family).or_insert(0) += 1;
        }
        aggs.entry((family, "race+presolve")).or_default().fold(
            on.nay.status.worst(on.nope.status),
            on.verdict.name(),
            on.nay.iterations + on.nope.iterations,
            on.wall_millis,
            on.nay.tainted || on.nope.tainted,
            on.nay.arena_terms.max(on.nope.arena_terms),
        );
        aggs.entry((family, "race-presolve")).or_default().fold(
            off.nay.status.worst(off.nope.status),
            off.verdict.name(),
            off.nay.iterations + off.nope.iterations,
            off.wall_millis,
            off.nay.tainted || off.nope.tainted,
            off.nay.arena_terms.max(off.nope.arena_terms),
        );
    }

    let mut entries: Vec<Entry> = aggs
        .iter()
        .map(|((family, tool), agg)| agg.entry(family, tool))
        .collect();
    for (family, n) in &instances {
        entries.push(Entry {
            benchmark: format!("gen/{family}"),
            tool: "presolve".into(),
            status: JobStatus::Ok,
            verdict: format!("presolved={}", presolved.get(family).copied().unwrap_or(0)),
            proved: presolved.get(family).copied().unwrap_or(0) > 0,
            iterations: presolved.get(family).copied().unwrap_or(0),
            millis: 0.0,
            tainted: false,
            family: family.to_string(),
        });
        debug_assert!(*n > 0);
    }
    entries.sort_by(|a, b| (&a.benchmark, &a.tool).cmp(&(&b.benchmark, &b.tool)));
    PresolveDiffOutcome {
        flips,
        presolved,
        instances,
        report: Report::new("presolve-diff", entries),
        wall_millis: sweep_started.elapsed().as_secs_f64() * 1000.0,
    }
}

/// Renders the presolve differential summary.
pub fn render_presolve_diff(outcome: &PresolveDiffOutcome, config: &FuzzConfig) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# presolve-diff — count: {}, seed: {}",
        config.count, config.seed
    );
    let _ = writeln!(
        out,
        "{:<16} {:>6} {:>10}  verdicts with presolve | without",
        "family", "n", "presolved"
    );
    for (family, n) in &outcome.instances {
        let dist = |tool: &str| {
            outcome
                .report
                .entries
                .iter()
                .find(|e| e.family == *family && e.tool == tool)
                .map(|e| e.verdict.clone())
                .unwrap_or_default()
        };
        let _ = writeln!(
            out,
            "{:<16} {:>6} {:>10}  {} | {}",
            family,
            n,
            outcome.presolved.get(family).copied().unwrap_or(0),
            dist("race+presolve"),
            dist("race-presolve"),
        );
    }
    let total_presolved: u64 = outcome.presolved.values().sum();
    let total: u64 = outcome.instances.values().sum();
    let _ = writeln!(
        out,
        "{total} instance(s), {total_presolved} presolved, {} verdict flip(s); wall-clock {:.1} ms",
        outcome.flips.len(),
        outcome.wall_millis
    );
    out
}

/// Renders the human-readable fuzz table, ending with a summary line
/// carrying the sweep's total wall clock and the peak term-arena size per
/// family (maximum across that family's tools).
pub fn render_fuzz(outcome: &FuzzOutcome, config: &FuzzConfig) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# fuzz — engine: {}, count: {}, seed: {}",
        config.engine.name(),
        config.count,
        config.seed
    );
    let _ = writeln!(
        out,
        "{:<16} {:<10} {:>6} {:>12} {:>9} {:>9} {:>11}  verdicts",
        "family", "tool", "n", "millis", "p50-ms", "p99-ms", "peak-arena"
    );
    for row in &outcome.rows {
        let _ = writeln!(
            out,
            "{:<16} {:<10} {:>6} {:>12.1} {:>9.3} {:>9.3} {:>11}  {}",
            row.family,
            row.tool,
            row.instances,
            row.millis,
            row.p50_millis,
            row.p99_millis,
            row.peak_arena,
            row.verdicts
        );
    }
    let mut family_peaks: BTreeMap<&str, usize> = BTreeMap::new();
    for row in &outcome.rows {
        let peak = family_peaks.entry(row.family).or_insert(0);
        *peak = (*peak).max(row.peak_arena);
    }
    let peaks = family_peaks
        .iter()
        .map(|(family, peak)| format!("{family}={peak}"))
        .collect::<Vec<_>>()
        .join(" ");
    let _ = writeln!(
        out,
        "{} instance(s), {} oracle violation(s); wall-clock {:.1} ms; peak term-arena: {}",
        outcome.instances,
        outcome.violations_total,
        outcome.wall_millis,
        if peaks.is_empty() {
            "-".to_string()
        } else {
            peaks
        }
    );
    if let Some(throughput) = &outcome.report.throughput {
        let per_family = throughput
            .per_family
            .iter()
            .map(|(family, rate)| format!("{family}={rate:.0}/s"))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(
            out,
            "throughput: {:.0} instances/sec total ({} worker(s), {} shard(s), peak {} live instance(s)); {}",
            throughput.total_per_sec,
            throughput.workers,
            throughput.shards,
            outcome.mem.peak_live_instances,
            if per_family.is_empty() {
                "-".to_string()
            } else {
                per_family
            }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(engine: FuzzEngine) -> FuzzConfig {
        FuzzConfig {
            count: 12,
            seed: 7,
            engine,
            jobs: 1,
            timeout: Duration::from_secs(120),
            families: None,
            presolve: true,
            shards: 0,
        }
    }

    #[test]
    fn both_engine_sweep_is_clean_and_aggregates_per_family() {
        let config = quick_config(FuzzEngine::Both);
        let outcome = run_fuzz(&config);
        assert!(
            outcome.violations.is_empty(),
            "soundness violations: {:#?}",
            outcome.violations
        );
        // 12 instances round-robin over 5 families: every family appears,
        // with one entry per engine.
        let families = outcome.report.family_aggregates();
        assert_eq!(families.len(), Family::ALL.len());
        for entry in &outcome.report.entries {
            assert!(entry.benchmark.starts_with("gen/"));
            assert!(!entry.family.is_empty());
            assert!(entry.tool == "nay" || entry.tool == "nope");
        }
        let total_instances: u64 = outcome.rows.iter().map(|r| r.instances).sum();
        assert_eq!(total_instances, 12 * 2, "one row fold per engine run");
        // The sweep is deterministic: same config, same canonical report.
        let again = run_fuzz(&config);
        assert_eq!(
            again.report.canonicalized().to_json(),
            outcome.report.canonicalized().to_json()
        );
    }

    #[test]
    fn race_engine_sweep_is_clean() {
        let outcome = run_fuzz(&quick_config(FuzzEngine::Race));
        assert!(
            outcome.violations.is_empty(),
            "soundness violations: {:#?}",
            outcome.violations
        );
        let tools: std::collections::BTreeSet<&str> = outcome
            .report
            .entries
            .iter()
            .map(|e| e.tool.as_str())
            .collect();
        assert!(tools.contains("race"));
        assert!(tools.contains("race/nay"));
        assert!(tools.contains("race/nope"));
        assert!(tools.contains("race/presolve"));
    }

    #[test]
    fn presolve_diff_sweep_has_no_flips() {
        let config = quick_config(FuzzEngine::Race);
        let outcome = run_presolve_diff(&config);
        assert!(
            outcome.flips.is_empty(),
            "verdict flips: {:#?}",
            outcome.flips
        );
        assert_eq!(outcome.report.suite, "presolve-diff");
        let total: u64 = outcome.instances.values().sum();
        assert_eq!(total, config.count as u64);
        let rendered = render_presolve_diff(&outcome, &config);
        assert!(rendered.contains("presolved"));
        assert!(rendered.contains("0 verdict flip(s)"));
    }

    #[test]
    fn family_restriction_and_solo_engines_work() {
        let config = FuzzConfig {
            families: Some(vec![Family::ConstSum]),
            ..quick_config(FuzzEngine::Nope)
        };
        let outcome = run_fuzz(&config);
        assert!(outcome.violations.is_empty(), "{:#?}", outcome.violations);
        assert!(outcome
            .report
            .entries
            .iter()
            .all(|e| e.family == "const_sum" && e.tool == "nope"));
        let rendered = render_fuzz(&outcome, &config);
        assert!(rendered.contains("const_sum"));
        assert!(rendered.contains("0 oracle violation(s)"));
    }

    #[test]
    fn fuzz_engine_names_round_trip() {
        for engine in [
            FuzzEngine::Both,
            FuzzEngine::Race,
            FuzzEngine::Nay,
            FuzzEngine::Nope,
            FuzzEngine::Check,
        ] {
            assert_eq!(FuzzEngine::parse(engine.name()), Some(engine));
        }
        assert_eq!(FuzzEngine::parse("cvc5"), None);
    }

    #[test]
    fn sharded_runs_merge_to_the_serial_aggregate() {
        // The whole point of the sharded design: (shards, workers) is an
        // execution detail, not a semantic one. Canonicalized reports
        // (timings and throughput zeroed/dropped) must match exactly.
        let serial = run_fuzz(&quick_config(FuzzEngine::Nope));
        for (shards, jobs) in [(3, 1), (5, 2), (12, 4), (1, 3)] {
            let config = FuzzConfig {
                shards,
                jobs,
                ..quick_config(FuzzEngine::Nope)
            };
            let sharded = run_fuzz(&config);
            assert_eq!(
                sharded.report.canonicalized().to_json(),
                serial.report.canonicalized().to_json(),
                "shards={shards} jobs={jobs} diverged from serial"
            );
            assert_eq!(sharded.instances, serial.instances);
            assert_eq!(sharded.violations_total, serial.violations_total);
        }
    }

    #[test]
    fn check_engine_skips_solving_and_reports_ground_truth() {
        let outcome = run_fuzz(&quick_config(FuzzEngine::Check));
        assert!(outcome.violations.is_empty(), "{:#?}", outcome.violations);
        assert_eq!(outcome.instances, 12);
        for entry in &outcome.report.entries {
            assert_eq!(entry.tool, "check");
        }
        for row in &outcome.rows {
            assert!(
                row.verdicts.contains("realizable") || row.verdicts.contains("unrealizable"),
                "check rows bucket by expectation: {}",
                row.verdicts
            );
        }
    }

    #[test]
    fn peak_live_instances_is_bounded_by_workers() {
        let config = FuzzConfig {
            jobs: 2,
            shards: 4,
            ..quick_config(FuzzEngine::Check)
        };
        let outcome = run_fuzz(&config);
        assert!(outcome.mem.peak_live_instances >= 1);
        assert!(
            outcome.mem.peak_live_instances <= 2,
            "peak {} live instances with 2 workers: streaming is broken",
            outcome.mem.peak_live_instances
        );
    }

    #[test]
    fn fuzz_reports_carry_throughput() {
        let config = FuzzConfig {
            jobs: 2,
            shards: 3,
            ..quick_config(FuzzEngine::Check)
        };
        let outcome = run_fuzz(&config);
        let throughput = outcome.report.throughput.as_ref().expect("throughput set");
        assert_eq!(throughput.workers, 2);
        assert_eq!(throughput.shards, 3);
        assert_eq!(throughput.instances, 12);
        assert!(throughput.total_per_sec > 0.0);
        assert_eq!(throughput.per_family.len(), Family::ALL.len());
        let rendered = render_fuzz(&outcome, &config);
        assert!(rendered.contains("instances/sec"));
    }

    #[test]
    fn observer_sees_every_instance_exactly_once_per_tool() {
        use std::sync::Mutex;
        let seen: Mutex<Vec<(u64, String)>> = Mutex::new(Vec::new());
        let config = FuzzConfig {
            jobs: 3,
            shards: 5,
            ..quick_config(FuzzEngine::Both)
        };
        run_fuzz_observed(&config, |index, tool, _verdict| {
            seen.lock().unwrap().push((index, tool.to_string()));
        });
        let mut seen = seen.into_inner().unwrap();
        seen.sort();
        let expected: Vec<(u64, String)> = (0..12)
            .flat_map(|i| [(i, "nay".to_string()), (i, "nope".to_string())])
            .collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn latency_hist_quantiles_and_merge() {
        let mut a = LatencyHist::default();
        for _ in 0..99 {
            a.record_millis(1.0); // ~bucket of 1024 µs
        }
        let mut b = LatencyHist::default();
        b.record_millis(1000.0); // ~bucket of 2^20 µs
        a.merge(&b);
        assert_eq!(a.count(), 100);
        // p50 lands in the 1 ms bucket (upper edge ≤ 2.048 ms), p99+ in
        // the outlier's bucket.
        assert!(a.quantile_millis(0.50) <= 2.048 + 1e-9);
        assert!(a.quantile_millis(1.0) >= 1000.0);
        assert_eq!(LatencyHist::default().quantile_millis(0.5), 0.0);
    }
}

#[cfg(test)]
mod golden {
    use super::*;

    /// Pins the exact bytes of a canonical fuzz report. The check engine
    /// folds fully deterministic values (zero iterations, zero millis),
    /// so this catches any drift in report serialization or in the shared
    /// [`obs::LatencyHist`] math that backs the campaign percentiles —
    /// nightly trend lines depend on both staying put.
    #[test]
    fn check_engine_report_json_is_byte_identical_to_the_golden() {
        let config = FuzzConfig {
            count: 10,
            seed: 11,
            engine: FuzzEngine::Check,
            jobs: 1,
            timeout: Duration::from_secs(120),
            families: None,
            presolve: true,
            shards: 0,
        };
        let outcome = run_fuzz(&config);
        let golden = include_str!("../golden/fuzz_check_report.json");
        assert_eq!(
            outcome.report.canonicalized().to_json(),
            golden,
            "canonical fuzz JSON drifted from golden/fuzz_check_report.json"
        );
        // Zero-millis folds land in the lowest histogram bucket, whose
        // upper edge is 1 µs: the percentile columns are pinned too.
        for row in &outcome.rows {
            assert_eq!((row.p50_millis, row.p99_millis), (0.001, 0.001), "{row:?}");
        }
    }
}
