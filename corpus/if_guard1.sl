; if_guard1 — exported by `cargo run --example export_corpus`
(set-logic LIA)
(synth-fun f ((x Int) (y Int)) Int
  ((S0 Int (x y 0 1 (+ S0 S0)))))
(declare-var x Int)
(declare-var y Int)
(constraint (or (>= x 2) (= (f x y) (+ x 2))))
(constraint (or (< x 2) (= (f x y) y)))
(check-synth)
