//! A cooperative cancellation token, std-only atomics.
//!
//! [`Cancel`] is the contract between the portfolio racer and the solver
//! engines: the racer hands one token to every engine, the first engine to
//! reach a definitive verdict trips it, and every long-running loop in the
//! other engines polls [`Cancel::is_cancelled`] once per iteration and
//! returns early. Cloning is cheap (an `Arc` bump) and cancellation is
//! sticky: once tripped, a token stays tripped forever.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cloneable, sticky cancellation flag shared between threads.
///
/// # Example
/// ```
/// use runner::Cancel;
/// let cancel = Cancel::new();
/// let observer = cancel.clone();
/// assert!(!observer.is_cancelled());
/// cancel.cancel();
/// assert!(observer.is_cancelled());
/// ```
#[derive(Clone, Debug, Default)]
pub struct Cancel {
    flag: Arc<AtomicBool>,
}

impl Cancel {
    /// Creates a fresh, untripped token.
    pub fn new() -> Self {
        Cancel::default()
    }

    /// A token that can never be cancelled by anyone else — the null object
    /// handed to engines when no racer is watching.
    pub fn never() -> Self {
        Cancel::new()
    }

    /// Trips the token. Idempotent; every clone observes the trip.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// `true` once any clone of the token has been cancelled.
    ///
    /// Engine loops are expected to call this once per iteration; the load
    /// is a single acquire on an `AtomicBool`, cheap enough for tight loops.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_tokens_are_untripped() {
        assert!(!Cancel::new().is_cancelled());
        assert!(!Cancel::never().is_cancelled());
    }

    #[test]
    fn cancellation_is_sticky_and_shared() {
        let a = Cancel::new();
        let b = a.clone();
        b.cancel();
        assert!(a.is_cancelled());
        b.cancel(); // idempotent
        assert!(b.is_cancelled());
    }

    #[test]
    fn clones_after_cancel_observe_the_trip() {
        let a = Cancel::new();
        a.cancel();
        assert!(a.clone().is_cancelled());
    }

    #[test]
    fn tokens_cross_threads() {
        let cancel = Cancel::new();
        let remote = cancel.clone();
        let handle = std::thread::spawn(move || {
            remote.cancel();
        });
        handle.join().unwrap();
        assert!(cancel.is_cancelled());
    }
}
