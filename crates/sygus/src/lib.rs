//! SyGuS substrate: ranked alphabets, terms, regular tree grammars, the
//! example-vector semantics, specifications, and problem definitions.
//!
//! This crate provides everything the unrealizability checker (crate `nay`)
//! needs to *talk about* syntax-guided synthesis problems (§3 of the paper):
//!
//! * [`Symbol`], [`Term`] — ranked alphabet and trees over it,
//! * [`Grammar`], [`Production`], [`GrammarBuilder`] — regular tree grammars
//!   (Def. 3.1),
//! * [`Example`], [`ExampleSet`], [`Output`] — the restricted semantics
//!   `⟦·⟧_E` with respect to a finite set of input examples (Ex. 3.6, §6.1),
//! * [`Spec`], [`Problem`] — SyGuS problems `(ψ, G)` (Def. 3.2) and their
//!   example-restricted variants `sy_E` (Def. 3.4),
//! * [`TermArena`], [`TermId`], [`VarId`], [`Op`] — the hash-consing term
//!   arena the solver hot paths enumerate and evaluate on,
//! * [`rewrite::to_plus_form`] — the `h(G)` rewriting that removes `Minus`
//!   (§5.2),
//! * [`parser`] — a SyGuS-IF-style s-expression front end and printer,
//! * [`encode`] — encoding of a candidate term's semantics as a QF-LIA
//!   formula, used for verification/counterexample generation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
pub mod encode;
mod example;
mod grammar;
pub mod parser;
mod problem;
pub mod rewrite;
mod semantics;
mod spec;
mod term;

pub use arena::{Op, TermArena, TermId, VarId};
pub use example::{Example, ExampleSet, Output};
pub use grammar::{Grammar, GrammarBuilder, NonTerminal, Production};
pub use parser::{LineIndex, Sexp, SexpKind, Span};
pub use problem::Problem;
pub use semantics::Value;
pub use spec::Spec;
pub use term::{Sort, Symbol, Term};

/// A parse error carrying the source position of the offending token.
///
/// Lines and columns are 1-based; columns count bytes within the line (see
/// [`parser::LineIndex`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// What went wrong.
    pub msg: String,
}

impl ParseError {
    /// Creates a parse error at the given position.
    pub fn new(line: u32, col: u32, msg: impl Into<String>) -> Self {
        ParseError {
            line,
            col,
            msg: msg.into(),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.msg)
    }
}

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SygusError {
    /// A term or production is not well-sorted.
    SortError(String),
    /// A grammar refers to an undeclared nonterminal or is otherwise
    /// malformed.
    GrammarError(String),
    /// The SyGuS-IF input could not be parsed; carries the offending
    /// token's line and column.
    ParseError(ParseError),
    /// Evaluation failed (e.g. an input variable is missing from an example).
    EvalError(String),
}

impl std::fmt::Display for SygusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SygusError::SortError(msg) => write!(f, "sort error: {msg}"),
            SygusError::GrammarError(msg) => write!(f, "grammar error: {msg}"),
            SygusError::ParseError(e) => write!(f, "parse error at {e}"),
            SygusError::EvalError(msg) => write!(f, "evaluation error: {msg}"),
        }
    }
}

impl std::error::Error for SygusError {}
