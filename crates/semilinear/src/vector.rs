//! Integer vectors of a fixed dimension.

use std::fmt;
use std::ops::{Add, Index, Neg, Sub};

/// An integer vector, one component per input example.
///
/// # Example
/// ```
/// use semilinear::IntVec;
/// let a = IntVec::from(vec![1, 2]);
/// let b = IntVec::from(vec![3, 6]);
/// assert_eq!(a.clone() + b, IntVec::from(vec![4, 8]));
/// assert_eq!(a.dim(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct IntVec(Vec<i64>);

impl IntVec {
    /// Creates a vector from components.
    pub fn new(components: Vec<i64>) -> Self {
        IntVec(components)
    }

    /// The zero vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        IntVec(vec![0; dim])
    }

    /// A vector with every component equal to `c` (used for `Num(c)`).
    pub fn splat(c: i64, dim: usize) -> Self {
        IntVec(vec![c; dim])
    }

    /// The dimension (number of components).
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// The components as a slice.
    pub fn as_slice(&self) -> &[i64] {
        &self.0
    }

    /// `true` when all components are zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&c| c == 0)
    }

    /// Component-wise scaling by `k`.
    pub fn scale(&self, k: i64) -> IntVec {
        IntVec(self.0.iter().map(|c| c * k).collect())
    }

    /// Zeroes out every component `j` for which `mask[j]` is `false`
    /// (the `proj_ℤ` operation of §6.1).
    ///
    /// # Panics
    /// Panics if the mask length differs from the dimension.
    pub fn project(&self, mask: &[bool]) -> IntVec {
        assert_eq!(mask.len(), self.dim(), "projection mask dimension mismatch");
        IntVec(
            self.0
                .iter()
                .zip(mask)
                .map(|(&c, &keep)| if keep { c } else { 0 })
                .collect(),
        )
    }

    /// Component-wise less-than comparison, producing one Boolean per
    /// component (the concrete semantics of `LessThan`).
    pub fn less_than(&self, other: &IntVec) -> Vec<bool> {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.0.iter().zip(&other.0).map(|(a, b)| a < b).collect()
    }

    /// Iterates over components.
    pub fn iter(&self) -> impl Iterator<Item = i64> + '_ {
        self.0.iter().copied()
    }
}

impl From<Vec<i64>> for IntVec {
    fn from(v: Vec<i64>) -> Self {
        IntVec(v)
    }
}

impl From<IntVec> for Vec<i64> {
    fn from(v: IntVec) -> Self {
        v.0
    }
}

impl Index<usize> for IntVec {
    type Output = i64;
    fn index(&self, i: usize) -> &i64 {
        &self.0[i]
    }
}

impl Add for IntVec {
    type Output = IntVec;
    fn add(self, rhs: IntVec) -> IntVec {
        assert_eq!(self.dim(), rhs.dim(), "dimension mismatch");
        IntVec(self.0.iter().zip(&rhs.0).map(|(a, b)| a + b).collect())
    }
}

impl Add<&IntVec> for &IntVec {
    type Output = IntVec;
    fn add(self, rhs: &IntVec) -> IntVec {
        assert_eq!(self.dim(), rhs.dim(), "dimension mismatch");
        IntVec(self.0.iter().zip(&rhs.0).map(|(a, b)| a + b).collect())
    }
}

impl Sub for IntVec {
    type Output = IntVec;
    fn sub(self, rhs: IntVec) -> IntVec {
        assert_eq!(self.dim(), rhs.dim(), "dimension mismatch");
        IntVec(self.0.iter().zip(&rhs.0).map(|(a, b)| a - b).collect())
    }
}

impl Neg for IntVec {
    type Output = IntVec;
    fn neg(self) -> IntVec {
        IntVec(self.0.iter().map(|c| -c).collect())
    }
}

impl fmt::Debug for IntVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for IntVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

impl FromIterator<i64> for IntVec {
    fn from_iter<T: IntoIterator<Item = i64>>(iter: T) -> Self {
        IntVec(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(IntVec::zeros(3), IntVec::from(vec![0, 0, 0]));
        assert_eq!(IntVec::splat(7, 2), IntVec::from(vec![7, 7]));
        assert!(IntVec::zeros(2).is_zero());
        assert!(!IntVec::splat(1, 2).is_zero());
    }

    #[test]
    fn arithmetic() {
        let a = IntVec::from(vec![1, -2, 3]);
        let b = IntVec::from(vec![4, 5, -6]);
        assert_eq!(a.clone() + b.clone(), IntVec::from(vec![5, 3, -3]));
        assert_eq!(b.clone() - a.clone(), IntVec::from(vec![3, 7, -9]));
        assert_eq!(-a.clone(), IntVec::from(vec![-1, 2, -3]));
        assert_eq!(a.scale(2), IntVec::from(vec![2, -4, 6]));
    }

    #[test]
    fn projection() {
        let a = IntVec::from(vec![1, 2, 3]);
        assert_eq!(a.project(&[true, false, true]), IntVec::from(vec![1, 0, 3]));
        assert_eq!(a.project(&[false, false, false]), IntVec::zeros(3));
    }

    #[test]
    fn less_than_is_componentwise() {
        let a = IntVec::from(vec![1, 5]);
        let b = IntVec::from(vec![2, 5]);
        assert_eq!(a.less_than(&b), vec![true, false]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let _ = IntVec::from(vec![1]) + IntVec::from(vec![1, 2]);
    }
}
