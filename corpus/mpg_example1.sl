; mpg_example1 — exported by `cargo run --example export_corpus`
(set-logic CLIA)
(synth-fun f ((x Int) (y Int)) Int
  ((Start Int (x y 0 1 (ite Cond Start Start)))
  (Cond Bool ((< Start Start) (and Cond Cond)))))
(declare-var x Int)
(declare-var y Int)
(constraint (= (f x y) (+ x y -1)))
(check-synth)
