//! Regenerates the on-disk SyGuS-IF corpus under `corpus/`.
//!
//! The corpus is the file-based counterpart of the in-crate benchmark
//! tables: a selection of the `benchmarks` family instances exported
//! through `sygus::parser::problem_to_sygus`, plus hand-built variants
//! (larger constants, deeper grammars, extra `ite` nesting, and realizable
//! instances) that only exist on disk. Run it after changing the printer,
//! the benchmark generators, or the corpus selection:
//!
//! ```text
//! cargo run --release --example export_corpus
//! ```
//!
//! The expected verdicts live in `corpus/MANIFEST`, which is *not*
//! regenerated here: verify changed verdicts explicitly with
//! `reproduce solve corpus/ --engine <nay|nope|race>` and update the
//! MANIFEST by hand, so a verdict drift is a reviewed decision rather than
//! a silent overwrite.

use logic::{Formula, LinearExpr, Var};
use sygus::parser::problem_to_sygus;
use sygus::{GrammarBuilder, Problem, Sort, Spec, Symbol};

fn var(name: &str) -> LinearExpr {
    LinearExpr::var(Var::new(name))
}

fn out() -> LinearExpr {
    LinearExpr::var(Spec::output_var())
}

/// §2, grammar G1 with spec `f(x) = 2x + 2` (unrealizable).
fn section2_g1() -> Problem {
    let grammar = GrammarBuilder::new("Start")
        .nonterminal("Start", Sort::Int)
        .nonterminal("S1", Sort::Int)
        .nonterminal("S2", Sort::Int)
        .nonterminal("S3", Sort::Int)
        .production("Start", Symbol::Plus, &["S1", "Start"])
        .production("Start", Symbol::Num(0), &[])
        .production("S1", Symbol::Plus, &["S2", "S3"])
        .production("S2", Symbol::Plus, &["S3", "S3"])
        .production("S3", Symbol::Var("x".to_string()), &[])
        .build()
        .unwrap();
    let spec = Spec::output_equals(
        var("x").scale(2) + LinearExpr::constant(2),
        vec!["x".into()],
    );
    Problem::new("section2_g1", grammar, spec)
}

/// A deeper plus-limited chain: at most 6 leaves, so `f(x) = 7x` is out of
/// reach (unrealizable; exercises deep LIA grammars).
fn deep_plus() -> Problem {
    let mut builder = GrammarBuilder::new("S5");
    for b in 0..=5 {
        builder = builder.nonterminal(format!("S{b}"), Sort::Int);
    }
    builder = builder
        .production("S0", Symbol::Var("x".to_string()), &[])
        .production("S0", Symbol::Num(0), &[]);
    for b in 1..=5usize {
        let lhs = format!("S{b}");
        for i in 0..b {
            let j = b - 1 - i;
            builder = builder.production(&lhs, Symbol::Plus, &[&format!("S{i}"), &format!("S{j}")]);
        }
        builder = builder.chain(&lhs, &format!("S{}", b - 1));
    }
    let spec = Spec::output_equals(var("x").scale(7), vec!["x".into()]);
    Problem::new("deep_plus", builder.build().unwrap(), spec)
}

/// Constants restricted to {0, 1, 100}: `f(x) = x + 1000` needs a constant
/// the grammar cannot build without `+` (unrealizable; larger constants
/// than any in-crate table instance).
fn const_large() -> Problem {
    let grammar = GrammarBuilder::new("Start")
        .nonterminal("Start", Sort::Int)
        .nonterminal("Cond", Sort::Bool)
        .production("Start", Symbol::Var("x".to_string()), &[])
        .production("Start", Symbol::Num(0), &[])
        .production("Start", Symbol::Num(1), &[])
        .production("Start", Symbol::Num(100), &[])
        .production("Start", Symbol::IfThenElse, &["Cond", "Start", "Start"])
        .production("Cond", Symbol::LessThan, &["Start", "Start"])
        .production("Cond", Symbol::And, &["Cond", "Cond"])
        .build()
        .unwrap();
    let spec = Spec::output_equals(var("x") + LinearExpr::constant(1000), vec!["x".into()]);
    Problem::new("const_large", grammar, spec)
}

/// Two levels of `ite` nesting over two variables, but `max3` needs one
/// more conditional than the grammar grants (unrealizable; extra `ite`
/// nesting beyond the table instances).
fn ite_nested2() -> Problem {
    let mut builder = GrammarBuilder::new("S2");
    for b in 0..=2 {
        builder = builder.nonterminal(format!("S{b}"), Sort::Int);
        if b >= 1 {
            builder = builder.nonterminal(format!("B{b}"), Sort::Bool);
        }
    }
    for b in 0..=2usize {
        let lhs = format!("S{b}");
        for v in ["x1", "x2", "x3"] {
            builder = builder.production(&lhs, Symbol::Var(v.to_string()), &[]);
        }
        builder = builder.production(&lhs, Symbol::Num(0), &[]);
        if b >= 1 {
            let guard = format!("B{b}");
            let lower = format!("S{}", b - 1);
            builder = builder.production(&lhs, Symbol::IfThenElse, &[&guard, &lower, &lower]);
            builder = builder.production(&guard, Symbol::LessThan, &[&lower, &lower]);
        }
    }
    let names: Vec<String> = vec!["x1".into(), "x2".into(), "x3".into()];
    let mut conj: Vec<Formula> = names.iter().map(|x| Formula::ge(out(), var(x))).collect();
    conj.push(Formula::or(
        names.iter().map(|x| Formula::eq(out(), var(x))),
    ));
    // max over 4 "slots" cannot be asked with 3 vars; instead demand max3
    // *plus one*: f = max(x1,x2,x3) + 1 is outside the grammar (no Plus at
    // all), so even two ite levels cannot help.
    let conj = vec![Formula::and(conj)];
    let spec = Spec::new(
        Formula::and(conj).substitute(
            &Spec::output_var(),
            &(LinearExpr::var(Spec::output_var()) + LinearExpr::constant(1)),
        ),
        names,
        Sort::Int,
    );
    Problem::new("ite_nested2", builder.build().unwrap(), spec)
}

/// `Start ::= x | 1 | Start + Start` with `f(x) = x + 2`: realizable, and
/// only the CEGIS engine can prove it.
fn realizable_xplus2() -> Problem {
    let grammar = GrammarBuilder::new("Start")
        .nonterminal("Start", Sort::Int)
        .production("Start", Symbol::Var("x".to_string()), &[])
        .production("Start", Symbol::Num(1), &[])
        .production("Start", Symbol::Plus, &["Start", "Start"])
        .build()
        .unwrap();
    let spec = Spec::output_equals(var("x") + LinearExpr::constant(2), vec!["x".into()]);
    Problem::new("realizable_xplus2", grammar, spec)
}

/// The CLIA `max2` grammar with a full conditional budget: realizable via
/// `ite (< x y) y x`.
fn realizable_max2() -> Problem {
    let grammar = GrammarBuilder::new("Start")
        .nonterminal("Start", Sort::Int)
        .nonterminal("B", Sort::Bool)
        .production("Start", Symbol::Var("x".to_string()), &[])
        .production("Start", Symbol::Var("y".to_string()), &[])
        .production("Start", Symbol::Num(0), &[])
        .production("Start", Symbol::IfThenElse, &["B", "Start", "Start"])
        .production("B", Symbol::LessThan, &["Start", "Start"])
        .build()
        .unwrap();
    let names: Vec<String> = vec!["x".into(), "y".into()];
    let conj = vec![
        Formula::ge(out(), var("x")),
        Formula::ge(out(), var("y")),
        Formula::or(vec![
            Formula::eq(out(), var("x")),
            Formula::eq(out(), var("y")),
        ]),
    ];
    let spec = Spec::new(Formula::and(conj), names, Sort::Int);
    Problem::new("realizable_max2", grammar, spec)
}

/// A guarded target whose branches sit far outside anything the
/// constant-restricted grammar can produce: both engines refute it with a
/// single example, so it measures pure analysis cost (interval vs exact).
/// The instances whose races beat the slower engine's solo time by ≥2× on
/// multi-core hardware are `mpg_guard1`/`mpg_guard4`, where the exact
/// analysis needs ~10 ms that nope's sub-millisecond interval refutation
/// (plus the loser's one-iteration cancellation) makes redundant.
fn gap_guard() -> Problem {
    let grammar = GrammarBuilder::new("Start")
        .nonterminal("Start", Sort::Int)
        .nonterminal("Cond", Sort::Bool)
        .production("Start", Symbol::Var("x".to_string()), &[])
        .production("Start", Symbol::Var("y".to_string()), &[])
        .production("Start", Symbol::Num(0), &[])
        .production("Start", Symbol::Num(1), &[])
        .production("Start", Symbol::IfThenElse, &["Cond", "Start", "Start"])
        .production("Cond", Symbol::LessThan, &["Start", "Start"])
        .production("Cond", Symbol::And, &["Cond", "Cond"])
        .build()
        .unwrap();
    let below = Formula::lt(var("x"), LinearExpr::constant(0));
    let formula = Formula::and(vec![
        Formula::implies(
            below.clone(),
            Formula::eq(out(), var("x") + LinearExpr::constant(-200)),
        ),
        Formula::implies(
            Formula::not(below),
            Formula::eq(out(), var("y") + LinearExpr::constant(300)),
        ),
    ]);
    let spec = Spec::new(formula, vec!["x".into(), "y".into()], Sort::Int);
    Problem::new("gap_guard", grammar, spec)
}

/// A `Minus`-only grammar deriving even numbers with spec `f(x) = 3`:
/// unrealizable, and exercises the `h(G)` Minus-elimination path.
fn unreal_parity() -> Problem {
    let grammar = GrammarBuilder::new("Start")
        .nonterminal("Start", Sort::Int)
        .production("Start", Symbol::Minus, &["Start", "Start"])
        .production("Start", Symbol::Num(2), &[])
        .build()
        .unwrap();
    let spec = Spec::output_equals(LinearExpr::constant(3), vec!["x".into()]);
    Problem::new("unreal_parity", grammar, spec)
}

fn main() {
    let corpus_dir = std::path::Path::new("corpus");
    std::fs::create_dir_all(corpus_dir).expect("create corpus/");

    // The table instances exported as-is from the in-crate generators.
    let ported = [
        "plus_plane1",
        "plus_example2",
        "if_max2",
        "if_guard1",
        "array_search_2",
        "mpg_example1",
        "mpg_guard1",
        "mpg_guard4",
        "mpg_ite1",
        "mpg_plane2",
    ];
    let table: Vec<Problem> = benchmarks::all()
        .into_iter()
        .filter(|b| ported.contains(&b.name.as_str()))
        .map(|b| b.problem)
        .collect();
    assert_eq!(table.len(), ported.len(), "a ported benchmark went missing");

    let handmade = vec![
        section2_g1(),
        deep_plus(),
        const_large(),
        ite_nested2(),
        gap_guard(),
        realizable_xplus2(),
        realizable_max2(),
        unreal_parity(),
    ];

    let mut names = Vec::new();
    for problem in table.into_iter().chain(handmade) {
        let path = corpus_dir.join(format!("{}.sl", problem.name()));
        let text = format!(
            "; {} — exported by `cargo run --example export_corpus`\n{}",
            problem.name(),
            problem_to_sygus(&problem, "f")
        );
        // sanity: everything we write must parse back
        sygus::parser::parse_problem(&text, problem.name())
            .unwrap_or_else(|e| panic!("{} does not re-parse: {e:?}", problem.name()));
        std::fs::write(&path, text).expect("write corpus file");
        names.push(problem.name().to_string());
    }
    println!("wrote {} corpus files: {}", names.len(), names.join(", "));
    println!("remember: corpus/MANIFEST is maintained by hand (see its header)");
}
