//! Structural analyses of a parsed [`Grammar`]: reachability,
//! productivity, emptiness, useless productions, and finite-language
//! detection with exact enumeration when the language is small.
//!
//! Built grammars contain only normal-form productions `A ::= σ(B₁ … Bₙ)`
//! (chain rules are resolved at build time), so finiteness of `L(G)` is
//! plain cycle detection on the *useful* part of the nonterminal reference
//! graph: the language is finite iff no useful nonterminal can reach
//! itself.

use std::collections::{BTreeMap, BTreeSet};
use sygus::{Grammar, NonTerminal, Term};

/// Cap on the number of enumerated terms when the language is finite.
/// Beyond this the report still says "finite" but the term list is marked
/// truncated (and the presolve will not draw conclusions from it).
pub const ENUM_CAP: usize = 256;

/// An exactly-enumerated finite language.
#[derive(Debug, Clone)]
pub struct FiniteLanguage {
    /// The terms of `L(G)`, smallest first; exhaustive iff `complete`.
    pub terms: Vec<Term>,
    /// `false` when enumeration stopped at [`ENUM_CAP`].
    pub complete: bool,
}

/// What the structural analyses found.
#[derive(Debug, Clone)]
pub struct GrammarReport {
    /// Number of declared nonterminals.
    pub num_nonterminals: usize,
    /// Number of productions.
    pub num_productions: usize,
    /// Nonterminals not reachable from the start symbol, sorted.
    pub unreachable: Vec<String>,
    /// Nonterminals that derive no finite tree, sorted.
    pub unproductive: Vec<String>,
    /// Productions that can never occur in a complete derivation from the
    /// start symbol (the ones [`Grammar::trim`] deletes), rendered as
    /// `A ::= (σ B₁ … Bₙ)`.
    pub useless_productions: Vec<String>,
    /// `true` when `L(G)` is empty (the start symbol is unproductive).
    pub empty_language: bool,
    /// `Some` when `L(G)` is finite; carries the enumeration.
    pub finite: Option<FiniteLanguage>,
}

impl GrammarReport {
    /// `true` when the grammar has no unreachable/unproductive parts.
    pub fn is_trim(&self) -> bool {
        self.unreachable.is_empty() && self.unproductive.is_empty()
    }
}

/// Runs every structural analysis on a grammar.
pub fn analyze_grammar(grammar: &Grammar) -> GrammarReport {
    let reachable = grammar.reachable();
    let productive = grammar.productive();
    let empty_language = !productive.contains(grammar.start());

    let unreachable: Vec<String> = grammar
        .nonterminals()
        .iter()
        .filter(|nt| !reachable.contains(nt))
        .map(|nt| nt.name().to_string())
        .collect();
    let unproductive: Vec<String> = grammar
        .nonterminals()
        .iter()
        .filter(|nt| !productive.contains(nt))
        .map(|nt| nt.name().to_string())
        .collect();

    // Useful = reachable ∩ productive, matching Grammar::trim's criterion
    // (modulo trim's always-keep-the-start special case, which exists only
    // to keep the grammar well-formed).
    let useful: BTreeSet<&NonTerminal> = reachable.intersection(&productive).collect();
    let useless_productions: Vec<String> = grammar
        .productions()
        .iter()
        .filter(|p| !useful.contains(&p.lhs) || p.args.iter().any(|a| !useful.contains(a)))
        .map(|p| {
            if p.args.is_empty() {
                format!("{} ::= {}", p.lhs.name(), p.symbol.sygus_name())
            } else {
                format!(
                    "{} ::= ({} {})",
                    p.lhs.name(),
                    p.symbol.sygus_name(),
                    p.args
                        .iter()
                        .map(|a| a.name().to_string())
                        .collect::<Vec<_>>()
                        .join(" ")
                )
            }
        })
        .collect();

    let finite = detect_finite(grammar, &useful).map(|order| enumerate(grammar, &useful, &order));

    GrammarReport {
        num_nonterminals: grammar.num_nonterminals(),
        num_productions: grammar.num_productions(),
        unreachable,
        unproductive,
        useless_productions,
        empty_language,
        finite,
    }
}

/// Returns a topological order of the useful nonterminals reachable from
/// the start when the useful reference graph is acyclic (⇔ `L(G)` finite),
/// `None` when a cycle makes the language infinite. An empty language is
/// trivially finite (empty order).
fn detect_finite(grammar: &Grammar, useful: &BTreeSet<&NonTerminal>) -> Option<Vec<NonTerminal>> {
    if !useful.contains(grammar.start()) {
        return Some(Vec::new());
    }
    // Iterative three-color DFS from the start over useful productions;
    // post-order reversal is not needed — we collect children-first, which
    // is exactly the evaluation order enumeration wants.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color: BTreeMap<&NonTerminal, Color> =
        useful.iter().map(|nt| (*nt, Color::White)).collect();
    let mut order: Vec<NonTerminal> = Vec::new();
    fn successors<'g>(
        grammar: &'g Grammar,
        useful: &BTreeSet<&NonTerminal>,
        nt: &'g NonTerminal,
    ) -> Vec<&'g NonTerminal> {
        grammar
            .productions_of(nt)
            .filter(|p| p.args.iter().all(|a| useful.contains(a)))
            .flat_map(|p| p.args.iter())
            .collect()
    }
    let start = grammar.start();
    // stack of (node, successor list, next-successor index)
    let mut stack: Vec<(&NonTerminal, Vec<&NonTerminal>, usize)> =
        vec![(start, successors(grammar, useful, start), 0)];
    color.insert(start, Color::Gray);
    while let Some(frame) = stack.last_mut() {
        if frame.2 < frame.1.len() {
            let next = frame.1[frame.2];
            frame.2 += 1;
            match color.get(next).copied() {
                Some(Color::White) => {
                    color.insert(next, Color::Gray);
                    let s = successors(grammar, useful, next);
                    stack.push((next, s, 0));
                }
                Some(Color::Gray) => return None, // cycle ⇒ infinite
                _ => {}
            }
        } else {
            let node = frame.0;
            color.insert(node, Color::Black);
            order.push(node.clone());
            stack.pop();
        }
    }
    Some(order)
}

/// Enumerates the finite language in the given children-first order,
/// capped at [`ENUM_CAP`] terms per nonterminal.
fn enumerate(
    grammar: &Grammar,
    useful: &BTreeSet<&NonTerminal>,
    order: &[NonTerminal],
) -> FiniteLanguage {
    let mut terms: BTreeMap<&NonTerminal, Vec<Term>> = BTreeMap::new();
    let mut complete = true;
    for nt in order {
        let mut out: Vec<Term> = Vec::new();
        'prods: for p in grammar.productions_of(nt) {
            if !p.args.iter().all(|a| useful.contains(a)) {
                continue;
            }
            // cartesian product over the argument languages (children-first
            // order guarantees every argument set is already computed)
            let arg_terms: Vec<&[Term]> = p
                .args
                .iter()
                .map(|a| terms.get(a).map(Vec::as_slice).unwrap_or(&[]))
                .collect();
            if arg_terms.iter().any(|ts| ts.is_empty()) {
                continue; // an empty argument language yields no terms
            }
            let mut cursor = vec![0usize; arg_terms.len()];
            'product: loop {
                let children: Vec<Term> = cursor
                    .iter()
                    .zip(&arg_terms)
                    .map(|(&i, ts)| ts[i].clone())
                    .collect();
                if let Ok(t) = Term::apply(p.symbol.clone(), children) {
                    if !out.contains(&t) {
                        out.push(t);
                    }
                }
                if out.len() > ENUM_CAP {
                    complete = false;
                    out.truncate(ENUM_CAP);
                    break 'prods;
                }
                // odometer increment; a full wrap-around (or a nullary
                // symbol's empty cursor) ends the product
                let mut k = arg_terms.len();
                while k > 0 {
                    k -= 1;
                    cursor[k] += 1;
                    if cursor[k] < arg_terms[k].len() {
                        continue 'product;
                    }
                    cursor[k] = 0;
                }
                break;
            }
        }
        terms.insert(nt, out);
    }
    let mut language = terms.remove(grammar.start()).unwrap_or_default();
    language.sort_by_key(|t| (t.size(), t.to_string()));
    FiniteLanguage {
        terms: language,
        complete,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sygus::{GrammarBuilder, Sort, Symbol, Term};

    fn finite_grammar() -> Grammar {
        // Start ::= 1 | 2 | (+ A A); A ::= 0 | 3   — finite, 2 + 4 = 6 terms
        GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .nonterminal("A", Sort::Int)
            .production("Start", Symbol::Num(1), &[])
            .production("Start", Symbol::Num(2), &[])
            .production("Start", Symbol::Plus, &["A", "A"])
            .production("A", Symbol::Num(0), &[])
            .production("A", Symbol::Num(3), &[])
            .build()
            .expect("well-formed grammar")
    }

    #[test]
    fn finite_language_is_enumerated_exactly() {
        let report = analyze_grammar(&finite_grammar());
        assert!(!report.empty_language);
        assert!(report.is_trim());
        let finite = report.finite.expect("finite language");
        assert!(finite.complete);
        assert_eq!(finite.terms.len(), 6);
        assert!(finite.terms.contains(&Term::num(1)));
        assert!(finite
            .terms
            .contains(&Term::plus(Term::num(3), Term::num(0))));
    }

    #[test]
    fn recursive_grammar_is_infinite() {
        let g = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .production("Start", Symbol::Num(0), &[])
            .production("Start", Symbol::Plus, &["Start", "Start"])
            .build()
            .expect("well-formed grammar");
        let report = analyze_grammar(&g);
        assert!(report.finite.is_none());
        assert!(!report.empty_language);
    }

    #[test]
    fn unproductive_cycle_means_empty_language() {
        // Start ::= (+ Start Start) — no base case
        let g = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .production("Start", Symbol::Plus, &["Start", "Start"])
            .build()
            .expect("well-formed grammar");
        let report = analyze_grammar(&g);
        assert!(report.empty_language);
        assert_eq!(report.unproductive, vec!["Start".to_string()]);
        // the empty language is finite with zero terms
        let finite = report.finite.expect("empty language is finite");
        assert!(finite.complete);
        assert!(finite.terms.is_empty());
    }

    #[test]
    fn useless_parts_are_reported() {
        // B is unreachable; C is unproductive; both productions are useless
        let g = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .nonterminal("B", Sort::Int)
            .nonterminal("C", Sort::Int)
            .production("Start", Symbol::Num(1), &[])
            .production("Start", Symbol::Plus, &["C", "Start"])
            .production("B", Symbol::Num(2), &[])
            .production("C", Symbol::Plus, &["C", "C"])
            .build()
            .expect("well-formed grammar");
        let report = analyze_grammar(&g);
        assert_eq!(report.unreachable, vec!["B".to_string()]);
        assert_eq!(report.unproductive, vec!["C".to_string()]);
        assert_eq!(report.useless_productions.len(), 3);
        assert!(!report.empty_language);
        // the useful fragment is just Start ::= 1, hence finite
        let finite = report.finite.expect("finite after trimming");
        assert_eq!(finite.terms, vec![Term::num(1)]);
    }

    #[test]
    fn infinite_clia_grammar() {
        let g = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .nonterminal("B", Sort::Bool)
            .production("Start", Symbol::Var("x".into()), &[])
            .production("Start", Symbol::Num(0), &[])
            .production("Start", Symbol::IfThenElse, &["B", "Start", "Start"])
            .production("B", Symbol::LessThan, &["Start", "Start"])
            .build()
            .expect("well-formed grammar");
        let report = analyze_grammar(&g);
        assert!(report.finite.is_none());
        assert!(report.is_trim());
    }

    #[test]
    fn enumeration_caps_out_gracefully() {
        // 9 constants summed three levels deep: |L| = 9 + 9⁴ ≫ ENUM_CAP
        let mut b = GrammarBuilder::new("S0")
            .nonterminal("S0", Sort::Int)
            .nonterminal("S1", Sort::Int)
            .nonterminal("S2", Sort::Int);
        for c in 1..=9 {
            b = b
                .production("S0", Symbol::Num(c), &[])
                .production("S1", Symbol::Num(c), &[])
                .production("S2", Symbol::Num(c), &[]);
        }
        let g = b
            .production("S0", Symbol::Plus, &["S1", "S1"])
            .production("S1", Symbol::Plus, &["S2", "S2"])
            .build()
            .expect("well-formed grammar");
        let report = analyze_grammar(&g);
        let finite = report.finite.expect("still finite");
        assert!(!finite.complete);
        assert_eq!(finite.terms.len(), ENUM_CAP);
    }
}
