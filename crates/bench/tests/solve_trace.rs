//! Snapshot tests for `solve --trace` span trees over real corpus
//! instances. Wall-clock values vary run to run, so the snapshot pins the
//! [`obs::Trace::structure`] — span order, nesting, and phase names — which
//! must stay put for the waterfall (and anything parsing it) to be
//! trustworthy.

use std::path::PathBuf;

fn corpus_file(name: &str) -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../corpus")).join(name)
}

/// The full-race shape on a corpus instance, presolve stage disabled so
/// both engines always run: a race span nesting queue + run under each
/// engine. The loser's cancel span is winner-dependent, so it is filtered
/// before comparing.
#[test]
fn corpus_race_trace_structure_is_stable() {
    let files = [corpus_file("gen_const_sum_00001.sl")];
    let (rows, _, _) = bench::run_solve(&files, bench::Engine::Race, None, false, true)
        .expect("the corpus instance solves");
    let trace = rows[0].trace.as_ref().expect("tracing was requested");
    assert!(
        trace.trace_id.starts_with("t-"),
        "trace ids are prefixed: {}",
        trace.trace_id
    );
    let structure: Vec<(usize, String)> = trace
        .structure()
        .into_iter()
        .filter(|(_, phase)| phase != "cancel")
        .collect();
    let expected: Vec<(usize, String)> = [
        (0, "solve"),
        (1, "parse"),
        (1, "race"),
        (2, "nay"),
        (3, "queue"),
        (3, "run"),
        (2, "nope"),
        (3, "queue"),
        (3, "run"),
    ]
    .into_iter()
    .map(|(depth, phase)| (depth, phase.to_string()))
    .collect();
    assert_eq!(structure, expected);
}

/// With the presolve stage on, a statically-settled instance never reaches
/// the race: its trace is the minimal parse + presolve shape.
#[test]
fn presolve_settled_corpus_trace_skips_the_race() {
    // const_large: a constants-only grammar, settled by the analyzer.
    let files = [corpus_file("const_large.sl")];
    let (rows, _, _) = bench::run_solve(&files, bench::Engine::Race, None, true, true)
        .expect("the corpus instance solves");
    let trace = rows[0].trace.as_ref().expect("tracing was requested");
    if rows[0].winner == Some("presolve") {
        assert_eq!(
            trace.structure(),
            vec![
                (0, "solve".to_string()),
                (1, "parse".to_string()),
                (1, "presolve".to_string()),
            ]
        );
    } else {
        // Should the analyzer ever abstain here, the race shape applies;
        // the root spans must still lead parse-first.
        let structure = trace.structure();
        assert_eq!(structure[0], (0, "solve".to_string()));
        assert_eq!(structure[1], (1, "parse".to_string()));
    }
    // The waterfall renders every span on its own line under the header.
    let rendered = trace.render_waterfall();
    assert!(rendered.starts_with(&format!("trace {} (", trace.trace_id)));
    assert_eq!(rendered.lines().count(), 1 + trace.spans.len());
}

/// Untraced runs must not pay for tracing: no span tree on the row.
#[test]
fn untraced_solves_carry_no_trace() {
    let files = [corpus_file("gen_const_sum_00001.sl")];
    let (rows, _, _) = bench::run_solve(&files, bench::Engine::Race, None, true, false)
        .expect("the corpus instance solves");
    assert!(rows[0].trace.is_none());
}
