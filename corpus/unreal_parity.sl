; unreal_parity — exported by `cargo run --example export_corpus`
(set-logic LIA)
(synth-fun f ((x Int)) Int
  ((Start Int ((- Start Start) 2))))
(declare-var x Int)
(constraint (= (f x) 3))
(check-synth)
