//! The fingerprint-keyed verdict cache: bounded, LRU-evicting, and
//! collision-safe.
//!
//! Keys are [`sygus::Problem::fingerprint`] values — a 64-bit FNV-1a hash
//! of the problem's canonical SyGuS-IF printed form. Two problems
//! fingerprint equal iff they print identically, **modulo hash
//! collisions**; since a verdict served for the wrong problem would be a
//! soundness bug, every entry stores the full canonical form and a lookup
//! only hits when the stored form is byte-identical to the query's. A
//! fingerprint match with a different canonical form is a genuine 64-bit
//! collision: it is counted ([`CacheStats::collisions`]), served as a
//! miss, and the colliding insert replaces the older entry (latest wins —
//! a 64-bit collision is rare enough that splitting the slot is not worth
//! the complexity).
//!
//! Only *deterministic* verdicts belong in the cache: the daemon inserts
//! definitive race verdicts (`realizable` / `unrealizable`, which are
//! sound and budget-independent) and never `unknown` or `cancelled`
//! outcomes, whose answer depends on the budget the request happened to
//! run under.
//!
//! Eviction is least-recently-*used* (lookup hits refresh recency, not
//! just inserts), implemented with a recency-tick `BTreeMap` index — no
//! unsafe, O(log n) per operation.

use std::collections::{BTreeMap, HashMap};

/// A cached race outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct CachedVerdict {
    /// The definitive verdict (`realizable` or `unrealizable`).
    pub verdict: String,
    /// Who produced it originally (`presolve`, `nay`, `nope`).
    pub winner: Option<String>,
    /// What the original solve cost, in milliseconds — the work a cache
    /// hit saves.
    pub solve_millis: f64,
}

/// Cumulative cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a verdict.
    pub hits: u64,
    /// Lookups that found nothing (or a colliding entry).
    pub misses: u64,
    /// Lookups/inserts whose fingerprint matched an entry with a
    /// *different* canonical form — genuine 64-bit collisions.
    pub collisions: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
}

struct Slot {
    tick: u64,
    canonical: String,
    value: CachedVerdict,
}

/// The bounded LRU verdict cache; see the [module docs](self).
pub struct VerdictCache {
    capacity: usize,
    next_tick: u64,
    by_key: HashMap<u64, Slot>,
    /// recency index: tick → key, oldest tick first.
    recency: BTreeMap<u64, u64>,
    stats: CacheStats,
}

impl VerdictCache {
    /// A cache holding at most `capacity` verdicts. Capacity 0 disables
    /// caching (every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> VerdictCache {
        VerdictCache {
            capacity,
            next_tick: 0,
            by_key: HashMap::new(),
            recency: BTreeMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// `true` when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The cumulative counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up `key`, serving a hit only when the stored canonical form
    /// is byte-identical to `canonical` (collision safety). A hit
    /// refreshes the entry's recency.
    pub fn lookup(&mut self, key: u64, canonical: &str) -> Option<CachedVerdict> {
        let Some(slot) = self.by_key.get_mut(&key) else {
            self.stats.misses += 1;
            return None;
        };
        if slot.canonical != canonical {
            self.stats.collisions += 1;
            self.stats.misses += 1;
            return None;
        }
        self.stats.hits += 1;
        // refresh recency: move the slot's tick to the newest position
        let old_tick = slot.tick;
        let new_tick = self.next_tick;
        self.next_tick += 1;
        slot.tick = new_tick;
        self.recency.remove(&old_tick);
        self.recency.insert(new_tick, key);
        Some(slot.value.clone())
    }

    /// Inserts a verdict, evicting the least-recently-used entry when the
    /// cache is full. Re-inserting an existing key replaces its value and
    /// refreshes recency; a colliding key (same fingerprint, different
    /// canonical form) is counted and replaced, latest wins.
    pub fn insert(&mut self, key: u64, canonical: String, value: CachedVerdict) {
        if self.capacity == 0 {
            return;
        }
        let tick = self.next_tick;
        self.next_tick += 1;
        if let Some(old) = self.by_key.remove(&key) {
            if old.canonical != canonical {
                self.stats.collisions += 1;
            }
            self.recency.remove(&old.tick);
        } else if self.by_key.len() >= self.capacity {
            // evict the oldest tick (the least recently used entry)
            if let Some((&oldest_tick, &oldest_key)) = self.recency.iter().next() {
                self.recency.remove(&oldest_tick);
                self.by_key.remove(&oldest_key);
                self.stats.evictions += 1;
            }
        }
        self.stats.insertions += 1;
        self.recency.insert(tick, key);
        self.by_key.insert(
            key,
            Slot {
                tick,
                canonical,
                value,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdict(name: &str) -> CachedVerdict {
        CachedVerdict {
            verdict: name.into(),
            winner: Some("nay".into()),
            solve_millis: 1.0,
        }
    }

    #[test]
    fn hits_require_a_byte_identical_canonical_form() {
        let mut cache = VerdictCache::new(4);
        cache.insert(42, "(problem a)".into(), verdict("unrealizable"));
        assert_eq!(
            cache.lookup(42, "(problem a)").unwrap().verdict,
            "unrealizable"
        );
        // same fingerprint, different canonical form: a collision, not a hit
        assert_eq!(cache.lookup(42, "(problem b)"), None);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.collisions, 1);
    }

    #[test]
    fn colliding_inserts_replace_and_are_counted() {
        let mut cache = VerdictCache::new(4);
        cache.insert(42, "(problem a)".into(), verdict("unrealizable"));
        cache.insert(42, "(problem b)".into(), verdict("realizable"));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().collisions, 1);
        assert_eq!(cache.lookup(42, "(problem a)"), None);
        assert_eq!(
            cache.lookup(42, "(problem b)").unwrap().verdict,
            "realizable"
        );
    }

    #[test]
    fn lru_eviction_under_a_small_capacity() {
        let mut cache = VerdictCache::new(2);
        cache.insert(1, "one".into(), verdict("unrealizable"));
        cache.insert(2, "two".into(), verdict("unrealizable"));
        // touch 1 so that 2 becomes the least recently used
        assert!(cache.lookup(1, "one").is_some());
        cache.insert(3, "three".into(), verdict("unrealizable"));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(1, "one").is_some(), "recently used survives");
        assert!(cache.lookup(2, "two").is_none(), "LRU entry was evicted");
        assert!(cache.lookup(3, "three").is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn reinsertion_refreshes_recency_without_growing() {
        let mut cache = VerdictCache::new(2);
        cache.insert(1, "one".into(), verdict("unrealizable"));
        cache.insert(2, "two".into(), verdict("unrealizable"));
        cache.insert(1, "one".into(), verdict("realizable")); // refresh + replace
        cache.insert(3, "three".into(), verdict("unrealizable"));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lookup(1, "one").unwrap().verdict, "realizable");
        assert!(cache.lookup(2, "two").is_none(), "2 was the LRU entry");
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let mut cache = VerdictCache::new(0);
        cache.insert(1, "one".into(), verdict("unrealizable"));
        assert!(cache.is_empty());
        assert!(cache.lookup(1, "one").is_none());
    }

    #[test]
    fn eviction_scales_past_the_capacity() {
        let mut cache = VerdictCache::new(8);
        for i in 0..100u64 {
            cache.insert(i, format!("problem {i}"), verdict("unrealizable"));
        }
        assert_eq!(cache.len(), 8);
        assert_eq!(cache.stats().evictions, 92);
        // exactly the 8 newest survive
        for i in 92..100 {
            assert!(cache.lookup(i, &format!("problem {i}")).is_some());
        }
    }
}
