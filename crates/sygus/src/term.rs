//! Ranked alphabet symbols and terms (trees) over them.

use crate::SygusError;
use std::fmt;

/// The sort (type) of a term or nonterminal: integers or Booleans.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Sort {
    /// Integer-sorted.
    Int,
    /// Boolean-sorted.
    Bool,
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Int => write!(f, "Int"),
            Sort::Bool => write!(f, "Bool"),
        }
    }
}

/// A symbol of the CLIA ranked alphabet (§3.1, §6.1).
///
/// `Plus` is n-ary (n ≥ 1), matching the paper's readability convention
/// (footnote 1); all other symbols have fixed arity.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Symbol {
    /// n-ary integer addition.
    Plus,
    /// Binary integer subtraction.
    Minus,
    /// An integer constant.
    Num(i64),
    /// An input variable of the function being synthesized.
    Var(String),
    /// The negation of an input variable (only in LIA⁺/CLIA⁺ grammars, §5.2).
    NegVar(String),
    /// `IfThenElse(cond, then, else)`.
    IfThenElse,
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
    /// Boolean negation.
    Not,
    /// Integer comparison `a < b`.
    LessThan,
    /// Integer equality `a = b` (provided for benchmark grammars).
    Equal,
}

impl Symbol {
    /// The output sort of the symbol.
    pub fn sort(&self) -> Sort {
        match self {
            Symbol::Plus
            | Symbol::Minus
            | Symbol::Num(_)
            | Symbol::Var(_)
            | Symbol::NegVar(_)
            | Symbol::IfThenElse => Sort::Int,
            Symbol::And | Symbol::Or | Symbol::Not | Symbol::LessThan | Symbol::Equal => Sort::Bool,
        }
    }

    /// The expected arity, or `None` for the variadic `Plus`.
    pub fn arity(&self) -> Option<usize> {
        match self {
            Symbol::Plus => None,
            Symbol::Minus => Some(2),
            Symbol::Num(_) | Symbol::Var(_) | Symbol::NegVar(_) => Some(0),
            Symbol::IfThenElse => Some(3),
            Symbol::And | Symbol::Or => Some(2),
            Symbol::Not => Some(1),
            Symbol::LessThan | Symbol::Equal => Some(2),
        }
    }

    /// The expected sort of the `i`-th argument (given the actual arity).
    pub fn arg_sort(&self, i: usize) -> Sort {
        match self {
            Symbol::IfThenElse => {
                if i == 0 {
                    Sort::Bool
                } else {
                    Sort::Int
                }
            }
            Symbol::And | Symbol::Or | Symbol::Not => Sort::Bool,
            _ => Sort::Int,
        }
    }

    /// `true` if the symbol belongs to the LIA fragment (Ex. 3.6).
    pub fn is_lia(&self) -> bool {
        matches!(
            self,
            Symbol::Plus | Symbol::Minus | Symbol::Num(_) | Symbol::Var(_) | Symbol::NegVar(_)
        )
    }

    /// Checks that `num_args` is a legal arity for this symbol.
    pub fn check_arity(&self, num_args: usize) -> Result<(), SygusError> {
        match self.arity() {
            Some(a) if a != num_args => Err(SygusError::SortError(format!(
                "symbol {self:?} expects {a} arguments, got {num_args}"
            ))),
            None if num_args == 0 => Err(SygusError::SortError(
                "variadic Plus requires at least one argument".to_string(),
            )),
            _ => Ok(()),
        }
    }

    /// The SyGuS-IF operator name of the symbol.
    pub fn sygus_name(&self) -> String {
        match self {
            Symbol::Plus => "+".to_string(),
            Symbol::Minus => "-".to_string(),
            Symbol::Num(c) => c.to_string(),
            Symbol::Var(x) => x.clone(),
            Symbol::NegVar(x) => format!("(- {x})"),
            Symbol::IfThenElse => "ite".to_string(),
            Symbol::And => "and".to_string(),
            Symbol::Or => "or".to_string(),
            Symbol::Not => "not".to_string(),
            Symbol::LessThan => "<".to_string(),
            Symbol::Equal => "=".to_string(),
        }
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Symbol::Plus => write!(f, "Plus"),
            Symbol::Minus => write!(f, "Minus"),
            Symbol::Num(c) => write!(f, "Num({c})"),
            Symbol::Var(x) => write!(f, "Var({x})"),
            Symbol::NegVar(x) => write!(f, "NegVar({x})"),
            Symbol::IfThenElse => write!(f, "IfThenElse"),
            Symbol::And => write!(f, "And"),
            Symbol::Or => write!(f, "Or"),
            Symbol::Not => write!(f, "Not"),
            Symbol::LessThan => write!(f, "LessThan"),
            Symbol::Equal => write!(f, "Equal"),
        }
    }
}

/// A term (ranked tree) over the CLIA alphabet.
///
/// # Example
/// ```
/// use sygus::{Symbol, Term};
/// // Plus(Var(x), Num(1))
/// let t = Term::apply(Symbol::Plus, vec![Term::var("x"), Term::num(1)]).unwrap();
/// assert_eq!(t.size(), 3);
/// assert_eq!(t.to_string(), "(+ x 1)");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Term {
    symbol: Symbol,
    children: Vec<Term>,
}

impl Term {
    /// Builds a term, checking arity and argument sorts.
    pub fn apply(symbol: Symbol, children: Vec<Term>) -> Result<Term, SygusError> {
        symbol.check_arity(children.len())?;
        for (i, c) in children.iter().enumerate() {
            let expected = symbol.arg_sort(i);
            if c.sort() != expected {
                return Err(SygusError::SortError(format!(
                    "argument {i} of {symbol} has sort {}, expected {expected}",
                    c.sort()
                )));
            }
        }
        Ok(Term { symbol, children })
    }

    /// A leaf term (constant or variable).
    pub fn leaf(symbol: Symbol) -> Term {
        debug_assert_eq!(symbol.arity(), Some(0), "leaf requires a nullary symbol");
        Term {
            symbol,
            children: Vec::new(),
        }
    }

    /// The constant term `Num(c)`.
    pub fn num(c: i64) -> Term {
        Term::leaf(Symbol::Num(c))
    }

    /// The variable term `Var(x)`.
    pub fn var(x: impl Into<String>) -> Term {
        Term::leaf(Symbol::Var(x.into()))
    }

    /// The negated variable term `NegVar(x)`.
    pub fn neg_var(x: impl Into<String>) -> Term {
        Term::leaf(Symbol::NegVar(x.into()))
    }

    /// Convenience constructor for binary `Plus`.
    pub fn plus(a: Term, b: Term) -> Term {
        Term::apply(Symbol::Plus, vec![a, b]).expect("well-sorted by construction")
    }

    /// Convenience constructor for `Minus`.
    pub fn minus(a: Term, b: Term) -> Term {
        Term::apply(Symbol::Minus, vec![a, b]).expect("well-sorted by construction")
    }

    /// Convenience constructor for `IfThenElse`.
    pub fn ite(c: Term, t: Term, e: Term) -> Result<Term, SygusError> {
        Term::apply(Symbol::IfThenElse, vec![c, t, e])
    }

    /// Convenience constructor for `LessThan`.
    pub fn less_than(a: Term, b: Term) -> Term {
        Term::apply(Symbol::LessThan, vec![a, b]).expect("well-sorted by construction")
    }

    /// The root symbol.
    pub fn symbol(&self) -> &Symbol {
        &self.symbol
    }

    /// The child subterms.
    pub fn children(&self) -> &[Term] {
        &self.children
    }

    /// The sort of the term.
    pub fn sort(&self) -> Sort {
        self.symbol.sort()
    }

    /// Number of nodes in the term. Iterative (explicit work list), so
    /// deeply nested terms cannot overflow the call stack.
    pub fn size(&self) -> usize {
        let mut count = 0usize;
        let mut stack: Vec<&Term> = vec![self];
        while let Some(t) = stack.pop() {
            count += 1;
            stack.extend(t.children.iter());
        }
        count
    }

    /// Height of the term (a leaf has height 1). Iterative: a DFS carrying
    /// each node's depth instead of recursing.
    pub fn height(&self) -> usize {
        let mut max_depth = 0usize;
        let mut stack: Vec<(&Term, usize)> = vec![(self, 1)];
        while let Some((t, depth)) = stack.pop() {
            max_depth = max_depth.max(depth);
            stack.extend(t.children.iter().map(|c| (c, depth + 1)));
        }
        max_depth
    }

    /// The set of input-variable names occurring in the term. Iterative.
    pub fn variables(&self) -> std::collections::BTreeSet<String> {
        let mut out = std::collections::BTreeSet::new();
        let mut stack: Vec<&Term> = vec![self];
        while let Some(t) = stack.pop() {
            if let Symbol::Var(x) | Symbol::NegVar(x) = &t.symbol {
                out.insert(x.clone());
            }
            stack.extend(t.children.iter());
        }
        out
    }
}

impl Drop for Term {
    /// Iterative drop: the derived drop would recurse through the child
    /// vectors and overflow the stack on deeply nested terms (the `gen`
    /// scaler and the arena's [`crate::TermArena::extract`] can both
    /// produce trees far deeper than the call stack tolerates).
    fn drop(&mut self) {
        let mut stack: Vec<Term> = std::mem::take(&mut self.children);
        while let Some(mut t) = stack.pop() {
            stack.append(&mut t.children);
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Term {
    /// SyGuS-IF-style rendering, iterative for the same deep-term reason
    /// as [`Term::size`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        enum Tok<'a> {
            Node(&'a Term),
            Text(&'static str),
        }
        let mut stack = vec![Tok::Node(self)];
        while let Some(tok) = stack.pop() {
            match tok {
                Tok::Text(s) => f.write_str(s)?,
                Tok::Node(t) if t.children.is_empty() => match &t.symbol {
                    Symbol::Num(c) => write!(f, "{c}")?,
                    Symbol::Var(x) => write!(f, "{x}")?,
                    Symbol::NegVar(x) => write!(f, "(- {x})")?,
                    other => write!(f, "{}", other.sygus_name())?,
                },
                Tok::Node(t) => {
                    write!(f, "({}", t.symbol.sygus_name())?;
                    stack.push(Tok::Text(")"));
                    for c in t.children.iter().rev() {
                        stack.push(Tok::Node(c));
                        stack.push(Tok::Text(" "));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_and_arity() {
        assert_eq!(Symbol::Plus.sort(), Sort::Int);
        assert_eq!(Symbol::LessThan.sort(), Sort::Bool);
        assert_eq!(Symbol::IfThenElse.arity(), Some(3));
        assert_eq!(Symbol::Plus.arity(), None);
        assert_eq!(Symbol::IfThenElse.arg_sort(0), Sort::Bool);
        assert_eq!(Symbol::IfThenElse.arg_sort(1), Sort::Int);
    }

    #[test]
    fn term_construction_checks_sorts() {
        // LessThan(Var(x), Num(2)) is fine
        assert!(Term::apply(Symbol::LessThan, vec![Term::var("x"), Term::num(2)]).is_ok());
        // And(Var(x), Var(x)) is ill-sorted
        assert!(Term::apply(Symbol::And, vec![Term::var("x"), Term::var("x")]).is_err());
        // Minus with one argument is an arity error
        assert!(Term::apply(Symbol::Minus, vec![Term::num(1)]).is_err());
    }

    #[test]
    fn nary_plus() {
        let t = Term::apply(
            Symbol::Plus,
            vec![Term::var("x"), Term::var("x"), Term::var("x"), Term::num(0)],
        )
        .unwrap();
        assert_eq!(t.size(), 5);
        assert_eq!(t.to_string(), "(+ x x x 0)");
    }

    #[test]
    fn metrics_and_variables() {
        let t = Term::ite(
            Term::less_than(Term::var("x"), Term::num(2)),
            Term::plus(Term::var("y"), Term::num(1)),
            Term::num(0),
        )
        .unwrap();
        assert_eq!(t.height(), 3);
        assert_eq!(t.size(), 8);
        let vars = t.variables();
        assert!(vars.contains("x") && vars.contains("y"));
        assert_eq!(vars.len(), 2);
    }

    #[test]
    fn deep_terms_do_not_overflow_the_stack() {
        // A left-leaning chain of 100 000 Plus nodes, far deeper than any
        // call stack tolerates: the iterative size/height/variables/Display
        // implementations and the iterative Drop must all survive it.
        const DEPTH: usize = 100_000;
        let mut t = Term::num(1);
        for _ in 0..DEPTH {
            t = Term::plus(t, Term::var("x"));
        }
        assert_eq!(t.size(), 2 * DEPTH + 1);
        assert_eq!(t.height(), DEPTH + 1);
        let vars = t.variables();
        assert_eq!(vars.len(), 1);
        assert!(vars.contains("x"));
        let printed = t.to_string();
        assert!(printed.starts_with("(+ (+ "));
        assert!(printed.ends_with(" x)"));
        drop(t); // iterative Drop: must not recurse through 100k levels
    }

    #[test]
    fn display_round_shape() {
        let t = Term::minus(Term::var("x"), Term::num(3));
        assert_eq!(t.to_string(), "(- x 3)");
        assert_eq!(Term::neg_var("x").to_string(), "(- x)");
    }
}
