//! A shared deadline timer: one monitor thread trips [`Cancel`] tokens
//! when their wall-clock budget expires.
//!
//! This is the third timeout mechanism in the stack, and the only one fit
//! for million-job streams:
//!
//! * [`crate::pool::run_jobs`] *abandons* a timed-out job's thread (std
//!   has no cancellation), which taints subsequent measurements and leaks
//!   a busy thread per timeout;
//! * `server`'s per-request monitor is private to the daemon;
//! * `DeadlineTimer` is purely cooperative — it flips the job's own
//!   [`Cancel`] token at the deadline and the job winds down at its next
//!   poll, so no thread is ever abandoned and memory stays bounded by the
//!   number of jobs *in flight*, not the number registered over the
//!   timer's lifetime (finished registrations are pruned in amortized
//!   constant time).
//!
//! ```
//! use runner::{Cancel, DeadlineTimer};
//! use std::time::Duration;
//!
//! let timer = DeadlineTimer::new();
//! let cancel = Cancel::new();
//! {
//!     let _guard = timer.register(&cancel, Duration::from_secs(60));
//!     // ... run the job, polling `cancel` ...
//! } // guard dropped: the registration is retired, nothing trips
//! assert!(!cancel.is_cancelled());
//! ```

use crate::cancel::Cancel;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Registration {
    due: Instant,
    cancel: Cancel,
    /// Set by the guard when the job finishes first; pruned lazily.
    done: Arc<AtomicBool>,
}

#[derive(Default)]
struct TimerState {
    pending: Vec<Registration>,
    /// Prune retired registrations once `pending` grows past this mark
    /// (doubling watermark ⇒ amortized O(1) per registration).
    prune_watermark: usize,
    shutdown: bool,
}

/// The shared timer. Cloneable-by-reference via `&DeadlineTimer`; dropped,
/// it joins its monitor thread (without tripping still-pending tokens).
pub struct DeadlineTimer {
    state: Arc<(Mutex<TimerState>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
    /// Incremented every time the monitor trips a token at its deadline.
    trips: obs::Counter,
}

/// Proof of a live registration. Dropping the guard retires the
/// registration: a job that finishes before its deadline will not have its
/// token tripped afterwards (the token may be reused for the next job).
#[must_use = "dropping the guard immediately retires the deadline"]
pub struct DeadlineGuard {
    done: Arc<AtomicBool>,
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        self.done.store(true, Ordering::Release);
    }
}

impl DeadlineTimer {
    /// Spawns the monitor thread.
    pub fn new() -> DeadlineTimer {
        let state: Arc<(Mutex<TimerState>, Condvar)> = Arc::default();
        let trips = obs::Counter::new();
        let thread_state = Arc::clone(&state);
        let thread_trips = trips.clone();
        let handle = std::thread::Builder::new()
            .name("deadline-timer".into())
            .spawn(move || {
                let (lock, cv) = &*thread_state;
                let mut state = lock.lock().unwrap();
                loop {
                    if state.shutdown {
                        return;
                    }
                    let now = Instant::now();
                    state.pending.retain(|r| {
                        if r.done.load(Ordering::Acquire) {
                            return false; // job finished first
                        }
                        if r.due <= now {
                            r.cancel.cancel();
                            thread_trips.inc();
                            return false;
                        }
                        true
                    });
                    state.prune_watermark = (state.pending.len() * 2).max(64);
                    let next = state.pending.iter().map(|r| r.due).min();
                    state = match next {
                        Some(due) => {
                            let wait = due.saturating_duration_since(now);
                            cv.wait_timeout(state, wait).unwrap().0
                        }
                        None => cv.wait(state).unwrap(),
                    };
                }
            })
            .expect("spawning the deadline timer");
        DeadlineTimer {
            state,
            handle: Some(handle),
            trips,
        }
    }

    /// Counter of deadline trips (tokens cancelled because their budget
    /// expired), suitable for registration in an [`obs::Registry`].
    pub fn trip_counter(&self) -> obs::Counter {
        self.trips.clone()
    }

    /// Arms `cancel` to trip `timeout` from now. Keep the returned guard
    /// alive for the duration of the job and drop it when the job
    /// finishes; whether the deadline fired first is visible on the token
    /// itself (`cancel.is_cancelled()`).
    pub fn register(&self, cancel: &Cancel, timeout: Duration) -> DeadlineGuard {
        let done = Arc::new(AtomicBool::new(false));
        let (lock, cv) = &*self.state;
        let mut state = lock.lock().unwrap();
        // Amortized cleanup: retire finished registrations in place once
        // the list outgrows its watermark, so a stream of short jobs never
        // accumulates per-job state for the whole campaign.
        if state.pending.len() >= state.prune_watermark {
            state.pending.retain(|r| !r.done.load(Ordering::Acquire));
            state.prune_watermark = (state.pending.len() * 2).max(64);
        }
        state.pending.push(Registration {
            due: Instant::now() + timeout,
            cancel: cancel.clone(),
            done: Arc::clone(&done),
        });
        cv.notify_one();
        DeadlineGuard { done }
    }
}

impl Default for DeadlineTimer {
    fn default() -> Self {
        DeadlineTimer::new()
    }
}

impl Drop for DeadlineTimer {
    fn drop(&mut self) {
        let (lock, cv) = &*self.state;
        lock.lock().unwrap().shutdown = true;
        cv.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expired_deadlines_trip_the_token() {
        let timer = DeadlineTimer::new();
        let cancel = Cancel::new();
        assert_eq!(timer.trip_counter().get(), 0);
        let _guard = timer.register(&cancel, Duration::from_millis(10));
        let start = Instant::now();
        while !cancel.is_cancelled() {
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "deadline never fired"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(
            timer.trip_counter().get(),
            1,
            "each fired deadline counts exactly once"
        );
    }

    #[test]
    fn retired_registrations_do_not_trip() {
        let timer = DeadlineTimer::new();
        let cancel = Cancel::new();
        let guard = timer.register(&cancel, Duration::from_millis(20));
        drop(guard); // the job "finished" immediately
        std::thread::sleep(Duration::from_millis(60));
        assert!(!cancel.is_cancelled());
        assert_eq!(
            timer.trip_counter().get(),
            0,
            "retired registrations must not count as trips"
        );
    }

    #[test]
    fn a_stream_of_short_jobs_stays_bounded() {
        let timer = DeadlineTimer::new();
        // 10_000 instantly-finished registrations with far-future
        // deadlines: without pruning these would all sit in `pending`
        // until their deadlines; the watermark keeps the list small.
        for _ in 0..10_000 {
            let cancel = Cancel::new();
            let guard = timer.register(&cancel, Duration::from_secs(3600));
            drop(guard);
        }
        let (lock, _) = &*timer.state;
        let len = lock.lock().unwrap().pending.len();
        assert!(len <= 128, "pending grew to {len}; pruning is broken");
    }

    #[test]
    fn many_tokens_trip_independently() {
        let timer = DeadlineTimer::new();
        let quick = Cancel::new();
        let slow = Cancel::new();
        let _g1 = timer.register(&quick, Duration::from_millis(10));
        let _g2 = timer.register(&slow, Duration::from_secs(3600));
        let start = Instant::now();
        while !quick.is_cancelled() {
            assert!(start.elapsed() < Duration::from_secs(5));
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(!slow.is_cancelled());
    }
}
