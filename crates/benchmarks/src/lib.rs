//! The benchmark suite of the paper's evaluation (§8).
//!
//! The original evaluation uses 132 variants of the 60 CLIA benchmarks of
//! the SyGuS-competition CLIA track, produced by the quantitative-syntax
//! tool of Hu & D'Antoni (CAV'18): each variant *limits* a syntactic
//! resource so that the problem becomes unrealizable —
//!
//! * **LimitedPlus** (30): the grammar allows one `Plus` less than any
//!   solution needs,
//! * **LimitedIf** (57): the grammar allows one `IfThenElse` less than any
//!   solution needs,
//! * **LimitedConst** (45): the grammar's constants are restricted.
//!
//! The original benchmark files are not redistributable here, so this crate
//! regenerates the three families programmatically from the underlying
//! synthesis intents (max, array_search, array_sum, the `mpg` conditional
//! programs, plane/guard/ite/sum/search templates). The per-benchmark
//! metadata (`paper` field) records the numbers reported in Tables 1 and 2,
//! so the harness in `crates/bench` can print paper-vs-measured tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod families;
mod scaling;
mod table_data;

pub use families::{all, limited_const, limited_if, limited_plus};
pub use scaling::{scaling_grammar, scaling_problem};
pub use table_data::{table1_rows, table2_rows, PaperRow};

use sygus::{ExampleSet, Problem};

/// The three benchmark families of §8.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Family {
    /// Plus-budget-limited benchmarks (Table 1, top).
    LimitedPlus,
    /// IfThenElse-budget-limited benchmarks (Table 1, bottom).
    LimitedIf,
    /// Constant-restricted benchmarks (Table 2).
    LimitedConst,
}

impl Family {
    /// Display name used by the harness.
    pub fn name(&self) -> &'static str {
        match self {
            Family::LimitedPlus => "LimitedPlus",
            Family::LimitedIf => "LimitedIf",
            Family::LimitedConst => "LimitedConst",
        }
    }
}

/// One benchmark instance: a SyGuS problem plus the example set that the
/// paper's CEGIS loop converged to (used for the per-check experiments), and
/// the numbers the paper reports for it, when it appears in Table 1 or 2.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// Benchmark name (matching the paper's tables where applicable).
    pub name: String,
    /// Which limited family the benchmark belongs to.
    pub family: Family,
    /// The SyGuS problem (grammar + specification).
    pub problem: Problem,
    /// A set of input examples on which the problem is unrealizable
    /// (the `|E|` column of the tables).
    pub witness_examples: ExampleSet,
    /// Paper-reported data, if the benchmark appears in Table 1 or Table 2.
    pub paper: Option<table_data::PaperRow>,
}

impl Benchmark {
    /// `|N|`: number of grammar nonterminals.
    pub fn num_nonterminals(&self) -> usize {
        self.problem.grammar().num_nonterminals()
    }
    /// `|δ|`: number of grammar productions.
    pub fn num_productions(&self) -> usize {
        self.problem.grammar().num_productions()
    }
    /// `|V|`: number of distinct input variables in the grammar.
    pub fn num_variables(&self) -> usize {
        self.problem.grammar().variables().len()
    }
    /// `|E|`: number of witness examples.
    pub fn num_examples(&self) -> usize {
        self.witness_examples.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_sizes_match_the_paper() {
        assert_eq!(limited_plus().len(), 30);
        assert_eq!(limited_if().len(), 57);
        assert_eq!(limited_const().len(), 45);
        assert_eq!(all().len(), 132);
    }

    #[test]
    fn benchmark_names_are_unique() {
        let mut names: Vec<String> = all().into_iter().map(|b| b.name).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate benchmark names");
    }

    #[test]
    fn every_benchmark_has_a_nonempty_grammar_and_examples() {
        for b in all() {
            assert!(b.num_nonterminals() >= 1, "{}", b.name);
            assert!(b.num_productions() >= 2, "{}", b.name);
            assert!(b.num_examples() >= 1, "{}", b.name);
            assert!(b.num_variables() >= 1, "{}", b.name);
        }
    }

    #[test]
    fn table_rows_reference_existing_benchmarks() {
        let names: Vec<String> = all().into_iter().map(|b| b.name).collect();
        for row in table1_rows().iter().chain(table2_rows().iter()) {
            assert!(
                names.iter().any(|n| n == row.name),
                "table row {} has no generated benchmark",
                row.name
            );
        }
    }
}
