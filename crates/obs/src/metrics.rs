//! A process-wide metrics registry: atomic counters, gauges, and log₂
//! latency histograms with deterministic Prometheus text exposition.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`-backed
//! clones, safe to stamp into hot paths; the [`Registry`] is just a sorted
//! name → handle map consulted at render time. Components that own their
//! instrument (the warm pool's in-flight gauge, the deadline timer's trip
//! counter) create the handle themselves and register it under a canonical
//! name; everything else asks the registry to get-or-create.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::hist::{LatencyHist, BUCKETS};

/// A monotonically increasing counter.
///
/// `set` exists for mirror counters sourced from an external snapshot
/// (e.g. cache statistics owned by another struct) — the mirrored value
/// is still monotone, the registry just isn't its system of record.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value (for snapshot-mirrored counters).
    pub fn set(&self, n: u64) {
        self.value.store(n, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous up/down gauge.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// A fresh gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value.
    pub fn set(&self, n: i64) {
        self.value.store(n, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A concurrent log₂ latency histogram (the atomic counterpart of
/// [`LatencyHist`]): lock-free `observe_*` on the hot path, `snapshot()`
/// for quantile queries and exposition.
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Arc<HistInner>,
}

#[derive(Debug)]
struct HistInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            inner: Arc::new(HistInner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum_micros: AtomicU64::new(0),
            }),
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample given in microseconds.
    pub fn observe_micros(&self, micros: u64) {
        let bucket = crate::hist::bucket_of_micros(micros);
        self.inner.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Records one sample given in milliseconds.
    pub fn observe_millis(&self, millis: f64) {
        self.observe_micros((millis * 1000.0).max(0.0) as u64);
    }

    /// Records one sample given as a [`std::time::Duration`].
    pub fn observe(&self, elapsed: std::time::Duration) {
        self.observe_micros(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Total number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples, in microseconds.
    #[must_use]
    pub fn sum_micros(&self) -> u64 {
        self.inner.sum_micros.load(Ordering::Relaxed)
    }

    /// A point-in-time copy as a [`LatencyHist`] for quantile queries.
    #[must_use]
    pub fn snapshot(&self) -> LatencyHist {
        let mut hist = LatencyHist::default();
        for (bucket, slot) in self.inner.buckets.iter().enumerate() {
            let n = slot.load(Ordering::Relaxed);
            if n > 0 {
                hist.add_bucket(bucket, n);
            }
        }
        hist
    }
}

/// What kind of instrument a registry entry exposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

#[derive(Clone, Debug)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Clone, Debug)]
struct Entry {
    help: String,
    kind: Kind,
    handle: Handle,
}

/// A named collection of instruments with deterministic text exposition.
///
/// Cloning a `Registry` clones the `Arc`: all clones see the same
/// instruments. Names sort canonically (`BTreeMap`), so `render()` output
/// is byte-stable for a fixed set of values.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    entries: Arc<Mutex<BTreeMap<String, Entry>>>,
}

impl Registry {
    /// A fresh, empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets or creates a counter under `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let counter = Counter::new();
        match self.get_or_insert(name, help, Kind::Counter, Handle::Counter(counter.clone())) {
            Handle::Counter(existing) => existing,
            _ => unreachable!("kind checked by get_or_insert"),
        }
    }

    /// Gets or creates a gauge under `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let gauge = Gauge::new();
        match self.get_or_insert(name, help, Kind::Gauge, Handle::Gauge(gauge.clone())) {
            Handle::Gauge(existing) => existing,
            _ => unreachable!("kind checked by get_or_insert"),
        }
    }

    /// Gets or creates a histogram under `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        let hist = Histogram::new();
        match self.get_or_insert(name, help, Kind::Histogram, Handle::Histogram(hist.clone())) {
            Handle::Histogram(existing) => existing,
            _ => unreachable!("kind checked by get_or_insert"),
        }
    }

    /// Registers an externally owned counter under `name`, replacing any
    /// previous registration (components that own their instrument —
    /// e.g. a deadline timer's trip counter — register it here so it
    /// shows up in exposition).
    pub fn register_counter(&self, name: &str, help: &str, counter: Counter) {
        self.put(name, help, Kind::Counter, Handle::Counter(counter));
    }

    /// Registers an externally owned gauge under `name` (see
    /// [`Registry::register_counter`]).
    pub fn register_gauge(&self, name: &str, help: &str, gauge: Gauge) {
        self.put(name, help, Kind::Gauge, Handle::Gauge(gauge));
    }

    /// Registers an externally owned histogram under `name` (see
    /// [`Registry::register_counter`]).
    pub fn register_histogram(&self, name: &str, help: &str, hist: Histogram) {
        self.put(name, help, Kind::Histogram, Handle::Histogram(hist));
    }

    fn put(&self, name: &str, help: &str, kind: Kind, handle: Handle) {
        let mut entries = self.entries.lock().expect("metrics registry poisoned");
        entries.insert(
            name.to_string(),
            Entry {
                help: help.to_string(),
                kind,
                handle,
            },
        );
    }

    fn get_or_insert(&self, name: &str, help: &str, kind: Kind, fresh: Handle) -> Handle {
        let mut entries = self.entries.lock().expect("metrics registry poisoned");
        if let Some(existing) = entries.get(name) {
            assert!(
                existing.kind == kind,
                "metric {name:?} already registered as {:?}, requested {kind:?}",
                existing.kind
            );
            return existing.handle.clone();
        }
        entries.insert(
            name.to_string(),
            Entry {
                help: help.to_string(),
                kind,
                handle: fresh.clone(),
            },
        );
        fresh
    }

    /// Renders every registered instrument in Prometheus text exposition
    /// format (version 0.0.4). Families appear in canonical (sorted) name
    /// order; histogram buckets are cumulative with `le` edges at powers
    /// of two microseconds expressed in seconds.
    #[must_use]
    pub fn render(&self) -> String {
        let entries = self.entries.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for (name, entry) in entries.iter() {
            match &entry.handle {
                Handle::Counter(c) => {
                    let _ = writeln!(out, "# HELP {name} {}", entry.help);
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Handle::Gauge(g) => {
                    let _ = writeln!(out, "# HELP {name} {}", entry.help);
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Handle::Histogram(h) => {
                    let _ = writeln!(out, "# HELP {name} {}", entry.help);
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let snapshot = h.snapshot();
                    let mut cumulative = 0u64;
                    for (bucket, &n) in snapshot.buckets().iter().enumerate() {
                        cumulative += n;
                        // The bucket's upper edge is 2^bucket microseconds;
                        // powers of two are exact in f64, so the printed
                        // seconds value is deterministic.
                        let le = (1u64 << bucket) as f64 / 1e6;
                        let _ = writeln!(out, "{name}_bucket{{le=\"{le:.6}\"}} {cumulative}");
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                    let sum = h.sum_micros() as f64 / 1e6;
                    let _ = writeln!(out, "{name}_sum {sum:.6}");
                    let _ = writeln!(out, "{name}_count {}", h.count());
                }
            }
        }
        out
    }
}

/// The process-wide default registry. Long-lived components that are not
/// handed an explicit registry (e.g. library consumers) can share this
/// one; the server daemon creates its own per-instance registry so tests
/// never observe each other's counters.
#[must_use]
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Canonical metric names: every family the daemon exposes, in one place,
/// so docs, tests, and CI greps can't drift from the implementation.
pub mod names {
    /// Total requests dispatched (any op).
    pub const REQUESTS_TOTAL: &str = "solver_requests_total";
    /// Requests that returned an error status.
    pub const ERRORS_TOTAL: &str = "solver_errors_total";
    /// Solve requests that hit their deadline.
    pub const TIMEOUTS_TOTAL: &str = "solver_timeouts_total";
    /// Solve requests shed by admission control.
    pub const SHED_TOTAL: &str = "solver_shed_total";
    /// Deadline-timer cancellations fired.
    pub const DEADLINE_TRIPS_TOTAL: &str = "solver_deadline_trips_total";
    /// Solve requests currently being served.
    pub const INFLIGHT_REQUESTS: &str = "solver_inflight_requests";
    /// Verdict-cache hits.
    pub const CACHE_HITS_TOTAL: &str = "solver_cache_hits_total";
    /// Verdict-cache misses.
    pub const CACHE_MISSES_TOTAL: &str = "solver_cache_misses_total";
    /// Fingerprint collisions detected on lookup (treated as misses).
    pub const CACHE_COLLISIONS_TOTAL: &str = "solver_cache_collisions_total";
    /// LRU evictions from the verdict cache.
    pub const CACHE_EVICTIONS_TOTAL: &str = "solver_cache_evictions_total";
    /// Insertions into the verdict cache.
    pub const CACHE_INSERTIONS_TOTAL: &str = "solver_cache_insertions_total";
    /// Entries currently resident in the verdict cache.
    pub const CACHE_ENTRIES: &str = "solver_cache_entries";
    /// Warm-pool jobs admitted and not yet finished.
    pub const POOL_IN_FLIGHT: &str = "solver_pool_in_flight";
    /// Warm-pool jobs queued and not yet started.
    pub const POOL_QUEUE_DEPTH: &str = "solver_pool_queue_depth";
    /// Warm-pool worker threads.
    pub const POOL_WORKERS: &str = "solver_pool_workers";
    /// End-to-end solve latency.
    pub const REQUEST_SECONDS: &str = "solver_request_seconds";
    /// SyGuS-IF parse latency.
    pub const PARSE_SECONDS: &str = "solver_parse_seconds";
    /// Static-presolve latency.
    pub const PRESOLVE_SECONDS: &str = "solver_presolve_seconds";
    /// Engine-race latency (excludes presolve).
    pub const RACE_SECONDS: &str = "solver_race_seconds";
    /// Warm-pool queue wait before an engine job starts.
    pub const QUEUE_WAIT_SECONDS: &str = "solver_queue_wait_seconds";

    /// Every name above, for "all documented families are exposed" tests.
    pub const ALL: &[&str] = &[
        REQUESTS_TOTAL,
        ERRORS_TOTAL,
        TIMEOUTS_TOTAL,
        SHED_TOTAL,
        DEADLINE_TRIPS_TOTAL,
        INFLIGHT_REQUESTS,
        CACHE_HITS_TOTAL,
        CACHE_MISSES_TOTAL,
        CACHE_COLLISIONS_TOTAL,
        CACHE_EVICTIONS_TOTAL,
        CACHE_INSERTIONS_TOTAL,
        CACHE_ENTRIES,
        POOL_IN_FLIGHT,
        POOL_QUEUE_DEPTH,
        POOL_WORKERS,
        REQUEST_SECONDS,
        PARSE_SECONDS,
        PRESOLVE_SECONDS,
        RACE_SECONDS,
        QUEUE_WAIT_SECONDS,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_share_state_across_clones() {
        let registry = Registry::new();
        let c = registry.counter("test_total", "a counter");
        let c2 = registry.counter("test_total", "a counter");
        c.inc();
        c2.add(2);
        assert_eq!(c.get(), 3);

        let g = registry.gauge("test_gauge", "a gauge");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(registry.gauge("test_gauge", "a gauge").get(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let registry = Registry::new();
        let _ = registry.counter("test_total", "a counter");
        let _ = registry.gauge("test_total", "now a gauge");
    }

    #[test]
    fn histogram_snapshot_matches_latency_hist_math() {
        let h = Histogram::new();
        let mut reference = LatencyHist::default();
        for millis in [0.0, 0.1, 1.0, 5.0, 123.4] {
            h.observe_millis(millis);
            reference.record_millis(millis);
        }
        let snap = h.snapshot();
        assert_eq!(snap, reference);
        assert_eq!(snap.quantile_millis(0.5), reference.quantile_millis(0.5));
    }

    #[test]
    fn render_is_sorted_and_deterministic() {
        let registry = Registry::new();
        registry.counter("zzz_total", "last").inc();
        registry.gauge("aaa_gauge", "first").set(7);
        let h = registry.histogram("mmm_seconds", "middle");
        h.observe_micros(1500);
        let text = registry.render();
        let a = text.find("aaa_gauge").unwrap();
        let m = text.find("mmm_seconds").unwrap();
        let z = text.find("zzz_total").unwrap();
        assert!(a < m && m < z, "families must render in sorted order");
        assert!(text.contains("# TYPE aaa_gauge gauge"));
        assert!(text.contains("# TYPE zzz_total counter"));
        assert!(text.contains("# TYPE mmm_seconds histogram"));
        // 1500 us lands in the (1024, 2048] bucket: le=2048us = 0.002048 s.
        assert!(text.contains("mmm_seconds_bucket{le=\"0.002048\"} 1"));
        assert!(text.contains("mmm_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("mmm_seconds_sum 0.001500"));
        assert!(text.contains("mmm_seconds_count 1"));
        assert_eq!(text, registry.render(), "render must be byte-stable");
    }

    #[test]
    fn registered_external_handles_render() {
        let registry = Registry::new();
        let trips = Counter::new();
        trips.add(4);
        registry.register_counter("ext_total", "externally owned", trips.clone());
        assert!(registry.render().contains("ext_total 4"));
        trips.inc();
        assert!(registry.render().contains("ext_total 5"));
    }

    #[test]
    fn all_names_are_unique_and_prefixed() {
        let mut seen = std::collections::BTreeSet::new();
        for name in names::ALL {
            assert!(name.starts_with("solver_"), "{name} must be prefixed");
            assert!(seen.insert(name), "{name} duplicated in names::ALL");
        }
    }
}
