//! Programmatic generators for the three limited benchmark families.

use crate::table_data::{table1_rows, table2_rows, PaperRow};
use crate::{Benchmark, Family};
use logic::{Formula, LinearExpr, Var};
use sygus::{Example, ExampleSet, Grammar, GrammarBuilder, Problem, Sort, Spec, Symbol};

fn var(name: &str) -> LinearExpr {
    LinearExpr::var(Var::new(name))
}
fn out() -> LinearExpr {
    LinearExpr::var(Spec::output_var())
}

fn paper_row(name: &str) -> Option<PaperRow> {
    table1_rows()
        .into_iter()
        .chain(table2_rows())
        .find(|r| r.name == name)
}

fn benchmark(
    name: &str,
    family: Family,
    problem: Problem,
    witness_examples: ExampleSet,
) -> Benchmark {
    Benchmark {
        name: name.to_string(),
        family,
        problem: problem.with_name(name),
        witness_examples,
        paper: paper_row(name),
    }
}

// ---------------------------------------------------------------------------
// Limited grammars
// ---------------------------------------------------------------------------

/// A grammar whose terms contain at most `budget` `Plus` operators (the
/// LimitedPlus restriction): nonterminal `S_b` derives terms using at most
/// `b` additions, and `S_b ::= Plus(S_i, S_j)` for every split `i + j = b-1`.
/// Optionally a conditional layer (one `IfThenElse` over budgeted operands)
/// is added, as in the guard/ite benchmarks.
fn plus_limited_grammar(vars: &[&str], budget: usize, with_ite: bool) -> Grammar {
    let level = |b: usize| format!("S{b}");
    let start = if with_ite {
        "Start".to_string()
    } else {
        level(budget)
    };
    let mut builder = GrammarBuilder::new(&start);
    if with_ite {
        builder = builder.nonterminal("Start", Sort::Int);
        builder = builder.nonterminal("Cond", Sort::Bool);
    }
    for b in 0..=budget {
        builder = builder.nonterminal(level(b), Sort::Int);
    }
    for b in 0..=budget {
        let lhs = level(b);
        if b == 0 {
            for v in vars {
                builder = builder.production(&lhs, Symbol::Var((*v).to_string()), &[]);
            }
            builder = builder.production(&lhs, Symbol::Num(0), &[]);
            builder = builder.production(&lhs, Symbol::Num(1), &[]);
        } else {
            for i in 0..b {
                let j = b - 1 - i;
                builder = builder.production(&lhs, Symbol::Plus, &[&level(i), &level(j)]);
            }
            builder = builder.chain(&lhs, &level(b - 1));
        }
    }
    if with_ite {
        let top = level(budget);
        builder = builder
            .production("Start", Symbol::IfThenElse, &["Cond", &top, &top])
            .chain("Start", &top)
            .production("Cond", Symbol::LessThan, &[&level(0), &level(0)])
            .production("Cond", Symbol::And, &["Cond", "Cond"]);
    }
    builder
        .build()
        .expect("plus-limited grammar is well-formed")
}

/// A grammar whose terms contain at most `budget` `IfThenElse` operators
/// (the LimitedIf restriction); the arithmetic layer allows arbitrary sums
/// of variables and the constants 0 and 1.
fn ite_limited_grammar(vars: &[&str], budget: usize) -> Grammar {
    let level = |b: usize| format!("S{b}");
    let mut builder = GrammarBuilder::new(level(budget));
    for b in 0..=budget {
        builder = builder.nonterminal(level(b), Sort::Int);
        if b >= 1 {
            builder = builder.nonterminal(format!("B{b}"), Sort::Bool);
        }
    }
    for b in 0..=budget {
        let lhs = level(b);
        for v in vars {
            builder = builder.production(&lhs, Symbol::Var((*v).to_string()), &[]);
        }
        builder = builder.production(&lhs, Symbol::Num(0), &[]);
        builder = builder.production(&lhs, Symbol::Num(1), &[]);
        builder = builder.production(&lhs, Symbol::Plus, &[&lhs, &lhs]);
        if b >= 1 {
            let guard = format!("B{b}");
            let lower = level(b - 1);
            builder = builder.production(&lhs, Symbol::IfThenElse, &[&guard, &lower, &lower]);
            builder = builder.production(&guard, Symbol::LessThan, &[&lower, &lower]);
        }
    }
    builder.build().expect("ite-limited grammar is well-formed")
}

/// A grammar whose constants are restricted to `consts` (the LimitedConst
/// restriction). `with_plus` controls whether sums may be built.
fn const_limited_grammar(vars: &[&str], consts: &[i64], with_plus: bool) -> Grammar {
    let mut builder = GrammarBuilder::new("Start")
        .nonterminal("Start", Sort::Int)
        .nonterminal("Cond", Sort::Bool);
    for v in vars {
        builder = builder.production("Start", Symbol::Var((*v).to_string()), &[]);
    }
    for c in consts {
        builder = builder.production("Start", Symbol::Num(*c), &[]);
    }
    if with_plus {
        builder = builder.production("Start", Symbol::Plus, &["Start", "Start"]);
    }
    builder = builder
        .production("Start", Symbol::IfThenElse, &["Cond", "Start", "Start"])
        .production("Cond", Symbol::LessThan, &["Start", "Start"])
        .production("Cond", Symbol::And, &["Cond", "Cond"]);
    builder
        .build()
        .expect("const-limited grammar is well-formed")
}

// ---------------------------------------------------------------------------
// Specifications of the underlying synthesis intents
// ---------------------------------------------------------------------------

/// `max_n`: f ≥ xᵢ for all i and f equals one of the xᵢ.
fn max_spec(n: usize) -> Spec {
    let names: Vec<String> = (1..=n).map(|i| format!("x{i}")).collect();
    let mut conj: Vec<Formula> = names.iter().map(|x| Formula::ge(out(), var(x))).collect();
    conj.push(Formula::or(
        names.iter().map(|x| Formula::eq(out(), var(x))),
    ));
    Spec::new(Formula::and(conj), names, Sort::Int)
}

/// `sum_n_t`: f = x₁+…+xₙ when that sum is below `t`, and 0 otherwise.
fn sum_spec(n: usize, threshold: i64) -> Spec {
    let names: Vec<String> = (1..=n).map(|i| format!("x{i}")).collect();
    let sum = names.iter().fold(LinearExpr::zero(), |acc, x| acc + var(x));
    let below = Formula::lt(sum.clone(), LinearExpr::constant(threshold));
    let formula = Formula::and(vec![
        Formula::implies(below.clone(), Formula::eq(out(), sum)),
        Formula::implies(
            Formula::not(below),
            Formula::eq(out(), LinearExpr::constant(0)),
        ),
    ]);
    Spec::new(formula, names, Sort::Int)
}

/// `search_n`: the index (0-based, as an integer) of the first slot of a
/// sorted tuple `x₁ < … < xₙ` that a key `k` fits before.
fn search_spec(n: usize) -> Spec {
    let mut names: Vec<String> = (1..=n).map(|i| format!("x{i}")).collect();
    names.push("k".to_string());
    let mut conj = Vec::new();
    // k < x1 → f = 0 ; xn < k → f = n ; xi < k < x(i+1) → f = i
    conj.push(Formula::implies(
        Formula::lt(var("k"), var("x1")),
        Formula::eq(out(), LinearExpr::constant(0)),
    ));
    conj.push(Formula::implies(
        Formula::lt(var(&format!("x{n}")), var("k")),
        Formula::eq(out(), LinearExpr::constant(n as i64)),
    ));
    for i in 1..n {
        conj.push(Formula::implies(
            Formula::and(vec![
                Formula::lt(var(&format!("x{i}")), var("k")),
                Formula::lt(var("k"), var(&format!("x{}", i + 1))),
            ]),
            Formula::eq(out(), LinearExpr::constant(i as i64)),
        ));
    }
    Spec::new(Formula::and(conj), names, Sort::Int)
}

/// `guard_i`: a guarded linear function, `f = x + c` below a threshold and
/// `f = y` above it.
fn guard_spec(offset: i64, threshold: i64) -> Spec {
    let below = Formula::lt(var("x"), LinearExpr::constant(threshold));
    let formula = Formula::and(vec![
        Formula::implies(
            below.clone(),
            Formula::eq(out(), var("x") + LinearExpr::constant(offset)),
        ),
        Formula::implies(Formula::not(below), Formula::eq(out(), var("y"))),
    ]);
    Spec::new(formula, vec!["x".to_string(), "y".to_string()], Sort::Int)
}

/// `plane_i`: a plain linear target with large coefficients, `f = a·x + b·y`.
fn plane_spec(a: i64, b: i64) -> Spec {
    Spec::output_equals(
        var("x").scale(a) + var("y").scale(b),
        vec!["x".to_string(), "y".to_string()],
    )
}

/// `ite_i`: a two-branch conditional target on a single variable.
fn ite_spec(threshold: i64, then_coeff: i64, else_offset: i64) -> Spec {
    let below = Formula::lt(var("x"), LinearExpr::constant(threshold));
    let formula = Formula::and(vec![
        Formula::implies(
            below.clone(),
            Formula::eq(out(), var("x").scale(then_coeff)),
        ),
        Formula::implies(
            Formula::not(below),
            Formula::eq(out(), var("x") + LinearExpr::constant(else_offset)),
        ),
    ]);
    Spec::new(formula, vec!["x".to_string()], Sort::Int)
}

/// `example_i` / `mpg_example_i`: small linear targets over several inputs.
fn example_spec(num_vars: usize, coeff: i64, constant: i64) -> Spec {
    let names: Vec<String> = (1..=num_vars).map(|i| format!("x{i}")).collect();
    let rhs = names.iter().fold(LinearExpr::constant(constant), |acc, x| {
        acc + var(x).scale(coeff)
    });
    Spec::new(Formula::eq(out(), rhs), names, Sort::Int)
}

// ---------------------------------------------------------------------------
// Example-set helpers
// ---------------------------------------------------------------------------

fn examples_1d(values: &[i64]) -> ExampleSet {
    ExampleSet::for_single_var("x", values.iter().copied())
}

fn examples_nd(names: &[&str], rows: &[&[i64]]) -> ExampleSet {
    ExampleSet::from_examples(
        rows.iter()
            .map(|row| Example::from_pairs(names.iter().zip(row.iter()).map(|(n, v)| (*n, *v)))),
    )
}

// ---------------------------------------------------------------------------
// The three families
// ---------------------------------------------------------------------------

/// The 30 LimitedPlus benchmarks (grammar allows one `Plus` too few).
pub fn limited_plus() -> Vec<Benchmark> {
    let mut out_benchmarks = Vec::new();
    let xy = ["x", "y"];
    let xyz = ["x", "y", "z"];

    // guard1-4: guarded targets whose branches need budget+1 additions.
    for (i, (budget, offset, threshold)) in [(2usize, 4i64, 2i64), (3, 5, 3), (4, 6, 2), (4, 7, 5)]
        .iter()
        .enumerate()
    {
        let grammar = plus_limited_grammar(&xyz, *budget, true);
        let problem = Problem::new("", grammar, guard_spec(*offset, *threshold));
        let examples = examples_nd(&["x", "y", "z"], &[&[0, 9, 0], &[1, 9, 1]]);
        out_benchmarks.push(benchmark(
            &format!("plus_guard{}", i + 1),
            Family::LimitedPlus,
            problem,
            examples,
        ));
    }
    // plane1-3 (and extra plane4-6): linear targets a·x + b·y with growing a+b.
    for (i, (budget, a, b)) in [
        (1usize, 2i64, 1i64),
        (6, 5, 3),
        (10, 8, 4),
        (3, 3, 2),
        (4, 4, 2),
        (5, 4, 3),
    ]
    .iter()
    .enumerate()
    {
        let grammar = plus_limited_grammar(&xy, *budget, false);
        let problem = Problem::new("", grammar, plane_spec(*a, *b));
        let examples = examples_nd(&["x", "y"], &[&[1, 1], &[1, 2]]);
        out_benchmarks.push(benchmark(
            &format!("plus_plane{}", i + 1),
            Family::LimitedPlus,
            problem,
            examples,
        ));
    }
    // ite1-4: conditional targets.
    for (i, (budget, threshold, coeff, offset)) in [
        (2usize, 0i64, 3i64, 4i64),
        (3, 2, 4, 5),
        (2, 1, 3, 5),
        (3, 0, 4, 6),
    ]
    .iter()
    .enumerate()
    {
        let grammar = plus_limited_grammar(&xyz, *budget, true);
        let problem = Problem::new("", grammar, ite_spec(*threshold, *coeff, *offset));
        let examples = examples_nd(&["x", "y", "z"], &[&[9, 0, 0], &[10, 0, 0]]);
        out_benchmarks.push(benchmark(
            &format!("plus_ite{}", i + 1),
            Family::LimitedPlus,
            problem,
            examples,
        ));
    }
    // sum_k_t: sums of k variables with threshold t.
    for (k, t) in [(2usize, 5i64), (2, 15), (3, 5), (3, 15)] {
        let names: Vec<String> = (1..=k).map(|i| format!("x{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let grammar = plus_limited_grammar(&name_refs, k - 1, true);
        let problem = Problem::new("", grammar, sum_spec(k, t));
        let rows: Vec<Vec<i64>> = vec![vec![1; k], vec![2; k]];
        let row_refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let examples = examples_nd(&name_refs, &row_refs);
        out_benchmarks.push(benchmark(
            &format!("plus_sum_{k}_{t}"),
            Family::LimitedPlus,
            problem,
            examples,
        ));
    }
    // search_k: sorted-search targets (need k additions of 1 to build index k).
    for k in 2..=7usize {
        let mut names: Vec<String> = (1..=k).map(|i| format!("x{i}")).collect();
        names.push("k".to_string());
        let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let grammar = plus_limited_grammar(&name_refs, k - 1, true);
        let problem = Problem::new("", grammar, search_spec(k));
        // one example where the key is larger than every element, forcing
        // the output k, which needs k ones to be summed
        let mut row: Vec<i64> = (1..=k as i64).map(|v| 10 * v).collect();
        row.push(10 * k as i64 + 5);
        let examples = examples_nd(&name_refs, &[&row]);
        out_benchmarks.push(benchmark(
            &format!("plus_search_{k}"),
            Family::LimitedPlus,
            problem,
            examples,
        ));
    }
    // example1-6: plain linear targets over one variable with excessive
    // coefficient sums.
    for i in 1..=6usize {
        let coeff = i as i64 + 1;
        let budget = i.min(4);
        let grammar = plus_limited_grammar(&["x"], budget, false);
        let problem = Problem::new("", grammar, example_spec(1, coeff, 1));
        let examples = examples_1d(&[1]);
        out_benchmarks.push(benchmark(
            &format!("plus_example{i}"),
            Family::LimitedPlus,
            problem,
            examples,
        ));
    }
    assert_eq!(out_benchmarks.len(), 30);
    out_benchmarks
}

/// The 57 LimitedIf benchmarks (grammar allows one `IfThenElse` too few).
pub fn limited_if() -> Vec<Benchmark> {
    let mut out_benchmarks = Vec::new();

    // max_n for n = 2..=15: max of n values needs n-1 conditionals; the
    // limited grammar allows n-2.
    for n in 2..=15usize {
        let names: Vec<String> = (1..=n).map(|i| format!("x{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let grammar = ite_limited_grammar(&name_refs, n - 2);
        let problem = Problem::new("", grammar, max_spec(n));
        // examples that no linear combination can match: permutations of a
        // one-hot maximum plus a row breaking constant solutions
        let mut rows: Vec<Vec<i64>> = Vec::new();
        let mut first = vec![0i64; n];
        first[0] = 1;
        let mut second = vec![0i64; n];
        second[n - 1] = 1;
        rows.push(first);
        rows.push(second);
        rows.push(vec![1i64; n]);
        rows.push({
            let mut r = vec![0i64; n];
            r[0] = 3;
            r
        });
        let row_refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let examples = examples_nd(&name_refs, &row_refs);
        out_benchmarks.push(benchmark(
            &format!("if_max{n}"),
            Family::LimitedIf,
            problem,
            examples,
        ));
    }
    // sum_k_t for k = 2..=5, t ∈ {5, 15}
    for k in 2..=5usize {
        for t in [5i64, 15] {
            let names: Vec<String> = (1..=k).map(|i| format!("x{i}")).collect();
            let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            let grammar = ite_limited_grammar(&name_refs, k - 2);
            let problem = Problem::new("", grammar, sum_spec(k, t));
            // one row below the threshold, one above, one breaking linearity
            let below = vec![0i64; k];
            let above = vec![t; k];
            let mixed = vec![1i64; k];
            let rows = [below.as_slice(), above.as_slice(), mixed.as_slice()];
            let examples = examples_nd(&name_refs, &rows);
            out_benchmarks.push(benchmark(
                &format!("if_sum_{k}_{t}"),
                Family::LimitedIf,
                problem,
                examples,
            ));
        }
    }
    // search_k for k = 2..=10
    for k in 2..=10usize {
        let mut names: Vec<String> = (1..=k).map(|i| format!("x{i}")).collect();
        names.push("k".to_string());
        let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let grammar = ite_limited_grammar(&name_refs, k - 1);
        let problem = Problem::new("", grammar, search_spec(k));
        let mut low: Vec<i64> = (1..=k as i64).map(|v| 10 * v).collect();
        low.push(0);
        let mut high: Vec<i64> = (1..=k as i64).map(|v| 10 * v).collect();
        high.push(10 * k as i64 + 5);
        let examples = examples_nd(&name_refs, &[&low, &high]);
        out_benchmarks.push(benchmark(
            &format!("if_search_{k}"),
            Family::LimitedIf,
            problem,
            examples,
        ));
    }
    // guard1-10
    for i in 1..=10usize {
        let grammar = ite_limited_grammar(&["x", "y"], 0);
        let problem = Problem::new("", grammar, guard_spec(i as i64 + 1, 2));
        let examples = examples_nd(&["x", "y"], &[&[0, 7], &[1, 7], &[5, 7], &[9, 7]]);
        out_benchmarks.push(benchmark(
            &format!("if_guard{i}"),
            Family::LimitedIf,
            problem,
            examples,
        ));
    }
    // example1-8
    for i in 1..=8usize {
        let grammar = ite_limited_grammar(&["x", "y"], 1);
        let problem = Problem::new("", grammar, guard_spec(2 * i as i64, 3 + i as i64));
        let examples = examples_nd(&["x", "y"], &[&[0, 9], &[1, 9], &[8, 9]]);
        out_benchmarks.push(benchmark(
            &format!("if_example{i}"),
            Family::LimitedIf,
            problem,
            examples,
        ));
    }
    // ite1-8
    for i in 1..=8usize {
        let grammar = ite_limited_grammar(&["x", "y", "z"], 1);
        let problem = Problem::new("", grammar, ite_spec(i as i64, 2, 3));
        let examples = examples_nd(&["x", "y", "z"], &[&[-3, 0, 0], &[0, 0, 0], &[7, 0, 0]]);
        out_benchmarks.push(benchmark(
            &format!("if_ite{i}"),
            Family::LimitedIf,
            problem,
            examples,
        ));
    }
    assert_eq!(out_benchmarks.len(), 57);
    out_benchmarks
}

/// The 45 LimitedConst benchmarks (restricted constants).
pub fn limited_const() -> Vec<Benchmark> {
    let mut out_benchmarks = Vec::new();

    // array_search_n for n = 2..=15: the grammar has no Plus and only the
    // constants 0 and 1, so indices ≥ 2 cannot be produced.
    for n in 2..=15usize {
        let mut names: Vec<String> = (1..=n).map(|i| format!("x{i}")).collect();
        names.push("k".to_string());
        let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let grammar = const_limited_grammar(&name_refs, &[0, 1], false);
        let problem = Problem::new("", grammar, search_spec(n));
        // a key larger than every element forces the output n ≥ 2
        let mut high: Vec<i64> = (1..=n as i64).map(|v| 10 * v).collect();
        high.push(10 * n as i64 + 5);
        let mut low: Vec<i64> = (1..=n as i64).map(|v| 10 * v).collect();
        low.push(0);
        let examples = examples_nd(&name_refs, &[&low, &high]);
        out_benchmarks.push(benchmark(
            &format!("array_search_{n}"),
            Family::LimitedConst,
            problem,
            examples,
        ));
    }
    // array_sum_n_t for n = 2..=10, t ∈ {5, 15}: the grammar has no Plus, so
    // the sum of two adjacent cells cannot be produced.
    for n in 2..=10usize {
        for t in [5i64, 15] {
            let names: Vec<String> = (1..=n).map(|i| format!("x{i}")).collect();
            let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            let grammar = const_limited_grammar(&name_refs, &[0, 1], false);
            let problem = Problem::new("", grammar, sum_spec(n, t));
            let below: Vec<i64> = (0..n as i64).collect(); // sums to < t for small n... choose 2s
            let small = vec![1i64; n];
            let large = vec![t; n];
            let rows = [small.as_slice(), large.as_slice(), below.as_slice()];
            let examples = examples_nd(&name_refs, &rows);
            out_benchmarks.push(benchmark(
                &format!("array_sum_{n}_{t}"),
                Family::LimitedConst,
                problem,
                examples,
            ));
        }
    }
    // mpg_* benchmarks: conditional linear programs whose required constants
    // are missing from the grammar ({0, 1} only, no sums).
    let mpg = |name: &str, spec: Spec, examples: ExampleSet, vars: &[&str]| {
        let grammar = const_limited_grammar(vars, &[0, 1], false);
        benchmark(
            name,
            Family::LimitedConst,
            Problem::new("", grammar, spec),
            examples,
        )
    };
    for i in 1..=5usize {
        out_benchmarks.push(mpg(
            &format!("mpg_example{i}"),
            // f = x + y - i  (the constant -i is not constructible)
            Spec::new(
                Formula::eq(out(), var("x") + var("y") - LinearExpr::constant(i as i64)),
                vec!["x".to_string(), "y".to_string()],
                Sort::Int,
            ),
            examples_nd(&["x", "y"], &[&[0, 0]]),
            &["x", "y"],
        ));
    }
    for i in 1..=4usize {
        out_benchmarks.push(mpg(
            &format!("mpg_guard{i}"),
            guard_spec(-(i as i64) - 1, 0),
            examples_nd(&["x", "y"], &[&[-5, 3], &[-1, 3], &[4, 3]]),
            &["x", "y"],
        ));
    }
    for i in 1..=2usize {
        out_benchmarks.push(mpg(
            &format!("mpg_ite{i}"),
            ite_spec(0, 1, -(2 + i as i64)),
            examples_nd(&["x", "y"], &[&[4, 0]]),
            &["x", "y"],
        ));
    }
    for i in 2..=3usize {
        out_benchmarks.push(mpg(
            &format!("mpg_plane{i}"),
            Spec::new(
                Formula::eq(out(), var("x") - LinearExpr::constant(i as i64)),
                vec!["x".to_string(), "y".to_string()],
                Sort::Int,
            ),
            examples_nd(&["x", "y"], &[&[0, 0]]),
            &["x", "y"],
        ));
    }
    assert_eq!(out_benchmarks.len(), 45);
    out_benchmarks
}

/// All 132 benchmarks of the evaluation.
pub fn all() -> Vec<Benchmark> {
    let mut out_benchmarks = limited_plus();
    out_benchmarks.extend(limited_if());
    out_benchmarks.extend(limited_const());
    out_benchmarks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plus_limited_grammar_counts_additions() {
        // budget 1 over {x}: terms have at most 2 leaves, so the value on
        // x = 1 is at most 2
        let g = plus_limited_grammar(&["x"], 1, false);
        let examples = ExampleSet::for_single_var("x", [1]);
        for t in g.terms_up_to_size(g.start(), 7, 200) {
            let v = t.eval_on(&examples).unwrap().as_i64(0);
            assert!(v <= 2, "term {t} evaluates to {v} > 2");
        }
    }

    #[test]
    fn ite_limited_grammar_shapes() {
        // the max2 limited grammar has a single nonterminal and 5 productions
        let g = ite_limited_grammar(&["x", "y"], 0);
        assert_eq!(g.num_nonterminals(), 1);
        assert_eq!(g.num_productions(), 5);
        assert_eq!(g.variables().len(), 2);
        // the max3 limited grammar has 3 nonterminals
        let g3 = ite_limited_grammar(&["x", "y", "z"], 1);
        assert_eq!(g3.num_nonterminals(), 3);
        assert!(g3.has_ite());
    }

    #[test]
    fn const_limited_grammar_shapes() {
        let g = const_limited_grammar(&["x1", "x2", "k"], &[0, 1], false);
        assert_eq!(g.num_nonterminals(), 2);
        assert_eq!(g.variables().len(), 3);
        assert!(!g.is_lia());
    }

    #[test]
    fn specs_evaluate_sensibly() {
        let max2 = max_spec(2);
        assert!(max2.holds(&Example::from_pairs([("x1", 3), ("x2", 7)]), 7));
        assert!(!max2.holds(&Example::from_pairs([("x1", 3), ("x2", 7)]), 3));
        let sum = sum_spec(2, 5);
        assert!(sum.holds(&Example::from_pairs([("x1", 1), ("x2", 2)]), 3));
        assert!(sum.holds(&Example::from_pairs([("x1", 4), ("x2", 4)]), 0));
        let search = search_spec(2);
        assert!(search.holds(&Example::from_pairs([("x1", 10), ("x2", 20), ("k", 15)]), 1));
        assert!(search.holds(&Example::from_pairs([("x1", 10), ("x2", 20), ("k", 25)]), 2));
        assert!(search.holds(&Example::from_pairs([("x1", 10), ("x2", 20), ("k", 5)]), 0));
    }
}
