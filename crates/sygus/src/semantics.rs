//! The concrete semantics `⟦·⟧` and its example-vector lifting `⟦·⟧_E`
//! (Ex. 3.6 for LIA, §6.1 for CLIA).

use crate::example::{Example, ExampleSet, Output};
use crate::term::{Sort, Symbol, Term};
use crate::SygusError;

/// The value of a term on a single input example.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Value {
    /// An integer value.
    Int(i64),
    /// A Boolean value.
    Bool(bool),
}

impl Value {
    /// The sort of the value.
    pub fn sort(&self) -> Sort {
        match self {
            Value::Int(_) => Sort::Int,
            Value::Bool(_) => Sort::Bool,
        }
    }

    /// The integer content (Booleans encode as 0/1).
    pub fn as_i64(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            Value::Bool(b) => i64::from(*b),
        }
    }

    fn expect_int(&self) -> Result<i64, SygusError> {
        match self {
            Value::Int(v) => Ok(*v),
            Value::Bool(_) => Err(SygusError::EvalError(
                "expected an integer value, got a Boolean".to_string(),
            )),
        }
    }

    fn expect_bool(&self) -> Result<bool, SygusError> {
        match self {
            Value::Bool(b) => Ok(*b),
            Value::Int(_) => Err(SygusError::EvalError(
                "expected a Boolean value, got an integer".to_string(),
            )),
        }
    }
}

impl Term {
    /// Evaluates the term on a single input example (`⟦e⟧(i)`).
    ///
    /// # Errors
    /// Returns an error if an input variable is not bound by the example.
    pub fn eval(&self, input: &Example) -> Result<Value, SygusError> {
        let kids: Vec<Value> = self
            .children()
            .iter()
            .map(|c| c.eval(input))
            .collect::<Result<_, _>>()?;
        match self.symbol() {
            Symbol::Num(c) => Ok(Value::Int(*c)),
            Symbol::Var(x) => input.get(x).map(Value::Int).ok_or_else(|| {
                SygusError::EvalError(format!("input variable {x} is not bound by {input}"))
            }),
            Symbol::NegVar(x) => input.get(x).map(|v| Value::Int(-v)).ok_or_else(|| {
                SygusError::EvalError(format!("input variable {x} is not bound by {input}"))
            }),
            Symbol::Plus => {
                let mut acc = 0i64;
                for k in &kids {
                    acc += k.expect_int()?;
                }
                Ok(Value::Int(acc))
            }
            Symbol::Minus => Ok(Value::Int(kids[0].expect_int()? - kids[1].expect_int()?)),
            Symbol::IfThenElse => {
                if kids[0].expect_bool()? {
                    Ok(Value::Int(kids[1].expect_int()?))
                } else {
                    Ok(Value::Int(kids[2].expect_int()?))
                }
            }
            Symbol::And => Ok(Value::Bool(
                kids[0].expect_bool()? && kids[1].expect_bool()?,
            )),
            Symbol::Or => Ok(Value::Bool(
                kids[0].expect_bool()? || kids[1].expect_bool()?,
            )),
            Symbol::Not => Ok(Value::Bool(!kids[0].expect_bool()?)),
            Symbol::LessThan => Ok(Value::Bool(kids[0].expect_int()? < kids[1].expect_int()?)),
            Symbol::Equal => Ok(Value::Bool(kids[0].expect_int()? == kids[1].expect_int()?)),
        }
    }

    /// Evaluates the term on every example of `E`, producing the output
    /// vector `⟦e⟧_E = ⟨⟦e⟧(i₁), …, ⟦e⟧(iₙ)⟩` (Def. 3.4).
    ///
    /// # Errors
    /// Returns an error if any example misses an input variable.
    pub fn eval_on(&self, examples: &ExampleSet) -> Result<Output, SygusError> {
        match self.sort() {
            Sort::Int => {
                let mut out = Vec::with_capacity(examples.len());
                for e in examples.iter() {
                    out.push(self.eval(e)?.expect_int()?);
                }
                Ok(Output::Int(out))
            }
            Sort::Bool => {
                let mut out = Vec::with_capacity(examples.len());
                for e in examples.iter() {
                    out.push(self.eval(e)?.expect_bool()?);
                }
                Ok(Output::Bool(out))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn examples() -> ExampleSet {
        ExampleSet::for_single_var("x", [1, 2])
    }

    #[test]
    fn lia_semantics() {
        // (x + x + x) on ⟨1, 2⟩ = (3, 6)
        let t = Term::apply(
            Symbol::Plus,
            vec![Term::var("x"), Term::var("x"), Term::var("x")],
        )
        .unwrap();
        assert_eq!(t.eval_on(&examples()).unwrap(), Output::Int(vec![3, 6]));
        // Minus and NegVar
        let m = Term::minus(Term::num(10), Term::var("x"));
        assert_eq!(m.eval_on(&examples()).unwrap(), Output::Int(vec![9, 8]));
        let n = Term::neg_var("x");
        assert_eq!(n.eval_on(&examples()).unwrap(), Output::Int(vec![-1, -2]));
    }

    #[test]
    fn clia_semantics() {
        // ite(x < 2, 0, x + x) on ⟨1, 2⟩ = (0, 4)
        let t = Term::ite(
            Term::less_than(Term::var("x"), Term::num(2)),
            Term::num(0),
            Term::plus(Term::var("x"), Term::var("x")),
        )
        .unwrap();
        assert_eq!(t.eval_on(&examples()).unwrap(), Output::Int(vec![0, 4]));
    }

    #[test]
    fn boolean_semantics() {
        // (x < 2) and not(x < 1)  on ⟨1, 2⟩ = (t, f) and (t, t) = (t, f)
        let t = Term::apply(
            Symbol::And,
            vec![
                Term::less_than(Term::var("x"), Term::num(2)),
                Term::apply(
                    Symbol::Not,
                    vec![Term::less_than(Term::var("x"), Term::num(1))],
                )
                .unwrap(),
            ],
        )
        .unwrap();
        assert_eq!(
            t.eval_on(&examples()).unwrap(),
            Output::Bool(vec![true, false])
        );
    }

    #[test]
    fn equal_and_or() {
        let t = Term::apply(
            Symbol::Or,
            vec![
                Term::apply(Symbol::Equal, vec![Term::var("x"), Term::num(1)]).unwrap(),
                Term::apply(Symbol::Equal, vec![Term::var("x"), Term::num(3)]).unwrap(),
            ],
        )
        .unwrap();
        assert_eq!(
            t.eval_on(&examples()).unwrap(),
            Output::Bool(vec![true, false])
        );
    }

    #[test]
    fn missing_variable_errors() {
        let t = Term::var("y");
        assert!(t.eval_on(&examples()).is_err());
    }

    #[test]
    fn paper_section2_candidate() {
        // Plus(Var(x),Var(x), Plus(Var(x),Var(x),Num(0))) is correct on i1=1
        // for the spec f(x) = 2x+2 (output 4), but wrong on i2=2 (6 ≠ 8... the
        // paper's G2 discussion: it produces 4 on x=1 and 8 on x=2; the spec
        // wants 4 and 6).
        let t = Term::apply(
            Symbol::Plus,
            vec![
                Term::var("x"),
                Term::var("x"),
                Term::apply(
                    Symbol::Plus,
                    vec![Term::var("x"), Term::var("x"), Term::num(0)],
                )
                .unwrap(),
            ],
        )
        .unwrap();
        assert_eq!(t.eval_on(&examples()).unwrap(), Output::Int(vec![4, 8]));
    }
}
