; deep_plus — exported by `cargo run --example export_corpus`
(set-logic LIA)
(synth-fun f ((x Int)) Int
  ((S5 Int ((+ S0 S4) (+ S1 S3) (+ S2 S2) (+ S3 S1) (+ S4 S0) (+ S0 S3) (+ S1 S2) (+ S2 S1) (+ S3 S0) (+ S0 S2) (+ S1 S1) (+ S2 S0) (+ S0 S1) (+ S1 S0) (+ S0 S0) x 0))
  (S0 Int (x 0))
  (S1 Int ((+ S0 S0) x 0))
  (S2 Int ((+ S0 S1) (+ S1 S0) (+ S0 S0) x 0))
  (S3 Int ((+ S0 S2) (+ S1 S1) (+ S2 S0) (+ S0 S1) (+ S1 S0) (+ S0 S0) x 0))
  (S4 Int ((+ S0 S3) (+ S1 S2) (+ S2 S1) (+ S3 S0) (+ S0 S2) (+ S1 S1) (+ S2 S0) (+ S0 S1) (+ S1 S0) (+ S0 S0) x 0))))
(declare-var x Int)
(constraint (= (f x) (* 7 x)))
(check-synth)
