//! A blocking client for the daemon's framed protocol.
//!
//! One [`Client`] owns one connection and multiplexes requests over it
//! sequentially (one frame out, one frame in). The bench-serve load
//! generator opens one client per simulated worker.

use crate::daemon::Endpoint;
use crate::protocol::{read_frame, write_frame, FrameError, Request, Response};
use runner::Json;
use std::io::{self, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::time::{Duration, Instant};

/// What a request can fail with on the client side (server-side failures
/// arrive as [`Response`]s with `status: "error"`, not as `ClientError`s).
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed or closed mid-exchange.
    Io(io::Error),
    /// The server closed the connection instead of answering.
    ConnectionClosed,
    /// The server's reply frame was not a valid response.
    MalformedResponse(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::ConnectionClosed => write!(f, "the server closed the connection"),
            ClientError::MalformedResponse(msg) => write!(f, "malformed response: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> ClientError {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            FrameError::TooLarge(len) => ClientError::MalformedResponse(format!(
                "the server sent an oversized {len}-byte frame"
            )),
        }
    }
}

enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A blocking connection to the daemon; see the [module docs](self).
pub struct Client {
    stream: Stream,
}

impl Client {
    /// Connects to a daemon endpoint.
    ///
    /// # Errors
    /// Propagates connection errors (refused, missing socket file, …).
    pub fn connect(endpoint: &Endpoint) -> io::Result<Client> {
        let stream = match endpoint {
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr)?;
                // Frames go out as header + payload; Nagle would hold
                // the payload for the peer's delayed ACK.
                stream.set_nodelay(true)?;
                Stream::Tcp(stream)
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => Stream::Unix(UnixStream::connect(path)?),
        };
        Ok(Client { stream })
    }

    /// Connects, retrying on refusal until `budget` elapses — for racing
    /// a daemon that is still binding its socket.
    ///
    /// # Errors
    /// Returns the last connection error once the budget is exhausted.
    pub fn connect_retry(endpoint: &Endpoint, budget: Duration) -> io::Result<Client> {
        let deadline = Instant::now() + budget;
        loop {
            match Client::connect(endpoint) {
                Ok(client) => return Ok(client),
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    /// See [`ClientError`]; server-side failures are `Ok` responses with
    /// an error status.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        let payload = request.to_json().to_string_pretty();
        write_frame(&mut self.stream, payload.as_bytes())?;
        let frame = read_frame(&mut self.stream, crate::protocol::DEFAULT_MAX_FRAME_BYTES)?
            .ok_or(ClientError::ConnectionClosed)?;
        let text = std::str::from_utf8(&frame)
            .map_err(|e| ClientError::MalformedResponse(e.to_string()))?;
        let json = Json::parse(text).map_err(|e| ClientError::MalformedResponse(e.to_string()))?;
        Response::from_json(&json).map_err(ClientError::MalformedResponse)
    }

    /// Solves one SyGuS-IF problem under the server's default deadline.
    ///
    /// # Errors
    /// See [`Client::request`].
    pub fn solve(&mut self, id: &str, problem: &str) -> Result<Response, ClientError> {
        self.request(&Request::solve(id, problem))
    }

    /// Round-trips a `ping`.
    ///
    /// # Errors
    /// See [`Client::request`].
    pub fn ping(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::plain(crate::protocol::Op::Ping, "ping"))
    }

    /// Fetches the server's counters.
    ///
    /// # Errors
    /// See [`Client::request`].
    pub fn stats(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::plain(crate::protocol::Op::Stats, "stats"))
    }

    /// Fetches the server's metrics in Prometheus text exposition format
    /// (the same payload the `--metrics-addr` scrape listener serves).
    ///
    /// # Errors
    /// See [`Client::request`].
    pub fn metrics(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::plain(crate::protocol::Op::Metrics, "metrics"))
    }

    /// Asks the daemon to shut down (acknowledged before the accept loop
    /// exits).
    ///
    /// # Errors
    /// See [`Client::request`].
    pub fn shutdown(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::plain(crate::protocol::Op::Shutdown, "shutdown"))
    }
}
