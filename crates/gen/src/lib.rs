//! `gen` — a deterministically seeded SyGuS problem generator and the
//! oracles of a differential fuzzing sweep.
//!
//! The reproduction's engines (`nay`, `nope`, and their portfolio) were
//! validated against hand-ported paper benchmarks; this crate supplies the
//! *workload-production* layer that scales validation to corpus size:
//!
//! * [`rng`] — a `std`-only SplitMix64 + xorshift128+ random source; no
//!   `rand` dependency on the hot path, byte-stable across platforms,
//! * [`families`] — the catalogue of parameterized problem families
//!   ([`Family`]) and their scaling knobs ([`Scale`]): grammar depth,
//!   constant magnitude, example count, guard/ite nesting, and a
//!   deliberate realizable/unrealizable skew ([`Expectation`]),
//! * [`builder`] — per-family construction with airtight by-construction
//!   verdicts and witness terms for the realizable class,
//! * [`stream`] — the seeded, fingerprint-deduplicated instance stream
//!   ([`ProblemStream`]), the pure sharded accessor
//!   ([`GenConfig::instance_at`] / [`ShardStream`]) behind
//!   constant-memory fuzz campaigns, and corpus materialization
//!   ([`write_corpus`]); instance `i` depends only on `(base_seed, i)`,
//!   so output is byte-identical for a fixed seed,
//! * [`oracle`] — the differential / expectation / witness soundness
//!   oracles ([`check_instance`]) and the print→parse round-trip gate
//!   ([`roundtrip_violation`]) that a fuzz sweep enforces per instance.
//!
//! The crate deliberately knows nothing about the engines: `bench`'s
//! `reproduce fuzz` maps engine outcomes into [`oracle::Claim`]s and this
//! crate judges them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod families;
pub mod oracle;
pub mod rng;
pub mod stream;

pub use builder::{build, Built};
pub use families::{Expectation, Family, FamilySpec, Scale, SignSkew, FAMILY_SPECS};
pub use oracle::{check_instance, roundtrip_violation, Claim, EngineClaim, Violation};
pub use rng::{instance_seed, GenRng};
pub use stream::{write_corpus, GenConfig, GeneratedInstance, ProblemStream, ShardStream};
