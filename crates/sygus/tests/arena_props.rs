//! Property-based tests for the hash-consing [`TermArena`]:
//!
//! * `Term → intern → extract` is the identity on arbitrary well-sorted
//!   terms (the arena is a lossless representation change),
//! * interning is idempotent — the same subtree always yields the same
//!   [`sygus::TermId`], through either construction route,
//! * the memoized [`TermArena::eval_id`] agrees with the tree-walking
//!   [`Term::eval_on`] on arbitrary terms and example sets.

use proptest::prelude::*;
use sygus::{Example, ExampleSet, Symbol, Term, TermArena};

/// Arbitrary well-sorted integer terms over `x` and `y`, covering every
/// operator of the CLIA alphabet (Boolean subterms appear under `ite`).
fn arb_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        (-9i64..=9).prop_map(Term::num),
        Just(Term::var("x")),
        Just(Term::var("y")),
        Just(Term::neg_var("x")),
    ];
    leaf.prop_recursive(4, 48, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Term::plus(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Term::minus(a, b)),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(a, b, c)| {
                Term::apply(Symbol::Plus, vec![a, b, c]).expect("n-ary plus is well-sorted")
            }),
            // ite over a comparison guard, with and/or/not/equal mixed in
            (
                inner.clone(),
                inner.clone(),
                inner.clone(),
                inner.clone(),
                (0usize..4)
            )
                .prop_map(|(a, b, t, e, flavor)| {
                    let lt = Term::less_than(a.clone(), b.clone());
                    let eq = Term::apply(Symbol::Equal, vec![a, b]).expect("well-sorted");
                    let guard = match flavor {
                        0 => lt,
                        1 => Term::apply(Symbol::Not, vec![lt]).expect("well-sorted"),
                        2 => Term::apply(Symbol::And, vec![lt, eq]).expect("well-sorted"),
                        _ => Term::apply(Symbol::Or, vec![lt, eq]).expect("well-sorted"),
                    };
                    Term::ite(guard, t, e).expect("well-sorted ite")
                }),
        ]
    })
}

fn arb_examples() -> impl Strategy<Value = ExampleSet> {
    proptest::collection::vec((-20i64..=20, -20i64..=20), 1..5).prop_map(|points| {
        ExampleSet::from_examples(
            points
                .into_iter()
                .map(|(x, y)| Example::from_pairs([("x", x), ("y", y)])),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `Term → intern → extract` is the identity.
    #[test]
    fn intern_extract_round_trip(term in arb_term()) {
        let mut arena = TermArena::new();
        let id = arena.intern_term(&term);
        let extracted = arena.extract(id);
        prop_assert_eq!(&extracted, &term);
        prop_assert_eq!(arena.size(id), term.size() as u64);
        prop_assert_eq!(arena.height(id), term.height());
    }

    /// Interning is idempotent: the same subtree always receives the same
    /// id — when interned twice, and when interned via its own extraction.
    #[test]
    fn interning_is_idempotent(term in arb_term()) {
        let mut arena = TermArena::new();
        let first = arena.intern_term(&term);
        let len_after_first = arena.len();
        prop_assert_eq!(arena.intern_term(&term), first);
        let extracted = arena.extract(first);
        prop_assert_eq!(arena.intern_term(&extracted), first);
        prop_assert_eq!(arena.len(), len_after_first, "re-interning adds no nodes");
    }

    /// Two structurally different routes to the same subterm share it: the
    /// arena's node count equals the number of *distinct* subterms.
    #[test]
    fn identical_subtrees_share_ids(term in arb_term()) {
        let mut arena = TermArena::new();
        let id = arena.intern_term(&term);
        // doubling the term as Plus(t, t) adds exactly one node
        let before = arena.len();
        let doubled = arena.plus2(id, id);
        prop_assert_eq!(arena.len(), before + 1);
        prop_assert_eq!(arena.children(doubled), &[id, id]);
    }

    /// The memoized id-keyed evaluation agrees with the owned-tree
    /// semantics, including across a memo invalidation.
    #[test]
    fn eval_id_matches_eval_on(term in arb_term(), examples in arb_examples()) {
        let mut arena = TermArena::new();
        let id = arena.intern_term(&term);
        prop_assert_eq!(
            arena.eval_id(id, &examples).unwrap(),
            term.eval_on(&examples).unwrap()
        );
        // a second, different example set (memo rebuild) stays correct
        let shifted = ExampleSet::from_examples(
            examples
                .iter()
                .map(|e| Example::from_pairs([("x", e.get("x").unwrap() + 1), ("y", e.get("y").unwrap())])),
        );
        prop_assert_eq!(
            arena.eval_id(id, &shifted).unwrap(),
            term.eval_on(&shifted).unwrap()
        );
    }
}
