//! The schema-versioned benchmark report and the regression comparator.
//!
//! A [`Report`] is what one sweep of the suite produces: one [`Entry`] per
//! (benchmark, tool) pair plus computed [`Aggregates`]. Entries are kept
//! sorted by `(benchmark, tool)` and objects serialize with a fixed key
//! order, so a report is deterministic: two sweeps that measure the same
//! verdicts produce byte-identical JSON after [`Report::canonicalized`]
//! (which zeroes the wall-clock fields) regardless of worker count.
//!
//! [`compare`] diffs two reports and is the engine of the CI perf gate: it
//! flags verdict flips, jobs that stopped completing, vanished benchmarks,
//! and slowdowns beyond a configurable threshold.

use crate::json::Json;
use crate::pool::JobStatus;
use std::fmt;

/// Version of the JSON layout; bump on any breaking change to the schema.
///
/// Version history:
/// * **1** — entries + aggregates (+ additive `tainted`/`family`/
///   per-family rollups).
/// * **2** — adds the optional top-level `throughput` object
///   ([`Throughput`]): sweep-level instances/sec, per family and total,
///   with elapsed wall-clock and worker/shard counts.
pub const SCHEMA_VERSION: u64 = 2;

/// Oldest schema version [`Report::from_json`] still reads. Version 2 is a
/// strict superset of version 1 (`throughput` is optional), so committed
/// v1 baselines keep parsing; they simply carry no throughput to gate on.
pub const MIN_SCHEMA_VERSION: u64 = 1;

/// Sweep-level throughput: how fast a fuzz campaign pushed instances
/// through the engines. A first-class, schema-versioned part of the report
/// (version 2+) so CI can gate on throughput regressions exactly like it
/// gates on per-benchmark slowdowns.
///
/// Rates are derived from one wall-clock measurement of the whole sweep
/// (`instances / elapsed`), not from summing per-job times — with W
/// workers the two differ by roughly a factor of W.
#[derive(Clone, Debug, PartialEq)]
pub struct Throughput {
    /// Wall-clock duration of the whole sweep, in milliseconds.
    pub elapsed_millis: f64,
    /// Worker threads that executed the sweep.
    pub workers: usize,
    /// Index-space shards the sweep was split into.
    pub shards: usize,
    /// Total instances pushed through the sweep.
    pub instances: u64,
    /// Total instances per wall-clock second.
    pub total_per_sec: f64,
    /// Instances per wall-clock second, per family (family name →
    /// rate). Family rates share the sweep's wall clock, so they sum to
    /// `total_per_sec`.
    pub per_family: std::collections::BTreeMap<String, f64>,
}

impl Throughput {
    /// Computes the throughput block from a sweep's wall clock and
    /// per-family instance counts (rates are instances per *second*; a
    /// zero elapsed time yields zero rates rather than infinities).
    pub fn from_counts(
        elapsed_millis: f64,
        workers: usize,
        shards: usize,
        family_instances: &std::collections::BTreeMap<String, u64>,
    ) -> Throughput {
        let secs = elapsed_millis / 1000.0;
        let rate = |n: u64| if secs > 0.0 { n as f64 / secs } else { 0.0 };
        let instances: u64 = family_instances.values().sum();
        Throughput {
            elapsed_millis,
            workers,
            shards,
            instances,
            total_per_sec: rate(instances),
            per_family: family_instances
                .iter()
                .map(|(family, &n)| (family.clone(), rate(n)))
                .collect(),
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("elapsed_millis".into(), Json::Num(self.elapsed_millis)),
            ("workers".into(), Json::Num(self.workers as f64)),
            ("shards".into(), Json::Num(self.shards as f64)),
            ("instances".into(), Json::Num(self.instances as f64)),
            ("instances_per_sec".into(), Json::Num(self.total_per_sec)),
            (
                "families".into(),
                Json::Obj(
                    self.per_family
                        .iter()
                        .map(|(name, rate)| (name.clone(), Json::Num(*rate)))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(value: &Json) -> Result<Throughput, String> {
        let num = |key: &str| {
            value
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("throughput is missing the `{key}` number"))
        };
        let per_family = match value.get("families") {
            None => std::collections::BTreeMap::new(),
            Some(families) => families
                .as_object()
                .ok_or("throughput `families` is not an object")?
                .iter()
                .map(|(name, rate)| {
                    rate.as_f64()
                        .map(|r| (name.clone(), r))
                        .ok_or_else(|| format!("throughput rate for `{name}` is not a number"))
                })
                .collect::<Result<_, _>>()?,
        };
        Ok(Throughput {
            elapsed_millis: num("elapsed_millis")?,
            workers: num("workers")? as usize,
            shards: num("shards")? as usize,
            instances: num("instances")? as u64,
            total_per_sec: num("instances_per_sec")?,
            per_family,
        })
    }
}

/// One (benchmark, tool) measurement.
#[derive(Clone, Debug, PartialEq)]
pub struct Entry {
    /// Benchmark name.
    pub benchmark: String,
    /// Tool name (`naySL`, `nayHorn`, `nope`).
    pub tool: String,
    /// How the job ended.
    pub status: JobStatus,
    /// Realizability verdict reported by the tool (`unrealizable`,
    /// `realizable`, `unknown`), or `-` when the job did not complete.
    pub verdict: String,
    /// Whether the tool proved unrealizability.
    pub proved: bool,
    /// Solver iterations (equation-solver rounds for nay, abstract-
    /// interpretation passes for nope); 0 when the job did not complete.
    pub iterations: u64,
    /// Wall-clock milliseconds.
    pub millis: f64,
    /// `true` when the job shared its sweep with an abandoned (timed-out)
    /// job thread, making its wall-clock time untrustworthy. Absent in
    /// reports written before this field existed; parsed as `false`.
    pub tainted: bool,
    /// The workload family the benchmark belongs to (e.g. a generated-
    /// instance family like `plus_mod`), or empty for standalone
    /// benchmarks. Families group entries in the per-family aggregates
    /// ([`Report::family_aggregates`]) and scope the missing-entry gate of
    /// [`compare`]: a family present in only one report never trips it.
    /// Additive field — absent in older reports, parsed as empty.
    pub family: String,
}

impl Entry {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("benchmark".into(), Json::Str(self.benchmark.clone())),
            ("tool".into(), Json::Str(self.tool.clone())),
            ("status".into(), Json::Str(self.status.as_str().into())),
            ("verdict".into(), Json::Str(self.verdict.clone())),
            ("proved".into(), Json::Bool(self.proved)),
            ("iterations".into(), Json::Num(self.iterations as f64)),
            ("millis".into(), Json::Num(self.millis)),
            ("tainted".into(), Json::Bool(self.tainted)),
        ];
        // Family is additive and only serialized when set, so family-less
        // reports keep their pre-family byte layout.
        if !self.family.is_empty() {
            fields.push(("family".into(), Json::Str(self.family.clone())));
        }
        Json::Obj(fields)
    }

    fn from_json(value: &Json) -> Result<Entry, String> {
        let field = |key: &str| {
            value
                .get(key)
                .ok_or_else(|| format!("entry is missing the `{key}` field"))
        };
        let status_name = field("status")?
            .as_str()
            .ok_or("`status` is not a string")?;
        Ok(Entry {
            benchmark: field("benchmark")?
                .as_str()
                .ok_or("`benchmark` is not a string")?
                .to_string(),
            tool: field("tool")?
                .as_str()
                .ok_or("`tool` is not a string")?
                .to_string(),
            status: JobStatus::parse(status_name)
                .ok_or_else(|| format!("unknown status `{status_name}`"))?,
            verdict: field("verdict")?
                .as_str()
                .ok_or("`verdict` is not a string")?
                .to_string(),
            proved: field("proved")?
                .as_bool()
                .ok_or("`proved` is not a boolean")?,
            iterations: field("iterations")?
                .as_u64()
                .ok_or("`iterations` is not an integer")?,
            millis: field("millis")?
                .as_f64()
                .ok_or("`millis` is not a number")?,
            // Additive field: reports written before taint tracking simply
            // lack it, and their entries are treated as untainted.
            tainted: value
                .get("tainted")
                .map(|t| t.as_bool().ok_or("`tainted` is not a boolean"))
                .transpose()?
                .unwrap_or(false),
            // Additive field: reports written before family tracking lack
            // it, and their entries are family-less.
            family: value
                .get("family")
                .map(|t| t.as_str().ok_or("`family` is not a string"))
                .transpose()?
                .unwrap_or("")
                .to_string(),
        })
    }

    fn key(&self) -> (&str, &str) {
        (self.benchmark.as_str(), self.tool.as_str())
    }
}

/// Suite-level totals, recomputed from the entries.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aggregates {
    /// Number of entries.
    pub total: usize,
    /// Entries that completed.
    pub ok: usize,
    /// Entries that exceeded the wall-clock budget.
    pub timed_out: usize,
    /// Entries whose job panicked.
    pub crashed: usize,
    /// Entries that proved unrealizability.
    pub proved: usize,
    /// Sum of all wall-clock milliseconds.
    pub total_millis: f64,
}

/// A full sweep of the benchmark suite.
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    /// The schema version the report was written with.
    pub schema_version: u64,
    /// Which suite ran (`quick` or `full`).
    pub suite: String,
    /// Per-(benchmark, tool) measurements, sorted by `(benchmark, tool)`.
    pub entries: Vec<Entry>,
    /// Sweep-level throughput, present for sweeps that measure it (the
    /// fuzz driver does; the fixed benchmark suites do not). Schema v2;
    /// absent from v1 reports.
    pub throughput: Option<Throughput>,
}

impl Report {
    /// Builds a report, sorting the entries into canonical order.
    pub fn new(suite: impl Into<String>, mut entries: Vec<Entry>) -> Report {
        entries.sort_by(|a, b| a.key().cmp(&b.key()));
        Report {
            schema_version: SCHEMA_VERSION,
            suite: suite.into(),
            entries,
            throughput: None,
        }
    }

    /// Attaches a sweep-level throughput measurement.
    pub fn with_throughput(mut self, throughput: Throughput) -> Report {
        self.throughput = Some(throughput);
        self
    }

    /// Recomputes the suite aggregates.
    pub fn aggregates(&self) -> Aggregates {
        let mut agg = Aggregates {
            total: self.entries.len(),
            ok: 0,
            timed_out: 0,
            crashed: 0,
            proved: 0,
            total_millis: 0.0,
        };
        for entry in &self.entries {
            match entry.status {
                JobStatus::Ok => agg.ok += 1,
                JobStatus::TimedOut => agg.timed_out += 1,
                JobStatus::Crashed => agg.crashed += 1,
            }
            agg.proved += usize::from(entry.proved);
            agg.total_millis += entry.millis;
        }
        agg
    }

    /// Finds the entry for a (benchmark, tool) pair.
    pub fn entry(&self, benchmark: &str, tool: &str) -> Option<&Entry> {
        self.entries.iter().find(|e| e.key() == (benchmark, tool))
    }

    /// Per-family aggregates over the entries that carry a family, in
    /// family order (single pass; family-less entries are not grouped).
    pub fn family_aggregates(&self) -> std::collections::BTreeMap<String, Aggregates> {
        let mut families: std::collections::BTreeMap<String, Aggregates> =
            std::collections::BTreeMap::new();
        for entry in self.entries.iter().filter(|e| !e.family.is_empty()) {
            let agg = families.entry(entry.family.clone()).or_insert(Aggregates {
                total: 0,
                ok: 0,
                timed_out: 0,
                crashed: 0,
                proved: 0,
                total_millis: 0.0,
            });
            agg.total += 1;
            match entry.status {
                JobStatus::Ok => agg.ok += 1,
                JobStatus::TimedOut => agg.timed_out += 1,
                JobStatus::Crashed => agg.crashed += 1,
            }
            agg.proved += usize::from(entry.proved);
            agg.total_millis += entry.millis;
        }
        families
    }

    /// `true` when some entry belongs to the given family.
    pub fn has_family(&self, family: &str) -> bool {
        self.entries.iter().any(|e| e.family == family)
    }

    /// The report with every wall-clock field zeroed: what is left is
    /// exactly the machine- and scheduling-independent content, so two runs
    /// with identical verdicts canonicalize to byte-identical JSON. The
    /// throughput block is dropped wholesale — every field in it is a
    /// wall-clock derivative (and worker/shard counts are scheduling
    /// choices, not content).
    pub fn canonicalized(&self) -> Report {
        let mut report = self.clone();
        for entry in &mut report.entries {
            entry.millis = 0.0;
        }
        report.throughput = None;
        report
    }

    /// Serializes to pretty-printed JSON (deterministic byte output).
    pub fn to_json(&self) -> String {
        let agg = self.aggregates();
        let agg_json = |agg: &Aggregates| {
            Json::Obj(vec![
                ("total".into(), Json::Num(agg.total as f64)),
                ("ok".into(), Json::Num(agg.ok as f64)),
                ("timed_out".into(), Json::Num(agg.timed_out as f64)),
                ("crashed".into(), Json::Num(agg.crashed as f64)),
                ("proved".into(), Json::Num(agg.proved as f64)),
                ("total_millis".into(), Json::Num(agg.total_millis)),
            ])
        };
        let mut fields = vec![
            (
                "schema_version".into(),
                Json::Num(self.schema_version as f64),
            ),
            ("suite".into(), Json::Str(self.suite.clone())),
            ("aggregates".into(), agg_json(&agg)),
        ];
        // Per-family rollups, present only for reports that track families
        // (additive, like Entry::family; parsing ignores and recomputes).
        let families = self.family_aggregates();
        if !families.is_empty() {
            fields.push((
                "families".into(),
                Json::Obj(
                    families
                        .iter()
                        .map(|(name, agg)| (name.clone(), agg_json(agg)))
                        .collect(),
                ),
            ));
        }
        // Sweep-level throughput (schema v2): only serialized when
        // measured, so throughput-less reports keep their v1-style layout.
        if let Some(throughput) = &self.throughput {
            fields.push(("throughput".into(), throughput.to_json()));
        }
        fields.push((
            "benchmarks".into(),
            Json::Arr(self.entries.iter().map(Entry::to_json).collect()),
        ));
        Json::Obj(fields).to_string_pretty()
    }

    /// Parses a report, validating the schema version. The stored
    /// aggregates are ignored (they are always recomputed from the entries).
    pub fn from_json(text: &str) -> Result<Report, String> {
        let root = Json::parse(text).map_err(|e| e.to_string())?;
        let version = root
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("report is missing `schema_version`")?;
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&version) {
            return Err(format!(
                "unsupported schema version {version} (this binary reads versions \
                 {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION})"
            ));
        }
        let suite = root
            .get("suite")
            .and_then(Json::as_str)
            .ok_or("report is missing `suite`")?
            .to_string();
        let entries = root
            .get("benchmarks")
            .and_then(Json::as_array)
            .ok_or("report is missing the `benchmarks` array")?
            .iter()
            .map(Entry::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let throughput = root
            .get("throughput")
            .map(Throughput::from_json)
            .transpose()?;
        let mut report = Report::new(suite, entries);
        report.throughput = throughput;
        Ok(report)
    }
}

/// Thresholds for [`compare`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompareConfig {
    /// A completed entry is a regression when its new time exceeds the old
    /// time by more than this percentage.
    pub threshold_pct: f64,
    /// Entries whose new time is below this floor are never flagged as
    /// slowdowns (shields sub-millisecond benchmarks from scheduler noise).
    pub min_millis: f64,
    /// Sweep throughput (total or per-family) is a regression when the new
    /// rate drops below the old rate by more than this percentage. The
    /// default is deliberately generous: CI runners are noisy 1–2-CPU
    /// machines, and the verdict/oracle gates catch correctness regardless
    /// — this gate only has to catch "the sweep got several times slower".
    pub throughput_drop_pct: f64,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig {
            threshold_pct: 25.0,
            min_millis: 50.0,
            throughput_drop_pct: 50.0,
        }
    }
}

/// What kind of regression [`compare`] found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegressionKind {
    /// The realizability verdict changed between the two reports.
    VerdictFlip,
    /// An entry that used to complete now times out or crashes.
    StatusChange,
    /// An entry got slower than the threshold allows.
    Slowdown,
    /// A (benchmark, tool) pair from the old report is gone.
    Missing,
    /// Sweep-level instances/sec (total or per-family) dropped below the
    /// configured fraction of the baseline rate.
    ThroughputDrop,
}

/// One regression found by [`compare`].
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// Benchmark name.
    pub benchmark: String,
    /// Tool name.
    pub tool: String,
    /// What regressed.
    pub kind: RegressionKind,
    /// Human-readable explanation with the numbers involved.
    pub detail: String,
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}: {}", self.benchmark, self.tool, self.detail)
    }
}

/// Diffs `new` against `old` and returns every regression. An empty result
/// means the gate passes; improvements (faster, newly solved, new entries)
/// are never flagged.
pub fn compare(old: &Report, new: &Report, config: &CompareConfig) -> Vec<Regression> {
    // A timed-out job's thread is abandoned, not killed (std has no thread
    // cancellation), so it keeps consuming CPU and inflates the measured
    // time of every job that runs after it. The pool records exactly which
    // jobs overlapped an abandoned thread (`Entry::tainted`); slowdown
    // comparisons are suppressed for those entries only, while entries that
    // finished before the first abandonment still gate. Entries from
    // reports written before taint tracking parse as untainted.
    let mut regressions = Vec::new();
    for old_entry in &old.entries {
        let regression = |kind, detail| Regression {
            benchmark: old_entry.benchmark.clone(),
            tool: old_entry.tool.clone(),
            kind,
            detail,
        };
        let Some(new_entry) = new.entry(&old_entry.benchmark, &old_entry.tool) else {
            // Family-scoped missing gate: entries of a family the other
            // report does not cover at all are *additive* differences
            // (e.g. a generator family added to — or not yet in — one
            // side's catalogue), not vanished benchmarks. Only an entry
            // whose family both reports know, or a family-less entry, can
            // go missing.
            if old_entry.family.is_empty() || new.has_family(&old_entry.family) {
                regressions.push(regression(
                    RegressionKind::Missing,
                    "entry missing from the new report".into(),
                ));
            }
            continue;
        };
        // Status first: an entry that stops completing is a StatusChange,
        // not a "verdict flip to -"; an entry that *starts* completing is an
        // improvement, never a regression, whatever its verdict reads.
        if old_entry.status == JobStatus::Ok && new_entry.status != JobStatus::Ok {
            regressions.push(regression(
                RegressionKind::StatusChange,
                format!("status changed: ok -> {}", new_entry.status.as_str()),
            ));
            continue;
        }
        let both_ok = old_entry.status == JobStatus::Ok && new_entry.status == JobStatus::Ok;
        if both_ok && new_entry.verdict != old_entry.verdict {
            regressions.push(regression(
                RegressionKind::VerdictFlip,
                format!(
                    "verdict flipped: {} -> {}",
                    old_entry.verdict, new_entry.verdict
                ),
            ));
            continue;
        }
        let above_floor = new_entry.millis >= config.min_millis;
        let budget = old_entry.millis * (1.0 + config.threshold_pct / 100.0);
        if !new_entry.tainted && both_ok && above_floor && new_entry.millis > budget {
            regressions.push(regression(
                RegressionKind::Slowdown,
                format!(
                    "slowed down {:.1}ms -> {:.1}ms (>{:.0}% over baseline)",
                    old_entry.millis, new_entry.millis, config.threshold_pct
                ),
            ));
        }
    }
    regressions.extend(compare_throughput(old, new, config));
    regressions
}

/// The throughput slice of the gate: diffs the two reports' [`Throughput`]
/// blocks (total rate plus every family both sides measured) and flags
/// drops beyond [`CompareConfig::throughput_drop_pct`]. Silently passes
/// when either report carries no throughput — a v1 baseline cannot gate a
/// v2 sweep — and never flags a rate the baseline measured at zero.
pub fn compare_throughput(old: &Report, new: &Report, config: &CompareConfig) -> Vec<Regression> {
    let (Some(old_tp), Some(new_tp)) = (&old.throughput, &new.throughput) else {
        return Vec::new();
    };
    let mut regressions = Vec::new();
    let mut check = |scope: &str, old_rate: f64, new_rate: f64| {
        let floor = old_rate * (1.0 - config.throughput_drop_pct / 100.0);
        if old_rate > 0.0 && new_rate < floor {
            regressions.push(Regression {
                benchmark: scope.to_string(),
                tool: "throughput".into(),
                kind: RegressionKind::ThroughputDrop,
                detail: format!(
                    "throughput dropped {:.1}/s -> {:.1}/s (>{:.0}% below baseline)",
                    old_rate, new_rate, config.throughput_drop_pct
                ),
            });
        }
    };
    check("sweep/total", old_tp.total_per_sec, new_tp.total_per_sec);
    for (family, &old_rate) in &old_tp.per_family {
        // Families only one side measured are additive differences, same
        // as the family-scoped Missing gate above.
        if let Some(&new_rate) = new_tp.per_family.get(family) {
            check(&format!("sweep/{family}"), old_rate, new_rate);
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(benchmark: &str, tool: &str, millis: f64) -> Entry {
        Entry {
            benchmark: benchmark.into(),
            tool: tool.into(),
            status: JobStatus::Ok,
            verdict: "unrealizable".into(),
            proved: true,
            iterations: 3,
            millis,
            tainted: false,
            family: String::new(),
        }
    }

    fn family_entry(benchmark: &str, tool: &str, family: &str) -> Entry {
        Entry {
            family: family.into(),
            ..entry(benchmark, tool, 10.0)
        }
    }

    fn sample() -> Report {
        Report::new(
            "quick",
            vec![
                entry("mpg_ite2", "naySL", 120.0),
                entry("mpg_ite2", "nope", 900.0),
                Entry {
                    status: JobStatus::TimedOut,
                    verdict: "-".into(),
                    proved: false,
                    iterations: 0,
                    tainted: true,
                    ..entry("plane1", "nayHorn", 5000.0)
                },
            ],
        )
    }

    #[test]
    fn json_round_trips_exactly() {
        let report = sample();
        let text = report.to_json();
        let parsed = Report::from_json(&text).expect("parse back");
        assert_eq!(parsed, report);
        assert_eq!(parsed.to_json(), text);
    }

    #[test]
    fn entries_are_sorted_canonically() {
        let report = Report::new(
            "quick",
            vec![
                entry("zz", "nope", 1.0),
                entry("aa", "nope", 1.0),
                entry("aa", "naySL", 1.0),
            ],
        );
        let keys: Vec<_> = report
            .entries
            .iter()
            .map(|e| (e.benchmark.clone(), e.tool.clone()))
            .collect();
        assert_eq!(
            keys,
            vec![
                ("aa".into(), "naySL".into()),
                ("aa".into(), "nope".into()),
                ("zz".into(), "nope".into())
            ] as Vec<(String, String)>
        );
    }

    #[test]
    fn aggregates_count_statuses_and_proofs() {
        let agg = sample().aggregates();
        assert_eq!(agg.total, 3);
        assert_eq!(agg.ok, 2);
        assert_eq!(agg.timed_out, 1);
        assert_eq!(agg.crashed, 0);
        assert_eq!(agg.proved, 2);
        assert!(agg.total_millis > 6000.0);
    }

    #[test]
    fn canonicalization_zeroes_time_but_keeps_verdicts() {
        let canon = sample().canonicalized();
        assert!(canon.entries.iter().all(|e| e.millis == 0.0));
        assert_eq!(canon.entries.len(), 3);
        assert_eq!(canon.aggregates().proved, 2);
    }

    #[test]
    fn comparing_a_report_with_itself_is_clean() {
        let report = sample();
        assert!(compare(&report, &report, &CompareConfig::default()).is_empty());
    }

    fn all_ok() -> Report {
        Report::new(
            "quick",
            vec![
                entry("mpg_ite2", "naySL", 120.0),
                entry("mpg_ite2", "nope", 900.0),
            ],
        )
    }

    #[test]
    fn verdict_flips_and_slowdowns_are_flagged() {
        let old = all_ok();
        let mut new = all_ok();
        new.entries[0].verdict = "unknown".into();
        new.entries[0].proved = false;
        assert_eq!(new.entries[1].tool, "nope");
        new.entries[1].millis = 2000.0;
        let regressions = compare(&old, &new, &CompareConfig::default());
        assert_eq!(regressions.len(), 2);
        assert!(regressions
            .iter()
            .any(|r| r.kind == RegressionKind::VerdictFlip));
        assert!(regressions
            .iter()
            .any(|r| r.kind == RegressionKind::Slowdown));
    }

    #[test]
    fn tainted_entries_suppress_slowdown_noise() {
        // An entry that shared its sweep with an abandoned job thread has an
        // inflated wall clock: the timeout itself gates (StatusChange), but
        // no Slowdown finding piles on top for the tainted entry.
        let mut old = all_ok();
        old.entries.push(entry("plane1", "nayHorn", 100.0));
        let mut new = all_ok();
        new.entries[1].millis = 9000.0; // would be a Slowdown on a clean run
        new.entries[1].tainted = true; // overlapped the abandoned thread
        new.entries.push(Entry {
            status: JobStatus::TimedOut,
            verdict: "-".into(),
            proved: false,
            iterations: 0,
            tainted: true,
            ..entry("plane1", "nayHorn", 5000.0)
        });
        let new = Report::new("quick", new.entries);
        let regressions = compare(&old, &new, &CompareConfig::default());
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].kind, RegressionKind::StatusChange);
    }

    #[test]
    fn untainted_entries_still_gate_despite_a_timeout_elsewhere() {
        // The fix over the old behaviour: a slowdown on an entry that
        // finished *before* any abandonment is a real regression even when
        // some other entry in the same report timed out.
        let mut old = all_ok();
        old.entries.push(entry("plane1", "nayHorn", 100.0));
        let mut new = all_ok();
        new.entries[1].millis = 9000.0; // Slowdown, untainted
        new.entries.push(Entry {
            status: JobStatus::TimedOut,
            verdict: "-".into(),
            proved: false,
            iterations: 0,
            tainted: true,
            ..entry("plane1", "nayHorn", 5000.0)
        });
        let new = Report::new("quick", new.entries);
        let regressions = compare(&old, &new, &CompareConfig::default());
        assert_eq!(regressions.len(), 2);
        assert!(regressions
            .iter()
            .any(|r| r.kind == RegressionKind::Slowdown));
        assert!(regressions
            .iter()
            .any(|r| r.kind == RegressionKind::StatusChange));
    }

    #[test]
    fn reports_without_the_tainted_field_parse_as_untainted() {
        let mut text = sample().to_json();
        // Strip every "tainted" line, simulating a pre-taint-tracking report.
        text = text
            .lines()
            .filter(|l| !l.contains("\"tainted\""))
            .collect::<Vec<_>>()
            .join("\n");
        // The previous line now ends with a trailing comma before `}`.
        text = text.replace(",\n    }", "\n    }");
        let parsed = Report::from_json(&text).expect("parse legacy report");
        assert!(parsed.entries.iter().all(|e| !e.tainted));
    }

    #[test]
    fn small_absolute_times_are_shielded_from_noise() {
        let old = Report::new("quick", vec![entry("tiny", "naySL", 1.0)]);
        let new = Report::new("quick", vec![entry("tiny", "naySL", 3.0)]);
        // 3x slower but under the 50ms floor: not a regression.
        assert!(compare(&old, &new, &CompareConfig::default()).is_empty());
        // With the floor lowered it is flagged.
        let config = CompareConfig {
            threshold_pct: 25.0,
            min_millis: 0.0,
            ..CompareConfig::default()
        };
        assert_eq!(compare(&old, &new, &config).len(), 1);
    }

    #[test]
    fn missing_entries_and_status_changes_are_flagged() {
        let old = sample();
        let mut new = sample();
        new.entries.remove(2);
        new.entries[0].status = JobStatus::Crashed;
        new.entries[0].verdict = "-".into();
        new.entries[0].proved = false;
        let regressions = compare(&old, &new, &CompareConfig::default());
        assert!(regressions
            .iter()
            .any(|r| r.kind == RegressionKind::Missing));
        // The crashed entry's verdict also changed, which reports first.
        assert!(regressions.iter().any(
            |r| r.kind == RegressionKind::VerdictFlip || r.kind == RegressionKind::StatusChange
        ));
    }

    #[test]
    fn recovering_entries_are_improvements_not_regressions() {
        // Old: timed out (verdict "-"). New: completes and proves. The
        // verdicts differ, but an entry that *starts* completing must never
        // be flagged.
        let old = Report::new(
            "quick",
            vec![Entry {
                status: JobStatus::TimedOut,
                verdict: "-".into(),
                proved: false,
                iterations: 0,
                ..entry("plane1", "naySL", 5000.0)
            }],
        );
        let new = Report::new("quick", vec![entry("plane1", "naySL", 80.0)]);
        assert!(compare(&old, &new, &CompareConfig::default()).is_empty());
    }

    #[test]
    fn stopping_to_complete_reports_a_status_change_not_a_verdict_flip() {
        let old = Report::new("quick", vec![entry("plane1", "naySL", 80.0)]);
        let new = Report::new(
            "quick",
            vec![Entry {
                status: JobStatus::TimedOut,
                verdict: "-".into(),
                proved: false,
                iterations: 0,
                ..entry("plane1", "naySL", 5000.0)
            }],
        );
        let regressions = compare(&old, &new, &CompareConfig::default());
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].kind, RegressionKind::StatusChange);
    }

    #[test]
    fn reports_without_the_family_field_parse_as_family_less() {
        // The committed pre-family baseline has no `family` keys; its
        // entries parse family-less and its byte layout is preserved when
        // re-serialized (family is only emitted when set).
        let report = sample();
        let text = report.to_json();
        assert!(
            !text.contains("\"family\""),
            "family-less stays family-less"
        );
        let parsed = Report::from_json(&text).expect("parse");
        assert!(parsed.entries.iter().all(|e| e.family.is_empty()));
    }

    #[test]
    fn family_fields_and_aggregates_round_trip() {
        let report = Report::new(
            "fuzz-race",
            vec![
                family_entry("gen/plus_mod", "race", "plus_mod"),
                family_entry("gen/const_sum", "race", "const_sum"),
                entry("standalone", "race", 5.0),
            ],
        );
        let text = report.to_json();
        assert!(text.contains("\"families\""));
        assert!(text.contains("\"family\": \"plus_mod\""));
        let parsed = Report::from_json(&text).expect("parse back");
        assert_eq!(parsed, report);
        let families = parsed.family_aggregates();
        assert_eq!(families.len(), 2, "family-less entries are not grouped");
        assert_eq!(families["plus_mod"].total, 1);
        assert_eq!(families["const_sum"].proved, 1);
    }

    #[test]
    fn additive_families_do_not_trip_the_missing_entry_gate() {
        // The regression scenario: one report covers a workload family the
        // other does not (the family was added to — or is not yet in — the
        // generator catalogue). The per-entry Missing gate must not fire
        // for the uncovered family, in either comparison direction.
        let with_family = Report::new(
            "fuzz-race",
            vec![
                family_entry("gen/plus_mod", "race", "plus_mod"),
                family_entry("gen/shiny_new", "race", "shiny_new"),
            ],
        );
        let without = Report::new(
            "fuzz-race",
            vec![family_entry("gen/plus_mod", "race", "plus_mod")],
        );
        assert!(
            compare(&with_family, &without, &CompareConfig::default()).is_empty(),
            "a family absent from the new report must not report Missing"
        );
        assert!(
            compare(&without, &with_family, &CompareConfig::default()).is_empty(),
            "a family absent from the old report must not report Missing"
        );
    }

    #[test]
    fn missing_entries_within_a_shared_family_still_gate() {
        let old = Report::new(
            "fuzz-race",
            vec![
                family_entry("gen/plus_mod", "race", "plus_mod"),
                family_entry("gen/plus_mod_deep", "race", "plus_mod"),
            ],
        );
        let new = Report::new(
            "fuzz-race",
            vec![family_entry("gen/plus_mod", "race", "plus_mod")],
        );
        let regressions = compare(&old, &new, &CompareConfig::default());
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert_eq!(regressions[0].kind, RegressionKind::Missing);
        // Family-less entries keep the strict behaviour.
        let old_plain = Report::new("quick", vec![entry("plain", "naySL", 10.0)]);
        let new_plain = Report::new("quick", vec![]);
        assert_eq!(
            compare(&old_plain, &new_plain, &CompareConfig::default()).len(),
            1
        );
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let mut text = sample().to_json();
        text = text.replace("\"schema_version\": 2", "\"schema_version\": 99");
        let err = Report::from_json(&text).unwrap_err();
        assert!(err.contains("schema version"), "{err}");
    }

    #[test]
    fn v1_reports_still_parse() {
        // The committed BENCH_quick.json baseline is schema v1; bumping to
        // v2 must not orphan it. A v1 report is exactly a v2 report with no
        // `throughput` key.
        let mut text = sample().to_json();
        text = text.replace("\"schema_version\": 2", "\"schema_version\": 1");
        let parsed = Report::from_json(&text).expect("v1 parses");
        assert!(parsed.throughput.is_none());
        assert_eq!(parsed.entries.len(), sample().entries.len());
    }

    fn sample_throughput(total: f64) -> Throughput {
        let counts: std::collections::BTreeMap<String, u64> = [
            ("plus_mod".to_string(), 600),
            ("const_sum".to_string(), 400),
        ]
        .into_iter()
        .collect();
        let mut tp = Throughput::from_counts(2000.0, 4, 8, &counts);
        // from_counts derives 500/s from the counts above; rescale to the
        // requested total, keeping family proportions.
        let scale = total / tp.total_per_sec;
        tp.total_per_sec = total;
        for rate in tp.per_family.values_mut() {
            *rate *= scale;
        }
        tp
    }

    #[test]
    fn throughput_round_trips_and_canonicalization_drops_it() {
        let report = Report::new("fuzz", vec![entry("a", "nope", 1.0)])
            .with_throughput(sample_throughput(500.0));
        let text = report.to_json();
        assert!(text.contains("\"instances_per_sec\""));
        let parsed = Report::from_json(&text).expect("parse back");
        assert_eq!(parsed, report);
        assert_eq!(parsed.to_json(), text);
        assert!(parsed.canonicalized().throughput.is_none());
        assert!(
            !parsed.canonicalized().to_json().contains("throughput"),
            "canonical JSON carries no wall-clock derivatives"
        );
    }

    #[test]
    fn throughput_from_counts_is_consistent() {
        let counts: std::collections::BTreeMap<String, u64> =
            [("a".to_string(), 750), ("b".to_string(), 250)]
                .into_iter()
                .collect();
        let tp = Throughput::from_counts(500.0, 2, 4, &counts);
        assert_eq!(tp.instances, 1000);
        assert!((tp.total_per_sec - 2000.0).abs() < 1e-9);
        assert!((tp.per_family["a"] - 1500.0).abs() < 1e-9);
        let family_sum: f64 = tp.per_family.values().sum();
        assert!((family_sum - tp.total_per_sec).abs() < 1e-9);
        // Degenerate wall clock: zero rates, not infinities.
        let zero = Throughput::from_counts(0.0, 2, 4, &counts);
        assert_eq!(zero.total_per_sec, 0.0);
    }

    #[test]
    fn throughput_drops_gate_and_gains_do_not() {
        let base = Report::new("fuzz", vec![entry("a", "nope", 1.0)]);
        let old = base.clone().with_throughput(sample_throughput(1000.0));
        // 60% drop with a 50% threshold: total and both families flag.
        let slow = base.clone().with_throughput(sample_throughput(400.0));
        let regressions = compare(&old, &slow, &CompareConfig::default());
        assert_eq!(regressions.len(), 3, "{regressions:?}");
        assert!(regressions
            .iter()
            .all(|r| r.kind == RegressionKind::ThroughputDrop));
        assert!(regressions.iter().any(|r| r.benchmark == "sweep/total"));
        assert!(regressions.iter().any(|r| r.benchmark == "sweep/plus_mod"));
        // 40% drop stays under the 50% threshold.
        let ok = base.clone().with_throughput(sample_throughput(600.0));
        assert!(compare(&old, &ok, &CompareConfig::default()).is_empty());
        // A speedup is never a regression.
        let fast = base.clone().with_throughput(sample_throughput(4000.0));
        assert!(compare(&old, &fast, &CompareConfig::default()).is_empty());
        // Tighter threshold flags the 40% drop.
        let tight = CompareConfig {
            throughput_drop_pct: 30.0,
            ..CompareConfig::default()
        };
        assert_eq!(compare(&old, &ok, &tight).len(), 3);
    }

    #[test]
    fn throughput_gate_needs_both_sides_and_skips_one_sided_families() {
        let base = Report::new("fuzz", vec![entry("a", "nope", 1.0)]);
        let with_tp = base.clone().with_throughput(sample_throughput(1000.0));
        // v1 baseline (no throughput) never gates a v2 sweep, either way.
        assert!(compare(&with_tp, &base, &CompareConfig::default()).is_empty());
        assert!(compare(&base, &with_tp, &CompareConfig::default()).is_empty());
        // A family only the baseline measured is additive, not a drop.
        let mut fewer = sample_throughput(1000.0);
        fewer.per_family.remove("const_sum");
        let new = base.clone().with_throughput(fewer);
        assert!(compare(&with_tp, &new, &CompareConfig::default()).is_empty());
    }
}
