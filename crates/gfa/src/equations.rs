//! Polynomial equation systems over a semiring.

use crate::semiring::Semiring;
use std::fmt;

/// A monomial `coefficient ⊗ X_{v₁} ⊗ … ⊗ X_{vₖ}` in the right-hand side of
/// an equation. The variable list is a multiset (repetitions allowed).
#[derive(Clone, Debug, PartialEq)]
pub struct Monomial<E> {
    /// The constant coefficient of the monomial.
    pub coefficient: E,
    /// Indices of the variables multiplied into the monomial.
    pub vars: Vec<usize>,
}

impl<E> Monomial<E> {
    /// A constant monomial (no variables).
    pub fn constant(coefficient: E) -> Self {
        Monomial {
            coefficient,
            vars: Vec::new(),
        }
    }

    /// A monomial `coefficient ⊗ Πᵢ X_{vars[i]}`.
    pub fn new(coefficient: E, vars: Vec<usize>) -> Self {
        Monomial { coefficient, vars }
    }

    /// The polynomial degree of the monomial.
    pub fn degree(&self) -> usize {
        self.vars.len()
    }

    /// Evaluates the monomial under a valuation of the variables.
    pub fn eval<S: Semiring<Elem = E>>(&self, semiring: &S, valuation: &[E]) -> E
    where
        E: Clone + PartialEq + fmt::Debug,
    {
        let mut acc = self.coefficient.clone();
        for &v in &self.vars {
            acc = semiring.extend(&acc, &valuation[v]);
        }
        acc
    }
}

/// A system of polynomial equations `Xᵢ = ⊕ⱼ mᵢⱼ` over a semiring, one
/// equation per variable (Eqn. (12) / Eqn. (25) of the paper).
///
/// # Example
/// ```
/// use gfa::{EquationSystem, Monomial, SemiLinearSemiring, Semiring};
/// use semilinear::{IntVec, SemiLinearSet};
/// // X = {3} ⊗ X  ⊕  {0}      (Eqn. (3) of the paper with E = ⟨1⟩)
/// let sr = SemiLinearSemiring::new(1);
/// let mut sys = EquationSystem::new(1);
/// sys.add_monomial(0, Monomial::new(SemiLinearSet::singleton(IntVec::from(vec![3])), vec![0]));
/// sys.add_monomial(0, Monomial::constant(SemiLinearSet::singleton(IntVec::from(vec![0]))));
/// let solution = gfa::newton::solve(&sr, &sys);
/// assert!(solution.values[0].contains(&IntVec::from(vec![9])));
/// assert!(!solution.values[0].contains(&IntVec::from(vec![4])));
/// ```
#[derive(Clone, Debug)]
pub struct EquationSystem<E> {
    num_vars: usize,
    rhs: Vec<Vec<Monomial<E>>>,
}

impl<E: Clone + PartialEq + fmt::Debug> EquationSystem<E> {
    /// Creates a system with `num_vars` variables and empty right-hand sides
    /// (an empty combine denotes `0`).
    pub fn new(num_vars: usize) -> Self {
        EquationSystem {
            num_vars,
            rhs: vec![Vec::new(); num_vars],
        }
    }

    /// The number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Adds a monomial to the right-hand side of variable `var`.
    ///
    /// # Panics
    /// Panics if `var` or any variable inside the monomial is out of range.
    pub fn add_monomial(&mut self, var: usize, monomial: Monomial<E>) {
        assert!(var < self.num_vars, "equation variable out of range");
        assert!(
            monomial.vars.iter().all(|&v| v < self.num_vars),
            "monomial variable out of range"
        );
        self.rhs[var].push(monomial);
    }

    /// The monomials of variable `var`'s right-hand side.
    pub fn monomials(&self, var: usize) -> &[Monomial<E>] {
        &self.rhs[var]
    }

    /// The maximal degree of any monomial (0 for an all-constant system).
    pub fn degree(&self) -> usize {
        self.rhs
            .iter()
            .flat_map(|ms| ms.iter().map(|m| m.degree()))
            .max()
            .unwrap_or(0)
    }

    /// Evaluates the right-hand side of variable `var` under a valuation.
    pub fn eval_rhs<S: Semiring<Elem = E>>(&self, semiring: &S, var: usize, valuation: &[E]) -> E {
        let mut acc = semiring.zero();
        for m in &self.rhs[var] {
            let v = m.eval(semiring, valuation);
            acc = semiring.combine(&acc, &v);
        }
        semiring.normalize(acc)
    }

    /// Evaluates all right-hand sides (one application of `F`).
    pub fn eval_all<S: Semiring<Elem = E>>(&self, semiring: &S, valuation: &[E]) -> Vec<E> {
        (0..self.num_vars)
            .map(|v| self.eval_rhs(semiring, v, valuation))
            .collect()
    }

    /// The variable-dependence edges: `(x, y)` when `y` occurs in the
    /// right-hand side of `x` (i.e. `x` depends on `y`).
    pub fn dependencies(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (x, ms) in self.rhs.iter().enumerate() {
            for m in ms {
                for &y in &m.vars {
                    if !out.contains(&(x, y)) {
                        out.push((x, y));
                    }
                }
            }
        }
        out
    }

    /// Restricts the system to the variables of `keep`, substituting the
    /// variables *not* in `keep` by the constant values given in `fixed`
    /// (which must cover them). Returns the restricted system together with
    /// the mapping from new variable indices to original ones.
    pub fn restrict<S: Semiring<Elem = E>>(
        &self,
        semiring: &S,
        keep: &[usize],
        fixed: &[Option<E>],
    ) -> (EquationSystem<E>, Vec<usize>) {
        let mut index_of = vec![None; self.num_vars];
        for (new, &old) in keep.iter().enumerate() {
            index_of[old] = Some(new);
        }
        let mut sys = EquationSystem::new(keep.len());
        for (new, &old) in keep.iter().enumerate() {
            for m in &self.rhs[old] {
                let mut coefficient = m.coefficient.clone();
                let mut vars = Vec::new();
                for &v in &m.vars {
                    match index_of[v] {
                        Some(nv) => vars.push(nv),
                        None => {
                            let value = fixed[v]
                                .as_ref()
                                .expect("variable outside the kept set must have a fixed value");
                            coefficient = semiring.extend(&coefficient, value);
                        }
                    }
                }
                sys.add_monomial(new, Monomial::new(coefficient, vars));
            }
        }
        (sys, keep.to_vec())
    }
}

/// The result of an equation solve.
#[derive(Clone, Debug)]
pub struct Solution<E> {
    /// The computed value for each variable.
    pub values: Vec<E>,
    /// Number of outer iterations performed by the solver.
    pub iterations: usize,
    /// Whether the solver certifies this to be the least fixed point.
    pub exact: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::SemiLinearSemiring;
    use semilinear::{IntVec, SemiLinearSet};

    fn single(v: &[i64]) -> SemiLinearSet {
        SemiLinearSet::singleton(IntVec::from(v.to_vec()))
    }

    #[test]
    fn monomial_evaluation() {
        let sr = SemiLinearSemiring::new(1);
        let m = Monomial::new(single(&[2]), vec![0, 0]);
        assert_eq!(m.degree(), 2);
        let valuation = vec![single(&[5])];
        // 2 + 5 + 5 = 12
        assert!(m.eval(&sr, &valuation).contains(&IntVec::from(vec![12])));
    }

    #[test]
    fn rhs_evaluation_and_dependencies() {
        let sr = SemiLinearSemiring::new(1);
        let mut sys = EquationSystem::new(2);
        sys.add_monomial(0, Monomial::new(single(&[1]), vec![1]));
        sys.add_monomial(0, Monomial::constant(single(&[0])));
        sys.add_monomial(1, Monomial::constant(single(&[7])));
        let v0 = sys.eval_rhs(&sr, 0, &[sr.zero(), single(&[7])]);
        assert!(v0.contains(&IntVec::from(vec![8])));
        assert!(v0.contains(&IntVec::from(vec![0])));
        assert_eq!(sys.dependencies(), vec![(0, 1)]);
        assert_eq!(sys.degree(), 1);
    }

    #[test]
    fn restriction_folds_fixed_variables() {
        let sr = SemiLinearSemiring::new(1);
        let mut sys = EquationSystem::new(2);
        // X0 = {1} ⊗ X1 ⊗ X0 ⊕ {0},  X1 = {5}
        sys.add_monomial(0, Monomial::new(single(&[1]), vec![1, 0]));
        sys.add_monomial(0, Monomial::constant(single(&[0])));
        sys.add_monomial(1, Monomial::constant(single(&[5])));
        let fixed = vec![None, Some(single(&[5]))];
        let (restricted, mapping) = sys.restrict(&sr, &[0], &fixed);
        assert_eq!(mapping, vec![0]);
        assert_eq!(restricted.num_vars(), 1);
        // the first monomial's coefficient has become {1+5} = {6}
        assert!(restricted.monomials(0)[0]
            .coefficient
            .contains(&IntVec::from(vec![6])));
        assert_eq!(restricted.monomials(0)[0].vars, vec![0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_variable_panics() {
        let mut sys: EquationSystem<SemiLinearSet> = EquationSystem::new(1);
        sys.add_monomial(0, Monomial::new(single(&[1]), vec![3]));
    }
}
