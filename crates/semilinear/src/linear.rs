//! Linear sets `⟨u, {v₁,…,vₖ}⟩`.

use crate::vector::IntVec;
use logic::{Constraint, IlpProblem, IlpResult, LpRel};
use std::collections::BTreeSet;
use std::fmt;

/// A linear set `⟨base, generators⟩ = {base + Σ λᵢ·genᵢ | λᵢ ∈ ℕ}` (Def. 5.5).
///
/// Generators are kept sorted, deduplicated and free of zero vectors, so two
/// syntactically equal linear sets denote the same set of vectors.
///
/// # Example
/// ```
/// use semilinear::{IntVec, LinearSet};
/// let l = LinearSet::new(IntVec::from(vec![0]), vec![IntVec::from(vec![3])]);
/// assert!(l.contains(&IntVec::from(vec![6])));
/// assert!(!l.contains(&IntVec::from(vec![4])));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinearSet {
    base: IntVec,
    generators: Vec<IntVec>,
}

impl LinearSet {
    /// Creates a linear set, normalising the generator list.
    ///
    /// # Panics
    /// Panics if a generator's dimension differs from the base's.
    pub fn new(base: IntVec, generators: Vec<IntVec>) -> Self {
        let dim = base.dim();
        let mut set: BTreeSet<IntVec> = BTreeSet::new();
        for g in generators {
            assert_eq!(g.dim(), dim, "generator dimension mismatch");
            if !g.is_zero() {
                set.insert(g);
            }
        }
        LinearSet {
            base,
            generators: set.into_iter().collect(),
        }
    }

    /// The singleton linear set `{v}`.
    pub fn singleton(v: IntVec) -> Self {
        LinearSet {
            base: v,
            generators: Vec::new(),
        }
    }

    /// The base (offset) vector `u`.
    pub fn base(&self) -> &IntVec {
        &self.base
    }

    /// The generator vectors (period vectors) `v₁,…,vₖ`.
    pub fn generators(&self) -> &[IntVec] {
        &self.generators
    }

    /// The dimension of the vectors in this set.
    pub fn dim(&self) -> usize {
        self.base.dim()
    }

    /// Size metric used in the paper's complexity discussion: `|V| + 1`.
    pub fn size(&self) -> usize {
        self.generators.len() + 1
    }

    /// `true` when the set is the single vector `{base}`.
    pub fn is_singleton(&self) -> bool {
        self.generators.is_empty()
    }

    /// The Minkowski sum `⟨u₁+u₂, V₁∪V₂⟩` of two linear sets (the `⊗` of
    /// §5.3, restricted to single linear sets).
    pub fn extend(&self, other: &LinearSet) -> LinearSet {
        let mut gens = self.generators.clone();
        gens.extend(other.generators.iter().cloned());
        LinearSet::new(&self.base + &other.base, gens)
    }

    /// Zeroes out the components selected-out by `mask` in the base and every
    /// generator (`projS` of §6.2).
    pub fn project(&self, mask: &[bool]) -> LinearSet {
        LinearSet::new(
            self.base.project(mask),
            self.generators.iter().map(|g| g.project(mask)).collect(),
        )
    }

    /// Exact membership test via integer feasibility:
    /// `target ∈ ⟨u, V⟩` iff `∃ λ ≥ 0 . u + Σ λᵢvᵢ = target`.
    pub fn contains(&self, target: &IntVec) -> bool {
        assert_eq!(target.dim(), self.dim(), "dimension mismatch");
        if self.generators.is_empty() {
            return &self.base == target;
        }
        let k = self.generators.len();
        let mut problem = IlpProblem::new(k);
        // one equality per dimension: Σ λ_i v_i[d] = target[d] - base[d]
        for d in 0..self.dim() {
            let coeffs: Vec<i64> = self.generators.iter().map(|g| g[d]).collect();
            problem.add(Constraint::new(coeffs, LpRel::Eq, target[d] - self.base[d]));
        }
        // λ ≥ 0
        for i in 0..k {
            let mut coeffs = vec![0i64; k];
            coeffs[i] = 1;
            problem.add(Constraint::new(coeffs, LpRel::Ge, 0));
        }
        matches!(problem.solve(), IlpResult::Sat(_))
    }

    /// A sound (possibly incomplete) subsumption test: `self ⊆ other`.
    ///
    /// Returns `true` when every generator of `self` is also a generator of
    /// `other` and the base of `self` is a member of `other`. This is the
    /// "trivially subsumed" pruning used by naySL (§7).
    pub fn subsumed_by(&self, other: &LinearSet) -> bool {
        self.generators.iter().all(|g| other.generators.contains(g)) && other.contains(&self.base)
    }

    /// Enumerates members of the set with coefficient sum at most `budget`
    /// (useful for tests and for sanity checks against brute force).
    pub fn enumerate(&self, budget: usize) -> Vec<IntVec> {
        let mut out = Vec::new();
        let k = self.generators.len();
        let mut lambda = vec![0usize; k];
        loop {
            let mut v = self.base.clone();
            for (i, &l) in lambda.iter().enumerate() {
                v = v + self.generators[i].scale(l as i64);
            }
            out.push(v);
            // next multi-index with sum ≤ budget
            let mut i = 0;
            loop {
                if i == k {
                    out.sort();
                    out.dedup();
                    return out;
                }
                lambda[i] += 1;
                if lambda.iter().sum::<usize>() <= budget {
                    break;
                }
                lambda[i] = 0;
                i += 1;
            }
        }
    }
}

impl fmt::Debug for LinearSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for LinearSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}, {{", self.base)?;
        for (i, g) in self.generators.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{g}")?;
        }
        write!(f, "}}⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(components: &[i64]) -> IntVec {
        IntVec::from(components.to_vec())
    }

    #[test]
    fn normalisation_drops_zero_and_duplicate_generators() {
        let l = LinearSet::new(v(&[1]), vec![v(&[0]), v(&[2]), v(&[2])]);
        assert_eq!(l.generators().len(), 1);
        assert_eq!(l.generators()[0], v(&[2]));
    }

    #[test]
    fn membership_one_dimensional() {
        // {0 + 3λ}
        let l = LinearSet::new(v(&[0]), vec![v(&[3])]);
        assert!(l.contains(&v(&[0])));
        assert!(l.contains(&v(&[9])));
        assert!(!l.contains(&v(&[4])));
        assert!(!l.contains(&v(&[-3])), "λ must be non-negative");
    }

    #[test]
    fn membership_two_dimensional() {
        // {(0,0) + λ(3,6)} — the solution of Example 5.7
        let l = LinearSet::new(v(&[0, 0]), vec![v(&[3, 6])]);
        assert!(l.contains(&v(&[3, 6])));
        assert!(l.contains(&v(&[9, 18])));
        assert!(!l.contains(&v(&[3, 5])));
        assert!(!l.contains(&v(&[6, 6])));
    }

    #[test]
    fn extend_is_minkowski_sum() {
        let a = LinearSet::new(v(&[1, 2]), vec![v(&[3, 4])]);
        let b = LinearSet::new(v(&[5, 6]), vec![v(&[7, 8])]);
        let c = a.extend(&b);
        assert_eq!(c.base(), &v(&[6, 8]));
        assert_eq!(c.generators().len(), 2);
    }

    #[test]
    fn projection_matches_example_6_1() {
        // projSL({⟨(1,2),{(3,4)}⟩}, (t,f)) = ⟨(1,0),{(3,0)}⟩
        let l = LinearSet::new(v(&[1, 2]), vec![v(&[3, 4])]);
        let p = l.project(&[true, false]);
        assert_eq!(p.base(), &v(&[1, 0]));
        assert_eq!(p.generators(), &[v(&[3, 0])]);
    }

    #[test]
    fn subsumption() {
        let small = LinearSet::new(v(&[3]), vec![v(&[3])]);
        let big = LinearSet::new(v(&[0]), vec![v(&[3])]);
        assert!(small.subsumed_by(&big));
        assert!(!big.subsumed_by(&small));
    }

    #[test]
    fn enumeration_agrees_with_membership() {
        let l = LinearSet::new(v(&[1, 1]), vec![v(&[2, 0]), v(&[0, 3])]);
        for member in l.enumerate(3) {
            assert!(l.contains(&member), "{member} should be a member");
        }
    }
}
