//! Parallel benchmark runner: the execution substrate of the experiment
//! harness in `crates/bench`.
//!
//! The paper's evaluation (§8.1) is a large sweep — 132 benchmarks × 3
//! tools — and a credible perf trajectory needs three things the naive
//! serial loop cannot give:
//!
//! * **parallelism** — a [`pool`] of worker threads with per-worker deques
//!   and work stealing saturates the machine (std-only: `std::thread` +
//!   channels, no external dependencies),
//! * **isolation** — every job runs with a wall-clock [timeout] and panic
//!   containment, so one diverging or crashing benchmark cannot take the
//!   whole sweep down, and
//! * **comparability** — results land in a deterministic, schema-versioned
//!   [`report::Report`] (JSON, hand-rolled in [`json`] since the build is
//!   offline) that [`report::compare`] can diff against a committed
//!   baseline, turning perf PRs into measurable deltas.
//!
//! [timeout]: pool::PoolConfig::timeout

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cancel;
pub mod deadline;
pub mod json;
pub mod pool;
pub mod report;
pub mod timing;
pub mod warm;

pub use cancel::Cancel;
pub use deadline::{DeadlineGuard, DeadlineTimer};
pub use json::Json;
pub use pool::{run_jobs, Job, JobResult, JobStatus, PoolConfig};
pub use report::{
    compare, compare_throughput, Aggregates, CompareConfig, Entry, Regression, RegressionKind,
    Report, Throughput, MIN_SCHEMA_VERSION, SCHEMA_VERSION,
};
pub use timing::measure;
pub use warm::{Ticket, WarmPool};
