//! The CEGIS loop on a *realizable* problem: the driver of Alg. 2 is also a
//! synthesizer — when the specification can be met, the enumerative solver
//! finds a candidate, the verifier confirms it on all inputs, and the loop
//! returns the program instead of an unrealizability proof.
//!
//! Run with `cargo run --example cegis_synthesis`.

use logic::{Formula, LinearExpr, Var};
use nay::{CegisOutcome, Nay};
use sygus::{GrammarBuilder, Problem, Sort, Spec, Symbol};

fn main() {
    // Search space: conditionals over x, y with comparisons — enough to
    // express max(x, y).
    let grammar = GrammarBuilder::new("Start")
        .nonterminal("Start", Sort::Int)
        .nonterminal("B", Sort::Bool)
        .production("Start", Symbol::Var("x".to_string()), &[])
        .production("Start", Symbol::Var("y".to_string()), &[])
        .production("Start", Symbol::Num(0), &[])
        .production("Start", Symbol::IfThenElse, &["B", "Start", "Start"])
        .production("B", Symbol::LessThan, &["Start", "Start"])
        .build()
        .expect("well-formed grammar");

    // Specification: f(x, y) is the maximum of x and y.
    let out = LinearExpr::var(Spec::output_var());
    let x = LinearExpr::var(Var::new("x"));
    let y = LinearExpr::var(Var::new("y"));
    let spec = Spec::new(
        Formula::and(vec![
            Formula::ge(out.clone(), x.clone()),
            Formula::ge(out.clone(), y.clone()),
            Formula::or(vec![Formula::eq(out.clone(), x), Formula::eq(out, y)]),
        ]),
        vec!["x".to_string(), "y".to_string()],
        Sort::Int,
    );
    let problem = Problem::new("max2-synthesis", grammar, spec);

    let (outcome, stats) = Nay::new().with_seed(7).run(&problem);
    match outcome {
        CegisOutcome::Solution(term) => {
            println!("synthesized: f(x, y) = {term}");
            println!(
                "  {} CEGIS iteration(s), {} example(s), {} unrealizability check(s), {:?}",
                stats.cegis_iterations, stats.num_examples, stats.gfa_checks, stats.total_time
            );
            // sanity-check the synthesized program on a few inputs
            for (a, b) in [(3i64, 9i64), (9, 3), (-4, -7), (5, 5)] {
                let input = sygus::Example::from_pairs([("x", a), ("y", b)]);
                let value = term.eval(&input).expect("evaluates");
                assert_eq!(value.as_i64(), a.max(b), "max({a},{b})");
            }
            println!("verified max() behaviour on sample inputs ✔");
        }
        other => panic!("expected a synthesized solution, got {other:?}"),
    }
}
