//! Command-line driver regenerating the paper's tables and figures, and the
//! CI perf-regression gate.
//!
//! ```text
//! cargo run --release -p bench --bin reproduce -- [EXPERIMENT] [OPTIONS]
//! cargo run --release -p bench --bin reproduce -- compare OLD.json NEW.json [OPTIONS]
//! cargo run --release -p bench --bin reproduce -- solve FILE|DIR [OPTIONS]
//! cargo run --release -p bench --bin reproduce -- analyze FILE|DIR [OPTIONS]
//! cargo run --release -p bench --bin reproduce -- gen --out DIR [OPTIONS]
//! cargo run --release -p bench --bin reproduce -- fuzz [OPTIONS]
//! cargo run --release -p bench --bin reproduce -- presolve-diff [OPTIONS]
//! cargo run --release -p bench --bin reproduce -- serve [OPTIONS]
//! cargo run --release -p bench --bin reproduce -- bench-serve [OPTIONS]
//!
//! EXPERIMENT: all | table1-plus | table1-if | table1 | table2 | fig2 | fig3 |
//!             fig4 | fig5 | summary          (default: all)
//!
//! OPTIONS:
//!   --full            run every benchmark instead of the quick subset
//!   --jobs N          worker threads for the benchmark suite (default: 1)
//!   --timeout-ms MS   per-benchmark wall-clock budget (default: none)
//!   --json PATH       write the suite's JSON report to PATH (with `all`)
//!
//! compare OPTIONS:
//!   --threshold-pct P        flag slowdowns beyond P percent (default: 25)
//!   --min-millis M           ignore entries faster than M ms (default: 50)
//!   --throughput-drop-pct P  flag fuzz-throughput drops beyond P percent
//!                            (default: 50; only reports carrying a
//!                            `throughput` block participate)
//!   --throughput-only        gate on throughput alone, skipping the
//!                            per-entry time/verdict comparison
//!
//! solve OPTIONS:
//!   --engine nay|nope|race   which engine to drive (default: race)
//!   --timeout-ms MS          per-engine wall-clock budget (default: 600000)
//!   --json PATH              write the runner-schema JSON report to PATH
//!   --no-presolve            disable the race's static presolve stage
//!   --trace                  print a span waterfall per solve (parse,
//!                            presolve, per-engine race spans, loser
//!                            cancellation; race engine only)
//!
//! analyze OPTIONS:
//!   --json PATH              write the runner-schema JSON report to PATH
//!
//! gen OPTIONS:
//!   --out DIR           output directory (required)
//!   --count N           instances to generate (default: 100)
//!   --seed S            base seed (default: 42); output is byte-identical
//!                       for a fixed (seed, count, families)
//!   --families a,b      restrict to these families (default: all)
//!   --list-families     print the family catalogue and exit
//!
//! fuzz OPTIONS:
//!   --count N                 instances to generate (default: 200)
//!   --seed S                  base seed (default: 7)
//!   --engine E                engines to drive: both | race | nay | nope |
//!                             check (default: both; `check` skips solving
//!                             and only validates generation + round-trip)
//!   --jobs N                  worker threads (default: 1)
//!   --shards N                split the index space into N shards
//!                             (default: one per worker; any N merges to
//!                             the identical aggregate)
//!   --timeout-ms MS           per-engine budget (default: 10000; a
//!                             timeout is an `unknown` claim, never a
//!                             violation)
//!   --json PATH               write the aggregate JSON report to PATH
//!   --failures PATH           write a reproducing-seed failure report for
//!                             every kept violation (first 64)
//!   --throughput-baseline B   gate this sweep's instances/sec against the
//!                             committed report B (exit 1 on a drop beyond
//!                             the threshold)
//!   --throughput-drop-pct P   threshold for the baseline gate (default: 50)
//!   --families a,b            restrict to these families
//!   --no-presolve             disable the presolve stage when racing
//!
//! presolve-diff OPTIONS:
//!   --count N           instances to generate (default: 200)
//!   --seed S            base seed (default: 7)
//!   --timeout-ms MS     per-engine budget (default: 10000)
//!   --families a,b      restrict to these families
//!   --json PATH         write the aggregate JSON report to PATH
//!   --require-presolved fail unless the presolve settles at least one
//!                       instance of every attacked family
//!
//! serve OPTIONS:
//!   --addr HOST:PORT    TCP bind address (default: 127.0.0.1:7171;
//!                       port 0 picks a free port)
//!   --unix PATH         bind a Unix-domain socket instead of TCP
//!   --slots N           warm engine workers (default: 4)
//!   --cache N           verdict-cache capacity, 0 disables (default: 4096)
//!   --max-in-flight N   admission bound on queued+running engine jobs
//!                       (default: 64)
//!   --deadline-ms MS    default per-request deadline (default: 600000)
//!   --no-presolve       disable the static presolve stage
//!   --metrics-addr A    also serve Prometheus text metrics over plain
//!                       HTTP at A (HOST:PORT; port 0 picks a free port)
//!
//! bench-serve OPTIONS:
//!   --addr HOST:PORT    replay against an external daemon; by default an
//!                       in-process daemon is started on a free port
//!   --unix PATH         connect over a Unix-domain socket instead
//!   --corpus DIR        corpus to replay, gated by its MANIFEST race
//!                       column (default: corpus)
//!   --gen-count N       also stream N generated instances (default: 0)
//!   --seed S            base seed for the generated stream (default: 7)
//!   --families a,b      restrict the generated stream to these families
//!   --clients N         concurrent client connections (default: 2)
//!   --passes N          workload replays; pass 1 fills the cache, later
//!                       passes must hit it (default: 2)
//!   --qps Q             per-client request rate cap (default: unlimited)
//!   --deadline-ms MS    per-request deadline (default: the daemon's)
//!   --slots N           warm workers for the in-process daemon (default: 4)
//!   --json PATH         write the runner-schema JSON report to PATH
//! ```
//!
//! `compare` exits 0 when the new report has no regressions against the old
//! one, 1 when it does, and 2 on usage or parse errors. `solve` exits 0
//! when every file parses, every engine completes, and (when the corpus
//! has a `MANIFEST`) every verdict matches the expectation; 1 on any
//! corpus failure; 2 on usage errors. `fuzz` exits 0 on a clean sweep, 1
//! when any oracle (differential, expectation, witness, or print→parse
//! round-trip) is violated, and 2 on usage errors. `analyze` exits 0 when
//! no file produces an error-severity diagnostic, 1 otherwise, 2 on usage
//! errors. `presolve-diff` exits 0 when no generated instance's race
//! verdict changes with the presolve stage toggled, 1 on any flip (or,
//! with `--require-presolved`, when a family was never settled
//! statically), and 2 on usage errors. `serve` blocks until a client
//! sends the `shutdown` op, then exits 0. `bench-serve` exits 0 when
//! every response matches its expectation (the MANIFEST race column for
//! corpus instances, non-contradiction for generated ones), 1 on any
//! mismatch or error response, and 2 on usage errors.

use runner::{compare, CompareConfig, PoolConfig, Report};
use std::path::Path;
use std::time::Duration;

fn usage_error(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("run with no arguments for the default quick sweep; see README.md for the CLI");
    std::process::exit(2);
}

/// Parses the value following a `--flag`.
fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> T {
    let Some(text) = value else {
        usage_error(&format!("`{flag}` needs a value"));
    };
    match text.parse() {
        Ok(v) => v,
        Err(_) => usage_error(&format!("`{flag}` got an unparsable value `{text}`")),
    }
}

fn run_compare(args: &[String]) -> ! {
    let mut paths: Vec<&String> = Vec::new();
    let mut config = CompareConfig::default();
    let mut throughput_only = false;
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threshold-pct" => config.threshold_pct = parse_value(arg, iter.next()),
            "--min-millis" => config.min_millis = parse_value(arg, iter.next()),
            "--throughput-drop-pct" => config.throughput_drop_pct = parse_value(arg, iter.next()),
            "--throughput-only" => throughput_only = true,
            flag if flag.starts_with("--") => {
                usage_error(&format!("unknown compare option `{flag}`"))
            }
            _ => paths.push(arg),
        }
    }
    let [old_path, new_path] = paths[..] else {
        usage_error("compare needs exactly two report paths: OLD.json NEW.json");
    };
    let load = |path: &String| -> Report {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read `{path}`: {e}");
            std::process::exit(2);
        });
        Report::from_json(&text).unwrap_or_else(|e| {
            eprintln!("error: `{path}` is not a valid report: {e}");
            std::process::exit(2);
        })
    };
    let old = load(old_path);
    let new = load(new_path);
    let regressions = if throughput_only {
        if old.throughput.is_none() {
            eprintln!("error: `{old_path}` carries no throughput block to gate against");
            std::process::exit(2);
        }
        runner::compare_throughput(&old, &new, &config)
    } else {
        compare(&old, &new, &config)
    };
    if regressions.is_empty() {
        if throughput_only {
            println!(
                "no throughput regressions (drop threshold {}%)",
                config.throughput_drop_pct
            );
        } else {
            println!(
                "no regressions: {} entries compared (threshold {}%, floor {}ms)",
                old.entries.len(),
                config.threshold_pct,
                config.min_millis
            );
        }
        std::process::exit(0);
    }
    println!("{} regression(s) against `{old_path}`:", regressions.len());
    for regression in &regressions {
        println!("  {regression}");
    }
    std::process::exit(1);
}

fn run_solve(args: &[String]) -> ! {
    let mut target: Option<&String> = None;
    let mut engine = bench::Engine::Race;
    let mut timeout: Option<Duration> = None;
    let mut json_path: Option<String> = None;
    let mut presolve = true;
    let mut trace = false;
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--engine" => {
                let name: String = parse_value(arg, iter.next());
                engine = bench::Engine::parse(&name).unwrap_or_else(|| {
                    usage_error(&format!(
                        "unknown engine `{name}` (expected nay, nope, or race)"
                    ))
                });
            }
            "--timeout-ms" => timeout = Some(Duration::from_millis(parse_value(arg, iter.next()))),
            "--json" => json_path = Some(parse_value::<String>(arg, iter.next())),
            "--no-presolve" => presolve = false,
            "--trace" => trace = true,
            flag if flag.starts_with("--") => {
                usage_error(&format!("unknown solve option `{flag}`"))
            }
            _ => {
                if target.is_some() {
                    usage_error(&format!("unexpected extra argument `{arg}`"));
                }
                target = Some(arg);
            }
        }
    }
    let Some(target) = target else {
        usage_error("solve needs a FILE or DIR of SyGuS-IF .sl problems");
    };
    let target = Path::new(target);
    let files = bench::collect_sl_files(target).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });

    if trace && engine != bench::Engine::Race {
        usage_error("`--trace` renders race-phase waterfalls; it needs `--engine race`");
    }
    let (rows, report, totals) = bench::run_solve(&files, engine, timeout, presolve, trace)
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
    if let Some(path) = &json_path {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("error: cannot write `{path}`: {e}");
            std::process::exit(2);
        }
        eprintln!(
            "wrote {} entries to {path} (suite: {})",
            report.entries.len(),
            report.suite
        );
    }
    println!("{}", bench::render_solve(&rows, engine, &totals));

    // Gate against the corpus MANIFEST when one is present next to the
    // problems (the directory itself, or the file's parent directory).
    let manifest_dir = if target.is_dir() {
        target
    } else {
        target.parent().unwrap_or(Path::new("."))
    };
    let manifest = bench::Manifest::load(manifest_dir).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    match manifest {
        None => {
            let incomplete: Vec<_> = report
                .entries
                .iter()
                .filter(|e| e.status != runner::JobStatus::Ok)
                .collect();
            if !incomplete.is_empty() {
                for entry in incomplete {
                    eprintln!(
                        "corpus failure: {}/{}: status {}",
                        entry.benchmark,
                        entry.tool,
                        entry.status.as_str()
                    );
                }
                std::process::exit(1);
            }
        }
        Some(manifest) => {
            let problems = bench::check_manifest(&report, engine, &manifest, target.is_dir());
            if !problems.is_empty() {
                for p in &problems {
                    eprintln!("corpus failure: {p}");
                }
                eprintln!("{} corpus failure(s) against the MANIFEST", problems.len());
                std::process::exit(1);
            }
            println!(
                "MANIFEST: all {} expected verdicts match for engine {}",
                files.len(),
                engine.name()
            );
        }
    }
    std::process::exit(0);
}

fn run_analyze(args: &[String]) -> ! {
    let mut target: Option<&String> = None;
    let mut json_path: Option<String> = None;
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => json_path = Some(parse_value::<String>(arg, iter.next())),
            flag if flag.starts_with("--") => {
                usage_error(&format!("unknown analyze option `{flag}`"))
            }
            _ => {
                if target.is_some() {
                    usage_error(&format!("unexpected extra argument `{arg}`"));
                }
                target = Some(arg);
            }
        }
    }
    let Some(target) = target else {
        usage_error("analyze needs a FILE or DIR of SyGuS-IF .sl problems");
    };
    let files = bench::collect_sl_files(Path::new(target)).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let (rows, report) = bench::run_analyze(&files).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    print!("{}", bench::render_analyze(&rows));
    if let Some(path) = &json_path {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("error: cannot write `{path}`: {e}");
            std::process::exit(2);
        }
        eprintln!(
            "wrote {} entries to {path} (suite: {})",
            report.entries.len(),
            report.suite
        );
    }
    std::process::exit(if bench::has_analyze_errors(&rows) {
        1
    } else {
        0
    });
}

fn run_presolve_diff(args: &[String]) -> ! {
    let mut config = bench::FuzzConfig::default();
    let mut json_path: Option<String> = None;
    let mut require_presolved = false;
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--count" => config.count = parse_value(arg, iter.next()),
            "--seed" => config.seed = parse_value(arg, iter.next()),
            "--timeout-ms" => config.timeout = Duration::from_millis(parse_value(arg, iter.next())),
            "--json" => json_path = Some(parse_value::<String>(arg, iter.next())),
            "--families" => config.families = Some(parse_families(iter.next())),
            "--require-presolved" => require_presolved = true,
            other => usage_error(&format!("unknown presolve-diff option `{other}`")),
        }
    }
    let outcome = bench::run_presolve_diff(&config);
    print!("{}", bench::render_presolve_diff(&outcome, &config));
    let mut failed = false;
    if !outcome.flips.is_empty() {
        for flip in &outcome.flips {
            eprintln!("verdict flip: {flip}");
        }
        eprintln!(
            "{} verdict flip(s) — the presolve stage is not verdict-preserving",
            outcome.flips.len()
        );
        failed = true;
    }
    if require_presolved {
        for family in outcome.instances.keys() {
            if outcome.presolved.get(family).copied().unwrap_or(0) == 0 {
                eprintln!("family {family}: no instance was settled statically");
                failed = true;
            }
        }
    }
    if let Some(path) = &json_path {
        if let Err(e) = std::fs::write(path, outcome.report.to_json()) {
            eprintln!("error: cannot write `{path}`: {e}");
            std::process::exit(2);
        }
        eprintln!(
            "wrote {} aggregate entries to {path} (suite: {})",
            outcome.report.entries.len(),
            outcome.report.suite
        );
    }
    std::process::exit(if failed { 1 } else { 0 });
}

/// Parses a comma-separated `--families` value.
fn parse_families(value: Option<&String>) -> Vec<gen::Family> {
    let Some(text) = value else {
        usage_error("`--families` needs a comma-separated value");
    };
    text.split(',')
        .map(|name| {
            gen::Family::parse(name.trim()).unwrap_or_else(|| {
                usage_error(&format!(
                    "unknown family `{name}` (known: {})",
                    gen::Family::ALL
                        .iter()
                        .map(|f| f.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                ))
            })
        })
        .collect()
}

fn run_gen(args: &[String]) -> ! {
    let mut config = bench::FuzzConfig {
        count: 100,
        seed: 42,
        ..bench::FuzzConfig::default()
    };
    let mut out_dir: Option<String> = None;
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--count" => config.count = parse_value(arg, iter.next()),
            "--seed" => config.seed = parse_value(arg, iter.next()),
            "--out" => out_dir = Some(parse_value::<String>(arg, iter.next())),
            "--families" => config.families = Some(parse_families(iter.next())),
            "--list-families" => {
                for family in gen::Family::ALL {
                    println!("{:<16} {}", family.name(), family.description());
                }
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown gen option `{other}`")),
        }
    }
    let Some(out_dir) = out_dir else {
        usage_error("gen needs `--out DIR`");
    };
    match bench::run_gen(Path::new(&out_dir), &config) {
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
        Ok(counts) => {
            let written: usize = counts.values().sum();
            if written < config.count {
                eprintln!(
                    "note: instance space exhausted after {written} of {} requested",
                    config.count
                );
            }
            println!(
                "wrote {written} instances to {out_dir} (seed {}):",
                config.seed
            );
            for (family, count) in counts {
                println!("  {family:<16} {count}");
            }
            std::process::exit(0);
        }
    }
}

fn run_fuzz(args: &[String]) -> ! {
    let mut config = bench::FuzzConfig::default();
    let mut json_path: Option<String> = None;
    let mut failures_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut drop_pct: Option<f64> = None;
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--count" => config.count = parse_value(arg, iter.next()),
            "--seed" => config.seed = parse_value(arg, iter.next()),
            "--jobs" => config.jobs = parse_value(arg, iter.next()),
            "--shards" => config.shards = parse_value(arg, iter.next()),
            "--timeout-ms" => config.timeout = Duration::from_millis(parse_value(arg, iter.next())),
            "--json" => json_path = Some(parse_value::<String>(arg, iter.next())),
            "--failures" => failures_path = Some(parse_value::<String>(arg, iter.next())),
            "--throughput-baseline" => {
                baseline_path = Some(parse_value::<String>(arg, iter.next()))
            }
            "--throughput-drop-pct" => drop_pct = Some(parse_value(arg, iter.next())),
            "--families" => config.families = Some(parse_families(iter.next())),
            "--no-presolve" => config.presolve = false,
            "--engine" => {
                let name: String = parse_value(arg, iter.next());
                config.engine = bench::FuzzEngine::parse(&name).unwrap_or_else(|| {
                    usage_error(&format!(
                        "unknown fuzz engine `{name}` (expected both, race, nay, nope, or check)"
                    ))
                });
            }
            other => usage_error(&format!("unknown fuzz option `{other}`")),
        }
    }
    let outcome = bench::run_fuzz(&config);
    // Violations first: they are the sweep's whole point, and must reach
    // the user even when the JSON report cannot be written.
    println!("{}", bench::render_fuzz(&outcome, &config));
    if outcome.violations_total > 0 {
        for violation in &outcome.violations {
            eprintln!("{violation}");
        }
        if outcome.violations_total > outcome.violations.len() {
            eprintln!(
                "... and {} more (first {} kept)",
                outcome.violations_total - outcome.violations.len(),
                outcome.violations.len()
            );
        }
        eprintln!(
            "{} oracle violation(s) — the solver stack is unsound on the instances above",
            outcome.violations_total
        );
    }
    // The failure artifact carries everything needed to reproduce each
    // violation offline: the instance seed, the exact sweep command, and
    // the offending SyGuS-IF text. Written even when empty so CI can
    // upload it unconditionally.
    if let Some(path) = &failures_path {
        let mut text = format!(
            "# fuzz failure report — engine {}, count {}, seed {}, {} violation(s)\n",
            config.engine.name(),
            config.count,
            config.seed,
            outcome.violations_total,
        );
        if outcome.violations_total > outcome.violations.len() {
            text.push_str(&format!(
                "# (first {} of {} kept; re-run the command below for the rest)\n",
                outcome.violations.len(),
                outcome.violations_total
            ));
        }
        text.push_str(&format!(
            "# reproduce the sweep: reproduce fuzz --engine {} --count {} --seed {}\n\n",
            config.engine.name(),
            config.count,
            config.seed,
        ));
        for violation in &outcome.violations {
            text.push_str(&format!(
                "# reproduce this instance alone: reproduce fuzz --engine {} --count 1 \
                 --families {} --seed <base seed for instance_seed {}>\n{violation}\n",
                config.engine.name(),
                violation.family,
                violation.seed,
            ));
        }
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("error: cannot write `{path}`: {e}");
            std::process::exit(2);
        }
        eprintln!(
            "wrote {} of {} violation(s) to {path}",
            outcome.violations.len(),
            outcome.violations_total
        );
    }
    if let Some(path) = &json_path {
        if let Err(e) = std::fs::write(path, outcome.report.to_json()) {
            eprintln!("error: cannot write `{path}`: {e}");
            std::process::exit(2);
        }
        eprintln!(
            "wrote {} aggregate entries to {path} (suite: {})",
            outcome.report.entries.len(),
            outcome.report.suite
        );
    }
    // The throughput gate: a committed baseline report turns instances/sec
    // into a blocking metric, same as the per-entry perf gate.
    let mut throughput_regressed = false;
    if let Some(path) = &baseline_path {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read `{path}`: {e}");
            std::process::exit(2);
        });
        let baseline = Report::from_json(&text).unwrap_or_else(|e| {
            eprintln!("error: `{path}` is not a valid report: {e}");
            std::process::exit(2);
        });
        let compare_config = CompareConfig {
            throughput_drop_pct: drop_pct.unwrap_or(CompareConfig::default().throughput_drop_pct),
            ..CompareConfig::default()
        };
        let regressions = runner::compare_throughput(&baseline, &outcome.report, &compare_config);
        if regressions.is_empty() {
            println!(
                "throughput gate vs `{path}`: ok (drop threshold {}%)",
                compare_config.throughput_drop_pct
            );
        } else {
            println!(
                "{} throughput regression(s) against `{path}`:",
                regressions.len()
            );
            for regression in &regressions {
                println!("  {regression}");
            }
            throughput_regressed = true;
        }
    }
    std::process::exit(if outcome.violations_total == 0 && !throughput_regressed {
        0
    } else {
        1
    });
}

fn run_serve(args: &[String]) -> ! {
    let mut config = server::ServerConfig {
        bind: server::Bind::Tcp("127.0.0.1:7171".into()),
        ..server::ServerConfig::default()
    };
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => {
                config.bind = server::Bind::Tcp(parse_value::<String>(arg, iter.next()));
            }
            "--unix" => {
                config.bind =
                    server::Bind::Unix(parse_value::<std::path::PathBuf>(arg, iter.next()));
            }
            "--slots" => config.slots = parse_value(arg, iter.next()),
            "--cache" => config.cache_capacity = parse_value(arg, iter.next()),
            "--max-in-flight" => config.max_in_flight = parse_value(arg, iter.next()),
            "--deadline-ms" => {
                config.default_deadline = Duration::from_millis(parse_value(arg, iter.next()))
            }
            "--no-presolve" => config.presolve = false,
            "--metrics-addr" => {
                config.metrics_addr = Some(parse_value::<String>(arg, iter.next()));
            }
            other => usage_error(&format!("unknown serve option `{other}`")),
        }
    }
    let server = server::Server::bind(config.clone()).unwrap_or_else(|e| {
        eprintln!("error: cannot bind: {e}");
        std::process::exit(2);
    });
    println!(
        "serving on {} ({} warm workers, cache capacity {}, presolve {})",
        server.endpoint(),
        config.slots,
        config.cache_capacity,
        if config.presolve { "on" } else { "off" }
    );
    if let Some(scrape) = server.metrics_endpoint() {
        println!("metrics scrape endpoint on http://{scrape}/metrics");
    }
    match server.run() {
        Err(e) => {
            eprintln!("error: accept loop failed: {e}");
            std::process::exit(1);
        }
        Ok(stats) => {
            println!(
                "shut down after {} request(s): {} cache hit(s), {} timeout(s), {} error(s)",
                stats.requests, stats.cache_hits, stats.timeouts, stats.errors
            );
            std::process::exit(0);
        }
    }
}

fn run_bench_serve(args: &[String]) -> ! {
    let mut endpoint: Option<server::Endpoint> = None;
    let mut corpus_dir = "corpus".to_string();
    let mut gen_count = 0usize;
    let mut seed = 7u64;
    let mut families: Option<Vec<gen::Family>> = None;
    let mut slots = 4usize;
    let mut json_path: Option<String> = None;
    let mut config = bench::LoadConfig::default();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => {
                let addr: String = parse_value(arg, iter.next());
                let resolved = addr.parse().unwrap_or_else(|e| {
                    usage_error(&format!("`--addr` got an unparsable address `{addr}`: {e}"))
                });
                endpoint = Some(server::Endpoint::Tcp(resolved));
            }
            "--unix" => {
                endpoint = Some(server::Endpoint::Unix(parse_value(arg, iter.next())));
            }
            "--corpus" => corpus_dir = parse_value(arg, iter.next()),
            "--gen-count" => gen_count = parse_value(arg, iter.next()),
            "--seed" => seed = parse_value(arg, iter.next()),
            "--families" => families = Some(parse_families(iter.next())),
            "--clients" => config.clients = parse_value(arg, iter.next()),
            "--passes" => config.passes = parse_value(arg, iter.next()),
            "--qps" => config.qps = Some(parse_value(arg, iter.next())),
            "--deadline-ms" => config.deadline_ms = Some(parse_value(arg, iter.next())),
            "--slots" => slots = parse_value(arg, iter.next()),
            "--json" => json_path = Some(parse_value::<String>(arg, iter.next())),
            other => usage_error(&format!("unknown bench-serve option `{other}`")),
        }
    }

    let mut workload = bench::corpus_workload(Path::new(&corpus_dir)).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    workload.extend(bench::gen_workload(gen_count, seed, families));
    if workload.is_empty() {
        usage_error("the workload is empty (no corpus files and --gen-count 0)");
    }

    // Without --addr/--unix, spin up an in-process daemon on a free port
    // and shut it down once the replay is done.
    let own_daemon = endpoint.is_none().then(|| {
        let server = server::Server::bind(server::ServerConfig {
            slots,
            ..server::ServerConfig::default()
        })
        .unwrap_or_else(|e| {
            eprintln!("error: cannot bind the in-process daemon: {e}");
            std::process::exit(2);
        });
        let endpoint = server.endpoint();
        let handle = std::thread::spawn(move || server.run());
        (endpoint, handle)
    });
    let endpoint = endpoint.unwrap_or_else(|| own_daemon.as_ref().unwrap().0.clone());

    let outcome = bench::run_load(&endpoint, &workload, &config).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    print!("{}", bench::render_load(&outcome, &config));

    if let Some((endpoint, handle)) = own_daemon {
        if let Ok(mut client) = server::Client::connect(&endpoint) {
            let _ = client.shutdown();
        }
        let _ = handle.join();
    }

    for mismatch in &outcome.mismatches {
        eprintln!("serve mismatch: {mismatch}");
    }
    if let Some(path) = &json_path {
        if let Err(e) = std::fs::write(path, outcome.report.to_json()) {
            eprintln!("error: cannot write `{path}`: {e}");
            std::process::exit(2);
        }
        eprintln!(
            "wrote {} entries to {path} (suite: {})",
            outcome.report.entries.len(),
            outcome.report.suite
        );
    }
    std::process::exit(if outcome.mismatches.is_empty() { 0 } else { 1 });
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("compare") {
        run_compare(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("solve") {
        run_solve(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("analyze") {
        run_analyze(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("gen") {
        run_gen(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("fuzz") {
        run_fuzz(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("presolve-diff") {
        run_presolve_diff(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("serve") {
        run_serve(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("bench-serve") {
        run_bench_serve(&args[1..]);
    }

    let mut quick = true;
    let mut config = PoolConfig::serial();
    let mut json_path: Option<String> = None;
    let mut experiment: Option<String> = None;
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--full" => quick = false,
            "--jobs" => config.jobs = parse_value(arg, iter.next()),
            "--timeout-ms" => {
                config.timeout = Some(Duration::from_millis(parse_value(arg, iter.next())))
            }
            "--json" => {
                json_path = Some(parse_value::<String>(arg, iter.next()));
            }
            flag if flag.starts_with("--") => usage_error(&format!("unknown option `{flag}`")),
            name => {
                if experiment.is_some() {
                    usage_error(&format!("unexpected extra argument `{name}`"));
                }
                experiment = Some(name.to_string());
            }
        }
    }
    let experiment = experiment.unwrap_or_else(|| "all".to_string());

    if json_path.is_some() && experiment != "all" && experiment != "summary" {
        usage_error(
            "`--json` is only supported with the `all` and `summary` experiments (they run the table suite)",
        );
    }

    let write_report = |report: &runner::Report| {
        if let Some(path) = &json_path {
            if let Err(e) = std::fs::write(path, report.to_json()) {
                eprintln!("error: cannot write `{path}`: {e}");
                std::process::exit(2);
            }
            eprintln!(
                "wrote {} benchmark entries to {path} (suite: {})",
                report.entries.len(),
                report.suite
            );
        }
    };

    let report = match experiment.as_str() {
        "all" => {
            let (text, report) = bench::reproduce_all_with(quick, &config);
            write_report(&report);
            text
        }
        "table1-plus" => bench::reproduce_table1_plus_with(quick, &config),
        "table1-if" => bench::reproduce_table1_if_with(quick, &config),
        "table1" => format!(
            "{}\n{}",
            bench::reproduce_table1_plus_with(quick, &config),
            bench::reproduce_table1_if_with(quick, &config)
        ),
        "table2" => bench::reproduce_table2_with(quick, &config),
        "fig2" => bench::reproduce_fig2(quick),
        "fig3" | "fig5" | "fig3-fig5" => bench::reproduce_fig3_fig5(quick),
        "fig4" => bench::reproduce_fig4(quick),
        "summary" => {
            let report = bench::run_suite(quick, &config);
            write_report(&report);
            bench::render_summary(&report.entries, quick)
        }
        other => {
            eprintln!("unknown experiment `{other}`");
            eprintln!("expected one of: all, table1-plus, table1-if, table1, table2, fig2, fig3, fig4, fig5, summary, compare");
            std::process::exit(2);
        }
    };
    println!("{report}");
}
