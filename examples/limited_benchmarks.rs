//! Running the three tools (naySL, nayHorn, nope) on benchmarks from the
//! paper's evaluation families — the workloads the introduction motivates:
//! proving that *syntax-restricted* synthesis problems (a Plus too few, an
//! IfThenElse too few, a missing constant) have no solution.
//!
//! Run with `cargo run --release --example limited_benchmarks`.

use nay::check::check_unrealizable;
use nay::Mode;
use nope::NopeSolver;
use std::time::Instant;

fn main() {
    let picks = [
        "plus_plane1",
        "plus_guard1",
        "if_max2",
        "if_guard1",
        "array_search_2",
        "array_sum_2_5",
        "mpg_example1",
    ];
    println!(
        "{:<18} {:>4} {:>4} {:>4} {:>4}   {:<14} {:<14} {:<14}",
        "benchmark", "|N|", "|δ|", "|V|", "|E|", "naySL", "nayHorn", "nope"
    );
    for name in picks {
        let bench = benchmarks::all()
            .into_iter()
            .find(|b| b.name == name)
            .expect("benchmark exists");
        let run = |mode: &Mode| {
            let start = Instant::now();
            let verdict = check_unrealizable(&bench.problem, &bench.witness_examples, mode).verdict;
            format!("{:?} {:.0?}", verdict, start.elapsed())
        };
        let start = Instant::now();
        let (nope_verdict, _) = NopeSolver::new().check(&bench.problem, &bench.witness_examples);
        let nope_report = format!("{:?} {:.0?}", nope_verdict, start.elapsed());
        println!(
            "{:<18} {:>4} {:>4} {:>4} {:>4}   {:<14} {:<14} {:<14}",
            bench.name,
            bench.num_nonterminals(),
            bench.num_productions(),
            bench.num_variables(),
            bench.num_examples(),
            run(&Mode::default()),
            run(&Mode::horn()),
            nope_report
        );
    }
    println!("\n(as in the paper, the exact naySL mode proves the most benchmarks;");
    println!(" nayHorn and nope share their approximate back end and agree with each other)");
}
