; if_max2 — exported by `cargo run --example export_corpus`
(set-logic LIA)
(synth-fun f ((x1 Int) (x2 Int)) Int
  ((S0 Int (x1 x2 0 1 (+ S0 S0)))))
(declare-var x1 Int)
(declare-var x2 Int)
(constraint (>= (f x1 x2) x1))
(constraint (>= (f x1 x2) x2))
(constraint (or (= (f x1 x2) x1) (= (f x1 x2) x2)))
(check-synth)
