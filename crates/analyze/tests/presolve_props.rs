//! Property-based soundness tests for the presolve, backed by `gen`'s
//! by-construction problem generator: whatever the analyzer concludes, it
//! must never contradict the generator's ground-truth verdict class, on
//! any family and any seed. Every definitive outcome must additionally
//! survive its own [`Presolver::recheck`] gate, and a realizable outcome
//! must carry a witness the grammar actually derives.

use analyze::{PresolveVerdict, Presolver};
use gen::{build, Expectation, Family, GenRng, Scale};
use proptest::prelude::*;

fn check_family_seed(family: Family, seed: u64) {
    let mut rng = GenRng::from_seed(seed);
    let built = build(family, &mut rng, &Scale::default());
    let presolver = Presolver::new();
    let outcome = presolver.presolve(&built.problem);
    match (outcome.verdict, built.expected) {
        (PresolveVerdict::Unrealizable, Expectation::Realizable) => panic!(
            "presolve claims unrealizable on a by-construction realizable {} instance (seed {seed}): {}\nwitness: {:?}",
            family.name(),
            outcome.reason,
            built.witness,
        ),
        (PresolveVerdict::Realizable, Expectation::Unrealizable) => panic!(
            "presolve claims realizable on a by-construction unrealizable {} instance (seed {seed}): {}\nclaimed witness: {:?}",
            family.name(),
            outcome.reason,
            outcome.witness,
        ),
        _ => {}
    }
    if outcome.is_definitive() {
        assert!(
            presolver.recheck(&built.problem, &outcome),
            "definitive presolve outcome fails its own recheck on {} seed {seed}: {}",
            family.name(),
            outcome.reason,
        );
    }
    if outcome.verdict == PresolveVerdict::Realizable {
        let witness = outcome
            .witness
            .as_ref()
            .expect("realizable needs a witness");
        assert!(
            built.problem.grammar().contains_term(witness),
            "presolve witness {witness} is not derivable on {} seed {seed}",
            family.name(),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// The presolve never contradicts the generator's ground truth, on
    /// any family at any seed.
    #[test]
    fn presolve_never_contradicts_ground_truth(
        family_index in 0usize..Family::ALL.len(),
        seed in 0u64..1_000_000,
    ) {
        check_family_seed(Family::ALL[family_index], seed);
    }
}

/// A deterministic sweep over the first seeds of every family, so the
/// cheapest regression signal does not depend on proptest's sampling.
#[test]
fn presolve_agrees_with_ground_truth_on_early_seeds() {
    for family in Family::ALL {
        for seed in 0..40u64 {
            check_family_seed(family, seed);
        }
    }
}

/// The presolve must settle at least one instance per family over a
/// modest seed range — the static analyzer's reason to exist in the
/// portfolio. (The per-family decidability argument: every family emits
/// unrealizable instances refutable by a single-probe interval/parity
/// abstraction, and some families additionally emit finite languages.)
#[test]
fn presolve_settles_instances_of_every_family() {
    for family in Family::ALL {
        let presolver = Presolver::new();
        let settled = (0..60u64).any(|seed| {
            let mut rng = GenRng::from_seed(seed);
            let built = build(family, &mut rng, &Scale::default());
            presolver.presolve(&built.problem).is_definitive()
        });
        assert!(
            settled,
            "presolve settled no {} instance in seeds 0..60",
            family.name(),
        );
    }
}
