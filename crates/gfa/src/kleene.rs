//! Kleene (chaotic) iteration for GFA equation systems.
//!
//! Kleene iteration converges to the least fixed point only on domains
//! without infinite ascending chains (§4.3). Over semi-linear sets it may
//! diverge — e.g. `X = {1} ⊗ X ⊕ {0}` keeps growing — so the iteration is
//! bounded and reports whether it converged. It is still useful
//!
//! * as the solver for finite-height instantiations, and
//! * as a baseline to compare Newton's method against (the paper's
//!   motivation for NPA).

use crate::equations::{EquationSystem, Solution};
use crate::semiring::Semiring;

/// Solves the system by iterating `ν ← F(ν)` from `⊥ = 0` until a fixed
/// point is reached or `max_iterations` is exhausted.
///
/// The returned [`Solution::exact`] flag is `true` only when an actual fixed
/// point was reached (which, for monotone `F`, is then the least one).
pub fn solve<S: Semiring>(
    semiring: &S,
    system: &EquationSystem<S::Elem>,
    max_iterations: usize,
) -> Solution<S::Elem> {
    let mut valuation: Vec<S::Elem> = vec![semiring.zero(); system.num_vars()];
    for iteration in 0..max_iterations {
        let next = system.eval_all(semiring, &valuation);
        if next == valuation {
            return Solution {
                values: valuation,
                iterations: iteration,
                exact: true,
            };
        }
        valuation = next;
    }
    Solution {
        values: valuation,
        iterations: max_iterations,
        exact: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equations::Monomial;
    use crate::semiring::SemiLinearSemiring;
    use semilinear::{IntVec, SemiLinearSet};

    fn single(v: &[i64]) -> SemiLinearSet {
        SemiLinearSet::singleton(IntVec::from(v.to_vec()))
    }

    #[test]
    fn converges_on_non_recursive_systems() {
        let sr = SemiLinearSemiring::new(1);
        let mut sys = EquationSystem::new(2);
        // X0 = {1} ⊗ X1,  X1 = {5} ⊕ {7}
        sys.add_monomial(0, Monomial::new(single(&[1]), vec![1]));
        sys.add_monomial(1, Monomial::constant(single(&[5])));
        sys.add_monomial(1, Monomial::constant(single(&[7])));
        let sol = solve(&sr, &sys, 10);
        assert!(sol.exact);
        assert!(sol.values[0].contains(&IntVec::from(vec![6])));
        assert!(sol.values[0].contains(&IntVec::from(vec![8])));
        assert!(!sol.values[0].contains(&IntVec::from(vec![5])));
    }

    #[test]
    fn diverges_on_recursive_semilinear_systems() {
        let sr = SemiLinearSemiring::new(1);
        let mut sys = EquationSystem::new(1);
        // X = {3} ⊗ X ⊕ {0}: Kleene keeps producing {0}, {0,3}, {0,3,6}, …
        sys.add_monomial(0, Monomial::new(single(&[3]), vec![0]));
        sys.add_monomial(0, Monomial::constant(single(&[0])));
        let sol = solve(&sr, &sys, 8);
        assert!(!sol.exact, "Kleene iteration cannot converge here");
        // it still produces a sound under-approximation of the limit
        assert!(sol.values[0].contains(&IntVec::from(vec![0])));
        assert!(sol.values[0].contains(&IntVec::from(vec![3])));
    }

    #[test]
    fn zero_iterations_leaves_bottom() {
        let sr = SemiLinearSemiring::new(1);
        let mut sys = EquationSystem::new(1);
        sys.add_monomial(0, Monomial::constant(single(&[1])));
        let sol = solve(&sr, &sys, 0);
        assert!(!sol.exact);
        assert!(sol.values[0].is_zero());
    }
}
