//! Criterion bench for Fig. 2: naySL solving time vs |N| for |E| = 1..3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nay::check::check_unrealizable;
use nay::Mode;
use sygus::ExampleSet;

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_semilinear_scaling");
    group.sample_size(10);
    for num_examples in 1..=3usize {
        for n in [2usize, 4, 6, 8] {
            let problem = benchmarks::scaling_problem(n);
            let examples =
                ExampleSet::for_single_var("x", (1..=num_examples as i64).collect::<Vec<_>>());
            group.bench_with_input(
                BenchmarkId::new(format!("E{num_examples}"), n),
                &n,
                |b, _| b.iter(|| check_unrealizable(&problem, &examples, &Mode::default())),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
