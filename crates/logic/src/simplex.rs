//! A small exact (rational) two-phase simplex solver.
//!
//! This is the linear-programming engine behind the integer feasibility
//! checks of the [`Solver`](crate::Solver). It works on dense tableaux with
//! [`Rational`] entries and uses Bland's rule, so it always terminates and
//! never suffers from floating-point error.

use crate::rational::Rational;

/// The relation of a linear constraint handed to the LP solver.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LpRel {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
    /// `Σ aᵢxᵢ = b`
    Eq,
}

/// Outcome of an LP solve.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LpResult {
    /// The constraint system has no rational solution.
    Infeasible,
    /// The objective is unbounded above on the feasible region.
    Unbounded,
    /// An optimal solution; `point[i]` is the value of structural variable `i`.
    Optimal {
        /// Optimal objective value.
        objective: Rational,
        /// Values of the structural variables.
        point: Vec<Rational>,
    },
}

impl LpResult {
    /// The witness point, if the solve produced one.
    pub fn point(&self) -> Option<&[Rational]> {
        match self {
            LpResult::Optimal { point, .. } => Some(point),
            _ => None,
        }
    }
}

/// An LP over `num_vars` *free* (unrestricted in sign) structural variables.
///
/// # Example
/// ```
/// use logic::{Simplex, Rational, LpResult, LpRel};
/// let mut lp = Simplex::new(1);
/// // x ≥ 2  ∧  x ≤ 5, maximize x  →  5
/// lp.add_constraint(vec![Rational::from_int(1)], LpRel::Ge, Rational::from_int(2));
/// lp.add_constraint(vec![Rational::from_int(1)], LpRel::Le, Rational::from_int(5));
/// match lp.maximize(&[Rational::from_int(1)]) {
///     LpResult::Optimal { objective, .. } => assert_eq!(objective, Rational::from_int(5)),
///     other => panic!("unexpected {other:?}"),
/// }
/// ```
#[derive(Clone, Debug)]
pub struct Simplex {
    num_vars: usize,
    constraints: Vec<(Vec<Rational>, LpRel, Rational)>,
}

struct Tableau {
    /// rows[i] = coefficients over all columns, length = ncols
    rows: Vec<Vec<Rational>>,
    /// right-hand sides, all non-negative
    rhs: Vec<Rational>,
    /// basis[i] = column index basic in row i
    basis: Vec<usize>,
    ncols: usize,
}

impl Tableau {
    /// Pivot on (row, col).
    fn pivot(&mut self, row: usize, col: usize) {
        let piv = self.rows[row][col];
        debug_assert!(!piv.is_zero());
        let inv = piv.recip();
        for c in 0..self.ncols {
            self.rows[row][c] = self.rows[row][c] * inv;
        }
        self.rhs[row] = self.rhs[row] * inv;
        for r in 0..self.rows.len() {
            if r == row {
                continue;
            }
            let factor = self.rows[r][col];
            if factor.is_zero() {
                continue;
            }
            for c in 0..self.ncols {
                let delta = self.rows[row][c] * factor;
                self.rows[r][c] = self.rows[r][c] - delta;
            }
            self.rhs[r] = self.rhs[r] - self.rhs[row] * factor;
        }
        self.basis[row] = col;
    }

    /// Runs the simplex loop maximizing `obj` (length ncols) with Bland's
    /// rule. `allowed` marks columns permitted to enter the basis.
    /// Returns `None` if unbounded, otherwise the objective value.
    fn optimize(&mut self, obj: &[Rational], allowed: &[bool]) -> Option<Rational> {
        loop {
            // reduced costs: c_j - c_B B^{-1} A_j. We recompute from scratch:
            // since rows are kept in canonical (basis = identity) form, the
            // reduced cost of column j is obj[j] - Σ_i obj[basis[i]] * rows[i][j].
            let mut entering = None;
            for j in 0..self.ncols {
                if !allowed[j] || self.basis.contains(&j) {
                    continue;
                }
                let mut red = obj[j];
                for (i, &b) in self.basis.iter().enumerate() {
                    red = red - obj[b] * self.rows[i][j];
                }
                if red.is_positive() {
                    entering = Some(j);
                    break; // Bland: smallest index
                }
            }
            let Some(col) = entering else {
                // optimal; compute objective value
                let mut val = Rational::ZERO;
                for (i, &b) in self.basis.iter().enumerate() {
                    val += obj[b] * self.rhs[i];
                }
                return Some(val);
            };
            // ratio test
            let mut leaving: Option<(usize, Rational)> = None;
            for i in 0..self.rows.len() {
                let a = self.rows[i][col];
                if a.is_positive() {
                    let ratio = self.rhs[i] / a;
                    match &leaving {
                        None => leaving = Some((i, ratio)),
                        Some((li, lr)) => {
                            if ratio < *lr || (ratio == *lr && self.basis[i] < self.basis[*li]) {
                                leaving = Some((i, ratio));
                            }
                        }
                    }
                }
            }
            let Some((row, _)) = leaving else {
                return None; // unbounded
            };
            self.pivot(row, col);
        }
    }
}

impl Simplex {
    /// Creates an LP with `num_vars` free structural variables and no
    /// constraints.
    pub fn new(num_vars: usize) -> Self {
        Simplex {
            num_vars,
            constraints: Vec::new(),
        }
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Adds the constraint `Σ coeffs[i]·xᵢ REL rhs`.
    ///
    /// # Panics
    /// Panics if `coeffs.len() != num_vars`.
    pub fn add_constraint(&mut self, coeffs: Vec<Rational>, rel: LpRel, rhs: Rational) {
        assert_eq!(
            coeffs.len(),
            self.num_vars,
            "coefficient vector length mismatch"
        );
        self.constraints.push((coeffs, rel, rhs));
    }

    /// Finds any rational solution of the constraints.
    pub fn feasible_point(&self) -> Option<Vec<Rational>> {
        match self.maximize(&vec![Rational::ZERO; self.num_vars]) {
            LpResult::Optimal { point, .. } => Some(point),
            LpResult::Unbounded => unreachable!("zero objective cannot be unbounded"),
            LpResult::Infeasible => None,
        }
    }

    /// Maximizes `Σ objective[i]·xᵢ` subject to the constraints.
    pub fn maximize(&self, objective: &[Rational]) -> LpResult {
        assert_eq!(objective.len(), self.num_vars, "objective length mismatch");
        // Column layout: for each structural variable x_j we use two
        // non-negative columns p_j (=2j) and q_j (=2j+1) with x_j = p_j - q_j;
        // then one slack/surplus column per inequality row; then one
        // artificial column per row.
        let n = self.num_vars;
        let m = self.constraints.len();
        let slack_base = 2 * n;
        let num_slacks = self
            .constraints
            .iter()
            .filter(|(_, rel, _)| *rel != LpRel::Eq)
            .count();
        let art_base = slack_base + num_slacks;
        let ncols = art_base + m;

        let mut rows = Vec::with_capacity(m);
        let mut rhs = Vec::with_capacity(m);
        let mut basis = Vec::with_capacity(m);
        let mut slack_idx = 0;
        for (i, (coeffs, rel, b)) in self.constraints.iter().enumerate() {
            let mut row = vec![Rational::ZERO; ncols];
            for j in 0..n {
                row[2 * j] = coeffs[j];
                row[2 * j + 1] = -coeffs[j];
            }
            match rel {
                LpRel::Le => {
                    row[slack_base + slack_idx] = Rational::ONE;
                    slack_idx += 1;
                }
                LpRel::Ge => {
                    row[slack_base + slack_idx] = -Rational::ONE;
                    slack_idx += 1;
                }
                LpRel::Eq => {}
            }
            let mut b = *b;
            if b.is_negative() {
                for c in row.iter_mut() {
                    *c = -*c;
                }
                b = -b;
            }
            row[art_base + i] = Rational::ONE;
            rows.push(row);
            rhs.push(b);
            basis.push(art_base + i);
        }

        let mut tab = Tableau {
            rows,
            rhs,
            basis,
            ncols,
        };

        // Phase 1: maximize -(sum of artificials).
        let mut phase1_obj = vec![Rational::ZERO; ncols];
        for slot in phase1_obj.iter_mut().skip(art_base) {
            *slot = -Rational::ONE;
        }
        let allowed_all = vec![true; ncols];
        let val = tab
            .optimize(&phase1_obj, &allowed_all)
            .expect("phase-1 objective is bounded above by 0");
        if val.is_negative() {
            return LpResult::Infeasible;
        }
        // Pivot any artificial still in the basis out if possible.
        for i in 0..tab.rows.len() {
            if tab.basis[i] >= art_base {
                if let Some(col) = (0..art_base).find(|&c| !tab.rows[i][c].is_zero()) {
                    tab.pivot(i, col);
                }
            }
        }

        // Phase 2: maximize the real objective with artificial columns frozen.
        let mut allowed = vec![true; ncols];
        for a in allowed.iter_mut().skip(art_base) {
            *a = false;
        }
        let mut phase2_obj = vec![Rational::ZERO; ncols];
        for j in 0..n {
            phase2_obj[2 * j] = objective[j];
            phase2_obj[2 * j + 1] = -objective[j];
        }
        let Some(objective_value) = tab.optimize(&phase2_obj, &allowed) else {
            return LpResult::Unbounded;
        };

        // Extract structural variable values.
        let mut point = vec![Rational::ZERO; n];
        for (i, &b) in tab.basis.iter().enumerate() {
            if b < 2 * n {
                let var = b / 2;
                if b % 2 == 0 {
                    point[var] += tab.rhs[i];
                } else {
                    point[var] = point[var] - tab.rhs[i];
                }
            }
        }
        LpResult::Optimal {
            objective: objective_value,
            point,
        }
    }

    /// Minimizes the objective (by maximizing its negation).
    pub fn minimize(&self, objective: &[Rational]) -> LpResult {
        let neg: Vec<Rational> = objective.iter().map(|c| -*c).collect();
        match self.maximize(&neg) {
            LpResult::Optimal { objective, point } => LpResult::Optimal {
                objective: -objective,
                point,
            },
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LE: LpRel = LpRel::Le;
    const GE: LpRel = LpRel::Ge;
    const EQ: LpRel = LpRel::Eq;

    fn r(v: i64) -> Rational {
        Rational::from_int(v)
    }

    #[test]
    fn bounded_maximization() {
        // max x + y s.t. x + y <= 4, x <= 3, y <= 2  → 4
        let mut lp = Simplex::new(2);
        lp.add_constraint(vec![r(1), r(1)], LE, r(4));
        lp.add_constraint(vec![r(1), r(0)], LE, r(3));
        lp.add_constraint(vec![r(0), r(1)], LE, r(2));
        match lp.maximize(&[r(1), r(1)]) {
            LpResult::Optimal { objective, point } => {
                assert_eq!(objective, r(4));
                assert_eq!(point[0] + point[1], r(4));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn infeasible_system() {
        // x >= 3 and x <= 1
        let mut lp = Simplex::new(1);
        lp.add_constraint(vec![r(1)], GE, r(3));
        lp.add_constraint(vec![r(1)], LE, r(1));
        assert_eq!(lp.maximize(&[r(0)]), LpResult::Infeasible);
        assert!(lp.feasible_point().is_none());
    }

    #[test]
    fn unbounded_objective() {
        // x >= 0, maximize x
        let mut lp = Simplex::new(1);
        lp.add_constraint(vec![r(1)], GE, r(0));
        assert_eq!(lp.maximize(&[r(1)]), LpResult::Unbounded);
    }

    #[test]
    fn negative_and_free_variables() {
        // x <= -5, maximize x  → -5
        let mut lp = Simplex::new(1);
        lp.add_constraint(vec![r(1)], LE, r(-5));
        match lp.maximize(&[r(1)]) {
            LpResult::Optimal { objective, .. } => assert_eq!(objective, r(-5)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn equality_constraints() {
        // x + y = 3, x - y = 1 → x = 2, y = 1
        let mut lp = Simplex::new(2);
        lp.add_constraint(vec![r(1), r(1)], EQ, r(3));
        lp.add_constraint(vec![r(1), r(-1)], EQ, r(1));
        let p = lp.feasible_point().expect("feasible");
        assert_eq!(p[0], r(2));
        assert_eq!(p[1], r(1));
    }

    #[test]
    fn fractional_optimum() {
        // 2x = 1 → x = 1/2
        let mut lp = Simplex::new(1);
        lp.add_constraint(vec![r(2)], EQ, r(1));
        let p = lp.feasible_point().expect("feasible");
        assert_eq!(p[0], Rational::new(1, 2));
    }

    #[test]
    fn minimize_works() {
        // x >= 7, minimize x → 7
        let mut lp = Simplex::new(1);
        lp.add_constraint(vec![r(1)], GE, r(7));
        match lp.minimize(&[r(1)]) {
            LpResult::Optimal { objective, .. } => assert_eq!(objective, r(7)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn feasible_point_satisfies_constraints() {
        let mut lp = Simplex::new(3);
        lp.add_constraint(vec![r(1), r(2), r(-1)], LE, r(4));
        lp.add_constraint(vec![r(0), r(1), r(1)], GE, r(1));
        lp.add_constraint(vec![r(1), r(-1), r(0)], EQ, r(0));
        let p = lp.feasible_point().expect("feasible");
        let dot = |c: &[Rational]| {
            c.iter()
                .zip(&p)
                .fold(Rational::ZERO, |acc, (a, b)| acc + *a * *b)
        };
        assert!(dot(&[r(1), r(2), r(-1)]) <= r(4));
        assert!(dot(&[r(0), r(1), r(1)]) >= r(1));
        assert_eq!(dot(&[r(1), r(-1), r(0)]), r(0));
    }
}
