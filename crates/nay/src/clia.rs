//! The exact decision procedure for CLIA SyGuS problems with examples (§6).
//!
//! CLIA grammars mix integer and Boolean nonterminals, connected by
//! `LessThan` (integers → Booleans) and `IfThenElse` (Booleans → integers).
//! The procedure [`analyze`] alternates two steps until the Boolean
//! abstractions stop changing (algorithm *SolveMutual*, §6.4):
//!
//! 1. **SolveBool** (§6.3): with the integer abstractions fixed, the Boolean
//!    equations are solved by finite fixed-point iteration over sets of
//!    Boolean vectors; `⟦LessThan⟧♯` is computed with `2^|E|` satisfiability
//!    queries on the symbolic concretizations (§6.2).
//! 2. **SolveInt**: with the Boolean abstractions fixed, the integer
//!    equations — which may contain `IfThenElse` — are rewritten by *RemIf*
//!    (§6.4, Fig. 1) into pure `⊕`/`⊗` equations over variables `X^b`
//!    (one copy of each integer nonterminal per Boolean mask `b`), and solved
//!    exactly with Newton's method. The value of `X` is the value of
//!    `X^{(t,…,t)}`.
//!
//! The combined abstraction is exact (Lemma 6.2), which is what makes the
//! final satisfiability check a decision procedure (Thm. 6.9).

use gfa::{EquationSystem, Monomial, SemiLinearSemiring, Semiring};
use logic::{Formula, Solver, Var};
use semilinear::{concretize_semilinear_prefixed, BoolVec, BoolVecSet, IntVec, SemiLinearSet};
use std::collections::BTreeMap;
use sygus::{ExampleSet, Grammar, NonTerminal, Sort, SygusError, Symbol};

/// The result of the CLIA analysis.
#[derive(Clone, Debug)]
pub struct CliaAnalysis {
    /// Exact abstraction of every integer nonterminal.
    pub int_values: BTreeMap<NonTerminal, SemiLinearSet>,
    /// Exact abstraction of every Boolean nonterminal.
    pub bool_values: BTreeMap<NonTerminal, BoolVecSet>,
    /// Number of outer SolveMutual iterations.
    pub outer_iterations: usize,
    /// Number of inner SolveBool fixed-point iterations (total).
    pub bool_iterations: usize,
}

impl CliaAnalysis {
    /// The abstraction of the start symbol, as either a semi-linear set or a
    /// Boolean-vector set depending on its sort.
    pub fn start_size(&self, grammar: &Grammar) -> usize {
        match grammar.sort_of(grammar.start()) {
            Some(Sort::Int) => self
                .int_values
                .get(grammar.start())
                .map(|v| v.size())
                .unwrap_or(0),
            Some(Sort::Bool) => self
                .bool_values
                .get(grammar.start())
                .map(|v| v.len())
                .unwrap_or(0),
            None => 0,
        }
    }
}

/// `⟦LessThan⟧♯(sl₁, sl₂)` (§6.2): the set of Boolean vectors `b` such that
/// some pair of members `v₁ ∈ sl₁, v₂ ∈ sl₂` satisfies `b = v₁ < v₂`
/// component-wise. Computed with `2^|E|` QF-LIA queries.
pub fn abstract_less_than(sl1: &SemiLinearSet, sl2: &SemiLinearSet, dim: usize) -> BoolVecSet {
    abstract_comparison(sl1, sl2, dim, Formula::lt, Formula::ge)
}

/// `⟦Equal⟧♯(sl₁, sl₂)`: analogous to [`abstract_less_than`] for equality.
pub fn abstract_equal(sl1: &SemiLinearSet, sl2: &SemiLinearSet, dim: usize) -> BoolVecSet {
    abstract_comparison(sl1, sl2, dim, Formula::eq, Formula::ne)
}

fn abstract_comparison(
    sl1: &SemiLinearSet,
    sl2: &SemiLinearSet,
    dim: usize,
    holds: impl Fn(logic::LinearExpr, logic::LinearExpr) -> Formula,
    fails: impl Fn(logic::LinearExpr, logic::LinearExpr) -> Formula,
) -> BoolVecSet {
    if sl1.is_zero() || sl2.is_zero() {
        return BoolVecSet::empty();
    }
    let left_vars: Vec<Var> = (0..dim).map(|j| Var::new(format!("cmp_l_{j}"))).collect();
    let right_vars: Vec<Var> = (0..dim).map(|j| Var::new(format!("cmp_r_{j}"))).collect();
    let gamma = Formula::and(vec![
        concretize_semilinear_prefixed(sl1, &left_vars, "cmp_lam_l"),
        concretize_semilinear_prefixed(sl2, &right_vars, "cmp_lam_r"),
    ]);
    let solver = Solver::default();
    let mut out = BoolVecSet::empty();
    for b in BoolVec::all(dim) {
        let mut conjuncts = vec![gamma.clone()];
        for j in 0..dim {
            let l = logic::LinearExpr::var(left_vars[j].clone());
            let r = logic::LinearExpr::var(right_vars[j].clone());
            conjuncts.push(if b[j] { holds(l, r) } else { fails(l, r) });
        }
        if solver.check(&Formula::and(conjuncts)).is_sat() {
            out = out.union(&BoolVecSet::singleton(b));
        }
    }
    out
}

/// Step 1 of SolveMutual: the least fixed point of the Boolean equations with
/// the integer abstractions held fixed (algorithm *SolveBool*, §6.3).
/// Returns the Boolean values and the number of iterations used.
pub fn solve_bool(
    grammar: &Grammar,
    examples: &ExampleSet,
    int_values: &BTreeMap<NonTerminal, SemiLinearSet>,
) -> (BTreeMap<NonTerminal, BoolVecSet>, usize) {
    let dim = examples.len();
    let bool_nts = grammar.bool_nonterminals();
    let mut values: BTreeMap<NonTerminal, BoolVecSet> = bool_nts
        .iter()
        .map(|nt| (nt.clone(), BoolVecSet::empty()))
        .collect();
    let max_iterations = bool_nts.len() * (1usize << dim) + 2;
    let mut iterations = 0;
    for _ in 0..max_iterations {
        iterations += 1;
        let mut changed = false;
        let mut next = values.clone();
        for nt in &bool_nts {
            let mut acc = BoolVecSet::empty();
            for p in grammar.productions_of(nt) {
                let contribution = match &p.symbol {
                    Symbol::LessThan => {
                        abstract_less_than(&int_values[&p.args[0]], &int_values[&p.args[1]], dim)
                    }
                    Symbol::Equal => {
                        abstract_equal(&int_values[&p.args[0]], &int_values[&p.args[1]], dim)
                    }
                    Symbol::And => values[&p.args[0]].and(&values[&p.args[1]]),
                    Symbol::Or => values[&p.args[0]].or(&values[&p.args[1]]),
                    Symbol::Not => values[&p.args[0]].not(),
                    other => unreachable!("symbol {other} cannot produce a Boolean nonterminal"),
                };
                acc = acc.union(&contribution);
            }
            if acc != values[nt] {
                changed = true;
            }
            next.insert(nt.clone(), acc);
        }
        values = next;
        if !changed {
            break;
        }
    }
    (values, iterations)
}

/// Step 2 of SolveMutual: solve the integer equations with the Boolean
/// abstractions fixed, eliminating `IfThenElse` via the *RemIf* rewriting.
pub fn solve_int(
    grammar: &Grammar,
    examples: &ExampleSet,
    bool_values: &BTreeMap<NonTerminal, BoolVecSet>,
    stratified: bool,
    prune: bool,
) -> Result<BTreeMap<NonTerminal, SemiLinearSet>, SygusError> {
    let dim = examples.len();
    let int_nts = grammar.int_nonterminals();
    let nt_index: BTreeMap<NonTerminal, usize> = int_nts
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, nt)| (nt, i))
        .collect();
    let semiring = SemiLinearSemiring::new(dim).with_pruning(prune);

    // Masks: with IfThenElse we need one copy of every variable per Boolean
    // vector; without it a single (all-true) mask suffices.
    let masks: Vec<BoolVec> = if grammar.has_ite() {
        BoolVec::all(dim)
    } else {
        vec![BoolVec::trues(dim)]
    };
    let mask_index: BTreeMap<BoolVec, usize> = masks
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, m)| (m, i))
        .collect();
    let var_of = |nt: &NonTerminal, mask: &BoolVec| -> usize {
        nt_index[nt] * masks.len() + mask_index[mask]
    };

    let mut system: EquationSystem<SemiLinearSet> =
        EquationSystem::new(int_nts.len() * masks.len());

    for p in grammar.productions() {
        if grammar.sort_of(&p.lhs) != Some(Sort::Int) {
            continue;
        }
        for mask in &masks {
            let lhs = var_of(&p.lhs, mask);
            let project = |v: IntVec| -> SemiLinearSet {
                SemiLinearSet::singleton(v.project(mask.as_slice()))
            };
            match &p.symbol {
                Symbol::Plus => {
                    system.add_monomial(
                        lhs,
                        Monomial::new(
                            semiring.one(),
                            p.args.iter().map(|a| var_of(a, mask)).collect(),
                        ),
                    );
                }
                Symbol::Num(c) => {
                    system.add_monomial(lhs, Monomial::constant(project(IntVec::splat(*c, dim))));
                }
                Symbol::Var(x) => {
                    system.add_monomial(
                        lhs,
                        Monomial::constant(project(IntVec::from(examples.projection(x)?))),
                    );
                }
                Symbol::NegVar(x) => {
                    system.add_monomial(
                        lhs,
                        Monomial::constant(project(-IntVec::from(examples.projection(x)?))),
                    );
                }
                Symbol::IfThenElse => {
                    let guard = &p.args[0];
                    let (then_nt, else_nt) = (&p.args[1], &p.args[2]);
                    for b in bool_values
                        .get(guard)
                        .map(|s| s.iter().cloned().collect::<Vec<_>>())
                        .unwrap_or_default()
                    {
                        let then_mask = b.and(mask);
                        let else_mask = b.negate().and(mask);
                        system.add_monomial(
                            lhs,
                            Monomial::new(
                                semiring.one(),
                                vec![var_of(then_nt, &then_mask), var_of(else_nt, &else_mask)],
                            ),
                        );
                    }
                }
                Symbol::Minus => {
                    return Err(SygusError::GrammarError(
                        "the grammar contains Minus; apply the h(G) rewriting first".to_string(),
                    ))
                }
                other => {
                    return Err(SygusError::GrammarError(format!(
                        "unexpected symbol {other} in an integer production"
                    )))
                }
            }
        }
    }

    let solution = if stratified {
        gfa::strata::solve_stratified(&semiring, &system)
    } else {
        gfa::newton::solve(&semiring, &system)
    };

    let all_true = BoolVec::trues(dim);
    Ok(int_nts
        .iter()
        .map(|nt| (nt.clone(), solution.values[var_of(nt, &all_true)].clone()))
        .collect())
}

/// The full SolveMutual procedure (§6.4): alternate [`solve_bool`] and
/// [`solve_int`] until the Boolean abstractions reach their (finite) fixed
/// point.
///
/// # Errors
/// Returns an error for grammars containing `Minus` (rewrite first) or
/// examples not binding a grammar variable.
pub fn analyze(
    grammar: &Grammar,
    examples: &ExampleSet,
    stratified: bool,
    prune: bool,
) -> Result<CliaAnalysis, SygusError> {
    let dim = examples.len();
    let mut int_values: BTreeMap<NonTerminal, SemiLinearSet> = grammar
        .int_nonterminals()
        .into_iter()
        .map(|nt| (nt, SemiLinearSet::zero()))
        .collect();
    let mut prev_bools: Option<BTreeMap<NonTerminal, BoolVecSet>> = None;
    let mut outer_iterations = 0;
    let mut bool_iterations = 0;
    let max_outer = grammar.num_nonterminals() * (1usize << dim) + 2;

    loop {
        let (bools, iters) = solve_bool(grammar, examples, &int_values);
        bool_iterations += iters;
        if prev_bools.as_ref() == Some(&bools) {
            return Ok(CliaAnalysis {
                int_values,
                bool_values: bools,
                outer_iterations,
                bool_iterations,
            });
        }
        int_values = solve_int(grammar, examples, &bools, stratified, prune)?;
        prev_bools = Some(bools);
        outer_iterations += 1;
        if outer_iterations >= max_outer {
            // Termination is guaranteed by Lemma 6.6; this is a safety net.
            return Ok(CliaAnalysis {
                int_values,
                bool_values: prev_bools.unwrap_or_default(),
                outer_iterations,
                bool_iterations,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semilinear::LinearSet;
    use sygus::GrammarBuilder;

    fn v(components: &[i64]) -> IntVec {
        IntVec::from(components.to_vec())
    }

    /// The CLIA grammar G2 of §2 (Eqn. (5)), in production normal form.
    fn g2() -> Grammar {
        GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .nonterminal("BExp", Sort::Bool)
            .nonterminal("Exp2", Sort::Int)
            .nonterminal("Exp3", Sort::Int)
            .nonterminal("X", Sort::Int)
            .nonterminal("N0", Sort::Int)
            .nonterminal("N2", Sort::Int)
            // Start ::= IfThenElse(BExp, Exp3, Start) | Exp2 | Exp3
            .production("Start", Symbol::IfThenElse, &["BExp", "Exp3", "Start"])
            .chain("Start", "Exp2")
            .chain("Start", "Exp3")
            // BExp ::= LessThan(X, N2) | LessThan(N0, Start) | And(BExp, BExp)
            .production("BExp", Symbol::LessThan, &["X", "N2"])
            .production("BExp", Symbol::LessThan, &["N0", "Start"])
            .production("BExp", Symbol::And, &["BExp", "BExp"])
            // Exp2 ::= Plus(X, X, Exp2) | Num(0)
            .production("Exp2", Symbol::Plus, &["X", "X", "Exp2"])
            .production("Exp2", Symbol::Num(0), &[])
            // Exp3 ::= Plus(X, X, X, Exp3) | Num(0)
            .production("Exp3", Symbol::Plus, &["X", "X", "X", "Exp3"])
            .production("Exp3", Symbol::Num(0), &[])
            .production("X", Symbol::Var("x".to_string()), &[])
            .production("N0", Symbol::Num(0), &[])
            .production("N2", Symbol::Num(2), &[])
            .build()
            .unwrap()
    }

    #[test]
    fn abstract_less_than_matches_example_6_1() {
        // sl1 = {⟨(1,2),{(3,4)}⟩}, sl2 = {⟨(5,6),{(7,8)}⟩}
        let sl1 = SemiLinearSet::from_linear_sets([LinearSet::new(v(&[1, 2]), vec![v(&[3, 4])])]);
        let sl2 = SemiLinearSet::from_linear_sets([LinearSet::new(v(&[5, 6]), vec![v(&[7, 8])])]);
        let result = abstract_less_than(&sl1, &sl2, 2);
        let expected = BoolVecSet::from_vecs([
            BoolVec::from(vec![true, true]),
            BoolVec::from(vec![true, false]),
            BoolVec::from(vec![false, false]),
        ]);
        assert_eq!(result, expected);
        // equality on overlapping singletons
        let a = SemiLinearSet::singleton(v(&[1, 2]));
        let b = SemiLinearSet::from_linear_sets([LinearSet::new(v(&[1, 0]), vec![v(&[0, 1])])]);
        let eq = abstract_equal(&a, &b, 2);
        assert!(eq.contains(&BoolVec::from(vec![true, true])));
        assert!(eq.contains(&BoolVec::from(vec![true, false])));
        assert!(!eq.contains(&BoolVec::from(vec![false, true])));
        assert!(!eq.contains(&BoolVec::from(vec![false, false])));
    }

    #[test]
    fn exp2_and_exp3_summaries_match_section_2() {
        // With E = ⟨1, 2⟩: Exp2 = {(0,0) + λ(2,4)}, Exp3 = {(0,0) + λ(3,6)}
        let examples = ExampleSet::for_single_var("x", [1, 2]);
        let analysis = analyze(&g2(), &examples, true, true).unwrap();
        let exp2 = &analysis.int_values[&NonTerminal::new("Exp2")];
        assert!(exp2.contains(&v(&[0, 0])));
        assert!(exp2.contains(&v(&[2, 4])));
        assert!(exp2.contains(&v(&[20, 40])));
        assert!(!exp2.contains(&v(&[3, 6])));
        let exp3 = &analysis.int_values[&NonTerminal::new("Exp3")];
        assert!(exp3.contains(&v(&[3, 6])));
        assert!(!exp3.contains(&v(&[2, 4])));
    }

    #[test]
    fn bexp_fixed_point_contains_section_2_vectors() {
        // §2 computes n(BExp) ⊇ {(t,f), (t,t), (f,f)} for E = ⟨1, 2⟩.
        let examples = ExampleSet::for_single_var("x", [1, 2]);
        let analysis = analyze(&g2(), &examples, true, true).unwrap();
        let bexp = &analysis.bool_values[&NonTerminal::new("BExp")];
        assert!(bexp.contains(&BoolVec::from(vec![true, false])));
        assert!(bexp.contains(&BoolVec::from(vec![true, true])));
        assert!(bexp.contains(&BoolVec::from(vec![false, false])));
    }

    #[test]
    fn start_abstraction_is_exact_on_witness_terms() {
        // §2 claims no term of G2 is consistent with E = ⟨1, 2⟩, but the
        // grammar does contain one:
        //   ite(0 < ite(x < 2, 0, 3x), 3x, 4x)
        // evaluates to 4 on x = 1 and 6 on x = 2. The exact abstraction must
        // therefore contain (4, 6) — exactness is what we test here — along
        // with other genuine outputs; unrealizability of the full problem is
        // established with a different example (see the check-level tests).
        use sygus::Term;
        let examples = ExampleSet::for_single_var("x", [1, 2]);
        let analysis = analyze(&g2(), &examples, true, true).unwrap();
        let start = &analysis.int_values[&NonTerminal::new("Start")];
        assert!(start.contains(&v(&[4, 8])), "2x+2x is derivable: {start}");
        assert!(start.contains(&v(&[3, 6])), "3x is derivable");
        assert!(start.contains(&v(&[0, 0])));

        // build the witness term and confirm both its membership in L(G2)
        // and that its output vector is abstracted
        let three_x = Term::apply(
            Symbol::Plus,
            vec![Term::var("x"), Term::var("x"), Term::var("x"), Term::num(0)],
        )
        .unwrap();
        let four_x = Term::apply(
            Symbol::Plus,
            vec![
                Term::var("x"),
                Term::var("x"),
                Term::apply(
                    Symbol::Plus,
                    vec![Term::var("x"), Term::var("x"), Term::num(0)],
                )
                .unwrap(),
            ],
        )
        .unwrap();
        let inner = Term::ite(
            Term::less_than(Term::var("x"), Term::num(2)),
            Term::num(0),
            three_x.clone(),
        )
        .unwrap();
        let witness = Term::ite(Term::less_than(Term::num(0), inner), three_x, four_x).unwrap();
        assert!(g2().contains_term(&witness), "witness must be in L(G2)");
        let out = witness.eval_on(&examples).unwrap();
        assert_eq!(out.as_int().unwrap(), &[4, 6]);
        assert!(
            start.contains(&v(&[4, 6])),
            "exactness: the witness output must be abstracted; abstraction: {start}"
        );
    }

    #[test]
    fn g2_produces_only_zero_on_input_zero() {
        // On x = 0 every term of G2 evaluates to 0, so the abstraction of
        // Start must be exactly {0}; this is the example that makes the §2
        // CLIA problem provably unrealizable.
        let examples = ExampleSet::for_single_var("x", [0]);
        let analysis = analyze(&g2(), &examples, true, true).unwrap();
        let start = &analysis.int_values[&NonTerminal::new("Start")];
        assert!(start.contains(&v(&[0])));
        assert!(!start.contains(&v(&[2])));
        assert!(!start.contains(&v(&[1])));
    }

    #[test]
    fn ite_actually_mixes_branches_across_examples() {
        // Grammar: Start ::= ite(x < 2, Zero, Six) with E = ⟨1, 5⟩.
        // On x=1 the guard is true (output 0), on x=5 false (output 6), so
        // the only derivable vector is (0, 6).
        let grammar = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .nonterminal("B", Sort::Bool)
            .nonterminal("Zero", Sort::Int)
            .nonterminal("Six", Sort::Int)
            .nonterminal("X", Sort::Int)
            .nonterminal("Two", Sort::Int)
            .production("Start", Symbol::IfThenElse, &["B", "Zero", "Six"])
            .production("B", Symbol::LessThan, &["X", "Two"])
            .production("Zero", Symbol::Num(0), &[])
            .production("Six", Symbol::Num(6), &[])
            .production("X", Symbol::Var("x".to_string()), &[])
            .production("Two", Symbol::Num(2), &[])
            .build()
            .unwrap();
        let examples = ExampleSet::for_single_var("x", [1, 5]);
        let analysis = analyze(&grammar, &examples, true, true).unwrap();
        let start = &analysis.int_values[&NonTerminal::new("Start")];
        assert!(start.contains(&v(&[0, 6])));
        assert!(!start.contains(&v(&[0, 0])));
        assert!(!start.contains(&v(&[6, 6])));
        assert!(!start.contains(&v(&[6, 0])));
    }

    #[test]
    fn lia_only_grammars_work_through_the_clia_path_too() {
        let grammar = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .nonterminal("X", Sort::Int)
            .production("Start", Symbol::Plus, &["X", "Start"])
            .production("Start", Symbol::Num(0), &[])
            .production("X", Symbol::Var("x".to_string()), &[])
            .build()
            .unwrap();
        let examples = ExampleSet::for_single_var("x", [2]);
        let analysis = analyze(&grammar, &examples, true, true).unwrap();
        let start = &analysis.int_values[&NonTerminal::new("Start")];
        assert!(start.contains(&v(&[0])));
        assert!(start.contains(&v(&[6])));
        assert!(!start.contains(&v(&[3])));
        assert_eq!(analysis.outer_iterations, 1);
    }
}
