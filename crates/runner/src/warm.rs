//! A long-lived worker pool for serving workloads: threads persist across
//! submissions instead of being scoped to one batch.
//!
//! [`run_jobs`](crate::pool::run_jobs) is batch-shaped — it spawns scoped
//! workers, drains a fixed job list, and joins. A daemon serving requests
//! over a socket needs the opposite: a fixed set of *warm* workers that
//! outlive any individual request, a shared queue that concurrent
//! connection handlers push into, and per-job result delivery. That is
//! [`WarmPool`]:
//!
//! * workers are spawned once at construction and reused for every job
//!   until the pool is dropped — no per-request thread spawn;
//! * [`WarmPool::submit`] enqueues a [`Job`] and returns a [`Ticket`]
//!   that the submitter can [`wait`](Ticket::wait) on, or
//!   [`wait_for`](Ticket::wait_for) with a deadline;
//! * panics are contained per job ([`JobStatus::Crashed`]), like the
//!   batch pool;
//! * there is **no abandonment-based timeout**: a warm worker can never be
//!   abandoned mid-job without shrinking the pool, so deadline enforcement
//!   is the caller's job via a [`Cancel`](crate::Cancel) token the job
//!   polls — trip the token, then keep or drop the ticket. The worker
//!   finishes the (now fast-exiting) job and moves on.
//!
//! Queueing is FIFO and [`WarmPool::queue_depth`] exposes the backlog, so
//! an admission-control layer can shed load before the queue grows
//! unboundedly.

use crate::pool::{Job, JobResult, JobStatus};
use crate::timing::measure;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A queued unit of work: the erased job body plus bookkeeping. The
/// closure carries its own result channel, so the queue is homogeneous
/// even though submitted jobs produce different output types. Running the
/// body returns the *publish* step separately, so the worker can mark the
/// job finished before its result becomes observable — a submitter that
/// sees the ticket resolve must also see `in_flight` decremented.
type QueuedJob = Box<dyn FnOnce() -> Publish + Send + 'static>;
type Publish = Box<dyn FnOnce() + Send + 'static>;

/// The state shared between submitters and workers.
struct Shared {
    state: Mutex<QueueState>,
    /// Signalled on every push and on shutdown.
    wake: Condvar,
    /// Mirror of `queue.len() + running` as a lock-free metric handle.
    in_flight_gauge: obs::Gauge,
    /// Mirror of `queue.len()` as a lock-free metric handle.
    queue_depth_gauge: obs::Gauge,
    /// Distribution of time jobs spent queued before a worker picked
    /// them up.
    queue_wait_hist: obs::Histogram,
}

struct QueueState {
    queue: VecDeque<QueuedJob>,
    /// The number of jobs currently executing on a worker (admitted but
    /// not yet finished); `queue.len() + running` is the pool's in-flight
    /// load.
    running: usize,
    shutdown: bool,
}

/// A persistent worker pool; see the [module docs](self).
///
/// Dropping the pool shuts it down: workers finish the jobs they are
/// running, drain nothing further, and are joined. Tickets of jobs still
/// queued at shutdown resolve as [`JobStatus::Crashed`] (their closures
/// are dropped unrun and the result channel disconnects).
pub struct WarmPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl WarmPool {
    /// Spawns `workers` persistent worker threads (clamped to at least 1).
    pub fn new(workers: usize) -> WarmPool {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                running: 0,
                shutdown: false,
            }),
            wake: Condvar::new(),
            in_flight_gauge: obs::Gauge::new(),
            queue_depth_gauge: obs::Gauge::new(),
            queue_wait_hist: obs::Histogram::new(),
        });
        let handles = (0..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("warm-worker-{index}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a warm worker thread")
            })
            .collect();
        WarmPool {
            shared,
            workers: handles,
        }
    }

    /// The number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Jobs admitted but not yet finished: queued plus currently running.
    /// This is the load an admission controller compares against its bound
    /// before accepting more work.
    pub fn in_flight(&self) -> usize {
        let state = self.shared.state.lock().unwrap();
        state.queue.len() + state.running
    }

    /// Jobs waiting in the queue (not yet picked up by a worker).
    pub fn queue_depth(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// Lock-free gauge mirroring [`WarmPool::in_flight`], suitable for
    /// registration in an [`obs::Registry`]. The gauge and the locked
    /// count move together (both updated while holding the queue lock),
    /// so a quiescent pool always reads 0 on both.
    pub fn in_flight_gauge(&self) -> obs::Gauge {
        self.shared.in_flight_gauge.clone()
    }

    /// Lock-free gauge mirroring [`WarmPool::queue_depth`].
    pub fn queue_depth_gauge(&self) -> obs::Gauge {
        self.shared.queue_depth_gauge.clone()
    }

    /// Histogram of queue-wait times (submission → worker pickup) across
    /// every job this pool has run.
    pub fn queue_wait_hist(&self) -> obs::Histogram {
        self.shared.queue_wait_hist.clone()
    }

    /// Enqueues a job and returns the ticket its result arrives on.
    ///
    /// The job runs on the next free worker, FIFO. Its wall-clock
    /// `elapsed` measures the job body only — queueing time is visible to
    /// the submitter as the gap between `submit` and the ticket
    /// resolving, which is exactly the latency a serving layer reports.
    pub fn submit<T: Send + 'static>(&self, job: Job<T>) -> Ticket<T> {
        let (id, run) = job.into_parts();
        let (tx, rx) = channel();
        let enqueued = Instant::now();
        let queue_wait_hist = self.shared.queue_wait_hist.clone();
        let body: QueuedJob = Box::new(move || {
            // The body runs the moment a worker picks it up, so the gap
            // since submission is exactly the queue wait.
            let queue_wait = enqueued.elapsed();
            queue_wait_hist.observe(queue_wait);
            let (outcome, elapsed) = measure(|| catch_unwind(AssertUnwindSafe(run)));
            Box::new(move || {
                // The submitter may have dropped the ticket (e.g. a request
                // whose deadline expired); the result is simply discarded.
                let _ = tx.send((outcome.ok(), elapsed, queue_wait));
            })
        });
        {
            let mut state = self.shared.state.lock().unwrap();
            if state.shutdown {
                // The pool is shutting down: drop the body unrun; the
                // receiver disconnects and the ticket resolves Crashed.
                drop(body);
            } else {
                state.queue.push_back(body);
                self.shared.in_flight_gauge.inc();
                self.shared.queue_depth_gauge.inc();
            }
        }
        self.shared.wake.notify_one();
        Ticket {
            id,
            rx,
            submitted: Instant::now(),
        }
    }
}

impl Drop for WarmPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().unwrap();
            state.shutdown = true;
            // Queued-but-unstarted jobs are dropped; their tickets resolve
            // as Crashed via channel disconnect. The gauges must not keep
            // counting them.
            let dropped = state.queue.len() as i64;
            state.queue.clear();
            self.shared.in_flight_gauge.add(-dropped);
            self.shared.queue_depth_gauge.add(-dropped);
        }
        self.shared.wake.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let body = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if let Some(body) = state.queue.pop_front() {
                    state.running += 1;
                    shared.queue_depth_gauge.dec();
                    break body;
                }
                if state.shutdown {
                    return;
                }
                state = shared.wake.wait(state).unwrap();
            }
        };
        let publish = body();
        // Decrement before publishing: once a waiter observes the result,
        // the pool must already account the job as finished.
        {
            let mut state = shared.state.lock().unwrap();
            state.running -= 1;
            shared.in_flight_gauge.dec();
        }
        publish();
    }
}

/// The submitter's handle to one queued job's eventual result.
pub struct Ticket<T> {
    id: String,
    rx: Receiver<(Option<T>, Duration, Duration)>,
    submitted: Instant,
}

impl<T> Ticket<T> {
    /// The job's identifier, echoed into the [`JobResult`].
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Blocks until the job finishes and returns its result.
    ///
    /// `status` is [`JobStatus::Ok`] or [`JobStatus::Crashed`] (panic, or
    /// pool shutdown before the job ran) — never `TimedOut`: the warm pool
    /// does not abandon jobs, see the [module docs](self).
    pub fn wait(self) -> JobResult<T> {
        let id = self.id;
        match self.rx.recv() {
            Ok((output, elapsed, queue_wait)) => resolve(id, output, elapsed, queue_wait),
            Err(_) => crashed(id, self.submitted.elapsed()),
        }
    }

    /// Waits up to `budget` for the job to finish.
    ///
    /// Returns `Ok` with the result when the job finished in time, and
    /// `Err(self)` — the still-live ticket — when the budget elapsed
    /// first. Expiry does **not** stop the job; the caller decides whether
    /// to trip its cancellation token, keep waiting, or drop the ticket
    /// and let the result be discarded.
    pub fn wait_for(self, budget: Duration) -> Result<JobResult<T>, Ticket<T>> {
        match self.rx.recv_timeout(budget) {
            Ok((output, elapsed, queue_wait)) => Ok(resolve(self.id, output, elapsed, queue_wait)),
            Err(RecvTimeoutError::Timeout) => Err(self),
            Err(RecvTimeoutError::Disconnected) => Ok(crashed(self.id, self.submitted.elapsed())),
        }
    }
}

fn resolve<T>(
    id: String,
    output: Option<T>,
    elapsed: Duration,
    queue_wait: Duration,
) -> JobResult<T> {
    let status = if output.is_some() {
        JobStatus::Ok
    } else {
        JobStatus::Crashed
    };
    JobResult {
        id,
        status,
        output,
        elapsed,
        tainted: false,
        queue_wait: Some(queue_wait),
    }
}

fn crashed<T>(id: String, elapsed: Duration) -> JobResult<T> {
    JobResult {
        id,
        status: JobStatus::Crashed,
        output: None,
        elapsed,
        tainted: false,
        queue_wait: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_run_and_results_come_back() {
        let pool = WarmPool::new(2);
        let tickets: Vec<Ticket<usize>> = (0..16)
            .map(|i| pool.submit(Job::new(format!("job-{i}"), move || i * i)))
            .collect();
        for (i, ticket) in tickets.into_iter().enumerate() {
            let result = ticket.wait();
            assert_eq!(result.status, JobStatus::Ok);
            assert_eq!(result.output, Some(i * i));
            assert_eq!(result.id, format!("job-{i}"));
        }
    }

    #[test]
    fn workers_persist_across_submissions() {
        let pool = WarmPool::new(1);
        for round in 0..8 {
            let result = pool.submit(Job::new("round", move || round)).wait();
            assert_eq!(result.output, Some(round));
        }
        assert_eq!(pool.workers(), 1);
    }

    #[test]
    fn panics_are_contained() {
        let pool = WarmPool::new(1);
        let boom: Ticket<()> = pool.submit(Job::new("boom", || panic!("contained")));
        assert_eq!(boom.wait().status, JobStatus::Crashed);
        // the worker survives and keeps serving
        let after = pool.submit(Job::new("after", || 7)).wait();
        assert_eq!(after.output, Some(7));
    }

    #[test]
    fn wait_for_returns_the_ticket_on_expiry() {
        let pool = WarmPool::new(1);
        let gate = Arc::new(Mutex::new(()));
        let held = gate.lock().unwrap();
        let slow = {
            let gate = Arc::clone(&gate);
            pool.submit(Job::new("slow", move || {
                let _released = gate.lock().unwrap();
                42
            }))
        };
        let ticket = match slow.wait_for(Duration::from_millis(20)) {
            Err(ticket) => ticket,
            Ok(result) => panic!("job should still be blocked, got {:?}", result.status),
        };
        drop(held);
        let result = ticket.wait();
        assert_eq!(result.output, Some(42));
    }

    #[test]
    fn in_flight_counts_queued_and_running() {
        let pool = WarmPool::new(1);
        let gate = Arc::new(Mutex::new(()));
        let held = gate.lock().unwrap();
        let blocker = {
            let gate = Arc::clone(&gate);
            pool.submit(Job::new("blocker", move || {
                let _released = gate.lock().unwrap();
            }))
        };
        // Wait until the worker has actually picked the blocker up.
        while pool.queue_depth() > 0 {
            std::thread::yield_now();
        }
        let queued = pool.submit(Job::new("queued", || ()));
        assert!(pool.in_flight() >= 1);
        assert_eq!(pool.queue_depth(), 1);
        drop(held);
        assert_eq!(blocker.wait().status, JobStatus::Ok);
        assert_eq!(queued.wait().status, JobStatus::Ok);
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn gauges_track_the_locked_counts() {
        let pool = WarmPool::new(1);
        let in_flight = pool.in_flight_gauge();
        let queue_depth = pool.queue_depth_gauge();
        assert_eq!(in_flight.get(), 0);
        assert_eq!(queue_depth.get(), 0);

        let gate = Arc::new(Mutex::new(()));
        let held = gate.lock().unwrap();
        let blocker = {
            let gate = Arc::clone(&gate);
            pool.submit(Job::new("blocker", move || {
                let _released = gate.lock().unwrap();
            }))
        };
        while pool.queue_depth() > 0 {
            std::thread::yield_now();
        }
        let queued = pool.submit(Job::new("queued", || ()));
        // One job running, one queued: the gauges mirror the locked view.
        assert_eq!(in_flight.get(), 2);
        assert_eq!(queue_depth.get(), 1);

        drop(held);
        assert_eq!(blocker.wait().status, JobStatus::Ok);
        assert_eq!(queued.wait().status, JobStatus::Ok);
        // A resolved ticket implies the job was already accounted
        // finished (decrement-before-publish), so both gauges read 0.
        assert_eq!(in_flight.get(), 0);
        assert_eq!(queue_depth.get(), 0);
        assert_eq!(pool.queue_wait_hist().count(), 2);
    }

    #[test]
    fn queue_wait_is_reported_on_results() {
        let pool = WarmPool::new(1);
        let result = pool.submit(Job::new("quick", || 1)).wait();
        let wait = result
            .queue_wait
            .expect("warm-pool results carry queue_wait");
        assert!(wait < Duration::from_secs(5));
        // The queued job behind a blocker waits at least as long as the
        // blocker holds the worker.
        let gate = Arc::new(Mutex::new(()));
        let held = gate.lock().unwrap();
        let blocker = {
            let gate = Arc::clone(&gate);
            pool.submit(Job::new("blocker", move || {
                let _released = gate.lock().unwrap();
            }))
        };
        while pool.queue_depth() > 0 {
            std::thread::yield_now();
        }
        let queued = pool.submit(Job::new("queued", || 2));
        std::thread::sleep(Duration::from_millis(20));
        drop(held);
        let _ = blocker.wait();
        let waited = queued.wait().queue_wait.expect("queued job has queue_wait");
        assert!(
            waited >= Duration::from_millis(10),
            "queued job should have waited, got {waited:?}"
        );
    }
}
