//! The semiring interface and its semi-linear-set instantiation.

use semilinear::SemiLinearSet;

/// A commutative, idempotent, ω-continuous semiring `(D, ⊕, ⊗, 0, 1)` with a
/// Kleene-star operator (Def. 5.1).
///
/// The trait is *context-style*: an implementing value carries whatever
/// information is needed to build `0` and `1` (e.g. the vector dimension for
/// semi-linear sets), and the elements themselves are a separate associated
/// type.
pub trait Semiring {
    /// The carrier type of the semiring.
    type Elem: Clone + PartialEq + std::fmt::Debug;

    /// The additive identity `0` (absorbing for `⊗`).
    fn zero(&self) -> Self::Elem;
    /// The multiplicative identity `1`.
    fn one(&self) -> Self::Elem;
    /// The combine operation `⊕` (associative, commutative, idempotent).
    fn combine(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;
    /// The extend operation `⊗` (associative, commutative, distributes over `⊕`).
    fn extend(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;
    /// The Kleene star `a⊛ = ⊕ᵢ aⁱ`.
    fn star(&self, a: &Self::Elem) -> Self::Elem;

    /// An optional normalisation applied after each solver step (e.g. the
    /// subsumption pruning of naySL). Must not change the denoted value.
    fn normalize(&self, a: Self::Elem) -> Self::Elem {
        a
    }

    /// Combines an iterator of elements (`0` for an empty iterator).
    fn combine_all<'a>(&self, items: impl IntoIterator<Item = &'a Self::Elem>) -> Self::Elem
    where
        Self::Elem: 'a,
    {
        items
            .into_iter()
            .fold(self.zero(), |acc, x| self.combine(&acc, x))
    }

    /// Extends an iterator of elements (`1` for an empty iterator).
    fn extend_all<'a>(&self, items: impl IntoIterator<Item = &'a Self::Elem>) -> Self::Elem
    where
        Self::Elem: 'a,
    {
        items
            .into_iter()
            .fold(self.one(), |acc, x| self.extend(&acc, x))
    }
}

/// A marker trait for semirings whose combine semilattice has bounded height,
/// for which plain Kleene iteration is guaranteed to converge.
pub trait BoundedLattice: Semiring {
    /// An upper bound on the length of strictly ascending chains.
    fn height_bound(&self) -> usize;
}

/// The semiring of semi-linear sets of a fixed dimension (Prop. 5.8), the
/// abstract domain used by the naySL decision procedure.
///
/// `prune` enables the trivial-subsumption pruning optimisation described in
/// §7.
///
/// # Example
/// ```
/// use gfa::{SemiLinearSemiring, Semiring};
/// use semilinear::{IntVec, SemiLinearSet};
/// let sr = SemiLinearSemiring::new(1);
/// let three = SemiLinearSet::singleton(IntVec::from(vec![3]));
/// // {3}⊛ ⊗ 1 = {0 + 3λ}
/// let sol = sr.extend(&sr.star(&three), &sr.one());
/// assert!(sol.contains(&IntVec::from(vec![6])));
/// ```
#[derive(Clone, Debug)]
pub struct SemiLinearSemiring {
    dim: usize,
    prune: bool,
}

impl SemiLinearSemiring {
    /// Creates the semiring of semi-linear sets over `ℤ^dim` with pruning
    /// enabled.
    pub fn new(dim: usize) -> Self {
        SemiLinearSemiring { dim, prune: true }
    }

    /// Enables or disables subsumption pruning (used by the Fig. 4
    /// stratification/pruning ablations).
    pub fn with_pruning(mut self, prune: bool) -> Self {
        self.prune = prune;
        self
    }

    /// The vector dimension (= number of examples).
    pub fn dim(&self) -> usize {
        self.dim
    }
}

impl Semiring for SemiLinearSemiring {
    type Elem = SemiLinearSet;

    fn zero(&self) -> SemiLinearSet {
        SemiLinearSet::zero()
    }

    fn one(&self) -> SemiLinearSet {
        SemiLinearSet::one(self.dim)
    }

    fn combine(&self, a: &SemiLinearSet, b: &SemiLinearSet) -> SemiLinearSet {
        a.combine(b)
    }

    fn extend(&self, a: &SemiLinearSet, b: &SemiLinearSet) -> SemiLinearSet {
        a.extend(b)
    }

    fn star(&self, a: &SemiLinearSet) -> SemiLinearSet {
        if a.is_zero() {
            // 0⊛ = 1
            self.one()
        } else {
            a.star()
        }
    }

    fn normalize(&self, a: SemiLinearSet) -> SemiLinearSet {
        if self.prune {
            a.prune()
        } else {
            a
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semilinear::IntVec;

    fn sr() -> SemiLinearSemiring {
        SemiLinearSemiring::new(2)
    }
    fn single(v: &[i64]) -> SemiLinearSet {
        SemiLinearSet::singleton(IntVec::from(v.to_vec()))
    }

    #[test]
    fn semiring_identities() {
        let s = sr();
        let a = single(&[1, 2]);
        assert_eq!(s.combine(&a, &s.zero()), a);
        assert_eq!(s.extend(&a, &s.one()), a);
        assert_eq!(s.extend(&a, &s.zero()), s.zero());
        assert_eq!(s.star(&s.zero()), s.one());
    }

    #[test]
    fn combine_all_and_extend_all() {
        let s = sr();
        let items = [single(&[1, 0]), single(&[0, 1])];
        let sum = s.combine_all(items.iter());
        assert_eq!(sum.linear_sets().len(), 2);
        let prod = s.extend_all(items.iter());
        assert!(prod.contains(&IntVec::from(vec![1, 1])));
        assert_eq!(s.combine_all(std::iter::empty()), s.zero());
        assert_eq!(s.extend_all(std::iter::empty()), s.one());
    }

    #[test]
    fn normalization_prunes() {
        let s = sr();
        let a = SemiLinearSet::from_linear_sets([
            semilinear::LinearSet::new(IntVec::from(vec![0, 0]), vec![IntVec::from(vec![1, 1])]),
            semilinear::LinearSet::new(IntVec::from(vec![2, 2]), vec![IntVec::from(vec![1, 1])]),
        ]);
        assert_eq!(s.normalize(a.clone()).linear_sets().len(), 1);
        let no_prune = SemiLinearSemiring::new(2).with_pruning(false);
        assert_eq!(no_prune.normalize(a).linear_sets().len(), 2);
    }
}
