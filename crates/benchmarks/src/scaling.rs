//! The scalable grammar family behind Fig. 2 (naySL solving time as a
//! function of the number of nonterminals, for |E| = 1..4) and Figs. 3/5
//! (nayHorn / nope running time as a function of the number of examples).

use logic::LinearExpr;
use sygus::{Grammar, GrammarBuilder, Problem, Sort, Spec, Symbol};

/// A generalisation of the G₁ grammar of §2 with `n` chained nonterminals:
///
/// ```text
/// Start ::= Plus(S₁, Start) | Num(0)
/// Sᵢ    ::= Plus(Sᵢ₊₁, Sₙ)            (1 ≤ i < n)
/// Sₙ    ::= Var(x)
/// ```
///
/// Terms derivable from `Start` evaluate to `k·n·x`; increasing `n` increases
/// the number of nonterminals (and the size of the Newton iteration) without
/// changing the overall structure — exactly the scaling knob of Fig. 2.
///
/// # Panics
/// Panics if `n == 0`.
pub fn scaling_grammar(n: usize) -> Grammar {
    assert!(
        n >= 1,
        "the scaling grammar needs at least one chain nonterminal"
    );
    let mut builder = GrammarBuilder::new("Start").nonterminal("Start", Sort::Int);
    for i in 1..=n {
        builder = builder.nonterminal(format!("S{i}"), Sort::Int);
    }
    builder = builder
        .production("Start", Symbol::Plus, &["S1", "Start"])
        .production("Start", Symbol::Num(0), &[]);
    for i in 1..n {
        builder = builder.production(
            &format!("S{i}"),
            Symbol::Plus,
            &[&format!("S{}", i + 1), &format!("S{n}")],
        );
    }
    builder = builder.production(&format!("S{n}"), Symbol::Var("x".to_string()), &[]);
    builder.build().expect("scaling grammar is well-formed")
}

/// The unrealizable SyGuS problem used for the scaling experiments: the
/// grammar of [`scaling_grammar`] with the specification `f(x) = 2x + 1`
/// (odd, while the grammar only produces multiples of `n·x`).
pub fn scaling_problem(n: usize) -> Problem {
    let spec = Spec::output_equals(
        LinearExpr::var(logic::Var::new("x")).scale(2) + LinearExpr::constant(1),
        vec!["x".to_string()],
    );
    Problem::new(format!("scaling_n{n}"), scaling_grammar(n), spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sygus::ExampleSet;

    #[test]
    fn grammar_size_scales_linearly() {
        for n in 1..=8 {
            let g = scaling_grammar(n);
            assert_eq!(g.num_nonterminals(), n + 1);
            assert_eq!(g.num_productions(), n + 2);
        }
    }

    #[test]
    fn language_is_multiples_of_n_times_x() {
        let g = scaling_grammar(3);
        let examples = ExampleSet::for_single_var("x", [2]);
        for t in g.terms_up_to_size(g.start(), 13, 100) {
            let v = t.eval_on(&examples).unwrap().as_i64(0);
            assert_eq!(v % 6, 0, "term {t} evaluates to {v}, not a multiple of 3·2");
        }
    }

    #[test]
    fn scaling_problem_is_unrealizable_on_any_nonzero_example() {
        use nay::check::{check_unrealizable, Verdict};
        use nay::Mode;
        let problem = scaling_problem(4);
        let examples = ExampleSet::for_single_var("x", [1]);
        assert_eq!(
            check_unrealizable(&problem, &examples, &Mode::default()).verdict,
            Verdict::Unrealizable
        );
    }
}
