//! The constrained-Horn-clause encoding of a GFA problem (§4.3, Ex. 4.7).
//!
//! Every nonterminal `X` becomes an uninterpreted predicate `P_X(o₁,…,oₙ)`
//! over one integer variable per example (Boolean outputs use the 0/1
//! encoding). Every production `X₀ → g(X₁,…,Xₖ)` becomes a clause
//!
//! ```text
//! P_{X₀}(o⃗) ← P_{X₁}(o⃗¹) ∧ … ∧ P_{Xₖ}(o⃗ᵏ) ∧ o⃗ = ⟦g⟧_E(o⃗¹,…,o⃗ᵏ)
//! ```
//!
//! and the unrealizability query is the goal clause
//! `false ← P_S(o⃗) ∧ ⋀ⱼ ψ(oⱼ, iⱼ)`. The SyGuS-with-examples problem is
//! unrealizable iff the clause set (with the goal) is satisfiable — i.e. iff
//! the query is unreachable.

use logic::{Formula, LinearExpr, Var};
use std::fmt;
use sygus::{ExampleSet, Grammar, NonTerminal, Spec, Symbol};

/// An application of a Horn predicate to variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PredicateApp {
    /// The predicate name (derived from a nonterminal).
    pub predicate: String,
    /// The argument variables, one per example.
    pub args: Vec<Var>,
}

impl fmt::Display for PredicateApp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}", self.predicate)?;
        for a in &self.args {
            write!(f, " {a}")?;
        }
        write!(f, ")")
    }
}

/// A constrained Horn clause `head ← body ∧ constraint`; a goal (query)
/// clause has no head.
#[derive(Clone, Debug)]
pub struct HornClause {
    /// The head predicate application, or `None` for the goal clause.
    pub head: Option<PredicateApp>,
    /// The body predicate applications.
    pub body: Vec<PredicateApp>,
    /// The arithmetic constraint of the clause.
    pub constraint: Formula,
}

impl fmt::Display for HornClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.head {
            Some(h) => write!(f, "{h} <- ")?,
            None => write!(f, "false <- ")?,
        }
        for (i, b) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, " /\\ ")?;
            }
            write!(f, "{b}")?;
        }
        if !self.body.is_empty() {
            write!(f, " /\\ ")?;
        }
        write!(f, "{}", self.constraint)
    }
}

/// A system of constrained Horn clauses together with the query.
#[derive(Clone, Debug)]
pub struct HornSystem {
    /// Predicate names with their arity (one slot per example).
    pub predicates: Vec<(String, usize)>,
    /// The rule clauses (one per grammar production).
    pub clauses: Vec<HornClause>,
    /// The goal clause encoding the specification on the examples.
    pub query: HornClause,
}

impl HornSystem {
    /// Number of rule clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }
}

impl fmt::Display for HornSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (p, arity) in &self.predicates {
            writeln!(f, "(declare-rel {p} ({}))", vec!["Int"; *arity].join(" "))?;
        }
        for c in &self.clauses {
            writeln!(f, "(rule {c})")?;
        }
        writeln!(f, "(query {})", self.query)
    }
}

fn predicate_name(nt: &NonTerminal) -> String {
    format!("P_{}", nt.name().replace('⁻', "_neg"))
}

fn output_vars(nt: &NonTerminal, occurrence: usize, dim: usize) -> Vec<Var> {
    (0..dim)
        .map(|j| Var::new(format!("{}_{occurrence}_o{j}", predicate_name(nt))))
        .collect()
}

/// Encodes a grammar, example set and specification as a Horn-clause system
/// (Example 4.7 generalised to CLIA).
pub fn encode(grammar: &Grammar, examples: &ExampleSet, spec: &Spec) -> HornSystem {
    let dim = examples.len();
    let predicates: Vec<(String, usize)> = grammar
        .nonterminals()
        .iter()
        .map(|nt| (predicate_name(nt), dim))
        .collect();

    let mut clauses = Vec::new();
    for p in grammar.productions() {
        let head_vars = output_vars(&p.lhs, 0, dim);
        let mut body = Vec::new();
        let mut arg_vars: Vec<Vec<Var>> = Vec::new();
        for (k, arg) in p.args.iter().enumerate() {
            let vars = output_vars(arg, k + 1, dim);
            body.push(PredicateApp {
                predicate: predicate_name(arg),
                args: vars.clone(),
            });
            arg_vars.push(vars);
        }
        let constraint = production_constraint(&p.symbol, &head_vars, &arg_vars, examples);
        clauses.push(HornClause {
            head: Some(PredicateApp {
                predicate: predicate_name(&p.lhs),
                args: head_vars,
            }),
            body,
            constraint,
        });
    }

    // goal: false ← P_S(o⃗) ∧ ⋀ⱼ ψ(oⱼ, iⱼ)
    let start_vars = output_vars(grammar.start(), 0, dim);
    let spec_formula = spec.conjunction_over(examples, &start_vars);
    let query = HornClause {
        head: None,
        body: vec![PredicateApp {
            predicate: predicate_name(grammar.start()),
            args: start_vars,
        }],
        constraint: spec_formula,
    };

    HornSystem {
        predicates,
        clauses,
        query,
    }
}

/// The per-example arithmetic constraint tying the head variables of a clause
/// to its body variables, according to the concrete semantics `⟦g⟧_E`.
fn production_constraint(
    symbol: &Symbol,
    head: &[Var],
    args: &[Vec<Var>],
    examples: &ExampleSet,
) -> Formula {
    let dim = head.len();
    let mut conjuncts = Vec::new();
    for j in 0..dim {
        let h = LinearExpr::var(head[j].clone());
        let arg = |k: usize| LinearExpr::var(args[k][j].clone());
        let constraint = match symbol {
            Symbol::Num(c) => Formula::eq(h, LinearExpr::constant(*c)),
            Symbol::Var(x) => Formula::eq(
                h,
                LinearExpr::constant(examples.projection(x).map(|v| v[j]).unwrap_or_default()),
            ),
            Symbol::NegVar(x) => Formula::eq(
                h,
                LinearExpr::constant(-examples.projection(x).map(|v| v[j]).unwrap_or_default()),
            ),
            Symbol::Plus => {
                let mut sum = LinearExpr::zero();
                for k in 0..args.len() {
                    sum = sum + arg(k);
                }
                Formula::eq(h, sum)
            }
            Symbol::Minus => Formula::eq(h, arg(0) - arg(1)),
            Symbol::IfThenElse => Formula::ite(
                Formula::eq(arg(0), LinearExpr::constant(1)),
                Formula::eq(h.clone(), arg(1)),
                Formula::eq(h, arg(2)),
            ),
            Symbol::LessThan => Formula::ite(
                Formula::lt(arg(0), arg(1)),
                Formula::eq(h.clone(), LinearExpr::constant(1)),
                Formula::eq(h, LinearExpr::constant(0)),
            ),
            Symbol::Equal => Formula::ite(
                Formula::eq(arg(0), arg(1)),
                Formula::eq(h.clone(), LinearExpr::constant(1)),
                Formula::eq(h, LinearExpr::constant(0)),
            ),
            Symbol::And => Formula::ite(
                Formula::and(vec![
                    Formula::eq(arg(0), LinearExpr::constant(1)),
                    Formula::eq(arg(1), LinearExpr::constant(1)),
                ]),
                Formula::eq(h.clone(), LinearExpr::constant(1)),
                Formula::eq(h, LinearExpr::constant(0)),
            ),
            Symbol::Or => Formula::ite(
                Formula::or(vec![
                    Formula::eq(arg(0), LinearExpr::constant(1)),
                    Formula::eq(arg(1), LinearExpr::constant(1)),
                ]),
                Formula::eq(h.clone(), LinearExpr::constant(1)),
                Formula::eq(h, LinearExpr::constant(0)),
            ),
            Symbol::Not => Formula::eq(h, LinearExpr::constant(1) - arg(0)),
        };
        conjuncts.push(constraint);
    }
    // Boolean body variables range over {0, 1}
    for (k, vars) in args.iter().enumerate() {
        let bool_arg = matches!(
            (symbol, k),
            (Symbol::IfThenElse, 0) | (Symbol::And, _) | (Symbol::Or, _) | (Symbol::Not, _)
        );
        if bool_arg {
            for v in vars {
                conjuncts.push(Formula::ge(
                    LinearExpr::var(v.clone()),
                    LinearExpr::constant(0),
                ));
                conjuncts.push(Formula::le(
                    LinearExpr::var(v.clone()),
                    LinearExpr::constant(1),
                ));
            }
        }
    }
    Formula::and(conjuncts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sygus::GrammarBuilder;
    use sygus::Sort;

    fn g1() -> Grammar {
        GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .nonterminal("S1", Sort::Int)
            .nonterminal("S2", Sort::Int)
            .nonterminal("S3", Sort::Int)
            .production("Start", Symbol::Plus, &["S1", "Start"])
            .production("Start", Symbol::Num(0), &[])
            .production("S1", Symbol::Plus, &["S2", "S3"])
            .production("S2", Symbol::Plus, &["S3", "S3"])
            .production("S3", Symbol::Var("x".to_string()), &[])
            .build()
            .unwrap()
    }

    fn spec_2x_plus_2() -> Spec {
        Spec::output_equals(
            LinearExpr::var(Var::new("x")).scale(2) + LinearExpr::constant(2),
            vec!["x".to_string()],
        )
    }

    #[test]
    fn encoding_shape_matches_grammar() {
        let examples = ExampleSet::for_single_var("x", [1]);
        let sys = encode(&g1(), &examples, &spec_2x_plus_2());
        assert_eq!(sys.predicates.len(), 4);
        assert_eq!(sys.num_clauses(), 5);
        assert!(sys.query.head.is_none());
        assert_eq!(sys.query.body.len(), 1);
        assert_eq!(sys.query.body[0].predicate, "P_Start");
    }

    #[test]
    fn example_4_7_constraint_structure() {
        // The clause for Start → Plus(S1, Start) relates the head output to
        // the sum of the body outputs, as in Eqn. (13).
        let examples = ExampleSet::for_single_var("x", [1]);
        let sys = encode(&g1(), &examples, &spec_2x_plus_2());
        let plus_clause = sys
            .clauses
            .iter()
            .find(|c| {
                c.head.as_ref().map(|h| h.predicate.as_str()) == Some("P_Start")
                    && c.body.len() == 2
            })
            .expect("the recursive Start clause exists");
        let text = plus_clause.to_string();
        assert!(text.contains("P_Start"), "{text}");
        assert!(text.contains("P_S1"), "{text}");
        // leaf clause: the variable production fixes the output to μ_E(x) = 1
        let leaf = sys
            .clauses
            .iter()
            .find(|c| c.head.as_ref().map(|h| h.predicate.as_str()) == Some("P_S3"))
            .expect("the S3 clause exists");
        assert!(leaf.to_string().contains("= 1"), "{leaf}");
    }

    #[test]
    fn smtlib_like_printing() {
        let examples = ExampleSet::for_single_var("x", [1, 2]);
        let sys = encode(&g1(), &examples, &spec_2x_plus_2());
        let text = sys.to_string();
        assert!(text.contains("(declare-rel P_Start (Int Int))"));
        assert!(text.contains("(rule "));
        assert!(text.contains("(query "));
    }

    #[test]
    fn boolean_symbols_use_zero_one_encoding() {
        let grammar = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .nonterminal("B", Sort::Bool)
            .production("Start", Symbol::IfThenElse, &["B", "Start", "Start"])
            .production("Start", Symbol::Num(0), &[])
            .production("B", Symbol::LessThan, &["Start", "Start"])
            .build()
            .unwrap();
        let examples = ExampleSet::for_single_var("x", [1]);
        let sys = encode(&grammar, &examples, &spec_2x_plus_2());
        let ite_clause = sys
            .clauses
            .iter()
            .find(|c| c.body.len() == 3)
            .expect("the IfThenElse clause exists");
        // guard variable is constrained to {0, 1}
        let text = ite_clause.to_string();
        assert!(text.contains(">= 0"), "{text}");
        assert!(text.contains("<= 1"), "{text}");
    }
}
