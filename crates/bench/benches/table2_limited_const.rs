//! Criterion bench regenerating Table 2 (LimitedConst benchmarks).

use criterion::{criterion_group, criterion_main, Criterion};
use nay::check::check_unrealizable;
use nay::Mode;
use nope::NopeSolver;

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_limited_const");
    group.sample_size(10);
    for bench in bench::select(benchmarks::Family::LimitedConst, true)
        .into_iter()
        .take(6)
    {
        group.bench_function(format!("naySL/{}", bench.name), |b| {
            b.iter(|| check_unrealizable(&bench.problem, &bench.witness_examples, &Mode::default()))
        });
        group.bench_function(format!("nope/{}", bench.name), |b| {
            b.iter(|| NopeSolver::new().check(&bench.problem, &bench.witness_examples))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
