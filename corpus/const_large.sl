; const_large — exported by `cargo run --example export_corpus`
(set-logic CLIA)
(synth-fun f ((x Int)) Int
  ((Start Int (x 0 1 100 (ite Cond Start Start)))
  (Cond Bool ((< Start Start) (and Cond Cond)))))
(declare-var x Int)
(constraint (= (f x) (+ x 1000)))
(check-synth)
