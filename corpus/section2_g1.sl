; section2_g1 — exported by `cargo run --example export_corpus`
(set-logic LIA)
(synth-fun f ((x Int)) Int
  ((Start Int ((+ S1 Start) 0))
  (S1 Int ((+ S2 S3)))
  (S2 Int ((+ S3 S3)))
  (S3 Int (x))))
(declare-var x Int)
(constraint (= (f x) (+ (* 2 x) 2)))
(check-synth)
