//! The daemon: socket accept loop, admission control, deadline
//! enforcement, and the warm solve path.
//!
//! One [`Server`] owns
//!
//! * a persistent [`WarmPool`] of engine workers — engines run warm
//!   across requests instead of cold-starting a process per verdict,
//! * a bounded, collision-safe [`VerdictCache`] keyed by
//!   [`sygus::Problem::fingerprint`],
//! * a single deadline-monitor thread that trips each request's
//!   [`Cancel`] token when its deadline expires, and
//! * one handler thread per client connection, each multiplexing
//!   requests sequentially over its socket.
//!
//! A solve request flows: decode frame → parse problem → canonical
//! print and fingerprint → cache lookup (byte-identical canonical form
//! required) → admission check against the pool's in-flight bound →
//! race on the warm pool via [`Portfolio::race_on_pool`] with the
//! request's cancel token registered at `now + deadline` → definitive
//! verdicts are inserted into the cache and served; a deadline expiry
//! cancels both engines cooperatively and returns a `timeout` response
//! — the connection is never left hanging.

use crate::cache::{CachedVerdict, VerdictCache};
use crate::protocol::{
    fingerprint_hex, read_frame, write_frame, ErrorCode, FrameError, Op, Request, Response,
    ResponseStatus, StatsSnapshot, DEFAULT_MAX_FRAME_BYTES,
};
use portfolio::{Portfolio, SolveVerdict};
use runner::{Cancel, Json, WarmPool};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Where the daemon listens.
#[derive(Clone, Debug)]
pub enum Bind {
    /// A TCP address in `host:port` form; port 0 picks a free port.
    Tcp(String),
    /// A Unix-domain socket path; a stale socket file is removed first.
    #[cfg(unix)]
    Unix(PathBuf),
}

/// A connectable endpoint: what [`Server::endpoint`] reports after
/// binding (the TCP variant carries the *resolved* address, so binding
/// port 0 yields the actual port).
#[derive(Clone, Debug)]
pub enum Endpoint {
    /// A resolved TCP address.
    Tcp(SocketAddr),
    /// A Unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "{addr}"),
            #[cfg(unix)]
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// The daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Where to listen.
    pub bind: Bind,
    /// Warm engine workers. A race consumes two (one per engine), so
    /// `slots / 2` races run truly concurrently; further races queue
    /// FIFO. Default 4.
    pub slots: usize,
    /// Admission bound: a solve request arriving while this many engine
    /// jobs are in flight (queued + running) is shed with an
    /// `overloaded` error instead of growing the queue without bound.
    /// Default 64.
    pub max_in_flight: usize,
    /// Verdict-cache capacity (entries); 0 disables caching. Default 4096.
    pub cache_capacity: usize,
    /// Deadline applied to solve requests that do not carry their own
    /// `deadline_ms`. Default 600 s, matching
    /// `bench::DEFAULT_SOLVE_TIMEOUT`.
    pub default_deadline: Duration,
    /// Ceiling on one frame's payload size.
    pub max_frame_bytes: usize,
    /// Whether races run the static presolve stage (requests can opt out
    /// individually via `no_presolve`). Default true.
    pub presolve: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            bind: Bind::Tcp("127.0.0.1:0".into()),
            slots: 4,
            max_in_flight: 64,
            cache_capacity: 4096,
            default_deadline: Duration::from_secs(600),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            presolve: true,
        }
    }
}

/// Counters the `stats` op reports (cache counters live in the cache).
#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    timeouts: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
}

/// The single deadline-monitor thread: requests register `(when, token)`
/// pairs; the monitor trips each token at its deadline. Tokens of
/// requests that finish early are tripped anyway — harmless, because
/// every request owns a fresh token that is never reused.
struct DeadlineMonitor {
    state: Arc<(Mutex<MonitorState>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

#[derive(Default)]
struct MonitorState {
    pending: Vec<(Instant, Cancel)>,
    shutdown: bool,
}

impl DeadlineMonitor {
    fn new() -> DeadlineMonitor {
        let state = Arc::new((Mutex::new(MonitorState::default()), Condvar::new()));
        let thread_state = Arc::clone(&state);
        let handle = std::thread::Builder::new()
            .name("deadline-monitor".into())
            .spawn(move || {
                let (lock, cv) = &*thread_state;
                let mut state = lock.lock().unwrap();
                loop {
                    if state.shutdown {
                        return;
                    }
                    let now = Instant::now();
                    // trip and drop every expired token
                    state.pending.retain(|(when, cancel)| {
                        if *when <= now {
                            cancel.cancel();
                            false
                        } else {
                            true
                        }
                    });
                    let next = state.pending.iter().map(|(when, _)| *when).min();
                    state = match next {
                        Some(when) => {
                            let wait = when.saturating_duration_since(now);
                            cv.wait_timeout(state, wait).unwrap().0
                        }
                        None => cv.wait(state).unwrap(),
                    };
                }
            })
            .expect("spawning the deadline monitor");
        DeadlineMonitor {
            state,
            handle: Some(handle),
        }
    }

    fn register(&self, when: Instant, cancel: Cancel) {
        let (lock, cv) = &*self.state;
        lock.lock().unwrap().pending.push((when, cancel));
        cv.notify_one();
    }
}

impl Drop for DeadlineMonitor {
    fn drop(&mut self) {
        let (lock, cv) = &*self.state;
        lock.lock().unwrap().shutdown = true;
        cv.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// State shared between the accept loop and every connection handler.
struct Shared {
    pool: WarmPool,
    cache: Mutex<VerdictCache>,
    counters: Counters,
    deadlines: DeadlineMonitor,
    shutdown: AtomicBool,
    endpoint: Endpoint,
    max_in_flight: usize,
    default_deadline: Duration,
    max_frame_bytes: usize,
    presolve: bool,
}

impl Shared {
    /// Wakes the accept loop by connecting to the daemon's own endpoint
    /// (the accepted connection immediately sees EOF and is dropped).
    fn wake_accept_loop(&self) {
        match &self.endpoint {
            Endpoint::Tcp(addr) => {
                let _ = TcpStream::connect_timeout(addr, Duration::from_secs(1));
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let _ = UnixStream::connect(path);
            }
        }
    }

    fn snapshot(&self) -> StatsSnapshot {
        let (cache_stats, cache_entries) = {
            let cache = self.cache.lock().unwrap();
            (cache.stats(), cache.len() as u64)
        };
        StatsSnapshot {
            requests: self.counters.requests.load(Ordering::Relaxed),
            cache_hits: cache_stats.hits,
            cache_misses: cache_stats.misses,
            cache_collisions: cache_stats.collisions,
            cache_entries,
            timeouts: self.counters.timeouts.load(Ordering::Relaxed),
            errors: self.counters.errors.load(Ordering::Relaxed),
            shed: self.counters.shed.load(Ordering::Relaxed),
            in_flight: self.pool.in_flight() as u64,
            workers: self.pool.workers() as u64,
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

/// The warm-engine daemon; see the [module docs](self).
pub struct Server {
    listener: Listener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listening socket and spins up the warm pool and the
    /// deadline monitor. The daemon serves nothing until [`Server::run`].
    ///
    /// # Errors
    /// Propagates socket bind errors (address in use, bad address, …).
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let (listener, endpoint) = match &config.bind {
            Bind::Tcp(addr) => {
                let listener = TcpListener::bind(addr.as_str())?;
                let endpoint = Endpoint::Tcp(listener.local_addr()?);
                (Listener::Tcp(listener), endpoint)
            }
            #[cfg(unix)]
            Bind::Unix(path) => {
                // A stale socket file from a crashed daemon would fail the
                // bind; remove it. (A *live* daemon also leaves a file —
                // callers wanting exclusivity should pick unique paths.)
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)?;
                (Listener::Unix(listener), Endpoint::Unix(path.clone()))
            }
        };
        let shared = Arc::new(Shared {
            pool: WarmPool::new(config.slots),
            cache: Mutex::new(VerdictCache::new(config.cache_capacity)),
            counters: Counters::default(),
            deadlines: DeadlineMonitor::new(),
            shutdown: AtomicBool::new(false),
            endpoint,
            max_in_flight: config.max_in_flight,
            default_deadline: config.default_deadline,
            max_frame_bytes: config.max_frame_bytes,
            presolve: config.presolve,
        });
        Ok(Server { listener, shared })
    }

    /// The endpoint clients connect to (with the resolved TCP port).
    pub fn endpoint(&self) -> Endpoint {
        self.shared.endpoint.clone()
    }

    /// Serves connections until a `shutdown` request arrives, then
    /// returns the final counters. Each connection gets its own handler
    /// thread; handlers of connections still open at shutdown keep
    /// serving in-flight requests and exit when their client disconnects.
    ///
    /// # Errors
    /// Propagates fatal accept-loop errors (per-connection I/O errors
    /// only close that connection).
    pub fn run(self) -> io::Result<StatsSnapshot> {
        let shared = self.shared;
        match self.listener {
            Listener::Tcp(listener) => {
                for stream in listener.incoming() {
                    if shared.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // A frame is written as header + payload: without
                    // nodelay, Nagle holds the payload for the delayed
                    // ACK and every response eats ~40ms on loopback.
                    let _ = stream.set_nodelay(true);
                    spawn_handler(stream, Arc::clone(&shared));
                }
            }
            #[cfg(unix)]
            Listener::Unix(listener) => {
                for stream in listener.incoming() {
                    if shared.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    spawn_handler(stream, Arc::clone(&shared));
                }
                if let Endpoint::Unix(path) = &shared.endpoint {
                    let _ = std::fs::remove_file(path);
                }
            }
        }
        Ok(shared.snapshot())
    }
}

fn spawn_handler<S: Read + Write + Send + 'static>(stream: S, shared: Arc<Shared>) {
    // Handler threads are detached: they exit on client EOF, and at
    // process exit. `run` does not join them — a handler blocked on a
    // silent client must not wedge shutdown.
    let _ = std::thread::Builder::new()
        .name("serve-conn".into())
        .spawn(move || handle_connection(stream, &shared));
}

fn handle_connection<S: Read + Write>(mut stream: S, shared: &Arc<Shared>) {
    loop {
        match read_frame(&mut stream, shared.max_frame_bytes) {
            Ok(None) => return,
            Ok(Some(payload)) => {
                let response = dispatch(&payload, shared);
                let text = response.to_json().to_string_pretty();
                let written = write_frame(&mut stream, text.as_bytes());
                // Wake the accept loop only after the response frame is
                // on the wire: a `shutdown` requester must see its ack
                // before the daemon process can exit.
                if shared.shutdown.load(Ordering::Acquire) {
                    shared.wake_accept_loop();
                }
                if written.is_err() {
                    return;
                }
            }
            Err(FrameError::TooLarge(len)) => {
                // The oversized payload was never read, so the stream
                // cannot be resynchronized: answer and close.
                shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                let response = Response::error(
                    "",
                    ErrorCode::FrameTooLarge,
                    format!(
                        "frame of {len} bytes exceeds the {} byte ceiling",
                        shared.max_frame_bytes
                    ),
                );
                let text = response.to_json().to_string_pretty();
                let _ = write_frame(&mut stream, text.as_bytes());
                return;
            }
            Err(FrameError::Io(_)) => return,
        }
    }
}

fn dispatch(payload: &[u8], shared: &Arc<Shared>) -> Response {
    shared.counters.requests.fetch_add(1, Ordering::Relaxed);
    let error = |code, detail: String| {
        shared.counters.errors.fetch_add(1, Ordering::Relaxed);
        Response::error("", code, detail)
    };
    let text = match std::str::from_utf8(payload) {
        Ok(text) => text,
        Err(e) => {
            return error(
                ErrorCode::MalformedJson,
                format!("payload is not UTF-8: {e}"),
            )
        }
    };
    let json = match Json::parse(text) {
        Ok(json) => json,
        Err(e) => return error(ErrorCode::MalformedJson, e.to_string()),
    };
    let request = match Request::from_json(&json) {
        Ok(request) => request,
        Err(e) => return error(ErrorCode::MalformedRequest, e),
    };
    match request.op {
        Op::Ping => Response::ok(request.id),
        Op::Stats => {
            let mut response = Response::ok(request.id);
            response.stats = Some(shared.snapshot());
            response
        }
        Op::Shutdown => {
            // The connection loop wakes the accept loop *after* writing
            // this ack, so the requester always receives it.
            shared.shutdown.store(true, Ordering::Release);
            Response::ok(request.id)
        }
        Op::Solve => handle_solve(request, shared),
    }
}

fn handle_solve(request: Request, shared: &Arc<Shared>) -> Response {
    let started = Instant::now();
    let id = request.id.clone();
    let fail = |code, detail: String| {
        shared.counters.errors.fetch_add(1, Ordering::Relaxed);
        Response::error(id.clone(), code, detail)
    };
    if shared.shutdown.load(Ordering::Acquire) {
        return fail(
            ErrorCode::ShuttingDown,
            "the daemon is shutting down".into(),
        );
    }
    let text = request.problem.as_deref().expect("validated by from_json");
    let problem = match sygus::parser::parse_problem(text, "request") {
        Ok(problem) => problem,
        Err(sygus::SygusError::ParseError(p)) => {
            return fail(
                ErrorCode::ParseError,
                format!("{}:{}: {}", p.line, p.col, p.msg),
            )
        }
        Err(other) => return fail(ErrorCode::ParseError, other.to_string()),
    };
    let canonical = sygus::parser::problem_to_sygus(&problem, "f");
    let fingerprint = problem.fingerprint();

    if !request.no_cache {
        let hit = shared.cache.lock().unwrap().lookup(fingerprint, &canonical);
        if let Some(cached) = hit {
            let mut response = Response::ok(id);
            response.verdict = Some(cached.verdict);
            response.winner = cached.winner;
            response.cached = true;
            response.fingerprint = Some(fingerprint_hex(fingerprint));
            response.millis = started.elapsed().as_secs_f64() * 1000.0;
            return response;
        }
    }

    // Admission control: shed rather than queue without bound.
    if shared.pool.in_flight() >= shared.max_in_flight {
        shared.counters.shed.fetch_add(1, Ordering::Relaxed);
        shared.counters.errors.fetch_add(1, Ordering::Relaxed);
        return Response::error(
            id,
            ErrorCode::Overloaded,
            format!(
                "{} engine jobs in flight (bound {})",
                shared.pool.in_flight(),
                shared.max_in_flight
            ),
        );
    }

    let deadline = request
        .deadline_ms
        .map(Duration::from_millis)
        .unwrap_or(shared.default_deadline);
    let cancel = Cancel::new();
    shared
        .deadlines
        .register(started + deadline, cancel.clone());

    let portfolio = Portfolio::new().with_presolve(shared.presolve && !request.no_presolve);
    let report = portfolio.race_on_pool(&problem, &shared.pool, &cancel);
    let millis = started.elapsed().as_secs_f64() * 1000.0;

    if report.verdict.is_definitive() {
        if !request.no_cache {
            shared.cache.lock().unwrap().insert(
                fingerprint,
                canonical,
                CachedVerdict {
                    verdict: report.verdict.name().into(),
                    winner: report.winner.map(str::to_string),
                    solve_millis: report.wall_millis,
                },
            );
        }
        let mut response = Response::ok(id);
        response.verdict = Some(report.verdict.name().into());
        response.winner = report.winner.map(str::to_string);
        response.fingerprint = Some(fingerprint_hex(fingerprint));
        response.millis = millis;
        return response;
    }

    // Not definitive. A tripped token means the deadline monitor fired
    // (winners only trip the token alongside a definitive verdict).
    if cancel.is_cancelled() {
        shared.counters.timeouts.fetch_add(1, Ordering::Relaxed);
        let mut response = Response::ok(id);
        response.status = ResponseStatus::Timeout;
        response.verdict = Some(SolveVerdict::Unknown.name().into());
        response.fingerprint = Some(fingerprint_hex(fingerprint));
        response.millis = millis;
        return response;
    }

    // A crashed engine with no verdict is an internal error; a clean
    // double-unknown is a genuine (budget-independent) `unknown`.
    if report.nay.status != runner::JobStatus::Ok || report.nope.status != runner::JobStatus::Ok {
        return fail(
            ErrorCode::Internal,
            format!(
                "engine jobs ended {} / {}",
                report.nay.status.as_str(),
                report.nope.status.as_str()
            ),
        );
    }
    let mut response = Response::ok(id);
    response.verdict = Some(SolveVerdict::Unknown.name().into());
    response.fingerprint = Some(fingerprint_hex(fingerprint));
    response.millis = millis;
    response
}
