//! Solve traces: a per-request span tree with monotonic relative offsets.
//!
//! A [`Trace`] is a flat, depth-annotated list of [`Span`]s in start
//! order — enough to render a waterfall and to snapshot-test *structure*
//! (which phases appeared, nested how) without pinning wall-clock values.
//! Offsets are microseconds relative to the trace's own start, so traces
//! are self-contained and comparable across hosts.
//!
//! The phase catalogue is closed and stable (see [`phase`]): tests and
//! docs enumerate it, and renderers can rely on it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// The stable span-phase catalogue. Every span's `phase` is one of these
/// strings; adding a phase is an additive, documented change.
pub mod phase {
    /// Root span: the whole solve request.
    pub const SOLVE: &str = "solve";
    /// SyGuS-IF text → `Problem` parse.
    pub const PARSE: &str = "parse";
    /// Verdict-cache lookup (daemon only); detail says `hit` or `miss`.
    pub const CACHE: &str = "cache";
    /// Static presolve stage.
    pub const PRESOLVE: &str = "presolve";
    /// The engine race, parent of the per-engine spans.
    pub const RACE: &str = "race";
    /// The exact engine's lane.
    pub const NAY: &str = "nay";
    /// The approximate engine's lane.
    pub const NOPE: &str = "nope";
    /// Warm-pool queue wait before an engine job starts.
    pub const QUEUE: &str = "queue";
    /// Engine execution proper.
    pub const RUN: &str = "run";
    /// Loser-cancellation drain after the winner settles.
    pub const CANCEL: &str = "cancel";

    /// Every phase above, in catalogue order.
    pub const ALL: &[&str] = &[
        SOLVE, PARSE, CACHE, PRESOLVE, RACE, NAY, NOPE, QUEUE, RUN, CANCEL,
    ];
}

/// One node of the span tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Which phase this span covers — one of the [`phase`] constants.
    pub phase: String,
    /// Nesting depth: 0 for the root, parent depth + 1 below.
    pub depth: usize,
    /// Start offset in microseconds relative to the trace start.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Free-form annotation (engine name, verdict, `hit`/`miss`, ...).
    pub detail: String,
}

/// A complete per-request span tree in start order.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Trace {
    /// The request's trace id (also stamped on the protocol response).
    pub trace_id: String,
    /// Spans in start order; nesting is encoded by [`Span::depth`].
    pub spans: Vec<Span>,
}

impl Trace {
    /// An empty trace carrying `trace_id`.
    #[must_use]
    pub fn new(trace_id: impl Into<String>) -> Self {
        Trace {
            trace_id: trace_id.into(),
            spans: Vec::new(),
        }
    }

    /// Appends a span.
    pub fn push(
        &mut self,
        phase: &str,
        depth: usize,
        start_us: u64,
        dur_us: u64,
        detail: impl Into<String>,
    ) {
        self.spans.push(Span {
            phase: phase.to_string(),
            depth,
            start_us,
            dur_us,
            detail: detail.into(),
        });
    }

    /// End offset of the latest-ending span — the trace's total extent.
    #[must_use]
    pub fn total_us(&self) -> u64 {
        self.spans
            .iter()
            .map(|s| s.start_us.saturating_add(s.dur_us))
            .max()
            .unwrap_or(0)
    }

    /// The snapshot-testable shape: `(depth, phase)` pairs in span order,
    /// with every wall-clock value stripped.
    #[must_use]
    pub fn structure(&self) -> Vec<(usize, String)> {
        self.spans
            .iter()
            .map(|s| (s.depth, s.phase.clone()))
            .collect()
    }

    /// Renders a fixed-width waterfall: one line per span with an
    /// indented phase label, a bar positioned by relative offset, and the
    /// duration in milliseconds.
    #[must_use]
    pub fn render_waterfall(&self) -> String {
        use std::fmt::Write as _;
        const WIDTH: usize = 40;
        let total = self.total_us().max(1);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace {} ({:.3} ms total)",
            self.trace_id,
            self.total_us() as f64 / 1000.0
        );
        for span in &self.spans {
            let label = format!("{}{}", "  ".repeat(span.depth), span.phase);
            // Map [start, start+dur] onto WIDTH columns; always draw at
            // least one cell so instantaneous spans stay visible.
            let from = (span.start_us as u128 * WIDTH as u128 / total as u128) as usize;
            let to = ((span.start_us.saturating_add(span.dur_us)) as u128 * WIDTH as u128
                / total as u128) as usize;
            let from = from.min(WIDTH - 1);
            let to = to.clamp(from + 1, WIDTH);
            let bar: String = (0..WIDTH)
                .map(|col| if col >= from && col < to { '#' } else { '.' })
                .collect();
            let _ = writeln!(
                out,
                "  {label:<18} |{bar}| {:>9.3} ms{}{}",
                span.dur_us as f64 / 1000.0,
                if span.detail.is_empty() { "" } else { "  " },
                span.detail
            );
        }
        out
    }
}

/// A fresh process-unique trace id: a per-process random-ish base (hashed
/// from the process start time) plus a sequence number, e.g.
/// `t-9f86d081-00000007`. Uniqueness is per-process and monotone, which
/// is all log correlation needs; no global coordination is attempted.
#[must_use]
pub fn fresh_trace_id() -> String {
    static BASE: OnceLock<u64> = OnceLock::new();
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let base = *BASE.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0)
            ^ (std::process::id() as u64) << 32;
        // One round of splitmix64 so nearby start times don't share
        // prefixes.
        let mut z = nanos.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    });
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    format!("t-{:08x}-{seq:08x}", base as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new("t-test-0");
        t.push(phase::SOLVE, 0, 0, 1000, "");
        t.push(phase::PARSE, 1, 0, 100, "");
        t.push(phase::RACE, 1, 100, 900, "");
        t.push(phase::NAY, 2, 100, 400, "winner");
        t.push(phase::QUEUE, 3, 100, 50, "");
        t.push(phase::RUN, 3, 150, 350, "");
        t
    }

    #[test]
    fn structure_strips_wall_clock() {
        let t = sample();
        assert_eq!(
            t.structure(),
            vec![
                (0, "solve".to_string()),
                (1, "parse".to_string()),
                (1, "race".to_string()),
                (2, "nay".to_string()),
                (3, "queue".to_string()),
                (3, "run".to_string()),
            ]
        );
        assert_eq!(t.total_us(), 1000);
    }

    #[test]
    fn waterfall_renders_every_span_once() {
        let t = sample();
        let text = t.render_waterfall();
        assert!(text.starts_with("trace t-test-0"));
        for span in &t.spans {
            assert!(
                text.contains(&span.phase),
                "waterfall must mention {}",
                span.phase
            );
        }
        assert!(text.contains("winner"));
        // 6 spans + header line.
        assert_eq!(text.lines().count(), 7);
    }

    #[test]
    fn waterfall_survives_zero_duration_traces() {
        let mut t = Trace::new("t-zero");
        t.push(phase::SOLVE, 0, 0, 0, "");
        let text = t.render_waterfall();
        assert!(text.contains("solve"));
    }

    #[test]
    fn trace_ids_are_unique_and_well_formed() {
        let a = fresh_trace_id();
        let b = fresh_trace_id();
        assert_ne!(a, b);
        for id in [&a, &b] {
            assert!(id.starts_with("t-"), "{id}");
            assert_eq!(id.len(), "t-00000000-00000000".len(), "{id}");
        }
    }

    #[test]
    fn phase_catalogue_is_closed_and_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for p in phase::ALL {
            assert!(seen.insert(*p), "{p} duplicated");
        }
        assert_eq!(phase::ALL.len(), 10);
    }
}
