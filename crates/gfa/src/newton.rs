//! Newtonian Program Analysis (NPA) over commutative idempotent
//! ω-continuous semirings (§5.1, Esparza et al.).
//!
//! For such semirings the Newton sequence
//!
//! ```text
//! ν⁰ = F(0),   νⁱ⁺¹ = νⁱ ⊕ (DF|_{νⁱ})⊛ (F(νⁱ))
//! ```
//!
//! reaches the least fixed point of `X = F(X)` after at most `|N|` iterations
//! (Lemma 5.2 / [10, Thm. 7.7]), even when the domain has infinite ascending
//! chains — which is exactly the situation for semi-linear sets and recursive
//! LIA⁺ grammars.
//!
//! Each iteration solves the linearised system `Y = A·Y ⊕ b` where `A` is the
//! formal differential of `F` evaluated at the current approximation; the
//! linear system is solved exactly by the matrix-star construction
//! ([`matrix_star`], Lehmann's algorithm).

use crate::equations::{EquationSystem, Solution};
use crate::semiring::Semiring;

/// Computes the star `A⊛ = I ⊕ A ⊕ A² ⊕ …` of a square matrix over the
/// semiring using Lehmann's (Floyd–Warshall–Kleene) algorithm.
///
/// # Panics
/// Panics if the matrix is not square.
pub fn matrix_star<S: Semiring>(semiring: &S, matrix: &[Vec<S::Elem>]) -> Vec<Vec<S::Elem>> {
    let n = matrix.len();
    for row in matrix {
        assert_eq!(row.len(), n, "matrix must be square");
    }
    let mut current: Vec<Vec<S::Elem>> = matrix.to_vec();
    for k in 0..n {
        let pivot_star = semiring.star(&current[k][k]);
        let mut next = current.clone();
        for (i, next_row) in next.iter_mut().enumerate() {
            for (j, cell) in next_row.iter_mut().enumerate() {
                let through_k = semiring.extend(
                    &semiring.extend(&current[i][k], &pivot_star),
                    &current[k][j],
                );
                *cell = semiring.normalize(semiring.combine(&current[i][j], &through_k));
            }
        }
        current = next;
    }
    // add the identity
    for (i, row) in current.iter_mut().enumerate() {
        row[i] = semiring.combine(&row[i], &semiring.one());
    }
    current
}

/// Solves the linear system `Y = A·Y ⊕ b` exactly, returning `Y = A⊛·b`.
pub fn solve_linear<S: Semiring>(
    semiring: &S,
    matrix: &[Vec<S::Elem>],
    rhs: &[S::Elem],
) -> Vec<S::Elem> {
    let star = matrix_star(semiring, matrix);
    star.iter()
        .map(|row| {
            let mut acc = semiring.zero();
            for (a, b) in row.iter().zip(rhs) {
                acc = semiring.combine(&acc, &semiring.extend(a, b));
            }
            semiring.normalize(acc)
        })
        .collect()
}

/// The formal differential `DF|_ν` of the system, as a matrix: entry
/// `(i, j)` is `⊕` over every occurrence of variable `j` in a monomial of
/// `F_i`, of the monomial with that occurrence removed and all remaining
/// variables evaluated at `ν` (commutativity makes the order irrelevant).
fn differential<S: Semiring>(
    semiring: &S,
    system: &EquationSystem<S::Elem>,
    valuation: &[S::Elem],
) -> Vec<Vec<S::Elem>> {
    let n = system.num_vars();
    let mut matrix = vec![vec![semiring.zero(); n]; n];
    for (i, row) in matrix.iter_mut().enumerate() {
        for m in system.monomials(i) {
            for (pos, &var) in m.vars.iter().enumerate() {
                // coefficient ⊗ Π_{q ≠ pos} ν[vars[q]]
                let mut term = m.coefficient.clone();
                for (q, &other) in m.vars.iter().enumerate() {
                    if q != pos {
                        term = semiring.extend(&term, &valuation[other]);
                    }
                }
                row[var] = semiring.normalize(semiring.combine(&row[var], &term));
            }
        }
    }
    matrix
}

/// Solves the equation system with Newton's method.
///
/// For commutative idempotent ω-continuous semirings the result after
/// `num_vars` iterations is the least fixed point, so [`Solution::exact`] is
/// always `true`; the solver stops earlier if an iteration leaves the
/// valuation unchanged.
pub fn solve<S: Semiring>(semiring: &S, system: &EquationSystem<S::Elem>) -> Solution<S::Elem> {
    let n = system.num_vars();
    if n == 0 {
        return Solution {
            values: Vec::new(),
            iterations: 0,
            exact: true,
        };
    }
    // ν⁰ = F(0)
    let bottom = vec![semiring.zero(); n];
    let mut valuation = system.eval_all(semiring, &bottom);
    let mut iterations = 0;
    for _ in 0..n {
        iterations += 1;
        let matrix = differential(semiring, system, &valuation);
        let rhs = system.eval_all(semiring, &valuation);
        let delta = solve_linear(semiring, &matrix, &rhs);
        let next: Vec<S::Elem> = valuation
            .iter()
            .zip(&delta)
            .map(|(old, d)| semiring.normalize(semiring.combine(old, d)))
            .collect();
        if next == valuation {
            break;
        }
        valuation = next;
    }
    Solution {
        values: valuation,
        iterations,
        exact: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equations::Monomial;
    use crate::semiring::SemiLinearSemiring;
    use semilinear::{IntVec, SemiLinearSet};

    fn single(v: &[i64]) -> SemiLinearSet {
        SemiLinearSet::singleton(IntVec::from(v.to_vec()))
    }
    fn vec1(v: i64) -> IntVec {
        IntVec::from(vec![v])
    }

    #[test]
    fn one_by_one_matrix_star() {
        let sr = SemiLinearSemiring::new(1);
        let star = matrix_star(&sr, &[vec![single(&[3])]]);
        // ({3})⊛ = {0 + 3λ}
        assert!(star[0][0].contains(&vec1(0)));
        assert!(star[0][0].contains(&vec1(9)));
        assert!(!star[0][0].contains(&vec1(4)));
    }

    #[test]
    fn two_by_two_matrix_star_mixes_paths() {
        let sr = SemiLinearSemiring::new(1);
        // A = [[0, {1}], [{2}, 0]]: paths alternate between the two states,
        // so A*[0][0] must contain {0, 3, 6, …} (each round trip adds 1+2).
        let z = sr.zero();
        let a = vec![vec![z.clone(), single(&[1])], vec![single(&[2]), z]];
        let star = matrix_star(&sr, &a);
        assert!(star[0][0].contains(&vec1(0)));
        assert!(star[0][0].contains(&vec1(3)));
        assert!(star[0][0].contains(&vec1(6)));
        assert!(!star[0][0].contains(&vec1(2)));
        // one-step path 0 → 1 plus round trips
        assert!(star[0][1].contains(&vec1(1)));
        assert!(star[0][1].contains(&vec1(4)));
    }

    #[test]
    fn paper_equation_three() {
        // X = {3} ⊗ X ⊕ {0} over one example (Eqn. (3)); solution {0 + 3λ}.
        let sr = SemiLinearSemiring::new(1);
        let mut sys = EquationSystem::new(1);
        sys.add_monomial(0, Monomial::new(single(&[3]), vec![0]));
        sys.add_monomial(0, Monomial::constant(single(&[0])));
        let sol = solve(&sr, &sys);
        assert!(sol.exact);
        assert!(sol.values[0].contains(&vec1(0)));
        assert!(sol.values[0].contains(&vec1(3)));
        assert!(sol.values[0].contains(&vec1(300)));
        assert!(!sol.values[0].contains(&vec1(4)));
        assert!(!sol.values[0].contains(&vec1(-3)));
    }

    #[test]
    fn example_5_7_two_examples() {
        // The G1 system with E = ⟨1, 2⟩ (Example 5.7):
        //   Start = S1 ⊗ Start ⊕ {(0,0)}
        //   S1 = S2 ⊗ {(1,2)}
        //   S2 = S3 ⊗ {(1,2)}
        //   S3 = {(1,2)}
        let sr = SemiLinearSemiring::new(2);
        let mut sys = EquationSystem::new(4);
        let (start, s1, s2, s3) = (0, 1, 2, 3);
        sys.add_monomial(start, Monomial::new(SemiLinearSet::one(2), vec![s1, start]));
        sys.add_monomial(start, Monomial::constant(single(&[0, 0])));
        sys.add_monomial(s1, Monomial::new(single(&[1, 2]), vec![s2]));
        sys.add_monomial(s2, Monomial::new(single(&[1, 2]), vec![s3]));
        sys.add_monomial(s3, Monomial::constant(single(&[1, 2])));
        let sol = solve(&sr, &sys);
        // nG(S1) = {(3,6)}, nG(S2) = {(2,4)}, nG(S3) = {(1,2)}
        assert_eq!(sol.values[s3], single(&[1, 2]));
        assert_eq!(sol.values[s2], single(&[2, 4]));
        assert_eq!(sol.values[s1], single(&[3, 6]));
        // nG(Start) = {(0,0) + λ(3,6)}
        let start_val = &sol.values[start];
        assert!(start_val.contains(&IntVec::from(vec![0, 0])));
        assert!(start_val.contains(&IntVec::from(vec![3, 6])));
        assert!(start_val.contains(&IntVec::from(vec![9, 18])));
        assert!(!start_val.contains(&IntVec::from(vec![3, 5])));
        assert!(!start_val.contains(&IntVec::from(vec![4, 8])));
    }

    #[test]
    fn quadratic_system() {
        // X = X ⊗ X ⊕ {1}: the set of values {1, 2, 3, …} (all positive
        // counts of leaves of binary trees). The exact least solution over
        // semi-linear sets is {1 + λ1}.
        let sr = SemiLinearSemiring::new(1);
        let mut sys = EquationSystem::new(1);
        sys.add_monomial(0, Monomial::new(SemiLinearSet::one(1), vec![0, 0]));
        sys.add_monomial(0, Monomial::constant(single(&[1])));
        let sol = solve(&sr, &sys);
        for v in 1..6 {
            assert!(sol.values[0].contains(&vec1(v)), "missing {v}");
        }
        assert!(!sol.values[0].contains(&vec1(0)));
        assert!(!sol.values[0].contains(&vec1(-1)));
    }

    #[test]
    fn newton_beats_kleene_on_recursion() {
        let sr = SemiLinearSemiring::new(1);
        let mut sys = EquationSystem::new(1);
        sys.add_monomial(0, Monomial::new(single(&[3]), vec![0]));
        sys.add_monomial(0, Monomial::constant(single(&[0])));
        let kleene = crate::kleene::solve(&sr, &sys, 20);
        let newton = solve(&sr, &sys);
        assert!(!kleene.exact);
        assert!(newton.exact);
        // Kleene's under-approximation is contained in Newton's answer
        for ls in kleene.values[0].linear_sets() {
            assert!(newton.values[0].contains(ls.base()));
        }
    }

    #[test]
    fn empty_system() {
        let sr = SemiLinearSemiring::new(1);
        let sys: EquationSystem<SemiLinearSet> = EquationSystem::new(0);
        let sol = solve(&sr, &sys);
        assert!(sol.exact);
        assert!(sol.values.is_empty());
    }
}
