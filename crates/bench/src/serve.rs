//! The serving harness: workload assembly and the multi-client load
//! generator behind `reproduce bench-serve`.
//!
//! A workload is a list of named SyGuS-IF texts with verdict
//! expectations — the on-disk corpus (gated by its `MANIFEST` race
//! column) plus optionally a stream of `crates/gen` instances (gated by
//! their ground-truth expectation). [`run_load`] replays the workload
//! against a daemon endpoint for a configurable number of passes, with a
//! configurable number of concurrent clients and an optional per-client
//! QPS cap, and reports per-pass throughput, latency percentiles, and
//! cache hit rates — as text and as a runner-schema JSON [`Report`].
//!
//! With an empty cache, pass 1 races every instance; every later pass of
//! the same workload must be served from the verdict cache (the corpus'
//! race verdicts are all definitive), which the CI `serve` job asserts.

use crate::solve::{collect_sl_files, problem_name, Engine, Manifest};
use obs::LatencyHist;
use runner::{Entry, JobStatus, Report};
use server::{Client, Endpoint, Request, ResponseStatus, StatsSnapshot};
use std::fmt::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

/// How a work item's verdict is checked.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expected {
    /// The daemon's verdict must equal this exactly (corpus instances:
    /// the MANIFEST race column is deterministic and definitive).
    Exactly(String),
    /// A definitive verdict contradicting this ground truth is a
    /// soundness violation; `unknown` is acceptable (generated
    /// instances, whose race verdict can be budget-dependent).
    NoContradiction(String),
    /// Nothing to check (no MANIFEST next to the corpus).
    Unchecked,
}

/// One named problem in the replay workload.
#[derive(Clone, Debug)]
pub struct WorkItem {
    /// Benchmark name (corpus file stem or generated-instance name).
    pub name: String,
    /// The SyGuS-IF problem text sent over the wire.
    pub text: String,
    /// The verdict check applied to responses.
    pub expected: Expected,
    /// Workload family for report grouping (`corpus` or the generated
    /// family name).
    pub family: String,
}

/// Load-generator knobs.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Concurrent client connections (workload items are sharded
    /// round-robin across them).
    pub clients: usize,
    /// Full replays of the workload. Pass 1 fills the cache; later
    /// passes measure the warm path.
    pub passes: usize,
    /// Per-client request rate cap; `None` sends back-to-back.
    pub qps: Option<f64>,
    /// Per-request deadline forwarded to the daemon; `None` uses the
    /// daemon's default.
    pub deadline_ms: Option<u64>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            clients: 2,
            passes: 2,
            qps: None,
            deadline_ms: None,
        }
    }
}

/// One request's client-side observation. Carries its item's expectation
/// by value: workload names are not unique (a corpus can contain
/// promoted generated instances whose names collide with a freshly
/// generated stream), so matching by name would check the wrong item.
#[derive(Clone, Debug)]
struct Observation {
    name: String,
    family: String,
    expected: Expected,
    pass: usize,
    latency_ms: f64,
    cached: bool,
    verdict: String,
    outcome: String,
}

/// Per-pass aggregates.
#[derive(Clone, Debug)]
pub struct PassSummary {
    /// 1-based pass number.
    pub pass: usize,
    /// Requests sent.
    pub requests: usize,
    /// Responses served from the verdict cache.
    pub cache_hits: usize,
    /// `timeout` responses.
    pub timeouts: usize,
    /// Error responses or client-side failures.
    pub errors: usize,
    /// Wall-clock milliseconds for the whole pass (slowest client).
    pub wall_millis: f64,
    /// Requests per second over the pass wall clock.
    pub throughput: f64,
    /// Median latency in milliseconds.
    pub p50_ms: f64,
    /// 90th-percentile latency.
    pub p90_ms: f64,
    /// 99th-percentile latency.
    pub p99_ms: f64,
    /// Slowest request.
    pub max_ms: f64,
}

/// Everything `bench-serve` produces.
pub struct LoadOutcome {
    /// Per-pass aggregates, in pass order.
    pub passes: Vec<PassSummary>,
    /// Expectation violations (empty on a clean run).
    pub mismatches: Vec<String>,
    /// The runner-schema report: one entry per request plus one summary
    /// entry per pass (and a daemon-stats entry when available).
    pub report: Report,
    /// The daemon's own counters after the last pass — evictions,
    /// collision misses, sheds, and queue-wait percentiles that no
    /// client-side observation can see. `None` if the final stats
    /// request failed.
    pub daemon_stats: Option<StatsSnapshot>,
}

/// Builds the corpus part of the workload: every `.sl` file under `dir`,
/// expected-exact against the MANIFEST race column when one is present.
///
/// # Errors
/// Returns a message when the directory is unreadable or the MANIFEST is
/// malformed.
pub fn corpus_workload(dir: &Path) -> Result<Vec<WorkItem>, String> {
    let files = collect_sl_files(dir)?;
    let manifest = Manifest::load(dir)?;
    files
        .iter()
        .map(|path| {
            let name = problem_name(path);
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
            let expected = match &manifest {
                Some(manifest) => match manifest.expected(&name, Engine::Race) {
                    Some(verdict) => Expected::Exactly(verdict.to_string()),
                    None => return Err(format!("`{name}` is missing from the MANIFEST")),
                },
                None => Expected::Unchecked,
            };
            Ok(WorkItem {
                name,
                text,
                expected,
                family: "corpus".into(),
            })
        })
        .collect()
}

/// Builds the generated part of the workload: `count` instances from the
/// seeded stream, checked for non-contradiction against their
/// ground-truth expectations.
pub fn gen_workload(count: usize, seed: u64, families: Option<Vec<gen::Family>>) -> Vec<WorkItem> {
    let mut config = gen::GenConfig::new(seed);
    if let Some(families) = families {
        config = config.with_families(families);
    }
    gen::ProblemStream::new(config)
        .take(count)
        .map(|instance| WorkItem {
            name: instance.name(),
            text: instance.to_sl(),
            expected: Expected::NoContradiction(instance.expected.name().to_string()),
            family: instance.family.name().to_string(),
        })
        .collect()
}

/// Replays `workload` against `endpoint` per the [`LoadConfig`]: each
/// pass shards the workload round-robin over `clients` threads, each
/// owning one connection, and the observations roll up into per-pass
/// summaries and a runner-schema report.
///
/// # Errors
/// Returns a message when a client cannot connect (response-level
/// failures are collected into the outcome instead).
pub fn run_load(
    endpoint: &Endpoint,
    workload: &[WorkItem],
    config: &LoadConfig,
) -> Result<LoadOutcome, String> {
    let clients = config.clients.max(1);
    let mut observations: Vec<Observation> = Vec::new();
    let mut passes = Vec::new();

    for pass in 1..=config.passes.max(1) {
        let started = Instant::now();
        let shards: Vec<Vec<WorkItem>> = (0..clients)
            .map(|c| workload.iter().skip(c).step_by(clients).cloned().collect())
            .collect();
        let handles: Vec<_> = shards
            .into_iter()
            .map(|shard| {
                let endpoint = endpoint.clone();
                let qps = config.qps;
                let deadline_ms = config.deadline_ms;
                std::thread::spawn(move || run_client(&endpoint, &shard, pass, qps, deadline_ms))
            })
            .collect();
        let mut pass_observations = Vec::new();
        for handle in handles {
            let observed = handle
                .join()
                .map_err(|_| "a load client panicked".to_string())??;
            pass_observations.extend(observed);
        }
        passes.push(summarize(pass, &pass_observations, started.elapsed()));
        observations.extend(pass_observations);
    }

    let mismatches = check_expectations(&observations);
    // The daemon sees what clients cannot: cache evictions and collision
    // misses, admission sheds, and engine queue-wait percentiles.
    let daemon_stats = Client::connect_retry(endpoint, Duration::from_secs(5))
        .ok()
        .and_then(|mut client| client.stats().ok())
        .and_then(|response| response.stats);
    let report = build_report(&observations, &passes, &mismatches, daemon_stats.as_ref());
    Ok(LoadOutcome {
        passes,
        mismatches,
        report,
        daemon_stats,
    })
}

/// One client's replay of its shard: sequential requests over a single
/// connection, paced to `qps` when set.
fn run_client(
    endpoint: &Endpoint,
    shard: &[WorkItem],
    pass: usize,
    qps: Option<f64>,
    deadline_ms: Option<u64>,
) -> Result<Vec<Observation>, String> {
    let mut client = Client::connect_retry(endpoint, Duration::from_secs(5))
        .map_err(|e| format!("cannot connect to the daemon: {e}"))?;
    let started = Instant::now();
    let mut observations = Vec::with_capacity(shard.len());
    for (i, item) in shard.iter().enumerate() {
        if let Some(qps) = qps {
            // Open-loop pacing: request i is due at i/qps seconds.
            let due = Duration::from_secs_f64(i as f64 / qps.max(1e-9));
            let now = started.elapsed();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        let mut request = Request::solve(format!("p{pass}-{}", item.name), &item.text);
        request.deadline_ms = deadline_ms;
        let sent = Instant::now();
        let observation = match client.request(&request) {
            Err(e) => Observation {
                name: item.name.clone(),
                family: item.family.clone(),
                expected: item.expected.clone(),
                pass,
                latency_ms: sent.elapsed().as_secs_f64() * 1000.0,
                cached: false,
                verdict: "-".into(),
                outcome: format!("client-error: {e}"),
            },
            Ok(response) => Observation {
                name: item.name.clone(),
                family: item.family.clone(),
                expected: item.expected.clone(),
                pass,
                latency_ms: sent.elapsed().as_secs_f64() * 1000.0,
                cached: response.cached,
                verdict: response.verdict.clone().unwrap_or_else(|| "-".into()),
                outcome: match response.status {
                    ResponseStatus::Ok => "ok".into(),
                    ResponseStatus::Timeout => "timeout".into(),
                    ResponseStatus::Error => format!(
                        "error: {}",
                        response.error_code.map(|c| c.as_str()).unwrap_or("unknown")
                    ),
                },
            },
        };
        observations.push(observation);
    }
    Ok(observations)
}

fn summarize(pass: usize, observations: &[Observation], wall: Duration) -> PassSummary {
    // Percentiles come from the workspace-wide log₂ histogram (upper
    // bucket edges, like every other latency report here); the slowest
    // request stays exact.
    let mut hist = LatencyHist::default();
    let mut max_ms = 0.0f64;
    for observation in observations {
        hist.record_millis(observation.latency_ms);
        max_ms = max_ms.max(observation.latency_ms);
    }
    let wall_millis = wall.as_secs_f64() * 1000.0;
    PassSummary {
        pass,
        requests: observations.len(),
        cache_hits: observations.iter().filter(|o| o.cached).count(),
        timeouts: observations
            .iter()
            .filter(|o| o.outcome == "timeout")
            .count(),
        errors: observations
            .iter()
            .filter(|o| o.outcome != "ok" && o.outcome != "timeout")
            .count(),
        wall_millis,
        throughput: observations.len() as f64 / (wall.as_secs_f64()).max(1e-9),
        p50_ms: hist.quantile_millis(0.50),
        p90_ms: hist.quantile_millis(0.90),
        p99_ms: hist.quantile_millis(0.99),
        max_ms,
    }
}

fn check_expectations(observations: &[Observation]) -> Vec<String> {
    let mut mismatches = Vec::new();
    for observation in observations {
        if observation.outcome != "ok" && observation.outcome != "timeout" {
            mismatches.push(format!(
                "{} (pass {}): {}",
                observation.name, observation.pass, observation.outcome
            ));
            continue;
        }
        match &observation.expected {
            Expected::Unchecked => {}
            Expected::Exactly(expected) => {
                if &observation.verdict != expected {
                    mismatches.push(format!(
                        "{} (pass {}): verdict {} != expected {} [cached={}]",
                        observation.name,
                        observation.pass,
                        observation.verdict,
                        expected,
                        observation.cached
                    ));
                }
            }
            Expected::NoContradiction(truth) => {
                let definitive =
                    observation.verdict == "realizable" || observation.verdict == "unrealizable";
                if definitive && &observation.verdict != truth {
                    mismatches.push(format!(
                        "{} (pass {}): verdict {} contradicts ground truth {} [cached={}]",
                        observation.name,
                        observation.pass,
                        observation.verdict,
                        truth,
                        observation.cached
                    ));
                }
            }
        }
    }
    mismatches
}

fn build_report(
    observations: &[Observation],
    passes: &[PassSummary],
    mismatches: &[String],
    daemon_stats: Option<&StatsSnapshot>,
) -> Report {
    let mut entries: Vec<Entry> = observations
        .iter()
        .map(|o| Entry {
            benchmark: o.name.clone(),
            tool: format!("serve/pass{}", o.pass),
            status: if o.outcome.starts_with("client-error") {
                JobStatus::Crashed
            } else if o.outcome == "timeout" {
                JobStatus::TimedOut
            } else {
                JobStatus::Ok
            },
            verdict: if o.cached {
                format!("{}(cached)", o.verdict)
            } else {
                o.verdict.clone()
            },
            proved: o.verdict == "unrealizable",
            iterations: 0,
            millis: o.latency_ms,
            tainted: false,
            family: o.family.clone(),
        })
        .collect();
    for summary in passes {
        entries.push(Entry {
            benchmark: format!("pass{}", summary.pass),
            tool: "serve/summary".into(),
            status: if summary.errors == 0 {
                JobStatus::Ok
            } else {
                JobStatus::Crashed
            },
            verdict: format!(
                "hits={}/{} timeouts={} qps={:.1} p50={:.2}ms p90={:.2}ms p99={:.2}ms max={:.2}ms",
                summary.cache_hits,
                summary.requests,
                summary.timeouts,
                summary.throughput,
                summary.p50_ms,
                summary.p90_ms,
                summary.p99_ms,
                summary.max_ms
            ),
            // For a summary row, "proved" means the pass was clean: no
            // errors and no expectation mismatches anywhere in the run.
            proved: summary.errors == 0 && mismatches.is_empty(),
            iterations: summary.requests as u64,
            millis: summary.wall_millis,
            tainted: false,
            family: String::new(),
        });
    }
    // Daemon-side counters ride along as one more summary row, keeping
    // `--json` output under the unchanged runner schema.
    if let Some(stats) = daemon_stats {
        entries.push(Entry {
            benchmark: "daemon".into(),
            tool: "serve/stats".into(),
            status: JobStatus::Ok,
            verdict: format!(
                "evictions={} collisions={} shed={} deadline_trips={} \
                 queue-p50={:.2}ms queue-p99={:.2}ms",
                stats.cache_evictions,
                stats.cache_collisions,
                stats.shed,
                stats.deadline_trips,
                stats.queue_wait_p50_ms,
                stats.queue_wait_p99_ms
            ),
            proved: false,
            iterations: stats.requests,
            millis: 0.0,
            tainted: false,
            family: String::new(),
        });
    }
    Report::new("bench-serve", entries)
}

/// Renders the per-pass summary table.
pub fn render_load(outcome: &LoadOutcome, config: &LoadConfig) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# bench-serve — {} client(s), {} pass(es)",
        config.clients.max(1),
        config.passes.max(1)
    );
    let _ = writeln!(
        out,
        "{:<6} {:>9} {:>6} {:>9} {:>9} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "pass",
        "requests",
        "hits",
        "timeouts",
        "errors",
        "qps",
        "p50 ms",
        "p90 ms",
        "p99 ms",
        "max ms"
    );
    for p in &outcome.passes {
        let _ = writeln!(
            out,
            "{:<6} {:>9} {:>6} {:>9} {:>9} {:>10.1} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            p.pass,
            p.requests,
            p.cache_hits,
            p.timeouts,
            p.errors,
            p.throughput,
            p.p50_ms,
            p.p90_ms,
            p.p99_ms,
            p.max_ms
        );
    }
    if let Some(stats) = &outcome.daemon_stats {
        let _ = writeln!(
            out,
            "daemon: hits={} misses={} evictions={} collisions={} shed={} \
             deadline_trips={} queue-wait p50={:.2}ms p99={:.2}ms",
            stats.cache_hits,
            stats.cache_misses,
            stats.cache_evictions,
            stats.cache_collisions,
            stats.shed,
            stats.deadline_trips,
            stats.queue_wait_p50_ms,
            stats.queue_wait_p99_ms
        );
    }
    if outcome.mismatches.is_empty() {
        let _ = writeln!(out, "verdicts: all match expectations");
    } else {
        let _ = writeln!(out, "{} verdict mismatch(es)", outcome.mismatches.len());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summaries_bucket_percentiles_but_keep_the_max_exact() {
        let observe = |latency_ms: f64| Observation {
            name: "g".into(),
            family: "f".into(),
            expected: Expected::Unchecked,
            pass: 1,
            latency_ms,
            cached: false,
            verdict: "unknown".into(),
            outcome: "ok".into(),
        };
        let observations: Vec<_> = std::iter::repeat_with(|| observe(1.0))
            .take(98)
            .chain([observe(1000.5), observe(1000.5)])
            .collect();
        let summary = summarize(1, &observations, Duration::from_millis(1));
        assert_eq!(summary.requests, 100);
        // 1 ms = 1000 µs lands in the bucket with upper edge 1024 µs; the
        // outlier only shows up at p99 and beyond. The max is the raw
        // sample, not an upper bucket edge.
        assert_eq!(summary.p50_ms, 1.024);
        assert_eq!(summary.p90_ms, 1.024);
        assert!(summary.p99_ms >= 1000.0);
        assert_eq!(summary.max_ms, 1000.5);
        let empty = summarize(1, &[], Duration::from_millis(1));
        assert_eq!((empty.p50_ms, empty.max_ms), (0.0, 0.0));
    }

    #[test]
    fn gen_workload_is_deterministic_and_named() {
        let a = gen_workload(5, 42, None);
        let b = gen_workload(5, 42, None);
        assert_eq!(a.len(), 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.text, y.text);
            assert_eq!(x.expected, y.expected);
        }
    }

    #[test]
    fn contradiction_checking_accepts_unknown() {
        let observe = |verdict: &str| Observation {
            name: "g".into(),
            family: "f".into(),
            expected: Expected::NoContradiction("realizable".into()),
            pass: 1,
            latency_ms: 1.0,
            cached: false,
            verdict: verdict.into(),
            outcome: "ok".into(),
        };
        assert!(check_expectations(&[observe("unknown")]).is_empty());
        assert!(check_expectations(&[observe("realizable")]).is_empty());
        assert_eq!(check_expectations(&[observe("unrealizable")]).len(), 1);
    }

    #[test]
    fn colliding_names_are_checked_against_their_own_expectations() {
        // A corpus item and a generated item can share a name while being
        // different problems; each observation carries its own check.
        let corpus = Observation {
            name: "gen_x_00001".into(),
            family: "corpus".into(),
            expected: Expected::Exactly("unrealizable".into()),
            pass: 1,
            latency_ms: 1.0,
            cached: false,
            verdict: "unrealizable".into(),
            outcome: "ok".into(),
        };
        let generated = Observation {
            expected: Expected::NoContradiction("realizable".into()),
            family: "x".into(),
            verdict: "realizable".into(),
            ..corpus.clone()
        };
        assert!(check_expectations(&[corpus, generated]).is_empty());
    }
}
