//! Criterion bench regenerating the LimitedIf rows of Table 1.

use criterion::{criterion_group, criterion_main, Criterion};
use nay::check::check_unrealizable;
use nay::Mode;

fn bench_table1_if(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_limited_if");
    group.sample_size(10);
    for bench in bench::select(benchmarks::Family::LimitedIf, true)
        .into_iter()
        .take(6)
    {
        group.bench_function(format!("naySL/{}", bench.name), |b| {
            b.iter(|| check_unrealizable(&bench.problem, &bench.witness_examples, &Mode::default()))
        });
        group.bench_function(format!("nayHorn/{}", bench.name), |b| {
            b.iter(|| check_unrealizable(&bench.problem, &bench.witness_examples, &Mode::horn()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1_if);
criterion_main!(benches);
