//! The semi-linear-set GFA instantiation for LIA⁺ grammars (§5.3).
//!
//! Every nonterminal becomes a variable of a polynomial equation system over
//! the semiring of semi-linear sets; every production contributes a monomial
//! according to the abstract semantics of Eqns. (21)–(24):
//!
//! * `Plus(X₁,…,Xₖ)` → the monomial `X₁ ⊗ … ⊗ Xₖ`,
//! * `Num(c)`        → the constant `{⟨(c,…,c), ∅⟩}`,
//! * `Var(x)`        → the constant `{⟨μ_E(x), ∅⟩}`,
//! * `NegVar(x)`     → the constant `{⟨-μ_E(x), ∅⟩}`.
//!
//! The least solution, computed exactly with Newton's method, assigns to each
//! nonterminal `X` the set `{⟦e⟧_E | e ∈ L_G(X)}` (Lemma 5.6).

use gfa::{EquationSystem, Monomial, SemiLinearSemiring, Semiring};
use semilinear::{IntVec, SemiLinearSet};
use std::collections::BTreeMap;
use sygus::{ExampleSet, Grammar, NonTerminal, SygusError, Symbol};

/// The result of the LIA analysis: the exact abstraction of every
/// nonterminal, plus solver statistics.
#[derive(Clone, Debug)]
pub struct LiaAnalysis {
    /// The exact set of output vectors producible by each nonterminal.
    pub values: BTreeMap<NonTerminal, SemiLinearSet>,
    /// Number of Newton iterations performed (summed over strata).
    pub newton_iterations: usize,
    /// Total size (Σ |Vᵢ|+1) of the semi-linear set computed for the start
    /// symbol.
    pub start_size: usize,
}

impl LiaAnalysis {
    /// The semi-linear set of the start nonterminal.
    pub fn start_value<'a>(&'a self, grammar: &Grammar) -> &'a SemiLinearSet {
        &self.values[grammar.start()]
    }
}

/// Builds the GFA equation system of an LIA⁺ grammar over the example set
/// (one equation per nonterminal, Eqn. (25)).
///
/// # Errors
/// Returns an error if the grammar contains `Minus` (apply
/// [`sygus::rewrite::to_plus_form`] first), a non-LIA symbol, or refers to an
/// input variable that some example does not bind.
pub fn build_equations(
    grammar: &Grammar,
    examples: &ExampleSet,
) -> Result<(EquationSystem<SemiLinearSet>, Vec<NonTerminal>), SygusError> {
    let dim = examples.len();
    let order: Vec<NonTerminal> = grammar.nonterminals().to_vec();
    let index: BTreeMap<NonTerminal, usize> = order
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, nt)| (nt, i))
        .collect();

    let mut system = EquationSystem::new(order.len());
    for p in grammar.productions() {
        let lhs = index[&p.lhs];
        let monomial = match &p.symbol {
            Symbol::Plus => Monomial::new(
                SemiLinearSet::one(dim),
                p.args.iter().map(|a| index[a]).collect(),
            ),
            Symbol::Num(c) => Monomial::constant(SemiLinearSet::singleton(IntVec::splat(*c, dim))),
            Symbol::Var(x) => Monomial::constant(SemiLinearSet::singleton(IntVec::from(
                examples.projection(x)?,
            ))),
            Symbol::NegVar(x) => Monomial::constant(SemiLinearSet::singleton(-IntVec::from(
                examples.projection(x)?,
            ))),
            Symbol::Minus => {
                return Err(SygusError::GrammarError(
                    "the grammar contains Minus; apply the h(G) rewriting first".to_string(),
                ))
            }
            other => {
                return Err(SygusError::GrammarError(format!(
                    "symbol {other} is not an LIA⁺ symbol; use the CLIA procedure"
                )))
            }
        };
        system.add_monomial(lhs, monomial);
    }
    Ok((system, order))
}

/// Runs the exact LIA analysis: builds the equations and solves them with
/// Newton's method (stratified or monolithic).
///
/// # Errors
/// Propagates the errors of [`build_equations`].
pub fn analyze(
    grammar: &Grammar,
    examples: &ExampleSet,
    stratified: bool,
    prune: bool,
) -> Result<LiaAnalysis, SygusError> {
    let (system, order) = build_equations(grammar, examples)?;
    let semiring = SemiLinearSemiring::new(examples.len()).with_pruning(prune);
    let solution = if stratified {
        gfa::strata::solve_stratified(&semiring, &system)
    } else {
        gfa::newton::solve(&semiring, &system)
    };
    let values: BTreeMap<NonTerminal, SemiLinearSet> = order
        .iter()
        .cloned()
        .zip(solution.values.iter().cloned())
        .collect();
    let start_size = values.get(grammar.start()).map(|v| v.size()).unwrap_or(0);
    Ok(LiaAnalysis {
        values,
        newton_iterations: solution.iterations,
        start_size,
    })
}

/// Convenience: the exact abstraction of a single nonterminal's language
/// (used by the CLIA procedure for integer-only sub-grammars).
pub fn value_of(
    analysis: &LiaAnalysis,
    nt: &NonTerminal,
    semiring: &SemiLinearSemiring,
) -> SemiLinearSet {
    analysis
        .values
        .get(nt)
        .cloned()
        .unwrap_or_else(|| semiring.zero())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sygus::{GrammarBuilder, Sort};

    fn g1() -> Grammar {
        GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .nonterminal("S1", Sort::Int)
            .nonterminal("S2", Sort::Int)
            .nonterminal("S3", Sort::Int)
            .production("Start", Symbol::Plus, &["S1", "Start"])
            .production("Start", Symbol::Num(0), &[])
            .production("S1", Symbol::Plus, &["S2", "S3"])
            .production("S2", Symbol::Plus, &["S3", "S3"])
            .production("S3", Symbol::Var("x".to_string()), &[])
            .build()
            .unwrap()
    }

    #[test]
    fn example_5_7() {
        // E = ⟨1, 2⟩: nG(Start) = {(0,0) + λ(3,6)}
        let examples = ExampleSet::for_single_var("x", [1, 2]);
        let analysis = analyze(&g1(), &examples, true, true).unwrap();
        let start = analysis.start_value(&g1());
        assert!(start.contains(&IntVec::from(vec![0, 0])));
        assert!(start.contains(&IntVec::from(vec![3, 6])));
        assert!(start.contains(&IntVec::from(vec![30, 60])));
        assert!(!start.contains(&IntVec::from(vec![3, 5])));
        assert!(!start.contains(&IntVec::from(vec![4, 8])));
        assert_eq!(
            analysis.values[&NonTerminal::new("S1")],
            SemiLinearSet::singleton(IntVec::from(vec![3, 6]))
        );
        assert_eq!(
            analysis.values[&NonTerminal::new("S2")],
            SemiLinearSet::singleton(IntVec::from(vec![2, 4]))
        );
    }

    #[test]
    fn exactness_against_enumeration() {
        // Lemma 5.6 (sampled): the semi-linear set of the start symbol equals
        // the set of outputs of enumerated terms, in both directions up to a
        // sampling bound.
        let examples = ExampleSet::for_single_var("x", [1, 3]);
        let grammar = g1();
        let analysis = analyze(&grammar, &examples, true, true).unwrap();
        let start = analysis.start_value(&grammar);
        for term in grammar.terms_up_to_size(grammar.start(), 15, 200) {
            let out = term.eval_on(&examples).unwrap();
            let v = IntVec::from(out.as_int().unwrap().to_vec());
            assert!(
                start.contains(&v),
                "enumerated output {v} must be abstracted"
            );
        }
        // and some members of the abstraction are indeed outputs (spot check)
        assert!(start.contains(&IntVec::from(vec![3, 9])));
        assert!(start.contains(&IntVec::from(vec![6, 18])));
    }

    #[test]
    fn minus_grammars_must_be_rewritten_first() {
        let g = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .production("Start", Symbol::Minus, &["Start", "Start"])
            .production("Start", Symbol::Num(1), &[])
            .build()
            .unwrap();
        let examples = ExampleSet::for_single_var("x", [1]);
        assert!(analyze(&g, &examples, true, true).is_err());
        // after h(G) the analysis succeeds and captures e.g. 1 - 1 = 0, 1 - (1-1) = 1, …
        let h = sygus::rewrite::to_plus_form(&g).unwrap();
        let analysis = analyze(&h, &examples, true, true).unwrap();
        let start = &analysis.values[h.start()];
        assert!(start.contains(&IntVec::from(vec![1])));
        assert!(start.contains(&IntVec::from(vec![0])));
        assert!(start.contains(&IntVec::from(vec![-1])));
        assert!(start.contains(&IntVec::from(vec![5])));
    }

    #[test]
    fn stratified_and_monolithic_agree() {
        let examples = ExampleSet::for_single_var("x", [1, 2]);
        let a = analyze(&g1(), &examples, true, true).unwrap();
        let b = analyze(&g1(), &examples, false, true).unwrap();
        for nt in g1().nonterminals() {
            assert!(
                a.values[nt].sample_equivalent(&b.values[nt], 4),
                "stratified and monolithic solutions differ on {nt}"
            );
        }
    }

    #[test]
    fn missing_example_variable_is_an_error() {
        let examples = ExampleSet::for_single_var("y", [1]);
        assert!(analyze(&g1(), &examples, true, true).is_err());
    }
}
