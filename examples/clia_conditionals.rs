//! The CLIA worked example of Section 2: grammars with `IfThenElse`,
//! mutually-recursive Boolean and integer nonterminals, and the
//! SolveBool / SolveMutual / RemIf machinery of §6.
//!
//! The example also illustrates an interesting point uncovered by the exact
//! reproduction: with the two examples `x = 1, x = 2` used in the paper's
//! narrative, grammar G₂ *does* contain a consistent term
//! (`ite(0 < ite(x < 2, 0, 3x), 3x, 4x)`), so the exact procedure correctly
//! reports "realizable" and the CEGIS loop must produce a further example
//! (such as `x = 0`) before unrealizability of the full problem is proved.
//!
//! Run with `cargo run --example clia_conditionals`.

use logic::{LinearExpr, Var};
use nay::check::{check_unrealizable, Verdict};
use nay::clia;
use nay::Mode;
use semilinear::IntVec;
use sygus::{ExampleSet, GrammarBuilder, Problem, Sort, Spec, Symbol};

fn grammar_g2() -> sygus::Grammar {
    GrammarBuilder::new("Start")
        .nonterminal("Start", Sort::Int)
        .nonterminal("BExp", Sort::Bool)
        .nonterminal("Exp2", Sort::Int)
        .nonterminal("Exp3", Sort::Int)
        .nonterminal("X", Sort::Int)
        .nonterminal("N0", Sort::Int)
        .nonterminal("N2", Sort::Int)
        .production("Start", Symbol::IfThenElse, &["BExp", "Exp3", "Start"])
        .chain("Start", "Exp2")
        .chain("Start", "Exp3")
        .production("BExp", Symbol::LessThan, &["X", "N2"])
        .production("BExp", Symbol::LessThan, &["N0", "Start"])
        .production("BExp", Symbol::And, &["BExp", "BExp"])
        .production("Exp2", Symbol::Plus, &["X", "X", "Exp2"])
        .production("Exp2", Symbol::Num(0), &[])
        .production("Exp3", Symbol::Plus, &["X", "X", "X", "Exp3"])
        .production("Exp3", Symbol::Num(0), &[])
        .production("X", Symbol::Var("x".to_string()), &[])
        .production("N0", Symbol::Num(0), &[])
        .production("N2", Symbol::Num(2), &[])
        .build()
        .expect("G2 is well-formed")
}

fn main() {
    let spec = Spec::output_equals(
        LinearExpr::var(Var::new("x")).scale(2) + LinearExpr::constant(2),
        vec!["x".to_string()],
    );
    let problem = Problem::new("section2-clia", grammar_g2(), spec);

    // The exact CLIA analysis on E = ⟨1, 2⟩ (the paper's Eqns. (6)-(11)).
    let examples = ExampleSet::for_single_var("x", [1, 2]);
    let analysis = clia::analyze(problem.grammar(), &examples, true, true).expect("CLIA grammar");
    println!(
        "abstractions on E = ⟨1, 2⟩ (SolveMutual, {} outer iterations):",
        analysis.outer_iterations
    );
    for (nt, value) in &analysis.int_values {
        println!("  n({nt}) = {value}");
    }
    for (nt, value) in &analysis.bool_values {
        println!("  n({nt}) = {value}");
    }
    // Exp2 and Exp3 match §2: multiples of (2,4) and (3,6).
    assert!(
        analysis.int_values[&sygus::NonTerminal::new("Exp2")].contains(&IntVec::from(vec![2, 4]))
    );
    assert!(
        analysis.int_values[&sygus::NonTerminal::new("Exp3")].contains(&IntVec::from(vec![3, 6]))
    );

    let two = check_unrealizable(&problem, &examples, &Mode::default());
    println!("verdict on ⟨1, 2⟩: {:?}", two.verdict);
    assert_eq!(two.verdict, Verdict::Realizable);

    // Adding the example x = 0 (every term of G2 outputs 0 there, but the
    // spec demands 2) makes the problem provably unrealizable.
    let richer = ExampleSet::for_single_var("x", [1, 2, 0]);
    let three = check_unrealizable(&problem, &richer, &Mode::default());
    println!("verdict on ⟨1, 2, 0⟩: {:?}", three.verdict);
    assert_eq!(three.verdict, Verdict::Unrealizable);
    println!("the CLIA problem of §2 is unrealizable ✔");
}
