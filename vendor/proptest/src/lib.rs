//! Offline stand-in for the parts of the `proptest` crate this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the API surface the workspace's property tests need:
//!
//! * the [`strategy::Strategy`] trait with `prop_map` / `prop_recursive` /
//!   `boxed`,
//! * integer-range, [`strategy::Just`], tuple, and `prop_oneof!` strategies,
//! * `prop::collection::vec`,
//! * `any::<T>()` via a minimal [`Arbitrary`],
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_assert_ne!`] macros,
//! * [`test_runner::Config`] (`ProptestConfig::with_cases`).
//!
//! Unlike the real crate there is **no shrinking**: a failing case panics
//! with the generated inputs' `Debug` rendering and the case number, which
//! together with the deterministic per-case seeding is enough to reproduce.

#![forbid(unsafe_code)]

pub mod strategy;

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// An inclusive range of collection sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Generates a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner configuration and failure type.
pub mod test_runner {
    /// Mirror of `proptest::test_runner::Config`; only `cases` matters here.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// A failed property case (carried out of the test body by the
    /// `prop_assert*` macros).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// Minimal `Arbitrary`, enough to support `any::<T>()` for the primitive
/// types the workspace generates.
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type Strategy: strategy::Strategy<Value = Self>;
    /// The canonical strategy for the type.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for any value of an [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

impl Arbitrary for bool {
    type Strategy = strategy::BoolStrategy;
    fn arbitrary() -> Self::Strategy {
        strategy::BoolStrategy
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = std::ops::RangeInclusive<$t>;
            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, usize);

/// The glob-importable prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{any, Arbitrary};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of the `prop` module re-export inside the real prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests.
///
/// Supported form (the one the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(10))]
///     #[test]
///     fn my_prop(x in 0i64..10, v in prop::collection::vec(0..3usize, 2)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with $cfg; $($rest)*);
    };
    (@with $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::strategy::TestRng::deterministic(
                        0x5DEECE66D_u64
                            .wrapping_mul(case as u64 + 1)
                            .wrapping_add(0xB),
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(err) = outcome {
                        panic!("property failed at case {}: {}", case, err);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with $crate::test_runner::Config::default(); $($rest)*);
    };
}

/// `assert!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// `assert_ne!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right`\n  left: {:?}\n right: {:?}",
            left,
            right
        );
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vectors(x in -4i64..=4, v in prop::collection::vec(0usize..3, 1..4)) {
            prop_assert!((-4..=4).contains(&x));
            prop_assert!(!v.is_empty() && v.len() <= 3);
            prop_assert!(v.iter().all(|&e| e < 3));
        }

        #[test]
        fn oneof_map_and_recursion(n in prop_oneof![Just(1i64), (10i64..=20).prop_map(|v| -v)]) {
            prop_assert!(n == 1 || (-20..=-10).contains(&n));
        }
    }
}
