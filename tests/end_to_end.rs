//! Cross-crate integration tests: the paper's worked examples end to end,
//! agreement between the exact procedure, the enumerative ground truth and
//! the two approximate tools.

use enumerative::{EnumerationResult, Enumerator};
use logic::{LinearExpr, Var};
use nay::check::{check_unrealizable, Verdict};
use nay::{CegisOutcome, Mode, Nay};
use nope::{NopeSolver, NopeVerdict};
use sygus::{parser, ExampleSet, Problem, Spec};

const SECTION2_LIA: &str = r#"
  (set-logic LIA)
  (synth-fun f ((x Int)) Int
    ((Start Int) (S1 Int) (S2 Int) (S3 Int))
    ((Start Int ((+ S1 Start) 0))
     (S1 Int ((+ S2 S3)))
     (S2 Int ((+ S3 S3)))
     (S3 Int (x))))
  (declare-var x Int)
  (constraint (= (f x) (+ (* 2 x) 2)))
  (check-synth)
"#;

fn section2_problem() -> Problem {
    parser::parse_problem(SECTION2_LIA, "section2-lia").expect("parses")
}

#[test]
fn section2_lia_full_pipeline() {
    let problem = section2_problem();
    // Alg. 1 with one example
    let examples = ExampleSet::for_single_var("x", [1]);
    for mode in [
        Mode::default(),
        Mode::semi_linear_unstratified(),
        Mode::horn(),
    ] {
        let outcome = check_unrealizable(&problem, &examples, &mode);
        assert_eq!(
            outcome.verdict,
            Verdict::Unrealizable,
            "mode {} must prove the §2 LIA example",
            mode.name()
        );
    }
    // Alg. 2 end to end
    let (outcome, stats) = Nay::new().run(&problem);
    assert_eq!(outcome, CegisOutcome::Unrealizable);
    assert!(stats.gfa_checks >= 1);
    // nope baseline agrees
    let (nope_verdict, nope_stats) = NopeSolver::new().check(&problem, &examples);
    assert_eq!(nope_verdict, NopeVerdict::Unrealizable);
    assert_eq!(nope_stats.num_procedures, 4);
}

#[test]
fn exact_procedure_agrees_with_enumerative_ground_truth() {
    // On realizable example sets the exact procedure must say Realizable and
    // the enumerator must find a witness; on unrealizable ones the enumerator
    // must fail to find anything (within its bound).
    let problem = section2_problem();
    let enumerator = Enumerator::new().with_max_size(13);

    let realizable = ExampleSet::for_single_var("x", [2]); // 6 = 3·2 is producible
    assert_eq!(
        check_unrealizable(&problem, &realizable, &Mode::default()).verdict,
        Verdict::Realizable
    );
    match enumerator.solve(&problem, &realizable) {
        EnumerationResult::Found(term) => {
            assert!(problem.satisfied_on_examples(&term, &realizable).unwrap());
            assert!(problem.grammar().contains_term(&term));
        }
        other => panic!("a solution exists on x = 2 but the enumerator returned {other:?}"),
    }

    let unrealizable = ExampleSet::for_single_var("x", [1]);
    assert_eq!(
        check_unrealizable(&problem, &unrealizable, &Mode::default()).verdict,
        Verdict::Unrealizable
    );
    assert!(matches!(
        enumerator.solve(&problem, &unrealizable),
        EnumerationResult::NotFound { .. }
    ));
}

#[test]
fn verdicts_are_consistent_across_tools_on_benchmarks() {
    // naySL is exact; nayHorn and nope are sound: whenever they claim
    // unrealizability, naySL must agree.
    for bench in benchmarks::all()
        .into_iter()
        .filter(|b| b.num_examples() <= 2 && b.num_nonterminals() <= 3 && b.num_variables() <= 3)
    {
        let sl = check_unrealizable(&bench.problem, &bench.witness_examples, &Mode::default());
        let horn = check_unrealizable(&bench.problem, &bench.witness_examples, &Mode::horn());
        let (nope_verdict, _) = NopeSolver::new().check(&bench.problem, &bench.witness_examples);
        if horn.verdict == Verdict::Unrealizable {
            assert_eq!(
                sl.verdict,
                Verdict::Unrealizable,
                "{}: nayHorn claims unrealizable but naySL disagrees",
                bench.name
            );
        }
        if nope_verdict == NopeVerdict::Unrealizable {
            assert_eq!(
                sl.verdict,
                Verdict::Unrealizable,
                "{}: nope claims unrealizable but naySL disagrees",
                bench.name
            );
        }
        if let NopeVerdict::RealizableOnExamples(_) = nope_verdict {
            assert_ne!(
                sl.verdict,
                Verdict::Unrealizable,
                "{}: nope found a witness but naySL claims unrealizable",
                bench.name
            );
        }
    }
}

#[test]
fn gconst_incompleteness_example() {
    // Example 3.8: the problem is unrealizable, but every finite example set
    // is realizable, so Alg. 1 must return Realizable for any example set.
    let source = r#"
      (set-logic LIA)
      (synth-fun f ((x Int)) Int
        ((Start Int))
        ((Start Int ((+ Start Start) 1))))
      (declare-var x Int)
      (constraint (> (f x) x))
      (check-synth)
    "#;
    let problem = parser::parse_problem(source, "gconst").expect("parses");
    for examples in [
        ExampleSet::for_single_var("x", [0]),
        ExampleSet::for_single_var("x", [5, 17]),
        ExampleSet::for_single_var("x", [-3, 40, 100]),
    ] {
        assert_eq!(
            check_unrealizable(&problem, &examples, &Mode::default()).verdict,
            Verdict::Realizable,
            "sy_E is realizable for every finite E (Lemma 3.7)"
        );
    }
}

#[test]
fn scaling_family_is_uniformly_unrealizable() {
    for n in 1..=6 {
        let problem = benchmarks::scaling_problem(n);
        let examples = ExampleSet::for_single_var("x", [1, 2]);
        assert_eq!(
            check_unrealizable(&problem, &examples, &Mode::default()).verdict,
            Verdict::Unrealizable,
            "scaling problem with n = {n}"
        );
    }
}

#[test]
fn synthesis_succeeds_on_realizable_problems() {
    // A problem with a solution: f(x) = x + 1 over sums of x and 1.
    let source = r#"
      (set-logic LIA)
      (synth-fun f ((x Int)) Int
        ((Start Int))
        ((Start Int (x 1 (+ Start Start)))))
      (declare-var x Int)
      (constraint (= (f x) (+ x 1)))
      (check-synth)
    "#;
    let problem = parser::parse_problem(source, "xplus1").expect("parses");
    let (outcome, _) = Nay::new().run(&problem);
    match outcome {
        CegisOutcome::Solution(term) => {
            assert!(problem.grammar().contains_term(&term));
            let spec: &Spec = problem.spec();
            for x in [-10i64, 0, 4, 99] {
                let input = sygus::Example::from_pairs([("x", x)]);
                assert!(spec.holds_value(&input, term.eval(&input).unwrap()));
            }
        }
        other => panic!("expected a solution, got {other:?}"),
    }
}

#[test]
fn horn_encoding_matches_grammar_shape() {
    let problem = section2_problem();
    let examples = ExampleSet::for_single_var("x", [1, 2]);
    let system = chc::encode::encode(problem.grammar(), &examples, problem.spec());
    assert_eq!(
        system.predicates.len(),
        problem.grammar().num_nonterminals()
    );
    assert_eq!(system.num_clauses(), problem.grammar().num_productions());
    let text = system.to_string();
    assert!(text.contains("(query"));
    assert!(text.contains("P_Start"));
}

#[test]
fn spec_api_round_trip() {
    let spec = Spec::output_equals(
        LinearExpr::var(Var::new("x")).scale(3),
        vec!["x".to_string()],
    );
    let problem = Problem::new("triple", benchmarks::scaling_grammar(3), spec);
    // the scaling grammar produces multiples of 3x, so f(x) = 3x is realizable
    let examples = ExampleSet::for_single_var("x", [1, 2, 5]);
    assert_eq!(
        check_unrealizable(&problem, &examples, &Mode::default()).verdict,
        Verdict::Realizable
    );
}
