; realizable_xplus2 — exported by `cargo run --example export_corpus`
(set-logic LIA)
(synth-fun f ((x Int)) Int
  ((Start Int (x 1 (+ Start Start)))))
(declare-var x Int)
(constraint (= (f x) (+ x 2)))
(check-synth)
