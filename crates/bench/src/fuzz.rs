//! The `reproduce gen` / `reproduce fuzz` front-ends: corpus-scale
//! workload production and the differential fuzzing sweep.
//!
//! `run_gen` materializes a deterministic generated corpus on disk;
//! `run_fuzz` streams generated problems straight through the solving
//! engines and aggregates the outcome 1BRC-style — a single pass, one
//! small accumulator per (family, tool) pair, nothing per-instance
//! retained — into the same schema-versioned [`Report`] the rest of the
//! harness speaks. Every instance is also pushed through the three
//! soundness oracles of [`gen::oracle`] plus the print→parse round-trip
//! gate; any violation fails the sweep loudly with the reproducing seed
//! and the offending `.sl` text.

use gen::{
    check_instance, roundtrip_violation, Claim, EngineClaim, Family, GenConfig, GeneratedInstance,
    ProblemStream, Violation,
};
use portfolio::{
    solve_nay, solve_nope, Cancel, EngineOutcome, NopeEngine, Portfolio, SolveVerdict,
};
use runner::{run_jobs, Entry, Job, JobStatus, PoolConfig, Report};
use std::collections::BTreeMap;
use std::path::Path;
use std::time::{Duration, Instant};

/// Which engines a fuzz sweep drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FuzzEngine {
    /// Both engines, independently to completion (the strongest
    /// differential signal: neither engine is cancelled).
    Both,
    /// The portfolio race (first definitive verdict wins; the loser's
    /// claim is opportunistic — `cancelled` maps to no claim).
    Race,
    /// Only the exact engine.
    Nay,
    /// Only the approximate engine.
    Nope,
}

impl FuzzEngine {
    /// The CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            FuzzEngine::Both => "both",
            FuzzEngine::Race => "race",
            FuzzEngine::Nay => "nay",
            FuzzEngine::Nope => "nope",
        }
    }

    /// Inverse of [`FuzzEngine::name`].
    pub fn parse(s: &str) -> Option<FuzzEngine> {
        match s {
            "both" => Some(FuzzEngine::Both),
            "race" => Some(FuzzEngine::Race),
            "nay" => Some(FuzzEngine::Nay),
            "nope" => Some(FuzzEngine::Nope),
            _ => None,
        }
    }
}

/// Configuration of a `gen` or `fuzz` run.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// How many (deduplicated) instances to generate.
    pub count: usize,
    /// The base seed; fixes the whole workload byte-for-byte.
    pub seed: u64,
    /// Which engines to drive (`fuzz` only).
    pub engine: FuzzEngine,
    /// Worker threads for the engine pool (`fuzz` with `both`/solo).
    pub jobs: usize,
    /// Per-engine wall-clock budget.
    pub timeout: Duration,
    /// Restrict generation to these families (`None` = the full
    /// catalogue).
    pub families: Option<Vec<Family>>,
    /// Whether the portfolio's static presolve stage runs in front of
    /// each race (`fuzz` with `race` only; default: enabled).
    pub presolve: bool,
}

/// The default per-engine budget of a fuzz sweep. Deliberately much
/// tighter than [`crate::DEFAULT_SOLVE_TIMEOUT`]: fuzzing is a throughput
/// tool, a handful of adversarial instances (the generator *does* produce
/// CLIA instances whose exact-engine cost explodes with the example
/// count) must cost seconds, not minutes, and a timeout is just an
/// `unknown` claim — never an oracle violation.
pub const DEFAULT_FUZZ_TIMEOUT: Duration = Duration::from_secs(10);

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            count: 200,
            seed: 7,
            engine: FuzzEngine::Both,
            jobs: 1,
            timeout: DEFAULT_FUZZ_TIMEOUT,
            families: None,
            presolve: true,
        }
    }
}

impl FuzzConfig {
    fn gen_config(&self) -> GenConfig {
        let config = GenConfig::new(self.seed);
        match &self.families {
            Some(families) => config.with_families(families.clone()),
            None => config,
        }
    }
}

/// Writes `count` generated instances into `dir` (see
/// [`gen::write_corpus`]) and returns the per-family emission counts.
///
/// # Errors
/// Propagates I/O errors.
pub fn run_gen(dir: &Path, config: &FuzzConfig) -> Result<BTreeMap<&'static str, usize>, String> {
    let instances = gen::write_corpus(dir, config.count, config.gen_config())?;
    let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    for instance in &instances {
        *counts.entry(instance.family.name()).or_insert(0) += 1;
    }
    Ok(counts)
}

/// The 1BRC-style accumulator: one per (family, tool), folded as results
/// stream out of the pool.
#[derive(Clone, Debug, Default)]
struct FamilyAgg {
    instances: u64,
    verdicts: BTreeMap<String, u64>,
    worst_status: Option<JobStatus>,
    iterations: u64,
    millis: f64,
    tainted: bool,
    peak_arena: usize,
}

impl FamilyAgg {
    fn fold(
        &mut self,
        status: JobStatus,
        verdict: &str,
        iterations: u64,
        millis: f64,
        tainted: bool,
        arena_terms: usize,
    ) {
        self.instances += 1;
        *self.verdicts.entry(verdict.to_string()).or_insert(0) += 1;
        self.worst_status = Some(self.worst_status.map_or(status, |w| w.worst(status)));
        self.iterations += iterations;
        self.millis += millis;
        self.tainted |= tainted;
        self.peak_arena = self.peak_arena.max(arena_terms);
    }

    /// The verdict-distribution string, e.g.
    /// `realizable=12;unknown=3;unrealizable=85` (sorted by verdict name).
    /// Deterministic for a fixed seed only while every job stays within
    /// the wall-clock budget: timed-out and crashed jobs land in buckets
    /// named after their status, which depends on the machine's speed —
    /// so fuzz reports from different machines are not byte-comparable.
    fn verdict_distribution(&self) -> String {
        self.verdicts
            .iter()
            .map(|(v, n)| format!("{v}={n}"))
            .collect::<Vec<_>>()
            .join(";")
    }

    fn entry(&self, family: &str, tool: &str) -> Entry {
        let definitive: u64 = self
            .verdicts
            .iter()
            .filter(|(v, _)| v.as_str() == "unrealizable" || v.as_str() == "realizable")
            .map(|(_, n)| n)
            .sum();
        Entry {
            benchmark: format!("gen/{family}"),
            tool: tool.to_string(),
            status: self.worst_status.unwrap_or(JobStatus::Ok),
            verdict: self.verdict_distribution(),
            // For an aggregate row, "proved" means fully classified: every
            // instance of the family got a definitive verdict.
            proved: definitive == self.instances,
            iterations: self.iterations,
            millis: self.millis,
            tainted: self.tainted,
            family: family.to_string(),
        }
    }
}

/// One row of the human-readable fuzz table.
#[derive(Clone, Debug)]
pub struct FuzzRow {
    /// Family name.
    pub family: &'static str,
    /// Tool (engine) name.
    pub tool: String,
    /// Instances attacked.
    pub instances: u64,
    /// Verdict distribution string.
    pub verdicts: String,
    /// Total engine milliseconds.
    pub millis: f64,
    /// Largest per-instance term-arena size seen for this (family, tool).
    pub peak_arena: usize,
}

/// What a fuzz sweep produced: the aggregate report, the human-readable
/// rows, and every oracle violation found.
#[derive(Clone, Debug)]
pub struct FuzzOutcome {
    /// Per-(family, tool) aggregate report (suite `fuzz-<engine>`).
    pub report: Report,
    /// The table rows, in report order.
    pub rows: Vec<FuzzRow>,
    /// All violations; an empty list is a clean sweep.
    pub violations: Vec<Violation>,
    /// Total instances generated and attacked (may fall short of the
    /// requested count when a restricted family's distinct-instance space
    /// is exhausted).
    pub instances: usize,
    /// Wall-clock milliseconds of the whole sweep (generation, solving
    /// and oracle checks).
    pub wall_millis: f64,
}

fn claim_of(verdict: SolveVerdict) -> Claim {
    match verdict {
        SolveVerdict::Unrealizable => Claim::Unrealizable,
        SolveVerdict::Realizable => Claim::Realizable,
        SolveVerdict::Unknown | SolveVerdict::Cancelled => Claim::Unknown,
    }
}

/// Runs the differential fuzzing sweep. See the module docs; this is the
/// engine behind `reproduce fuzz`.
pub fn run_fuzz(config: &FuzzConfig) -> FuzzOutcome {
    let sweep_started = Instant::now();
    let mut aggs: BTreeMap<(&'static str, String), FamilyAgg> = BTreeMap::new();
    let mut violations: Vec<Violation> = Vec::new();
    let mut stream = ProblemStream::new(config.gen_config());
    let mut remaining = config.count;

    // Stream in pool-sized batches: per batch the pool runs (instance ×
    // engine) jobs, the results fold into the accumulators, and the batch
    // is dropped — memory stays bounded by the batch size, not the sweep.
    let batch_size = (config.jobs.max(1) * 8).max(16);
    let mut attacked = 0usize;
    while remaining > 0 {
        let batch: Vec<GeneratedInstance> =
            stream.by_ref().take(remaining.min(batch_size)).collect();
        if batch.is_empty() {
            break; // the configured families' instance space is exhausted
        }
        remaining -= batch.len();
        attacked += batch.len();

        // Round-trip gate: generated text must parse back to identical
        // content before we spend engine time on it.
        for instance in &batch {
            if let Some(violation) = roundtrip_violation(instance) {
                violations.push(violation);
            }
        }

        match config.engine {
            FuzzEngine::Race => {
                // The portfolio brings its own two-worker pool per race.
                let portfolio = Portfolio::new()
                    .with_timeout(config.timeout)
                    .with_presolve(config.presolve);
                for instance in &batch {
                    let race = portfolio.race(&instance.problem);
                    let mut claims = vec![
                        EngineClaim::new(
                            "race/nay",
                            if race.nay.status == JobStatus::Ok {
                                claim_of(race.nay.verdict)
                            } else {
                                Claim::Unknown
                            },
                            (race.nay.verdict == SolveVerdict::Realizable)
                                .then(|| race.solution.clone())
                                .flatten(),
                        ),
                        EngineClaim::new(
                            "race/nope",
                            if race.nope.status == JobStatus::Ok {
                                claim_of(race.nope.verdict)
                            } else {
                                Claim::Unknown
                            },
                            None,
                        ),
                    ];
                    if let Some(stage) = &race.presolve {
                        // The presolve's claim goes through the same
                        // by-construction oracle as the engines': a
                        // statically-settled verdict that contradicts the
                        // generator's ground truth is a violation.
                        claims.push(EngineClaim::new(
                            "race/presolve",
                            claim_of(stage.verdict),
                            (stage.verdict == SolveVerdict::Realizable)
                                .then(|| race.solution.clone())
                                .flatten(),
                        ));
                    }
                    violations.extend(check_instance(instance, &claims));
                    let family = instance.family.name();
                    let race_status = race.nay.status.worst(race.nope.status);
                    aggs.entry((family, "race".into())).or_default().fold(
                        race_status,
                        race.verdict.name(),
                        race.nay.iterations + race.nope.iterations,
                        race.wall_millis,
                        race.nay.tainted || race.nope.tainted,
                        race.nay.arena_terms.max(race.nope.arena_terms),
                    );
                    for side in [&race.nay, &race.nope] {
                        aggs.entry((family, format!("race/{}", side.engine)))
                            .or_default()
                            .fold(
                                side.status,
                                side.verdict.name(),
                                side.iterations,
                                side.millis,
                                side.tainted,
                                side.arena_terms,
                            );
                    }
                    if let Some(stage) = &race.presolve {
                        // The `race/presolve` aggregate's verdict
                        // distribution is the per-family `presolved`
                        // count: its definitive buckets are exactly the
                        // instances the analyzer settled statically.
                        aggs.entry((family, "race/presolve".into()))
                            .or_default()
                            .fold(
                                JobStatus::Ok,
                                stage.verdict.name(),
                                0,
                                stage.millis,
                                false,
                                0,
                            );
                    }
                }
            }
            FuzzEngine::Both | FuzzEngine::Nay | FuzzEngine::Nope => {
                let tools: &[&str] = match config.engine {
                    FuzzEngine::Both => &["nay", "nope"],
                    FuzzEngine::Nay => &["nay"],
                    _ => &["nope"],
                };
                // One cancel token per batch: a job that exceeds the
                // budget is abandoned (not killed) by the pool, so the
                // token is tripped once the batch returns and the
                // abandoned engine exits at its next iteration poll
                // instead of burning CPU under the rest of the sweep.
                let cancel = Cancel::new();
                let pairs: Vec<(&GeneratedInstance, &str)> = batch
                    .iter()
                    .flat_map(|i| tools.iter().map(move |&t| (i, t)))
                    .collect();
                let jobs: Vec<Job<EngineOutcome>> = pairs
                    .iter()
                    .map(|(instance, tool)| {
                        let problem = instance.problem.clone();
                        let tool = *tool;
                        let cancel = cancel.clone();
                        Job::new(format!("{}::{tool}", instance.name()), move || match tool {
                            "nay" => solve_nay(&problem, &cancel, &nay::Nay::default()),
                            _ => solve_nope(&problem, &cancel, &NopeEngine::default()),
                        })
                    })
                    .collect();
                let pool = PoolConfig {
                    jobs: config.jobs.max(1),
                    timeout: Some(config.timeout),
                };
                let results = run_jobs(jobs, &pool);
                cancel.cancel();

                // Fold results and assemble per-instance claims (results
                // come back in input order: `tools.len()` consecutive
                // results per instance).
                for (instance, chunk) in batch.iter().zip(results.chunks(tools.len())) {
                    let mut claims = Vec::new();
                    for (tool, result) in tools.iter().zip(chunk) {
                        let millis = result.elapsed.as_secs_f64() * 1000.0;
                        let (claim, verdict_name, iterations, arena_terms, witness) =
                            match &result.output {
                                Some(outcome) if result.status == JobStatus::Ok => (
                                    claim_of(outcome.verdict),
                                    outcome.verdict.name(),
                                    outcome.iterations,
                                    outcome.arena_terms,
                                    outcome.solution.clone(),
                                ),
                                // Timed-out/crashed jobs claim nothing and
                                // land in a bucket named after their status.
                                _ => (Claim::Unknown, result.status.as_str(), 0, 0, None),
                            };
                        claims.push(EngineClaim::new(*tool, claim, witness));
                        aggs.entry((instance.family.name(), tool.to_string()))
                            .or_default()
                            .fold(
                                result.status,
                                verdict_name,
                                iterations,
                                millis,
                                result.tainted,
                                arena_terms,
                            );
                    }
                    violations.extend(check_instance(instance, &claims));
                }
            }
        }
    }

    // The aggs map iterates in (family, tool) order, which matches the
    // report's canonical (benchmark, tool) order because every benchmark
    // name is `gen/<family>`.
    let entries: Vec<Entry> = aggs
        .iter()
        .map(|((family, tool), agg)| agg.entry(family, tool))
        .collect();
    let rows: Vec<FuzzRow> = aggs
        .iter()
        .map(|((family, tool), agg)| FuzzRow {
            family,
            tool: tool.clone(),
            instances: agg.instances,
            verdicts: agg.verdict_distribution(),
            millis: agg.millis,
            peak_arena: agg.peak_arena,
        })
        .collect();
    let report = Report::new(format!("fuzz-{}", config.engine.name()), entries);
    FuzzOutcome {
        report,
        rows,
        violations,
        instances: attacked,
        wall_millis: sweep_started.elapsed().as_secs_f64() * 1000.0,
    }
}

/// What the presolve differential sweep found.
#[derive(Clone, Debug)]
pub struct PresolveDiffOutcome {
    /// Verdict flips: instances where racing with the presolve enabled
    /// produced a different race verdict than racing without it. Any entry
    /// here is a soundness bug in the presolve (or an engine); the sweep
    /// must fail.
    pub flips: Vec<String>,
    /// Per family: instances the presolve settled statically.
    pub presolved: BTreeMap<&'static str, u64>,
    /// Per family: instances attacked.
    pub instances: BTreeMap<&'static str, u64>,
    /// Aggregate report (suite `presolve-diff`): per family one
    /// `race+presolve` and one `race-presolve` entry with the two verdict
    /// distributions, plus a `presolve` entry whose `iterations` field is
    /// the family's `presolved` count.
    pub report: Report,
    /// Wall-clock milliseconds of the whole sweep.
    pub wall_millis: f64,
}

/// Runs every generated instance through the portfolio twice — presolve
/// enabled and disabled — and diffs the race verdicts. The presolve is
/// verdict-preserving by construction (sound verdicts, recheck gate), so
/// any flip is a bug; this sweep is the empirical check of that guarantee,
/// and the engine behind `reproduce presolve-diff` and the CI `analyze`
/// job.
pub fn run_presolve_diff(config: &FuzzConfig) -> PresolveDiffOutcome {
    let sweep_started = Instant::now();
    let mut flips: Vec<String> = Vec::new();
    let mut presolved: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut instances: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut aggs: BTreeMap<(&'static str, &'static str), FamilyAgg> = BTreeMap::new();
    let with_presolve = Portfolio::new()
        .with_timeout(config.timeout)
        .with_presolve(true);
    let without_presolve = Portfolio::new()
        .with_timeout(config.timeout)
        .with_presolve(false);

    let mut stream = ProblemStream::new(config.gen_config());
    for instance in stream.by_ref().take(config.count) {
        let family = instance.family.name();
        *instances.entry(family).or_insert(0) += 1;
        let on = with_presolve.race(&instance.problem);
        let off = without_presolve.race(&instance.problem);
        // A sound presolve may *add* a definitive verdict where the
        // engines said unknown (that is its whole point on hard
        // instances), but it may never contradict a definitive engine
        // verdict — that is the flip this sweep hunts.
        let contradiction = on.verdict != off.verdict
            && on.verdict != SolveVerdict::Unknown
            && off.verdict != SolveVerdict::Unknown;
        let engines_lost_verdict =
            on.verdict == SolveVerdict::Unknown && off.verdict != SolveVerdict::Unknown;
        if contradiction || engines_lost_verdict {
            flips.push(format!(
                "{}: race verdict `{}` with presolve vs `{}` without (seed {})",
                instance.name(),
                on.verdict.name(),
                off.verdict.name(),
                instance.seed,
            ));
        }
        if on.winner == Some("presolve") {
            *presolved.entry(family).or_insert(0) += 1;
        }
        aggs.entry((family, "race+presolve")).or_default().fold(
            on.nay.status.worst(on.nope.status),
            on.verdict.name(),
            on.nay.iterations + on.nope.iterations,
            on.wall_millis,
            on.nay.tainted || on.nope.tainted,
            on.nay.arena_terms.max(on.nope.arena_terms),
        );
        aggs.entry((family, "race-presolve")).or_default().fold(
            off.nay.status.worst(off.nope.status),
            off.verdict.name(),
            off.nay.iterations + off.nope.iterations,
            off.wall_millis,
            off.nay.tainted || off.nope.tainted,
            off.nay.arena_terms.max(off.nope.arena_terms),
        );
    }

    let mut entries: Vec<Entry> = aggs
        .iter()
        .map(|((family, tool), agg)| agg.entry(family, tool))
        .collect();
    for (family, n) in &instances {
        entries.push(Entry {
            benchmark: format!("gen/{family}"),
            tool: "presolve".into(),
            status: JobStatus::Ok,
            verdict: format!("presolved={}", presolved.get(family).copied().unwrap_or(0)),
            proved: presolved.get(family).copied().unwrap_or(0) > 0,
            iterations: presolved.get(family).copied().unwrap_or(0),
            millis: 0.0,
            tainted: false,
            family: family.to_string(),
        });
        debug_assert!(*n > 0);
    }
    entries.sort_by(|a, b| (&a.benchmark, &a.tool).cmp(&(&b.benchmark, &b.tool)));
    PresolveDiffOutcome {
        flips,
        presolved,
        instances,
        report: Report::new("presolve-diff", entries),
        wall_millis: sweep_started.elapsed().as_secs_f64() * 1000.0,
    }
}

/// Renders the presolve differential summary.
pub fn render_presolve_diff(outcome: &PresolveDiffOutcome, config: &FuzzConfig) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# presolve-diff — count: {}, seed: {}",
        config.count, config.seed
    );
    let _ = writeln!(
        out,
        "{:<16} {:>6} {:>10}  verdicts with presolve | without",
        "family", "n", "presolved"
    );
    for (family, n) in &outcome.instances {
        let dist = |tool: &str| {
            outcome
                .report
                .entries
                .iter()
                .find(|e| e.family == *family && e.tool == tool)
                .map(|e| e.verdict.clone())
                .unwrap_or_default()
        };
        let _ = writeln!(
            out,
            "{:<16} {:>6} {:>10}  {} | {}",
            family,
            n,
            outcome.presolved.get(family).copied().unwrap_or(0),
            dist("race+presolve"),
            dist("race-presolve"),
        );
    }
    let total_presolved: u64 = outcome.presolved.values().sum();
    let total: u64 = outcome.instances.values().sum();
    let _ = writeln!(
        out,
        "{total} instance(s), {total_presolved} presolved, {} verdict flip(s); wall-clock {:.1} ms",
        outcome.flips.len(),
        outcome.wall_millis
    );
    out
}

/// Renders the human-readable fuzz table, ending with a summary line
/// carrying the sweep's total wall clock and the peak term-arena size per
/// family (maximum across that family's tools).
pub fn render_fuzz(outcome: &FuzzOutcome, config: &FuzzConfig) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# fuzz — engine: {}, count: {}, seed: {}",
        config.engine.name(),
        config.count,
        config.seed
    );
    let _ = writeln!(
        out,
        "{:<16} {:<10} {:>6} {:>12} {:>11}  verdicts",
        "family", "tool", "n", "millis", "peak-arena"
    );
    for row in &outcome.rows {
        let _ = writeln!(
            out,
            "{:<16} {:<10} {:>6} {:>12.1} {:>11}  {}",
            row.family, row.tool, row.instances, row.millis, row.peak_arena, row.verdicts
        );
    }
    let mut family_peaks: BTreeMap<&str, usize> = BTreeMap::new();
    for row in &outcome.rows {
        let peak = family_peaks.entry(row.family).or_insert(0);
        *peak = (*peak).max(row.peak_arena);
    }
    let peaks = family_peaks
        .iter()
        .map(|(family, peak)| format!("{family}={peak}"))
        .collect::<Vec<_>>()
        .join(" ");
    let _ = writeln!(
        out,
        "{} instance(s), {} oracle violation(s); wall-clock {:.1} ms; peak term-arena: {}",
        outcome.instances,
        outcome.violations.len(),
        outcome.wall_millis,
        if peaks.is_empty() {
            "-".to_string()
        } else {
            peaks
        }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(engine: FuzzEngine) -> FuzzConfig {
        FuzzConfig {
            count: 12,
            seed: 7,
            engine,
            jobs: 1,
            timeout: Duration::from_secs(120),
            families: None,
            presolve: true,
        }
    }

    #[test]
    fn both_engine_sweep_is_clean_and_aggregates_per_family() {
        let config = quick_config(FuzzEngine::Both);
        let outcome = run_fuzz(&config);
        assert!(
            outcome.violations.is_empty(),
            "soundness violations: {:#?}",
            outcome.violations
        );
        // 12 instances round-robin over 5 families: every family appears,
        // with one entry per engine.
        let families = outcome.report.family_aggregates();
        assert_eq!(families.len(), Family::ALL.len());
        for entry in &outcome.report.entries {
            assert!(entry.benchmark.starts_with("gen/"));
            assert!(!entry.family.is_empty());
            assert!(entry.tool == "nay" || entry.tool == "nope");
        }
        let total_instances: u64 = outcome.rows.iter().map(|r| r.instances).sum();
        assert_eq!(total_instances, 12 * 2, "one row fold per engine run");
        // The sweep is deterministic: same config, same canonical report.
        let again = run_fuzz(&config);
        assert_eq!(
            again.report.canonicalized().to_json(),
            outcome.report.canonicalized().to_json()
        );
    }

    #[test]
    fn race_engine_sweep_is_clean() {
        let outcome = run_fuzz(&quick_config(FuzzEngine::Race));
        assert!(
            outcome.violations.is_empty(),
            "soundness violations: {:#?}",
            outcome.violations
        );
        let tools: std::collections::BTreeSet<&str> = outcome
            .report
            .entries
            .iter()
            .map(|e| e.tool.as_str())
            .collect();
        assert!(tools.contains("race"));
        assert!(tools.contains("race/nay"));
        assert!(tools.contains("race/nope"));
        assert!(tools.contains("race/presolve"));
    }

    #[test]
    fn presolve_diff_sweep_has_no_flips() {
        let config = quick_config(FuzzEngine::Race);
        let outcome = run_presolve_diff(&config);
        assert!(
            outcome.flips.is_empty(),
            "verdict flips: {:#?}",
            outcome.flips
        );
        assert_eq!(outcome.report.suite, "presolve-diff");
        let total: u64 = outcome.instances.values().sum();
        assert_eq!(total, config.count as u64);
        let rendered = render_presolve_diff(&outcome, &config);
        assert!(rendered.contains("presolved"));
        assert!(rendered.contains("0 verdict flip(s)"));
    }

    #[test]
    fn family_restriction_and_solo_engines_work() {
        let config = FuzzConfig {
            families: Some(vec![Family::ConstSum]),
            ..quick_config(FuzzEngine::Nope)
        };
        let outcome = run_fuzz(&config);
        assert!(outcome.violations.is_empty(), "{:#?}", outcome.violations);
        assert!(outcome
            .report
            .entries
            .iter()
            .all(|e| e.family == "const_sum" && e.tool == "nope"));
        let rendered = render_fuzz(&outcome, &config);
        assert!(rendered.contains("const_sum"));
        assert!(rendered.contains("0 oracle violation(s)"));
    }

    #[test]
    fn fuzz_engine_names_round_trip() {
        for engine in [
            FuzzEngine::Both,
            FuzzEngine::Race,
            FuzzEngine::Nay,
            FuzzEngine::Nope,
        ] {
            assert_eq!(FuzzEngine::parse(engine.name()), Some(engine));
        }
        assert_eq!(FuzzEngine::parse("cvc5"), None);
    }
}
