//! Algorithm 2: the CEGIS loop with random examples (§7).
//!
//! The paper runs two processes in parallel: ① the enumerative synthesizer
//! ESolver looking for a solution of `sy_E`, and ② the grammar-flow-analysis
//! unrealizability check on `E ∪ E_r`, where `E_r` is a growing set of
//! *temporary* random examples used when GFA says "realizable" but no
//! candidate is available yet. This reproduction interleaves the two
//! processes deterministically in a single thread:
//!
//! 1. run the unrealizability check on `E ∪ E_r`; if it returns
//!    *unrealizable*, stop — the SyGuS problem is unrealizable (Lemma 3.5);
//! 2. otherwise ask the enumerator for a candidate consistent with `E`;
//!    * if the enumerator proves `sy_E` has no solution at all (search-space
//!      exhaustion), stop with *unrealizable*;
//!    * if a candidate is found, verify it against the full specification:
//!      a counterexample extends `E` and a new CEGIS iteration starts; a
//!      verified candidate is returned as a solution;
//!    * if the enumerator runs out of budget, add a temporary random example
//!      to `E_r` and go back to step 1.

use crate::check::{check_unrealizable, Verdict};
use crate::modes::Mode;
use crate::verifier::{verify, Verification};
use enumerative::{Enumerator, IdEnumerationResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use runner::Cancel;
use std::time::{Duration, Instant};
use sygus::{Example, ExampleSet, Problem, Term, TermArena};

/// The final outcome of the CEGIS loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CegisOutcome {
    /// The SyGuS problem has no solution.
    Unrealizable,
    /// A term of `L(G)` satisfying the specification on all inputs.
    Solution(Term),
    /// The loop exhausted its iteration budget without a verdict.
    Unknown,
    /// The loop observed a tripped [`Cancel`] token and stopped early
    /// (portfolio racing: the other engine answered first).
    Cancelled,
}

impl CegisOutcome {
    /// `true` if the outcome is `Unrealizable`.
    pub fn is_unrealizable(&self) -> bool {
        matches!(self, CegisOutcome::Unrealizable)
    }
}

/// Statistics collected across a CEGIS run (the quantities reported in
/// Tables 1 and 2).
#[derive(Clone, Debug, Default)]
pub struct CegisStats {
    /// Number of outer CEGIS iterations (counterexamples generated + 1).
    pub cegis_iterations: usize,
    /// Number of (permanent) examples in `E` when the loop stopped — the
    /// `|E|` column of the tables.
    pub num_examples: usize,
    /// Number of temporary random examples drawn.
    pub random_examples: usize,
    /// Number of GFA / Horn unrealizability checks issued.
    pub gfa_checks: usize,
    /// Total time spent inside the unrealizability checks.
    pub check_time: Duration,
    /// Total wall-clock time of the run.
    pub total_time: Duration,
    /// Size of the final abstraction of the start symbol.
    pub final_abstraction_size: usize,
    /// Number of distinct terms interned in the run's [`TermArena`] when
    /// the loop stopped — the enumerator's candidate pool, shared across
    /// all CEGIS iterations (the arena only grows, so this is the peak).
    pub arena_terms: usize,
}

/// The CEGIS driver (the `nay` tool of §7).
#[derive(Clone, Debug)]
pub struct Nay {
    mode: Mode,
    enumerator: Enumerator,
    max_cegis_iterations: usize,
    max_random_examples: usize,
    random_range: (i64, i64),
    seed: u64,
}

impl Default for Nay {
    fn default() -> Self {
        Nay {
            mode: Mode::default(),
            enumerator: Enumerator::new().with_max_size(12),
            max_cegis_iterations: 12,
            max_random_examples: 4,
            random_range: (-50, 50),
            seed: 0xC0FFEE,
        }
    }
}

impl Nay {
    /// Creates a driver with the default configuration (naySL mode).
    pub fn new() -> Self {
        Nay::default()
    }

    /// Selects the equation-solving mode (naySL or nayHorn).
    pub fn with_mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Replaces the enumerative synthesizer configuration.
    pub fn with_enumerator(mut self, enumerator: Enumerator) -> Self {
        self.enumerator = enumerator;
        self
    }

    /// Sets the maximal number of CEGIS iterations.
    pub fn with_max_iterations(mut self, n: usize) -> Self {
        self.max_cegis_iterations = n;
        self
    }

    /// Sets the random seed used to draw example inputs.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the range from which random example inputs are drawn
    /// (the paper uses `[-50, 50]`).
    pub fn with_random_range(mut self, lo: i64, hi: i64) -> Self {
        self.random_range = (lo, hi);
        self
    }

    fn random_example(&self, problem: &Problem, rng: &mut StdRng) -> Example {
        Example::from_pairs(problem.spec().input_vars().iter().map(|x| {
            (
                x.clone(),
                rng.gen_range(self.random_range.0..=self.random_range.1),
            )
        }))
    }

    /// Runs the CEGIS loop of Alg. 2 on the problem.
    pub fn run(&self, problem: &Problem) -> (CegisOutcome, CegisStats) {
        self.run_cancellable(problem, &Cancel::never())
    }

    /// [`Nay::run`] with cooperative cancellation: the token is polled at
    /// the top of every outer CEGIS iteration and before every inner
    /// unrealizability check, so a trip is observed within one loop
    /// iteration and the run returns [`CegisOutcome::Cancelled`].
    pub fn run_cancellable(
        &self,
        problem: &Problem,
        cancel: &Cancel,
    ) -> (CegisOutcome, CegisStats) {
        let started = Instant::now();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut stats = CegisStats::default();
        // One hash-consing arena for the whole run: candidates live as
        // `TermId`s across CEGIS iterations, so re-enumeration after a
        // counterexample reuses every subterm interned before instead of
        // rebuilding (and re-cloning) the trees.
        let mut arena = TermArena::new();
        let cancelled = |stats: &mut CegisStats, arena: &TermArena| {
            stats.total_time = started.elapsed();
            stats.arena_terms = arena.len();
            (CegisOutcome::Cancelled, stats.clone())
        };

        // line 1: initialise E with a random input example
        let mut examples = ExampleSet::new();
        examples.push(self.random_example(problem, &mut rng));

        for _ in 0..self.max_cegis_iterations {
            if cancel.is_cancelled() {
                return cancelled(&mut stats, &arena);
            }
            stats.cegis_iterations += 1;
            stats.num_examples = examples.len();

            // ② unrealizability side, with temporary random examples E_r
            let mut extended = examples.clone();
            let mut drew_random = 0usize;
            loop {
                if cancel.is_cancelled() {
                    return cancelled(&mut stats, &arena);
                }
                stats.gfa_checks += 1;
                let outcome = check_unrealizable(problem, &extended, &self.mode);
                stats.check_time += outcome.elapsed;
                stats.final_abstraction_size = outcome.abstraction_size;
                match outcome.verdict {
                    Verdict::Unrealizable => {
                        stats.num_examples = extended.len();
                        stats.total_time = started.elapsed();
                        stats.arena_terms = arena.len();
                        return (CegisOutcome::Unrealizable, stats);
                    }
                    Verdict::Realizable | Verdict::Unknown => {
                        // ① the synthesizer side works on the permanent E
                        // only; the candidate stays an interned id — the
                        // owned tree is materialized at the witness boundary
                        // (verification) below.
                        match self
                            .enumerator
                            .solve_with_arena(&mut arena, problem, &examples)
                        {
                            IdEnumerationResult::Found(candidate_id) => {
                                if cancel.is_cancelled() {
                                    return cancelled(&mut stats, &arena);
                                }
                                let candidate = arena.extract(candidate_id);
                                match verify(&candidate, problem.spec()) {
                                    Verification::Valid => {
                                        stats.total_time = started.elapsed();
                                        stats.arena_terms = arena.len();
                                        return (CegisOutcome::Solution(candidate), stats);
                                    }
                                    Verification::CounterExample(cex) => {
                                        if !examples.contains(&cex) {
                                            examples.push(cex);
                                        } else {
                                            // degenerate case: restart with a
                                            // fresh random example
                                            examples.push(self.random_example(problem, &mut rng));
                                        }
                                        break; // next CEGIS iteration
                                    }
                                    Verification::Unknown => {
                                        stats.total_time = started.elapsed();
                                        stats.arena_terms = arena.len();
                                        return (CegisOutcome::Unknown, stats);
                                    }
                                }
                            }
                            IdEnumerationResult::NotFound {
                                exhausted: true, ..
                            } => {
                                // the quotiented search space was exhausted:
                                // sy_E itself is unrealizable
                                stats.total_time = started.elapsed();
                                stats.arena_terms = arena.len();
                                return (CegisOutcome::Unrealizable, stats);
                            }
                            IdEnumerationResult::NotFound {
                                exhausted: false, ..
                            } => {
                                if drew_random >= self.max_random_examples {
                                    stats.total_time = started.elapsed();
                                    stats.arena_terms = arena.len();
                                    return (CegisOutcome::Unknown, stats);
                                }
                                drew_random += 1;
                                stats.random_examples += 1;
                                extended.push(self.random_example(problem, &mut rng));
                                continue;
                            }
                        }
                    }
                }
            }
        }
        stats.total_time = started.elapsed();
        stats.arena_terms = arena.len();
        (CegisOutcome::Unknown, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logic::{Formula, LinearExpr, Var};
    use sygus::{GrammarBuilder, Sort, Spec, Symbol};

    fn spec_2x_plus_2() -> Spec {
        Spec::output_equals(
            LinearExpr::var(Var::new("x")).scale(2) + LinearExpr::constant(2),
            vec!["x".to_string()],
        )
    }

    fn section2_lia() -> Problem {
        let grammar = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .nonterminal("S1", Sort::Int)
            .nonterminal("S2", Sort::Int)
            .nonterminal("S3", Sort::Int)
            .production("Start", Symbol::Plus, &["S1", "Start"])
            .production("Start", Symbol::Num(0), &[])
            .production("S1", Symbol::Plus, &["S2", "S3"])
            .production("S2", Symbol::Plus, &["S3", "S3"])
            .production("S3", Symbol::Var("x".to_string()), &[])
            .build()
            .unwrap();
        Problem::new("section2-lia", grammar, spec_2x_plus_2())
    }

    #[test]
    fn proves_unrealizability_end_to_end() {
        let (outcome, stats) = Nay::new().run(&section2_lia());
        assert_eq!(outcome, CegisOutcome::Unrealizable);
        assert!(stats.cegis_iterations >= 1);
        assert!(stats.gfa_checks >= 1);
        assert!(stats.num_examples >= 1);
    }

    #[test]
    fn finds_a_solution_when_one_exists() {
        // Start ::= x | x + Start | 1: f(x) = x + 2 is synthesizable.
        let grammar = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .production("Start", Symbol::Var("x".to_string()), &[])
            .production("Start", Symbol::Num(1), &[])
            .production("Start", Symbol::Plus, &["Start", "Start"])
            .build()
            .unwrap();
        let spec = Spec::output_equals(
            LinearExpr::var(Var::new("x")) + LinearExpr::constant(2),
            vec!["x".to_string()],
        );
        let problem = Problem::new("xplus2", grammar, spec);
        let (outcome, _) = Nay::new().run(&problem);
        match outcome {
            CegisOutcome::Solution(term) => {
                assert_eq!(verify(&term, problem.spec()), Verification::Valid);
                assert!(problem.grammar().contains_term(&term));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn candidate_pool_size_is_reported() {
        // a realizable problem forces at least one enumeration pass, so the
        // run's shared arena must have interned candidates
        let grammar = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .production("Start", Symbol::Var("x".to_string()), &[])
            .production("Start", Symbol::Num(1), &[])
            .production("Start", Symbol::Plus, &["Start", "Start"])
            .build()
            .unwrap();
        let spec = Spec::output_equals(
            LinearExpr::var(Var::new("x")) + LinearExpr::constant(2),
            vec!["x".to_string()],
        );
        let problem = Problem::new("xplus2", grammar, spec);
        let (outcome, stats) = Nay::new().run(&problem);
        assert!(matches!(outcome, CegisOutcome::Solution(_)));
        assert!(stats.arena_terms > 0, "{stats:?}");
    }

    #[test]
    fn horn_mode_end_to_end() {
        let (outcome, _) = Nay::new().with_mode(Mode::horn()).run(&section2_lia());
        assert_eq!(outcome, CegisOutcome::Unrealizable);
    }

    #[test]
    fn incomplete_on_gconst() {
        // Example 3.8: Gconst with spec f(x) > x is unrealizable but no CEGIS
        // algorithm can prove it — every sy_E is realizable. The loop must
        // therefore terminate with Unknown or a (spurious-looking but
        // example-correct) candidate... since candidates are verified against
        // the full spec, the only possible outcomes are Unknown.
        let grammar = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .production("Start", Symbol::Plus, &["Start", "Start"])
            .production("Start", Symbol::Num(1), &[])
            .build()
            .unwrap();
        let spec = Spec::new(
            Formula::gt(
                LinearExpr::var(Spec::output_var()),
                LinearExpr::var(Var::new("x")),
            ),
            vec!["x".to_string()],
            Sort::Int,
        );
        let problem = Problem::new("gconst", grammar, spec);
        let nay = Nay::new()
            .with_max_iterations(3)
            .with_random_range(-5, 5)
            .with_enumerator(Enumerator::new().with_max_size(9));
        let (outcome, _) = nay.run(&problem);
        assert_eq!(outcome, CegisOutcome::Unknown);
    }

    #[test]
    fn pre_cancelled_token_stops_before_any_work() {
        let cancel = Cancel::new();
        cancel.cancel();
        let (outcome, stats) = Nay::new().run_cancellable(&section2_lia(), &cancel);
        assert_eq!(outcome, CegisOutcome::Cancelled);
        // Observed at the top of the first outer iteration: no checks ran.
        assert_eq!(stats.cegis_iterations, 0);
        assert_eq!(stats.gfa_checks, 0);
    }

    #[test]
    fn deterministic_under_a_fixed_seed() {
        let a = Nay::new().with_seed(42).run(&section2_lia());
        let b = Nay::new().with_seed(42).run(&section2_lia());
        assert_eq!(a.0, b.0);
        assert_eq!(a.1.num_examples, b.1.num_examples);
    }
}
