//! Grammar-flow analysis (GFA) — the equation-solving engine of the paper.
//!
//! A GFA problem (Def. 4.2) associates with every nonterminal `X` of a
//! regular tree grammar an equation
//!
//! ```text
//! n(X₀) = ⊕_{X₀ → g(X₁,…,Xₖ)} ⟦g⟧♯(n(X₁), …, n(Xₖ))
//! ```
//!
//! over a complete combine semilattice. When the production functions are
//! built from the operations of a commutative idempotent ω-continuous
//! semiring — as is the case for semi-linear sets and LIA⁺ grammars (§5.3) —
//! the least solution can be computed *exactly* with Newton's method
//! ([`newton::solve`], Lemma 5.2). This crate provides:
//!
//! * [`Semiring`] — the algebraic interface (`0`, `1`, `⊕`, `⊗`, `⊛`),
//! * [`EquationSystem`] / [`Monomial`] — polynomial equation systems,
//! * [`kleene`] — plain Kleene iteration (for finite-height domains or as a
//!   bounded approximation),
//! * [`newton`] — Newtonian Program Analysis for commutative idempotent
//!   semirings, including the matrix-star (Lehmann/Floyd–Warshall–Kleene)
//!   solver for the linearised systems,
//! * [`strata`] — the stratification optimisation of §7: Tarjan SCCs of the
//!   variable-dependence graph, solved bottom-up in topological order,
//! * [`SemiLinearSemiring`] — the instantiation used by naySL.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod equations;
pub mod kleene;
pub mod newton;
mod semiring;
pub mod strata;

pub use equations::{EquationSystem, Monomial, Solution};
pub use semiring::{BoundedLattice, SemiLinearSemiring, Semiring};
