//! Command-line driver regenerating the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p bench --bin reproduce -- [EXPERIMENT] [--full]
//!
//! EXPERIMENT: all | table1-plus | table1-if | table2 | fig2 | fig3 | fig4 |
//!             fig5 | summary          (default: all)
//! --full:     run every benchmark instead of the quick subset
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = !args.iter().any(|a| a == "--full");
    let experiment = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .unwrap_or("all");

    let report = match experiment {
        "all" => bench::reproduce_all(quick),
        "table1-plus" => bench::reproduce_table1_plus(quick),
        "table1-if" => bench::reproduce_table1_if(quick),
        "table1" => format!(
            "{}\n{}",
            bench::reproduce_table1_plus(quick),
            bench::reproduce_table1_if(quick)
        ),
        "table2" => bench::reproduce_table2(quick),
        "fig2" => bench::reproduce_fig2(quick),
        "fig3" | "fig5" | "fig3-fig5" => bench::reproduce_fig3_fig5(quick),
        "fig4" => bench::reproduce_fig4(quick),
        "summary" => bench::reproduce_summary(quick),
        other => {
            eprintln!("unknown experiment `{other}`");
            eprintln!("expected one of: all, table1-plus, table1-if, table1, table2, fig2, fig3, fig4, fig5, summary");
            std::process::exit(2);
        }
    };
    println!("{report}");
}
