//! Regular tree grammars (Def. 3.1).

use crate::term::{Sort, Symbol, Term};
use crate::SygusError;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::Arc;

/// A nonterminal symbol of a regular tree grammar.
///
/// Nonterminals are compared by name; cloning is cheap.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NonTerminal(Arc<str>);

impl NonTerminal {
    /// Creates a nonterminal with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        NonTerminal(Arc::from(name.into().as_str()))
    }

    /// The nonterminal's name.
    pub fn name(&self) -> &str {
        &self.0
    }

    /// The "negative" twin `X⁻` used by the `h(G)` rewriting (§5.2).
    pub fn negative(&self) -> NonTerminal {
        NonTerminal::new(format!("{}⁻", self.0))
    }
}

impl fmt::Debug for NonTerminal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for NonTerminal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for NonTerminal {
    fn from(s: &str) -> Self {
        NonTerminal::new(s)
    }
}

/// A production `A₀ → σ(A₁, …, Aᵢ)` of a regular tree grammar.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Production {
    /// The left-hand-side nonterminal `A₀`.
    pub lhs: NonTerminal,
    /// The alphabet symbol `σ`.
    pub symbol: Symbol,
    /// The argument nonterminals `A₁, …, Aᵢ`.
    pub args: Vec<NonTerminal>,
}

impl Production {
    /// Creates a production.
    pub fn new(lhs: NonTerminal, symbol: Symbol, args: Vec<NonTerminal>) -> Self {
        Production { lhs, symbol, args }
    }
}

impl fmt::Debug for Production {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Production {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} → {}", self.lhs, self.symbol)?;
        if !self.args.is_empty() {
            write!(f, "(")?;
            for (i, a) in self.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// A regular tree grammar `G = (N, Σ, S, δ)` (Def. 3.1), with a sort
/// attached to every nonterminal.
///
/// Use [`GrammarBuilder`] to construct grammars; the builder validates
/// sorts, arities and declaredness of all nonterminals.
///
/// # Example
/// ```
/// use sygus::{GrammarBuilder, Sort, Symbol};
/// // Start ::= Plus(Start, Start) | Num(1)   (the Gconst grammar of Ex. 3.8)
/// let g = GrammarBuilder::new("Start")
///     .nonterminal("Start", Sort::Int)
///     .production("Start", Symbol::Plus, &["Start", "Start"])
///     .production("Start", Symbol::Num(1), &[])
///     .build()
///     .unwrap();
/// assert_eq!(g.num_nonterminals(), 1);
/// assert_eq!(g.num_productions(), 2);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Grammar {
    start: NonTerminal,
    nonterminals: Vec<NonTerminal>,
    sorts: BTreeMap<NonTerminal, Sort>,
    productions: Vec<Production>,
}

impl Grammar {
    /// The start nonterminal `S`.
    pub fn start(&self) -> &NonTerminal {
        &self.start
    }

    /// The nonterminals, in declaration order.
    pub fn nonterminals(&self) -> &[NonTerminal] {
        &self.nonterminals
    }

    /// All productions `δ`.
    pub fn productions(&self) -> &[Production] {
        &self.productions
    }

    /// The productions `δ_A` with left-hand side `nt`.
    pub fn productions_of<'a>(
        &'a self,
        nt: &'a NonTerminal,
    ) -> impl Iterator<Item = &'a Production> + 'a {
        self.productions.iter().filter(move |p| &p.lhs == nt)
    }

    /// The sort of a nonterminal.
    pub fn sort_of(&self, nt: &NonTerminal) -> Option<Sort> {
        self.sorts.get(nt).copied()
    }

    /// `|N|`: number of nonterminals.
    pub fn num_nonterminals(&self) -> usize {
        self.nonterminals.len()
    }

    /// `|δ|`: number of productions.
    pub fn num_productions(&self) -> usize {
        self.productions.len()
    }

    /// The distinct input variables `Var(x)` / `NegVar(x)` appearing in the
    /// grammar (the `|V|` column of Tables 1 and 2).
    pub fn variables(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for p in &self.productions {
            match &p.symbol {
                Symbol::Var(x) | Symbol::NegVar(x) => {
                    out.insert(x.clone());
                }
                _ => {}
            }
        }
        out
    }

    /// `true` when every production symbol is in the LIA fragment
    /// (`Plus`, `Minus`, `Num`, `Var`, `NegVar`).
    pub fn is_lia(&self) -> bool {
        self.productions.iter().all(|p| p.symbol.is_lia())
    }

    /// `true` when the grammar contains a `Minus` production (and therefore
    /// needs the `h(G)` rewriting of §5.2 before grammar-flow analysis).
    pub fn has_minus(&self) -> bool {
        self.productions
            .iter()
            .any(|p| matches!(p.symbol, Symbol::Minus))
    }

    /// `true` when the grammar contains an `IfThenElse` production (the
    /// mutually-recursive CLIA case of §6.4).
    pub fn has_ite(&self) -> bool {
        self.productions
            .iter()
            .any(|p| matches!(p.symbol, Symbol::IfThenElse))
    }

    /// The Boolean-sorted nonterminals.
    pub fn bool_nonterminals(&self) -> Vec<NonTerminal> {
        self.nonterminals
            .iter()
            .filter(|nt| self.sort_of(nt) == Some(Sort::Bool))
            .cloned()
            .collect()
    }

    /// The integer-sorted nonterminals.
    pub fn int_nonterminals(&self) -> Vec<NonTerminal> {
        self.nonterminals
            .iter()
            .filter(|nt| self.sort_of(nt) == Some(Sort::Int))
            .cloned()
            .collect()
    }

    /// The set of nonterminals reachable from the start symbol.
    pub fn reachable(&self) -> BTreeSet<NonTerminal> {
        let mut seen: BTreeSet<NonTerminal> = BTreeSet::new();
        let mut queue: VecDeque<NonTerminal> = VecDeque::new();
        seen.insert(self.start.clone());
        queue.push_back(self.start.clone());
        while let Some(nt) = queue.pop_front() {
            for p in self.productions_of(&nt) {
                for a in &p.args {
                    if seen.insert(a.clone()) {
                        queue.push_back(a.clone());
                    }
                }
            }
        }
        seen
    }

    /// The set of productive nonterminals (those that derive at least one
    /// finite tree).
    pub fn productive(&self) -> BTreeSet<NonTerminal> {
        let mut productive: BTreeSet<NonTerminal> = BTreeSet::new();
        loop {
            let mut changed = false;
            for p in &self.productions {
                if productive.contains(&p.lhs) {
                    continue;
                }
                if p.args.iter().all(|a| productive.contains(a)) {
                    productive.insert(p.lhs.clone());
                    changed = true;
                }
            }
            if !changed {
                return productive;
            }
        }
    }

    /// Removes unreachable and unproductive nonterminals (and the
    /// productions referring to them). The start symbol is always kept.
    pub fn trim(&self) -> Grammar {
        let reachable = self.reachable();
        let productive = self.productive();
        let keep: BTreeSet<NonTerminal> = reachable
            .intersection(&productive)
            .cloned()
            .chain(std::iter::once(self.start.clone()))
            .collect();
        let nonterminals: Vec<NonTerminal> = self
            .nonterminals
            .iter()
            .filter(|nt| keep.contains(nt))
            .cloned()
            .collect();
        let productions: Vec<Production> = self
            .productions
            .iter()
            .filter(|p| keep.contains(&p.lhs) && p.args.iter().all(|a| keep.contains(a)))
            .cloned()
            .collect();
        Grammar {
            start: self.start.clone(),
            sorts: self
                .sorts
                .iter()
                .filter(|(nt, _)| keep.contains(nt))
                .map(|(nt, s)| (nt.clone(), *s))
                .collect(),
            nonterminals,
            productions,
        }
    }

    /// `true` if the term is derivable from the given nonterminal (a simple
    /// top-down membership check, used in tests).
    pub fn derives(&self, nt: &NonTerminal, term: &Term) -> bool {
        self.productions_of(nt).any(|p| {
            p.symbol == *term.symbol()
                && p.args.len() == term.children().len()
                && p.args
                    .iter()
                    .zip(term.children())
                    .all(|(a, c)| self.derives(a, c))
        })
    }

    /// `true` if the term is in `L(G)` (derivable from the start symbol).
    pub fn contains_term(&self, term: &Term) -> bool {
        self.derives(&self.start, term)
    }

    /// Enumerates all terms derivable from `nt` with at most `max_size`
    /// nodes, up to `limit` terms (breadth-first by size). Intended for
    /// tests and cross-validation, not for synthesis (see crate
    /// `enumerative` for the real enumerator).
    pub fn terms_up_to_size(&self, nt: &NonTerminal, max_size: usize, limit: usize) -> Vec<Term> {
        // terms_by_size[nt][s] = terms of size exactly s derivable from nt
        let mut table: BTreeMap<(NonTerminal, usize), Vec<Term>> = BTreeMap::new();
        for size in 1..=max_size {
            for n in &self.nonterminals {
                let mut terms: Vec<Term> = Vec::new();
                for p in self.productions_of(n) {
                    if p.args.is_empty() {
                        if size == 1 {
                            terms.push(Term::leaf(p.symbol.clone()));
                        }
                        continue;
                    }
                    // distribute size-1 among the arguments
                    let budget = size - 1;
                    let arg_terms: Vec<Vec<(usize, Term)>> = p
                        .args
                        .iter()
                        .map(|a| {
                            (1..budget + 1)
                                .flat_map(|s| {
                                    table
                                        .get(&(a.clone(), s))
                                        .cloned()
                                        .unwrap_or_default()
                                        .into_iter()
                                        .map(move |t| (s, t))
                                })
                                .collect()
                        })
                        .collect();
                    // cartesian product with exact total size
                    let mut partial: Vec<(usize, Vec<Term>)> = vec![(0, Vec::new())];
                    for options in &arg_terms {
                        let mut next = Vec::new();
                        for (used, ts) in &partial {
                            for (s, t) in options {
                                if used + s <= budget {
                                    let mut ts2 = ts.clone();
                                    ts2.push(t.clone());
                                    next.push((used + s, ts2));
                                }
                            }
                        }
                        partial = next;
                        if partial.len() > limit * 4 {
                            partial.truncate(limit * 4);
                        }
                    }
                    for (used, ts) in partial {
                        if used == budget && ts.len() == p.args.len() {
                            if let Ok(t) = Term::apply(p.symbol.clone(), ts) {
                                terms.push(t);
                            }
                        }
                    }
                }
                terms.truncate(limit);
                table.insert((n.clone(), size), terms);
            }
        }
        let mut out = Vec::new();
        for size in 1..=max_size {
            if let Some(ts) = table.get(&(nt.clone(), size)) {
                out.extend(ts.iter().cloned());
                if out.len() >= limit {
                    out.truncate(limit);
                    break;
                }
            }
        }
        out
    }
}

impl fmt::Debug for Grammar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Grammar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for nt in &self.nonterminals {
            write!(f, "{nt} ::= ")?;
            let prods: Vec<String> = self
                .productions_of(nt)
                .map(|p| {
                    if p.args.is_empty() {
                        p.symbol.to_string()
                    } else {
                        format!(
                            "{}({})",
                            p.symbol,
                            p.args
                                .iter()
                                .map(|a| a.to_string())
                                .collect::<Vec<_>>()
                                .join(", ")
                        )
                    }
                })
                .collect();
            writeln!(f, "{}", prods.join(" | "))?;
        }
        Ok(())
    }
}

/// A builder for [`Grammar`]s that validates sorts and arities.
#[derive(Clone, Debug)]
pub struct GrammarBuilder {
    start: NonTerminal,
    nonterminals: Vec<NonTerminal>,
    sorts: BTreeMap<NonTerminal, Sort>,
    productions: Vec<Production>,
    chains: Vec<(NonTerminal, NonTerminal)>,
}

impl GrammarBuilder {
    /// Starts building a grammar with the given start nonterminal (which
    /// must still be declared with [`nonterminal`](Self::nonterminal)).
    pub fn new(start: impl Into<String>) -> Self {
        GrammarBuilder {
            start: NonTerminal::new(start),
            nonterminals: Vec::new(),
            sorts: BTreeMap::new(),
            productions: Vec::new(),
            chains: Vec::new(),
        }
    }

    /// Declares a nonterminal with its sort.
    pub fn nonterminal(mut self, name: impl Into<String>, sort: Sort) -> Self {
        let nt = NonTerminal::new(name);
        if !self.sorts.contains_key(&nt) {
            self.nonterminals.push(nt.clone());
            self.sorts.insert(nt, sort);
        }
        self
    }

    /// Adds the production `lhs → symbol(args…)`.
    pub fn production(mut self, lhs: &str, symbol: Symbol, args: &[&str]) -> Self {
        self.productions.push(Production::new(
            NonTerminal::new(lhs),
            symbol,
            args.iter().map(|a| NonTerminal::new(*a)).collect(),
        ));
        self
    }

    /// Adds a production with pre-built nonterminals.
    pub fn production_nt(
        mut self,
        lhs: NonTerminal,
        symbol: Symbol,
        args: Vec<NonTerminal>,
    ) -> Self {
        self.productions.push(Production::new(lhs, symbol, args));
        self
    }

    /// Adds a *chain* (unit) production `lhs ::= rhs`, as used by grammars
    /// like G₂ of §2 (`Start ::= Exp2 | Exp3`). Chain productions are
    /// resolved at [`build`](Self::build) time by copying the right-hand
    /// side's productions onto the left-hand side (transitively), which
    /// preserves the generated language while keeping the grammar in the
    /// `A → σ(A₁,…,Aᵢ)` normal form of Def. 3.1.
    pub fn chain(mut self, lhs: &str, rhs: &str) -> Self {
        self.chains
            .push((NonTerminal::new(lhs), NonTerminal::new(rhs)));
        self
    }

    /// Finishes construction, validating the grammar.
    ///
    /// # Errors
    /// Returns a [`SygusError::GrammarError`] if the start symbol or a
    /// production argument is undeclared, or a [`SygusError::SortError`] if
    /// a production is ill-sorted (wrong arity, argument sort, or result
    /// sort).
    pub fn build(mut self) -> Result<Grammar, SygusError> {
        if !self.sorts.contains_key(&self.start) {
            return Err(SygusError::GrammarError(format!(
                "start nonterminal {} is not declared",
                self.start
            )));
        }
        // Resolve chain productions by transitive copying.
        if !self.chains.is_empty() {
            for (a, b) in &self.chains {
                match (self.sorts.get(a), self.sorts.get(b)) {
                    (Some(sa), Some(sb)) if sa == sb => {}
                    (Some(_), Some(_)) => {
                        return Err(SygusError::SortError(format!(
                            "chain production {a} ::= {b} mixes sorts"
                        )))
                    }
                    _ => {
                        return Err(SygusError::GrammarError(format!(
                            "chain production {a} ::= {b} uses an undeclared nonterminal"
                        )))
                    }
                }
            }
            loop {
                let mut added = Vec::new();
                for (a, b) in &self.chains {
                    for p in self.productions.iter().filter(|p| &p.lhs == b) {
                        let copy = Production::new(a.clone(), p.symbol.clone(), p.args.clone());
                        if !self.productions.contains(&copy) && !added.contains(&copy) {
                            added.push(copy);
                        }
                    }
                }
                if added.is_empty() {
                    break;
                }
                self.productions.extend(added);
            }
        }
        for p in &self.productions {
            let Some(&lhs_sort) = self.sorts.get(&p.lhs) else {
                return Err(SygusError::GrammarError(format!(
                    "production {p} uses undeclared nonterminal {}",
                    p.lhs
                )));
            };
            p.symbol.check_arity(p.args.len())?;
            if p.symbol.sort() != lhs_sort {
                return Err(SygusError::SortError(format!(
                    "production {p}: symbol sort {} does not match nonterminal sort {lhs_sort}",
                    p.symbol.sort()
                )));
            }
            for (i, a) in p.args.iter().enumerate() {
                let Some(&arg_sort) = self.sorts.get(a) else {
                    return Err(SygusError::GrammarError(format!(
                        "production {p} uses undeclared nonterminal {a}"
                    )));
                };
                if arg_sort != p.symbol.arg_sort(i) {
                    return Err(SygusError::SortError(format!(
                        "production {p}: argument {i} has sort {arg_sort}, expected {}",
                        p.symbol.arg_sort(i)
                    )));
                }
            }
        }
        Ok(Grammar {
            start: self.start,
            nonterminals: self.nonterminals,
            sorts: self.sorts,
            productions: self.productions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The grammar G₁ of §2 (expanded form of footnote 1).
    pub(crate) fn grammar_g1() -> Grammar {
        GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .nonterminal("S1", Sort::Int)
            .nonterminal("S2", Sort::Int)
            .nonterminal("S3", Sort::Int)
            .production("Start", Symbol::Plus, &["S1", "Start"])
            .production("Start", Symbol::Num(0), &[])
            .production("S1", Symbol::Plus, &["S2", "S3"])
            .production("S2", Symbol::Plus, &["S3", "S3"])
            .production("S3", Symbol::Var("x".to_string()), &[])
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates_sorts() {
        // LessThan producing an Int nonterminal is a sort error
        let bad = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .production("Start", Symbol::LessThan, &["Start", "Start"])
            .build();
        assert!(matches!(bad, Err(SygusError::SortError(_))));

        // undeclared argument nonterminal
        let bad = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .production("Start", Symbol::Plus, &["Start", "Mystery"])
            .build();
        assert!(matches!(bad, Err(SygusError::GrammarError(_))));

        // undeclared start
        let bad = GrammarBuilder::new("Start").build();
        assert!(matches!(bad, Err(SygusError::GrammarError(_))));
    }

    #[test]
    fn metrics() {
        let g = grammar_g1();
        assert_eq!(g.num_nonterminals(), 4);
        assert_eq!(g.num_productions(), 5);
        assert_eq!(g.variables().len(), 1);
        assert!(g.is_lia());
        assert!(!g.has_minus());
        assert!(!g.has_ite());
    }

    #[test]
    fn reachability_and_productivity() {
        let g = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .nonterminal("Dead", Sort::Int)
            .nonterminal("Loop", Sort::Int)
            .production("Start", Symbol::Num(1), &[])
            .production("Dead", Symbol::Num(2), &[])
            .production("Loop", Symbol::Plus, &["Loop", "Loop"])
            .build()
            .unwrap();
        let reach = g.reachable();
        assert!(reach.contains(&NonTerminal::new("Start")));
        assert!(!reach.contains(&NonTerminal::new("Dead")));
        let prod = g.productive();
        assert!(prod.contains(&NonTerminal::new("Start")));
        assert!(prod.contains(&NonTerminal::new("Dead")));
        assert!(!prod.contains(&NonTerminal::new("Loop")));
        let trimmed = g.trim();
        assert_eq!(trimmed.num_nonterminals(), 1);
    }

    #[test]
    fn derivation_membership() {
        let g = grammar_g1();
        // Num(0) ∈ L(G1)
        assert!(g.contains_term(&Term::num(0)));
        // Plus(Plus(Plus(x,x),x), Num(0)) — i.e. 3x — is in L(G1)
        let three_x = Term::plus(
            Term::plus(Term::plus(Term::var("x"), Term::var("x")), Term::var("x")),
            Term::num(0),
        );
        assert!(g.contains_term(&three_x));
        // a bare Var(x) is not derivable from Start
        assert!(!g.contains_term(&Term::var("x")));
    }

    #[test]
    fn enumeration_yields_derivable_terms() {
        let g = grammar_g1();
        let terms = g.terms_up_to_size(g.start(), 9, 50);
        assert!(!terms.is_empty());
        for t in &terms {
            assert!(g.contains_term(t), "{t} must be derivable");
        }
    }

    #[test]
    fn bool_and_int_partition() {
        let g = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .nonterminal("B", Sort::Bool)
            .production("Start", Symbol::Num(0), &[])
            .production("Start", Symbol::IfThenElse, &["B", "Start", "Start"])
            .production("B", Symbol::LessThan, &["Start", "Start"])
            .build()
            .unwrap();
        assert_eq!(g.int_nonterminals().len(), 1);
        assert_eq!(g.bool_nonterminals().len(), 1);
        assert!(g.has_ite());
        assert!(!g.is_lia());
    }
}
