; array_search_2 — exported by `cargo run --example export_corpus`
(set-logic CLIA)
(synth-fun f ((x1 Int) (x2 Int) (k Int)) Int
  ((Start Int (x1 x2 k 0 1 (ite Cond Start Start)))
  (Cond Bool ((< Start Start) (and Cond Cond)))))
(declare-var x1 Int)
(declare-var x2 Int)
(declare-var k Int)
(constraint (or (>= k x1) (= (f x1 x2 k) 0)))
(constraint (or (>= x2 k) (= (f x1 x2 k) 2)))
(constraint (or (not (and (< x1 k) (< k x2))) (= (f x1 x2 k) 1)))
(check-synth)
