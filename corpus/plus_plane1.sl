; plus_plane1 — exported by `cargo run --example export_corpus`
(set-logic LIA)
(synth-fun f ((x Int) (y Int)) Int
  ((S1 Int ((+ S0 S0) x y 0 1))
  (S0 Int (x y 0 1))))
(declare-var x Int)
(declare-var y Int)
(constraint (= (f x y) (+ (* 2 x) y)))
(check-synth)
