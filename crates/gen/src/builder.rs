//! Per-family problem construction.
//!
//! Every `build_*` function draws an instance's knobs from its own
//! [`GenRng`] stream and returns the problem *together with* the verdict
//! class the construction guarantees — and, for realizable instances, a
//! concrete witness term in the grammar's language. The verdict arguments
//! are spelled out per family; they are what the fuzzing oracle gates on,
//! so they must be airtight.

use crate::families::{Expectation, Family, FamilySpec, Scale, SignSkew};
use crate::rng::GenRng;
use logic::{Formula, LinearExpr, Var};
use sygus::{GrammarBuilder, Problem, Sort, Spec, Symbol, Term, TermArena};

/// A freshly built instance: the problem, its by-construction verdict
/// class, and (when realizable) a witness term derivable from the
/// grammar's start symbol that satisfies the specification.
#[derive(Clone, Debug)]
pub struct Built {
    /// The generated problem (named by the stream, not the builder).
    pub problem: Problem,
    /// The verdict class guaranteed by the construction.
    pub expected: Expectation,
    /// A solution term, present iff `expected` is
    /// [`Expectation::Realizable`].
    pub witness: Option<Term>,
}

/// Builds one instance of `family` from the given stream.
pub fn build(family: Family, rng: &mut GenRng, scale: &Scale) -> Built {
    match family {
        Family::PlusMod => build_plus_mod(rng, scale),
        Family::ConstSum => build_const_sum(rng, scale),
        Family::GuardedConst => build_guarded_const(rng, scale),
        Family::PbePoints => build_pbe_points(rng, scale),
        Family::MaxGap => build_max_gap(rng, scale),
        spec_driven => build_from_spec(
            spec_driven
                .spec()
                .expect("non-hand-written families carry a FamilySpec"),
            rng,
            scale,
        ),
    }
}

fn out() -> LinearExpr {
    LinearExpr::var(Spec::output_var())
}

fn x() -> LinearExpr {
    LinearExpr::var(Var::new("x"))
}

/// `k` distinct integers in `lo..=hi`, sorted ascending.
fn distinct_points(rng: &mut GenRng, k: usize, lo: i64, hi: i64) -> Vec<i64> {
    assert!(
        (hi - lo + 1) as usize >= k,
        "range too small for {k} points"
    );
    let mut points: Vec<i64> = Vec::with_capacity(k);
    while points.len() < k {
        let p = rng.range_i64(lo, hi);
        if !points.contains(&p) {
            points.push(p);
        }
    }
    points.sort_unstable();
    points
}

/// `⋀ⱼ (x = aⱼ ⇒ f = vⱼ)` — the point-wise spec shared by the
/// `guarded_const` and `pbe_points` families.
fn pointwise_spec(points: &[(i64, i64)]) -> Spec {
    let conjuncts: Vec<Formula> = points
        .iter()
        .map(|&(a, v)| {
            Formula::implies(
                Formula::eq(x(), LinearExpr::constant(a)),
                Formula::eq(out(), LinearExpr::constant(v)),
            )
        })
        .collect();
    Spec::new(Formula::and(conjuncts), vec!["x".to_string()], Sort::Int)
}

// ---------------------------------------------------------------------------
// plus_mod — the §2 chain shape, scaled by grammar depth
// ---------------------------------------------------------------------------

/// Grammar: `Start ::= S₁ + Start | 0`, `Sᵢ ::= Sᵢ₊₁ + Sᵢ₊₁` (i < d),
/// `S_d ::= x`. Every `S₁` derivation is a full binary tree of `x` leaves,
/// so `S₁` evaluates to exactly `M·x` with `M = 2^(d−1)`, and `Start`
/// derives exactly `{m·M·x : m ≥ 0}`.
///
/// Spec `f(x) = c·x + r` is therefore realizable iff `r = 0 ∧ c ≥ 0 ∧
/// c ≡ 0 (mod M)`; the unrealizable sub-cases each violate one conjunct.
fn build_plus_mod(rng: &mut GenRng, scale: &Scale) -> Built {
    let depth = rng.range_i64(1, scale.max_depth.max(1) as i64) as usize;
    let modulus = 1i64 << (depth - 1);

    let mut builder = GrammarBuilder::new("Start").nonterminal("Start", Sort::Int);
    for i in 1..=depth {
        builder = builder.nonterminal(format!("S{i}"), Sort::Int);
    }
    builder = builder
        .production("Start", Symbol::Plus, &["S1", "Start"])
        .production("Start", Symbol::Num(0), &[]);
    for i in 1..depth {
        let next = format!("S{}", i + 1);
        builder = builder.production(&format!("S{i}"), Symbol::Plus, &[&next, &next]);
    }
    builder = builder.production(&format!("S{depth}"), Symbol::Var("x".to_string()), &[]);
    let grammar = builder.build().expect("plus_mod grammar is well-formed");

    let realizable = rng.chance(scale.realizable_percent);
    let (coefficient, offset, witness) = if realizable {
        // Keep the witness inside the exact engine's default search budget:
        // an m-summand witness has size m·(2^d − 1) + m + 1.
        let max_m = if depth >= 3 { 1 } else { 2 };
        let m = rng.range_i64(0, max_m);
        (m * modulus, 0, Some(plus_mod_witness(depth, m as usize)))
    } else {
        // Violate exactly one of the three realizability conjuncts.
        let mode = rng.index(if modulus > 1 { 3 } else { 2 });
        match mode {
            // r ≠ 0: at x = 0 every term evaluates to 0 but the spec wants r.
            0 => {
                let mut r = rng.range_i64(-scale.max_magnitude, scale.max_magnitude);
                if r == 0 {
                    r = 1;
                }
                (rng.range_i64(0, 3) * modulus, r, None)
            }
            // c < 0 (and r = 0): m·M·x = c·x needs m = c/M < 0.
            1 => (-modulus * rng.range_i64(1, 3), 0, None),
            // c ≢ 0 (mod M): only distinct from the above when M > 1.
            _ => {
                let m = rng.range_i64(0, 2);
                let residue = rng.range_i64(1, modulus - 1);
                (m * modulus + residue, 0, None)
            }
        }
    };
    let spec = Spec::output_equals(
        x().scale(coefficient) + LinearExpr::constant(offset),
        vec!["x".to_string()],
    );
    Built {
        problem: Problem::new("plus_mod", grammar, spec),
        expected: if realizable {
            Expectation::Realizable
        } else {
            Expectation::Unrealizable
        },
        witness,
    }
}

/// The witness `m·2^(d−1)·x` as a `Start` derivation: `m` copies of the
/// full `S₁` tree folded over `Start ::= S₁ + Start | 0`.
///
/// Built through a [`TermArena`]: the full binary `S₁` tree is a `d`-node
/// DAG (each level shares its two identical children), interned in `O(d)`
/// instead of the `O(2^d)` node allocations the owned tree needs — the
/// tree is only materialized once, at the `Built::witness` boundary.
fn plus_mod_witness(depth: usize, m: usize) -> Term {
    let mut arena = TermArena::new();
    let mut level = arena.var_leaf("x");
    for _ in 1..depth {
        level = arena.plus2(level, level);
    }
    let mut term = arena.num(0);
    for _ in 0..m {
        term = arena.plus2(level, term);
    }
    arena.extract(term)
}

// ---------------------------------------------------------------------------
// const_sum — constant sums, scaled by magnitude
// ---------------------------------------------------------------------------

/// Grammar: `Start ::= c | Start + Start` with a single non-zero constant
/// `c`, so `L(G)` evaluates to exactly `{m·c : m ≥ 1}`. Spec `f(x) = t` is
/// realizable iff `t` is a positive multiple of `c` (same sign, |t| ≥ |c|).
fn build_const_sum(rng: &mut GenRng, scale: &Scale) -> Built {
    let magnitude = scale.max_magnitude.max(1);
    let sign = if rng.chance(50) { 1 } else { -1 };
    let constant = sign * rng.range_i64(1, magnitude);

    let grammar = GrammarBuilder::new("Start")
        .nonterminal("Start", Sort::Int)
        .production("Start", Symbol::Num(constant), &[])
        .production("Start", Symbol::Plus, &["Start", "Start"])
        .build()
        .expect("const_sum grammar is well-formed");

    let realizable = rng.chance(scale.realizable_percent);
    let (target, witness) = if realizable {
        let m = rng.range_i64(1, 4);
        let mut arena = TermArena::new();
        let leaf = arena.num(constant);
        let mut term = leaf;
        for _ in 1..m {
            term = arena.plus2(leaf, term);
        }
        (m * constant, Some(arena.extract(term)))
    } else {
        // Draw until the target is *not* a positive multiple of c.
        loop {
            let t = rng.range_i64(-4 * magnitude, 4 * magnitude);
            let is_multiple = t != 0 && t % constant == 0 && t / constant >= 1;
            if !is_multiple {
                break (t, None);
            }
        }
    };
    let spec = Spec::output_equals(LinearExpr::constant(target), vec!["x".to_string()]);
    Built {
        problem: Problem::new("const_sum", grammar, spec),
        expected: if realizable {
            Expectation::Realizable
        } else {
            Expectation::Unrealizable
        },
        witness,
    }
}

// ---------------------------------------------------------------------------
// guarded_const — piecewise constants under ite, scaled by nesting/points
// ---------------------------------------------------------------------------

/// Grammar: `Start ::= c₁ | c₂ | ite(B, Start, Start)`,
/// `B ::= X < Gc [| and(B,B) | not(B)]`, `X ::= x`, `Gc ::= g…`. Every
/// term denotes a piecewise-constant function whose *values* all lie in
/// `{c₁, c₂}` — guards only choose between branches, they never produce
/// values.
///
/// Spec: `⋀ⱼ (x = aⱼ ⇒ f = vⱼ)`. Realizable instances take every `vⱼ`
/// from the value set and put the separating thresholds `a₂ … a_k` in the
/// grammar, so a nested-ite witness exists. Unrealizable instances demand
/// one `vⱼ` outside the value set — no term can produce it at `x = aⱼ`.
fn build_guarded_const(rng: &mut GenRng, scale: &Scale) -> Built {
    let magnitude = scale.max_magnitude.max(2);
    let values = distinct_points(rng, 2, -magnitude, magnitude);
    let k = rng.range_i64(2, scale.max_points.max(2) as i64) as usize;
    let points = distinct_points(rng, k, -20, 20);
    let nesting = rng.range_i64(1, scale.max_nesting.max(1) as i64) as usize;

    let realizable = rng.chance(scale.realizable_percent);
    let assignments: Vec<(i64, i64)> = if realizable {
        points.iter().map(|&a| (a, *rng.choose(&values))).collect()
    } else {
        // One point demands a value no grammar term can ever produce.
        let bad_index = rng.index(points.len());
        let bad_value = values.iter().max().unwrap() + rng.range_i64(1, magnitude);
        points
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                if i == bad_index {
                    (a, bad_value)
                } else {
                    (a, *rng.choose(&values))
                }
            })
            .collect()
    };

    // Thresholds: the separators the witness needs (every interior point),
    // plus one decoy so threshold choice is not forced.
    let mut thresholds: Vec<i64> = points[1..].to_vec();
    let decoy = rng.range_i64(-25, 25);
    if !thresholds.contains(&decoy) {
        thresholds.push(decoy);
    }

    let mut builder = GrammarBuilder::new("Start")
        .nonterminal("Start", Sort::Int)
        .nonterminal("B", Sort::Bool)
        .nonterminal("X", Sort::Int)
        .nonterminal("Gc", Sort::Int)
        .production("Start", Symbol::IfThenElse, &["B", "Start", "Start"])
        .production("B", Symbol::LessThan, &["X", "Gc"])
        .production("X", Symbol::Var("x".to_string()), &[]);
    for &v in &values {
        builder = builder.production("Start", Symbol::Num(v), &[]);
    }
    for &g in &thresholds {
        builder = builder.production("Gc", Symbol::Num(g), &[]);
    }
    if nesting >= 2 {
        builder = builder
            .production("B", Symbol::And, &["B", "B"])
            .production("B", Symbol::Not, &["B"]);
    }
    let grammar = builder
        .build()
        .expect("guarded_const grammar is well-formed");

    let witness = realizable.then(|| {
        // ite(x < a₂, v₁, ite(x < a₃, v₂, … v_k)) — the thresholds are the
        // *next* point, so each vⱼ is selected exactly on its point.
        let mut arena = TermArena::new();
        let x = arena.var_leaf("x");
        let mut term = arena.num(assignments.last().unwrap().1);
        for j in (0..assignments.len() - 1).rev() {
            let next_point = arena.num(assignments[j + 1].0);
            let guard = arena.less_than2(x, next_point);
            let value = arena.num(assignments[j].1);
            term = arena.ite3(guard, value, term);
        }
        arena.extract(term)
    });
    Built {
        problem: Problem::new("guarded_const", grammar, pointwise_spec(&assignments)),
        expected: if realizable {
            Expectation::Realizable
        } else {
            Expectation::Unrealizable
        },
        witness,
    }
}

// ---------------------------------------------------------------------------
// pbe_points — affine PBE, scaled by example count
// ---------------------------------------------------------------------------

/// Realizable: grammar `Start ::= x | 0 | 1 | Start + Start` (which
/// denotes `{a·x + b : a, b ≥ 0}`), points sampled from a hidden target
/// `a*·x + b*` — the target itself is the witness.
///
/// Unrealizable: grammar without the `1` (denoting `{a·x : a ≥ 0}`) and
/// points forcing `f(2) ≠ 2·f(1)` — any `a·x` satisfies
/// `f(2) = 2·f(1)`, so no term fits.
fn build_pbe_points(rng: &mut GenRng, scale: &Scale) -> Built {
    let k = rng.range_i64(2, scale.max_points.max(2) as i64) as usize;
    let realizable = rng.chance(scale.realizable_percent);

    let mut builder = GrammarBuilder::new("Start")
        .nonterminal("Start", Sort::Int)
        .production("Start", Symbol::Var("x".to_string()), &[])
        .production("Start", Symbol::Num(0), &[])
        .production("Start", Symbol::Plus, &["Start", "Start"]);
    if realizable {
        builder = builder.production("Start", Symbol::Num(1), &[]);
    }
    let grammar = builder.build().expect("pbe_points grammar is well-formed");

    let (assignments, witness) = if realizable {
        // Hidden affine target with a witness inside the search budget
        // (size 2·(a* + b*) − 1 ≤ 9).
        let a_star = rng.range_i64(0, 2);
        let b_star = rng.range_i64(0, 3 - a_star.min(2));
        let points = distinct_points(rng, k, -10, 10);
        let assignments: Vec<(i64, i64)> =
            points.iter().map(|&a| (a, a_star * a + b_star)).collect();
        let mut arena = TermArena::new();
        let mut parts: Vec<sygus::TermId> = Vec::new();
        parts.extend((0..a_star).map(|_| arena.var_leaf("x")));
        parts.extend((0..b_star).map(|_| arena.num(1)));
        let witness = match parts.pop() {
            None => arena.num(0),
            Some(first) => parts.into_iter().fold(first, |acc, t| arena.plus2(t, acc)),
        };
        (assignments, Some(arena.extract(witness)))
    } else {
        // Points 1 and 2 with v₂ ≠ 2·v₁ rule out every a·x; the remaining
        // points add noise but cannot restore realizability.
        let v1 = rng.range_i64(-scale.max_magnitude, scale.max_magnitude);
        let mut delta = rng.range_i64(-3, 3);
        if delta == 0 {
            delta = 1;
        }
        let mut assignments = vec![(1, v1), (2, 2 * v1 + delta)];
        while assignments.len() < k {
            let a = rng.range_i64(-10, 10);
            if assignments.iter().all(|&(p, _)| p != a) {
                let v = rng.range_i64(-scale.max_magnitude, scale.max_magnitude);
                assignments.push((a, v));
            }
        }
        assignments.sort_unstable();
        (assignments, None)
    };
    Built {
        problem: Problem::new("pbe_points", grammar, pointwise_spec(&assignments)),
        expected: if realizable {
            Expectation::Realizable
        } else {
            Expectation::Unrealizable
        },
        witness,
    }
}

// ---------------------------------------------------------------------------
// max_gap — max(x, y) + g over a constant-free CLIA grammar
// ---------------------------------------------------------------------------

/// Grammar: `Start ::= x | y | 0 | Start + Start | ite(B, Start, Start)`,
/// `B ::= Start < Start [| and | not]`. Spec:
/// `f ≥ x + g ∧ f ≥ y + g ∧ (f = x + g ∨ f = y + g)`.
///
/// At `x = y = 0` every grammar term evaluates to `0` (all leaves are `0`
/// there and `+`/`ite` preserve it), but the spec forces `f(0,0) = g` — so
/// `g ≠ 0` is unrealizable. For `g = 0`, `ite(x < y, y, x)` is a witness.
fn build_max_gap(rng: &mut GenRng, scale: &Scale) -> Built {
    let nesting = rng.range_i64(1, scale.max_nesting.max(1) as i64) as usize;
    let mut builder = GrammarBuilder::new("Start")
        .nonterminal("Start", Sort::Int)
        .nonterminal("B", Sort::Bool)
        .production("Start", Symbol::Var("x".to_string()), &[])
        .production("Start", Symbol::Var("y".to_string()), &[])
        .production("Start", Symbol::Num(0), &[])
        .production("Start", Symbol::Plus, &["Start", "Start"])
        .production("Start", Symbol::IfThenElse, &["B", "Start", "Start"])
        .production("B", Symbol::LessThan, &["Start", "Start"]);
    if nesting >= 2 {
        builder = builder
            .production("B", Symbol::And, &["B", "B"])
            .production("B", Symbol::Not, &["B"]);
    }
    let grammar = builder.build().expect("max_gap grammar is well-formed");

    let realizable = rng.chance(scale.realizable_percent);
    let gap = if realizable {
        0
    } else {
        let sign = if rng.chance(50) { 1 } else { -1 };
        sign * rng.range_i64(1, scale.max_magnitude.max(1))
    };
    let y = LinearExpr::var(Var::new("y"));
    let fx = x() + LinearExpr::constant(gap);
    let fy = y + LinearExpr::constant(gap);
    let formula = Formula::and(vec![
        Formula::ge(out(), fx.clone()),
        Formula::ge(out(), fy.clone()),
        Formula::or(vec![Formula::eq(out(), fx), Formula::eq(out(), fy)]),
    ]);
    let spec = Spec::new(formula, vec!["x".to_string(), "y".to_string()], Sort::Int);
    let witness = realizable.then(|| {
        let mut arena = TermArena::new();
        let (x, y) = (arena.var_leaf("x"), arena.var_leaf("y"));
        let guard = arena.less_than2(x, y);
        let max = arena.ite3(guard, y, x);
        arena.extract(max)
    });
    Built {
        problem: Problem::new("max_gap", grammar, spec),
        expected: if realizable {
            Expectation::Realizable
        } else {
            Expectation::Unrealizable
        },
        witness,
    }
}

// ---------------------------------------------------------------------------
// build_from_spec — the data-driven congruence-anchor interpreter
// ---------------------------------------------------------------------------

/// Builds one instance of a [`FamilySpec`]-driven family.
///
/// Grammar: `Start ::= c₁ | … | c_k | Start + Start [| x]
/// [| ite(B, Start, Start)]`, `B ::= Start < Start [| and | not]`, where
/// every `cᵢ` is a non-zero multiple of a per-instance **even** modulus
/// `g ≥ 2` whose sign follows `spec.sign`.
///
/// Verdict argument (the congruence anchor): at `x = 0` every `Int`-sorted
/// term evaluates to a multiple of `g` — leaves are `0` (the variable) or
/// `cᵢ ≡ 0 (mod g)`, `+` preserves the congruence, and `ite` only selects
/// between two terms that both satisfy it. The spec always contains the
/// anchor conjunct `x = 0 ⇒ f = t`, so:
///
/// * **unrealizable**: `t ≢ 0 (mod g)` — no term can hit `t` at the
///   anchor, regardless of the extra points;
/// * **realizable**: `t` is a sum of `m ≤ max_summands` pool constants and
///   every extra point demands the same value, so the constant sum term is
///   a witness.
///
/// `g` is kept even (and unrealizable targets are biased toward odd `t`)
/// so the analyzer's parity domain can settle a healthy share of these
/// statically — the `presolve-diff --require-presolved` CI gate needs at
/// least one settled instance per family.
fn build_from_spec(spec: &FamilySpec, rng: &mut GenRng, scale: &Scale) -> Built {
    let magnitude = scale.max_magnitude.max(2);
    let g = 2 * rng.range_i64(1, (magnitude / 2).max(1));

    // Distinct non-zero pool constants, all multiples of g.
    let k = rng.range_i64(spec.pool_min as i64, spec.pool_max as i64) as usize;
    let mut pool: Vec<i64> = Vec::with_capacity(k);
    while pool.len() < k {
        let m = rng.range_i64(1, spec.multiplier_cap);
        let sign = match spec.sign {
            SignSkew::Positive => 1,
            SignSkew::Negative => -1,
            SignSkew::Mixed => {
                if rng.chance(50) {
                    1
                } else {
                    -1
                }
            }
        };
        let c = sign * g * m;
        if !pool.contains(&c) {
            pool.push(c);
        }
    }
    pool.sort_unstable();

    let mut builder = GrammarBuilder::new("Start").nonterminal("Start", Sort::Int);
    for &c in &pool {
        builder = builder.production("Start", Symbol::Num(c), &[]);
    }
    builder = builder.production("Start", Symbol::Plus, &["Start", "Start"]);
    if spec.var_leaf {
        builder = builder.production("Start", Symbol::Var("x".to_string()), &[]);
    }
    if spec.ite {
        builder = builder
            .nonterminal("B", Sort::Bool)
            .production("Start", Symbol::IfThenElse, &["B", "Start", "Start"])
            .production("B", Symbol::LessThan, &["Start", "Start"]);
        let nesting = rng.range_i64(1, scale.max_nesting.max(1) as i64) as usize;
        if nesting >= 2 {
            builder = builder
                .production("B", Symbol::And, &["B", "B"])
                .production("B", Symbol::Not, &["B"]);
        }
    }
    let grammar = builder.build().expect("spec-driven grammar is well-formed");

    let realizable = rng.chance(spec.realizable_percent);
    let (anchor_value, witness) = if realizable {
        // t = a reachable sum of pool constants; the sum term itself is the
        // witness (a constant function, so it meets every spec point).
        let m = rng.range_i64(1, spec.max_summands);
        let mut arena = TermArena::new();
        let first = *rng.choose(&pool);
        let mut total = first;
        let mut term = arena.num(first);
        for _ in 1..m {
            let c = *rng.choose(&pool);
            total += c;
            let leaf = arena.num(c);
            term = arena.plus2(leaf, term);
        }
        (total, Some(arena.extract(term)))
    } else {
        // t = g·q + r with r ∈ 1..g: off the congruence class, so the
        // anchor alone refutes. Bias r odd (g is even, so t is then odd)
        // to keep the parity presolve lane productive.
        let q = rng.range_i64(-2, 2);
        let r = if g > 2 && !rng.chance(70) {
            rng.range_i64(1, g - 1)
        } else {
            let odd_candidates: Vec<i64> = (1..g).step_by(2).collect();
            *rng.choose(&odd_candidates)
        };
        (g * q + r, None)
    };

    // The anchor point plus up to `extra_points_max` distinct non-zero
    // points. Realizable extras must agree with the constant witness;
    // unrealizable extras are pure noise (the anchor already refutes).
    let mut points: Vec<(i64, i64)> = vec![(0, anchor_value)];
    let extras = if spec.extra_points_max > 0 {
        rng.range_i64(0, spec.extra_points_max as i64) as usize
    } else {
        0
    };
    while points.len() < 1 + extras {
        let a = rng.range_i64(-20, 20);
        if a != 0 && points.iter().all(|&(p, _)| p != a) {
            let v = if realizable {
                anchor_value
            } else {
                rng.range_i64(-magnitude, magnitude)
            };
            points.push((a, v));
        }
    }
    points.sort_unstable();

    Built {
        problem: Problem::new(spec.name, grammar, pointwise_spec(&points)),
        expected: if realizable {
            Expectation::Realizable
        } else {
            Expectation::Unrealizable
        },
        witness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sygus::{Example, ExampleSet};

    /// Deterministic probe inputs covering the small-integer grid.
    fn probe_examples(problem: &Problem) -> ExampleSet {
        let vars: Vec<&String> = problem.spec().input_vars().iter().collect();
        let mut examples = ExampleSet::new();
        match vars.len() {
            1 => {
                // Wide enough to cover every point the point-wise families
                // can constrain (they draw from [-20, 20]).
                for v in -25..=25 {
                    examples.push(Example::from_pairs([(vars[0].clone(), v)]));
                }
            }
            2 => {
                for a in -4..=4 {
                    for b in -4..=4 {
                        examples.push(Example::from_pairs([
                            (vars[0].clone(), a),
                            (vars[1].clone(), b),
                        ]));
                    }
                }
            }
            n => panic!("unexpected input arity {n}"),
        }
        examples
    }

    /// Every family, many seeds: witnesses must be in the grammar's
    /// language and satisfy the spec on the probe grid; unrealizable
    /// instances must resist a brute-force term search.
    #[test]
    fn witnesses_are_valid_and_unrealizable_instances_resist_enumeration() {
        let scale = Scale::default();
        for family in Family::ALL {
            for seed in 0..40u64 {
                let mut rng = GenRng::from_seed(crate::rng::instance_seed(99, seed));
                let built = build(family, &mut rng, &scale);
                let examples = probe_examples(&built.problem);
                match built.expected {
                    Expectation::Realizable => {
                        let witness = built.witness.expect("realizable instances carry a witness");
                        assert!(
                            built.problem.grammar().contains_term(&witness),
                            "{family} seed {seed}: witness {witness} not in L(G)"
                        );
                        assert!(
                            built
                                .problem
                                .satisfied_on_examples(&witness, &examples)
                                .unwrap(),
                            "{family} seed {seed}: witness {witness} violates the spec"
                        );
                    }
                    Expectation::Unrealizable => {
                        assert!(built.witness.is_none());
                        // Brute-force cross-check: no small term derivable
                        // from the start symbol satisfies the spec on the
                        // probe grid (a true solution would have to).
                        let grammar = built.problem.grammar();
                        for term in grammar.terms_up_to_size(grammar.start(), 7, 200) {
                            assert!(
                                !built
                                    .problem
                                    .satisfied_on_examples(&term, &examples)
                                    .unwrap(),
                                "{family} seed {seed}: {term} solves an instance \
                                 built as unrealizable"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn both_verdict_classes_are_generated_for_every_family() {
        let scale = Scale::default();
        for family in Family::ALL {
            let mut saw = (false, false);
            for seed in 0..60u64 {
                let mut rng = GenRng::from_seed(crate::rng::instance_seed(5, seed));
                match build(family, &mut rng, &scale).expected {
                    Expectation::Realizable => saw.0 = true,
                    Expectation::Unrealizable => saw.1 = true,
                }
            }
            assert!(
                saw.0 && saw.1,
                "{family}: 60 seeds must hit both verdict classes"
            );
        }
    }

    #[test]
    fn construction_is_deterministic_in_the_seed() {
        let scale = Scale::default();
        for family in Family::ALL {
            let mut a = GenRng::from_seed(1234);
            let mut b = GenRng::from_seed(1234);
            let built_a = build(family, &mut a, &scale);
            let built_b = build(family, &mut b, &scale);
            assert_eq!(
                built_a.problem.fingerprint(),
                built_b.problem.fingerprint(),
                "{family}: same seed must build the same problem"
            );
            assert_eq!(built_a.expected, built_b.expected);
        }
    }
}
