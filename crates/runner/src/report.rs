//! The schema-versioned benchmark report and the regression comparator.
//!
//! A [`Report`] is what one sweep of the suite produces: one [`Entry`] per
//! (benchmark, tool) pair plus computed [`Aggregates`]. Entries are kept
//! sorted by `(benchmark, tool)` and objects serialize with a fixed key
//! order, so a report is deterministic: two sweeps that measure the same
//! verdicts produce byte-identical JSON after [`Report::canonicalized`]
//! (which zeroes the wall-clock fields) regardless of worker count.
//!
//! [`compare`] diffs two reports and is the engine of the CI perf gate: it
//! flags verdict flips, jobs that stopped completing, vanished benchmarks,
//! and slowdowns beyond a configurable threshold.

use crate::json::Json;
use crate::pool::JobStatus;
use std::fmt;

/// Version of the JSON layout; bump on any breaking change to the schema.
pub const SCHEMA_VERSION: u64 = 1;

/// One (benchmark, tool) measurement.
#[derive(Clone, Debug, PartialEq)]
pub struct Entry {
    /// Benchmark name.
    pub benchmark: String,
    /// Tool name (`naySL`, `nayHorn`, `nope`).
    pub tool: String,
    /// How the job ended.
    pub status: JobStatus,
    /// Realizability verdict reported by the tool (`unrealizable`,
    /// `realizable`, `unknown`), or `-` when the job did not complete.
    pub verdict: String,
    /// Whether the tool proved unrealizability.
    pub proved: bool,
    /// Solver iterations (equation-solver rounds for nay, abstract-
    /// interpretation passes for nope); 0 when the job did not complete.
    pub iterations: u64,
    /// Wall-clock milliseconds.
    pub millis: f64,
    /// `true` when the job shared its sweep with an abandoned (timed-out)
    /// job thread, making its wall-clock time untrustworthy. Absent in
    /// reports written before this field existed; parsed as `false`.
    pub tainted: bool,
    /// The workload family the benchmark belongs to (e.g. a generated-
    /// instance family like `plus_mod`), or empty for standalone
    /// benchmarks. Families group entries in the per-family aggregates
    /// ([`Report::family_aggregates`]) and scope the missing-entry gate of
    /// [`compare`]: a family present in only one report never trips it.
    /// Additive field — absent in older reports, parsed as empty.
    pub family: String,
}

impl Entry {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("benchmark".into(), Json::Str(self.benchmark.clone())),
            ("tool".into(), Json::Str(self.tool.clone())),
            ("status".into(), Json::Str(self.status.as_str().into())),
            ("verdict".into(), Json::Str(self.verdict.clone())),
            ("proved".into(), Json::Bool(self.proved)),
            ("iterations".into(), Json::Num(self.iterations as f64)),
            ("millis".into(), Json::Num(self.millis)),
            ("tainted".into(), Json::Bool(self.tainted)),
        ];
        // Family is additive and only serialized when set, so family-less
        // reports keep their pre-family byte layout.
        if !self.family.is_empty() {
            fields.push(("family".into(), Json::Str(self.family.clone())));
        }
        Json::Obj(fields)
    }

    fn from_json(value: &Json) -> Result<Entry, String> {
        let field = |key: &str| {
            value
                .get(key)
                .ok_or_else(|| format!("entry is missing the `{key}` field"))
        };
        let status_name = field("status")?
            .as_str()
            .ok_or("`status` is not a string")?;
        Ok(Entry {
            benchmark: field("benchmark")?
                .as_str()
                .ok_or("`benchmark` is not a string")?
                .to_string(),
            tool: field("tool")?
                .as_str()
                .ok_or("`tool` is not a string")?
                .to_string(),
            status: JobStatus::parse(status_name)
                .ok_or_else(|| format!("unknown status `{status_name}`"))?,
            verdict: field("verdict")?
                .as_str()
                .ok_or("`verdict` is not a string")?
                .to_string(),
            proved: field("proved")?
                .as_bool()
                .ok_or("`proved` is not a boolean")?,
            iterations: field("iterations")?
                .as_u64()
                .ok_or("`iterations` is not an integer")?,
            millis: field("millis")?
                .as_f64()
                .ok_or("`millis` is not a number")?,
            // Additive field: reports written before taint tracking simply
            // lack it, and their entries are treated as untainted.
            tainted: value
                .get("tainted")
                .map(|t| t.as_bool().ok_or("`tainted` is not a boolean"))
                .transpose()?
                .unwrap_or(false),
            // Additive field: reports written before family tracking lack
            // it, and their entries are family-less.
            family: value
                .get("family")
                .map(|t| t.as_str().ok_or("`family` is not a string"))
                .transpose()?
                .unwrap_or("")
                .to_string(),
        })
    }

    fn key(&self) -> (&str, &str) {
        (self.benchmark.as_str(), self.tool.as_str())
    }
}

/// Suite-level totals, recomputed from the entries.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aggregates {
    /// Number of entries.
    pub total: usize,
    /// Entries that completed.
    pub ok: usize,
    /// Entries that exceeded the wall-clock budget.
    pub timed_out: usize,
    /// Entries whose job panicked.
    pub crashed: usize,
    /// Entries that proved unrealizability.
    pub proved: usize,
    /// Sum of all wall-clock milliseconds.
    pub total_millis: f64,
}

/// A full sweep of the benchmark suite.
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    /// The schema version the report was written with.
    pub schema_version: u64,
    /// Which suite ran (`quick` or `full`).
    pub suite: String,
    /// Per-(benchmark, tool) measurements, sorted by `(benchmark, tool)`.
    pub entries: Vec<Entry>,
}

impl Report {
    /// Builds a report, sorting the entries into canonical order.
    pub fn new(suite: impl Into<String>, mut entries: Vec<Entry>) -> Report {
        entries.sort_by(|a, b| a.key().cmp(&b.key()));
        Report {
            schema_version: SCHEMA_VERSION,
            suite: suite.into(),
            entries,
        }
    }

    /// Recomputes the suite aggregates.
    pub fn aggregates(&self) -> Aggregates {
        let mut agg = Aggregates {
            total: self.entries.len(),
            ok: 0,
            timed_out: 0,
            crashed: 0,
            proved: 0,
            total_millis: 0.0,
        };
        for entry in &self.entries {
            match entry.status {
                JobStatus::Ok => agg.ok += 1,
                JobStatus::TimedOut => agg.timed_out += 1,
                JobStatus::Crashed => agg.crashed += 1,
            }
            agg.proved += usize::from(entry.proved);
            agg.total_millis += entry.millis;
        }
        agg
    }

    /// Finds the entry for a (benchmark, tool) pair.
    pub fn entry(&self, benchmark: &str, tool: &str) -> Option<&Entry> {
        self.entries.iter().find(|e| e.key() == (benchmark, tool))
    }

    /// Per-family aggregates over the entries that carry a family, in
    /// family order (single pass; family-less entries are not grouped).
    pub fn family_aggregates(&self) -> std::collections::BTreeMap<String, Aggregates> {
        let mut families: std::collections::BTreeMap<String, Aggregates> =
            std::collections::BTreeMap::new();
        for entry in self.entries.iter().filter(|e| !e.family.is_empty()) {
            let agg = families.entry(entry.family.clone()).or_insert(Aggregates {
                total: 0,
                ok: 0,
                timed_out: 0,
                crashed: 0,
                proved: 0,
                total_millis: 0.0,
            });
            agg.total += 1;
            match entry.status {
                JobStatus::Ok => agg.ok += 1,
                JobStatus::TimedOut => agg.timed_out += 1,
                JobStatus::Crashed => agg.crashed += 1,
            }
            agg.proved += usize::from(entry.proved);
            agg.total_millis += entry.millis;
        }
        families
    }

    /// `true` when some entry belongs to the given family.
    pub fn has_family(&self, family: &str) -> bool {
        self.entries.iter().any(|e| e.family == family)
    }

    /// The report with every wall-clock field zeroed: what is left is
    /// exactly the machine- and scheduling-independent content, so two runs
    /// with identical verdicts canonicalize to byte-identical JSON.
    pub fn canonicalized(&self) -> Report {
        let mut report = self.clone();
        for entry in &mut report.entries {
            entry.millis = 0.0;
        }
        report
    }

    /// Serializes to pretty-printed JSON (deterministic byte output).
    pub fn to_json(&self) -> String {
        let agg = self.aggregates();
        let agg_json = |agg: &Aggregates| {
            Json::Obj(vec![
                ("total".into(), Json::Num(agg.total as f64)),
                ("ok".into(), Json::Num(agg.ok as f64)),
                ("timed_out".into(), Json::Num(agg.timed_out as f64)),
                ("crashed".into(), Json::Num(agg.crashed as f64)),
                ("proved".into(), Json::Num(agg.proved as f64)),
                ("total_millis".into(), Json::Num(agg.total_millis)),
            ])
        };
        let mut fields = vec![
            (
                "schema_version".into(),
                Json::Num(self.schema_version as f64),
            ),
            ("suite".into(), Json::Str(self.suite.clone())),
            ("aggregates".into(), agg_json(&agg)),
        ];
        // Per-family rollups, present only for reports that track families
        // (additive, like Entry::family; parsing ignores and recomputes).
        let families = self.family_aggregates();
        if !families.is_empty() {
            fields.push((
                "families".into(),
                Json::Obj(
                    families
                        .iter()
                        .map(|(name, agg)| (name.clone(), agg_json(agg)))
                        .collect(),
                ),
            ));
        }
        fields.push((
            "benchmarks".into(),
            Json::Arr(self.entries.iter().map(Entry::to_json).collect()),
        ));
        Json::Obj(fields).to_string_pretty()
    }

    /// Parses a report, validating the schema version. The stored
    /// aggregates are ignored (they are always recomputed from the entries).
    pub fn from_json(text: &str) -> Result<Report, String> {
        let root = Json::parse(text).map_err(|e| e.to_string())?;
        let version = root
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("report is missing `schema_version`")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema version {version} (this binary reads version {SCHEMA_VERSION})"
            ));
        }
        let suite = root
            .get("suite")
            .and_then(Json::as_str)
            .ok_or("report is missing `suite`")?
            .to_string();
        let entries = root
            .get("benchmarks")
            .and_then(Json::as_array)
            .ok_or("report is missing the `benchmarks` array")?
            .iter()
            .map(Entry::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Report::new(suite, entries))
    }
}

/// Thresholds for [`compare`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompareConfig {
    /// A completed entry is a regression when its new time exceeds the old
    /// time by more than this percentage.
    pub threshold_pct: f64,
    /// Entries whose new time is below this floor are never flagged as
    /// slowdowns (shields sub-millisecond benchmarks from scheduler noise).
    pub min_millis: f64,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig {
            threshold_pct: 25.0,
            min_millis: 50.0,
        }
    }
}

/// What kind of regression [`compare`] found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegressionKind {
    /// The realizability verdict changed between the two reports.
    VerdictFlip,
    /// An entry that used to complete now times out or crashes.
    StatusChange,
    /// An entry got slower than the threshold allows.
    Slowdown,
    /// A (benchmark, tool) pair from the old report is gone.
    Missing,
}

/// One regression found by [`compare`].
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// Benchmark name.
    pub benchmark: String,
    /// Tool name.
    pub tool: String,
    /// What regressed.
    pub kind: RegressionKind,
    /// Human-readable explanation with the numbers involved.
    pub detail: String,
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}: {}", self.benchmark, self.tool, self.detail)
    }
}

/// Diffs `new` against `old` and returns every regression. An empty result
/// means the gate passes; improvements (faster, newly solved, new entries)
/// are never flagged.
pub fn compare(old: &Report, new: &Report, config: &CompareConfig) -> Vec<Regression> {
    // A timed-out job's thread is abandoned, not killed (std has no thread
    // cancellation), so it keeps consuming CPU and inflates the measured
    // time of every job that runs after it. The pool records exactly which
    // jobs overlapped an abandoned thread (`Entry::tainted`); slowdown
    // comparisons are suppressed for those entries only, while entries that
    // finished before the first abandonment still gate. Entries from
    // reports written before taint tracking parse as untainted.
    let mut regressions = Vec::new();
    for old_entry in &old.entries {
        let regression = |kind, detail| Regression {
            benchmark: old_entry.benchmark.clone(),
            tool: old_entry.tool.clone(),
            kind,
            detail,
        };
        let Some(new_entry) = new.entry(&old_entry.benchmark, &old_entry.tool) else {
            // Family-scoped missing gate: entries of a family the other
            // report does not cover at all are *additive* differences
            // (e.g. a generator family added to — or not yet in — one
            // side's catalogue), not vanished benchmarks. Only an entry
            // whose family both reports know, or a family-less entry, can
            // go missing.
            if old_entry.family.is_empty() || new.has_family(&old_entry.family) {
                regressions.push(regression(
                    RegressionKind::Missing,
                    "entry missing from the new report".into(),
                ));
            }
            continue;
        };
        // Status first: an entry that stops completing is a StatusChange,
        // not a "verdict flip to -"; an entry that *starts* completing is an
        // improvement, never a regression, whatever its verdict reads.
        if old_entry.status == JobStatus::Ok && new_entry.status != JobStatus::Ok {
            regressions.push(regression(
                RegressionKind::StatusChange,
                format!("status changed: ok -> {}", new_entry.status.as_str()),
            ));
            continue;
        }
        let both_ok = old_entry.status == JobStatus::Ok && new_entry.status == JobStatus::Ok;
        if both_ok && new_entry.verdict != old_entry.verdict {
            regressions.push(regression(
                RegressionKind::VerdictFlip,
                format!(
                    "verdict flipped: {} -> {}",
                    old_entry.verdict, new_entry.verdict
                ),
            ));
            continue;
        }
        let above_floor = new_entry.millis >= config.min_millis;
        let budget = old_entry.millis * (1.0 + config.threshold_pct / 100.0);
        if !new_entry.tainted && both_ok && above_floor && new_entry.millis > budget {
            regressions.push(regression(
                RegressionKind::Slowdown,
                format!(
                    "slowed down {:.1}ms -> {:.1}ms (>{:.0}% over baseline)",
                    old_entry.millis, new_entry.millis, config.threshold_pct
                ),
            ));
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(benchmark: &str, tool: &str, millis: f64) -> Entry {
        Entry {
            benchmark: benchmark.into(),
            tool: tool.into(),
            status: JobStatus::Ok,
            verdict: "unrealizable".into(),
            proved: true,
            iterations: 3,
            millis,
            tainted: false,
            family: String::new(),
        }
    }

    fn family_entry(benchmark: &str, tool: &str, family: &str) -> Entry {
        Entry {
            family: family.into(),
            ..entry(benchmark, tool, 10.0)
        }
    }

    fn sample() -> Report {
        Report::new(
            "quick",
            vec![
                entry("mpg_ite2", "naySL", 120.0),
                entry("mpg_ite2", "nope", 900.0),
                Entry {
                    status: JobStatus::TimedOut,
                    verdict: "-".into(),
                    proved: false,
                    iterations: 0,
                    tainted: true,
                    ..entry("plane1", "nayHorn", 5000.0)
                },
            ],
        )
    }

    #[test]
    fn json_round_trips_exactly() {
        let report = sample();
        let text = report.to_json();
        let parsed = Report::from_json(&text).expect("parse back");
        assert_eq!(parsed, report);
        assert_eq!(parsed.to_json(), text);
    }

    #[test]
    fn entries_are_sorted_canonically() {
        let report = Report::new(
            "quick",
            vec![
                entry("zz", "nope", 1.0),
                entry("aa", "nope", 1.0),
                entry("aa", "naySL", 1.0),
            ],
        );
        let keys: Vec<_> = report
            .entries
            .iter()
            .map(|e| (e.benchmark.clone(), e.tool.clone()))
            .collect();
        assert_eq!(
            keys,
            vec![
                ("aa".into(), "naySL".into()),
                ("aa".into(), "nope".into()),
                ("zz".into(), "nope".into())
            ] as Vec<(String, String)>
        );
    }

    #[test]
    fn aggregates_count_statuses_and_proofs() {
        let agg = sample().aggregates();
        assert_eq!(agg.total, 3);
        assert_eq!(agg.ok, 2);
        assert_eq!(agg.timed_out, 1);
        assert_eq!(agg.crashed, 0);
        assert_eq!(agg.proved, 2);
        assert!(agg.total_millis > 6000.0);
    }

    #[test]
    fn canonicalization_zeroes_time_but_keeps_verdicts() {
        let canon = sample().canonicalized();
        assert!(canon.entries.iter().all(|e| e.millis == 0.0));
        assert_eq!(canon.entries.len(), 3);
        assert_eq!(canon.aggregates().proved, 2);
    }

    #[test]
    fn comparing_a_report_with_itself_is_clean() {
        let report = sample();
        assert!(compare(&report, &report, &CompareConfig::default()).is_empty());
    }

    fn all_ok() -> Report {
        Report::new(
            "quick",
            vec![
                entry("mpg_ite2", "naySL", 120.0),
                entry("mpg_ite2", "nope", 900.0),
            ],
        )
    }

    #[test]
    fn verdict_flips_and_slowdowns_are_flagged() {
        let old = all_ok();
        let mut new = all_ok();
        new.entries[0].verdict = "unknown".into();
        new.entries[0].proved = false;
        assert_eq!(new.entries[1].tool, "nope");
        new.entries[1].millis = 2000.0;
        let regressions = compare(&old, &new, &CompareConfig::default());
        assert_eq!(regressions.len(), 2);
        assert!(regressions
            .iter()
            .any(|r| r.kind == RegressionKind::VerdictFlip));
        assert!(regressions
            .iter()
            .any(|r| r.kind == RegressionKind::Slowdown));
    }

    #[test]
    fn tainted_entries_suppress_slowdown_noise() {
        // An entry that shared its sweep with an abandoned job thread has an
        // inflated wall clock: the timeout itself gates (StatusChange), but
        // no Slowdown finding piles on top for the tainted entry.
        let mut old = all_ok();
        old.entries.push(entry("plane1", "nayHorn", 100.0));
        let mut new = all_ok();
        new.entries[1].millis = 9000.0; // would be a Slowdown on a clean run
        new.entries[1].tainted = true; // overlapped the abandoned thread
        new.entries.push(Entry {
            status: JobStatus::TimedOut,
            verdict: "-".into(),
            proved: false,
            iterations: 0,
            tainted: true,
            ..entry("plane1", "nayHorn", 5000.0)
        });
        let new = Report::new("quick", new.entries);
        let regressions = compare(&old, &new, &CompareConfig::default());
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].kind, RegressionKind::StatusChange);
    }

    #[test]
    fn untainted_entries_still_gate_despite_a_timeout_elsewhere() {
        // The fix over the old behaviour: a slowdown on an entry that
        // finished *before* any abandonment is a real regression even when
        // some other entry in the same report timed out.
        let mut old = all_ok();
        old.entries.push(entry("plane1", "nayHorn", 100.0));
        let mut new = all_ok();
        new.entries[1].millis = 9000.0; // Slowdown, untainted
        new.entries.push(Entry {
            status: JobStatus::TimedOut,
            verdict: "-".into(),
            proved: false,
            iterations: 0,
            tainted: true,
            ..entry("plane1", "nayHorn", 5000.0)
        });
        let new = Report::new("quick", new.entries);
        let regressions = compare(&old, &new, &CompareConfig::default());
        assert_eq!(regressions.len(), 2);
        assert!(regressions
            .iter()
            .any(|r| r.kind == RegressionKind::Slowdown));
        assert!(regressions
            .iter()
            .any(|r| r.kind == RegressionKind::StatusChange));
    }

    #[test]
    fn reports_without_the_tainted_field_parse_as_untainted() {
        let mut text = sample().to_json();
        // Strip every "tainted" line, simulating a pre-taint-tracking report.
        text = text
            .lines()
            .filter(|l| !l.contains("\"tainted\""))
            .collect::<Vec<_>>()
            .join("\n");
        // The previous line now ends with a trailing comma before `}`.
        text = text.replace(",\n    }", "\n    }");
        let parsed = Report::from_json(&text).expect("parse legacy report");
        assert!(parsed.entries.iter().all(|e| !e.tainted));
    }

    #[test]
    fn small_absolute_times_are_shielded_from_noise() {
        let old = Report::new("quick", vec![entry("tiny", "naySL", 1.0)]);
        let new = Report::new("quick", vec![entry("tiny", "naySL", 3.0)]);
        // 3x slower but under the 50ms floor: not a regression.
        assert!(compare(&old, &new, &CompareConfig::default()).is_empty());
        // With the floor lowered it is flagged.
        let config = CompareConfig {
            threshold_pct: 25.0,
            min_millis: 0.0,
        };
        assert_eq!(compare(&old, &new, &config).len(), 1);
    }

    #[test]
    fn missing_entries_and_status_changes_are_flagged() {
        let old = sample();
        let mut new = sample();
        new.entries.remove(2);
        new.entries[0].status = JobStatus::Crashed;
        new.entries[0].verdict = "-".into();
        new.entries[0].proved = false;
        let regressions = compare(&old, &new, &CompareConfig::default());
        assert!(regressions
            .iter()
            .any(|r| r.kind == RegressionKind::Missing));
        // The crashed entry's verdict also changed, which reports first.
        assert!(regressions.iter().any(
            |r| r.kind == RegressionKind::VerdictFlip || r.kind == RegressionKind::StatusChange
        ));
    }

    #[test]
    fn recovering_entries_are_improvements_not_regressions() {
        // Old: timed out (verdict "-"). New: completes and proves. The
        // verdicts differ, but an entry that *starts* completing must never
        // be flagged.
        let old = Report::new(
            "quick",
            vec![Entry {
                status: JobStatus::TimedOut,
                verdict: "-".into(),
                proved: false,
                iterations: 0,
                ..entry("plane1", "naySL", 5000.0)
            }],
        );
        let new = Report::new("quick", vec![entry("plane1", "naySL", 80.0)]);
        assert!(compare(&old, &new, &CompareConfig::default()).is_empty());
    }

    #[test]
    fn stopping_to_complete_reports_a_status_change_not_a_verdict_flip() {
        let old = Report::new("quick", vec![entry("plane1", "naySL", 80.0)]);
        let new = Report::new(
            "quick",
            vec![Entry {
                status: JobStatus::TimedOut,
                verdict: "-".into(),
                proved: false,
                iterations: 0,
                ..entry("plane1", "naySL", 5000.0)
            }],
        );
        let regressions = compare(&old, &new, &CompareConfig::default());
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].kind, RegressionKind::StatusChange);
    }

    #[test]
    fn reports_without_the_family_field_parse_as_family_less() {
        // The committed pre-family baseline has no `family` keys; its
        // entries parse family-less and its byte layout is preserved when
        // re-serialized (family is only emitted when set).
        let report = sample();
        let text = report.to_json();
        assert!(
            !text.contains("\"family\""),
            "family-less stays family-less"
        );
        let parsed = Report::from_json(&text).expect("parse");
        assert!(parsed.entries.iter().all(|e| e.family.is_empty()));
    }

    #[test]
    fn family_fields_and_aggregates_round_trip() {
        let report = Report::new(
            "fuzz-race",
            vec![
                family_entry("gen/plus_mod", "race", "plus_mod"),
                family_entry("gen/const_sum", "race", "const_sum"),
                entry("standalone", "race", 5.0),
            ],
        );
        let text = report.to_json();
        assert!(text.contains("\"families\""));
        assert!(text.contains("\"family\": \"plus_mod\""));
        let parsed = Report::from_json(&text).expect("parse back");
        assert_eq!(parsed, report);
        let families = parsed.family_aggregates();
        assert_eq!(families.len(), 2, "family-less entries are not grouped");
        assert_eq!(families["plus_mod"].total, 1);
        assert_eq!(families["const_sum"].proved, 1);
    }

    #[test]
    fn additive_families_do_not_trip_the_missing_entry_gate() {
        // The regression scenario: one report covers a workload family the
        // other does not (the family was added to — or is not yet in — the
        // generator catalogue). The per-entry Missing gate must not fire
        // for the uncovered family, in either comparison direction.
        let with_family = Report::new(
            "fuzz-race",
            vec![
                family_entry("gen/plus_mod", "race", "plus_mod"),
                family_entry("gen/shiny_new", "race", "shiny_new"),
            ],
        );
        let without = Report::new(
            "fuzz-race",
            vec![family_entry("gen/plus_mod", "race", "plus_mod")],
        );
        assert!(
            compare(&with_family, &without, &CompareConfig::default()).is_empty(),
            "a family absent from the new report must not report Missing"
        );
        assert!(
            compare(&without, &with_family, &CompareConfig::default()).is_empty(),
            "a family absent from the old report must not report Missing"
        );
    }

    #[test]
    fn missing_entries_within_a_shared_family_still_gate() {
        let old = Report::new(
            "fuzz-race",
            vec![
                family_entry("gen/plus_mod", "race", "plus_mod"),
                family_entry("gen/plus_mod_deep", "race", "plus_mod"),
            ],
        );
        let new = Report::new(
            "fuzz-race",
            vec![family_entry("gen/plus_mod", "race", "plus_mod")],
        );
        let regressions = compare(&old, &new, &CompareConfig::default());
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert_eq!(regressions[0].kind, RegressionKind::Missing);
        // Family-less entries keep the strict behaviour.
        let old_plain = Report::new("quick", vec![entry("plain", "naySL", 10.0)]);
        let new_plain = Report::new("quick", vec![]);
        assert_eq!(
            compare(&old_plain, &new_plain, &CompareConfig::default()).len(),
            1
        );
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let mut text = sample().to_json();
        text = text.replace("\"schema_version\": 1", "\"schema_version\": 99");
        let err = Report::from_json(&text).unwrap_err();
        assert!(err.contains("schema version"), "{err}");
    }
}
