//! A bottom-up enumerative SyGuS-with-examples solver.
//!
//! This crate plays the role that ESolver plays inside nay's CEGIS loop
//! (§7): given a grammar `G`, a specification `ψ` and a finite example set
//! `E`, find some term `e ∈ L(G)` with `ψ^E(⟦e⟧_E)` — i.e. a solution of the
//! example-restricted problem `sy_E` — or report that no term of size up to
//! the configured bound exists.
//!
//! The enumerator works size by size and prunes observationally equivalent
//! terms: two terms derivable from the same nonterminal that produce the same
//! output vector on `E` are interchangeable in any context, so only the first
//! one found is kept. This is the standard technique used by enumerative
//! SyGuS solvers.
//!
//! Since the hash-consing refactor the whole search runs on
//! [`sygus::TermArena`] ids: candidate terms are `Copy`-able [`TermId`]s,
//! compound candidates are built by interning (one hash probe) instead of
//! deep-cloning subtrees, and `⟦·⟧_E` is memoized per distinct subterm, so
//! a size-`n` candidate costs `O(arity · |E|)` to evaluate instead of
//! `O(n · |E|)`. The owned [`Term`] tree is materialized only at the
//! found-solution boundary ([`EnumerationResult::Found`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap, HashSet};
use sygus::{ExampleSet, Grammar, NonTerminal, Output, Problem, Term, TermArena, TermId};

/// The outcome of an enumerative search, with the found term extracted to
/// the owned-tree boundary type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EnumerationResult {
    /// A term of `L(G)` satisfying the specification on every example.
    Found(Term),
    /// No term of size up to the bound satisfies the specification on the
    /// examples. If `exhausted` is `true` the search space itself was
    /// exhausted (every observational-equivalence class was enumerated), so
    /// the example-restricted problem is *unrealizable*.
    NotFound {
        /// The size bound that was reached.
        size_bound: usize,
        /// Whether the whole (quotiented) search space was covered.
        exhausted: bool,
    },
}

impl EnumerationResult {
    /// The found term, if any.
    pub fn term(&self) -> Option<&Term> {
        match self {
            EnumerationResult::Found(t) => Some(t),
            EnumerationResult::NotFound { .. } => None,
        }
    }
}

/// The outcome of an enumerative search on an arena the caller owns: the
/// found term stays an interned [`TermId`] (extract it with
/// [`TermArena::extract`] when an owned tree is needed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IdEnumerationResult {
    /// An interned term of `L(G)` satisfying the specification on every
    /// example.
    Found(TermId),
    /// No term of size up to the bound satisfies the specification; see
    /// [`EnumerationResult::NotFound`].
    NotFound {
        /// The size bound that was reached.
        size_bound: usize,
        /// Whether the whole (quotiented) search space was covered.
        exhausted: bool,
    },
}

/// Configuration of the enumerator.
#[derive(Clone, Debug)]
pub struct Enumerator {
    max_size: usize,
    max_terms: usize,
}

impl Default for Enumerator {
    fn default() -> Self {
        Enumerator {
            max_size: 20,
            max_terms: 200_000,
        }
    }
}

impl Enumerator {
    /// Creates an enumerator with the default bounds (term size ≤ 20,
    /// at most 200 000 distinct equivalence classes).
    pub fn new() -> Self {
        Enumerator::default()
    }

    /// Sets the maximal term size (number of AST nodes) explored.
    pub fn with_max_size(mut self, max_size: usize) -> Self {
        self.max_size = max_size;
        self
    }

    /// Sets the maximal number of observational-equivalence classes kept.
    pub fn with_max_terms(mut self, max_terms: usize) -> Self {
        self.max_terms = max_terms;
        self
    }

    /// Searches for a term of `problem.grammar()` that satisfies
    /// `problem.spec()` on every example of `examples`.
    ///
    /// With an empty example set every term vacuously satisfies the
    /// specification, so the smallest derivable term is returned (if the
    /// grammar derives any term at all).
    pub fn solve(&self, problem: &Problem, examples: &ExampleSet) -> EnumerationResult {
        let mut arena = TermArena::new();
        let outcome = self.solve_with_arena(&mut arena, problem, examples);
        self.extract_result(&arena, outcome)
    }

    /// [`Enumerator::solve`] on a caller-owned arena: every candidate built
    /// during the search stays interned, so a CEGIS driver that calls this
    /// repeatedly (with growing example sets) reuses the interned subterm
    /// structure across iterations instead of rebuilding it. The found
    /// candidate is returned as an id — the owned [`Term`] is only
    /// materialized where the caller needs it (the witness boundary).
    pub fn solve_with_arena(
        &self,
        arena: &mut TermArena,
        problem: &Problem,
        examples: &ExampleSet,
    ) -> IdEnumerationResult {
        let spec = problem.spec();
        self.enumerate_ids(arena, problem.grammar(), examples, |_, _, out| {
            examples
                .iter()
                .enumerate()
                .all(|(j, e)| spec.holds(e, out.as_i64(j)))
        })
    }

    /// Generic driver: enumerate `grammar` terms (modulo observational
    /// equivalence on `examples`) and return the first term derivable from
    /// the start symbol for which `accept` holds. The accept callback sees
    /// the extracted owned tree; id-level callers should use
    /// [`Enumerator::solve_with_arena`] to avoid the materialization.
    pub fn solve_grammar(
        &self,
        grammar: &Grammar,
        examples: &ExampleSet,
        accept: impl Fn(&Term) -> bool,
    ) -> EnumerationResult {
        let mut arena = TermArena::new();
        let outcome = self.enumerate_ids(&mut arena, grammar, examples, |arena, id, _| {
            accept(&arena.extract(id))
        });
        self.extract_result(&arena, outcome)
    }

    fn extract_result(&self, arena: &TermArena, outcome: IdEnumerationResult) -> EnumerationResult {
        match outcome {
            IdEnumerationResult::Found(id) => EnumerationResult::Found(arena.extract(id)),
            IdEnumerationResult::NotFound {
                size_bound,
                exhausted,
            } => EnumerationResult::NotFound {
                size_bound,
                exhausted,
            },
        }
    }

    /// The size-by-size enumeration loop on interned ids. `accept` is
    /// called (with the arena and the candidate's output vector) only for
    /// candidates derivable from the start symbol that open a new
    /// observational-equivalence class.
    fn enumerate_ids(
        &self,
        arena: &mut TermArena,
        grammar: &Grammar,
        examples: &ExampleSet,
        mut accept: impl FnMut(&mut TermArena, TermId, &Output) -> bool,
    ) -> IdEnumerationResult {
        // signature tables: nonterminal → set of output signatures seen
        let mut signatures: HashMap<&NonTerminal, HashSet<Vec<i64>>> = HashMap::new();
        // representatives by nonterminal and size (id-keyed: no subtree
        // clones, a representative is 4 bytes)
        let mut by_size: HashMap<&NonTerminal, BTreeMap<usize, Vec<TermId>>> = grammar
            .nonterminals()
            .iter()
            .map(|nt| (nt, BTreeMap::new()))
            .collect();
        let mut total_terms = 0usize;

        let max_arity = grammar
            .productions()
            .iter()
            .map(|p| p.args.len())
            .max()
            .unwrap_or(0);
        // largest size at which a new observational class appeared
        let mut largest_new_size = 0usize;

        for size in 1..=self.max_size {
            let mut added_any = false;
            for nt in grammar.nonterminals() {
                let mut new_terms: Vec<TermId> = Vec::new();
                for p in grammar.productions_of(nt) {
                    let op = arena.op_from_symbol(&p.symbol);
                    if p.args.is_empty() {
                        if size == 1 {
                            new_terms.push(arena.intern(op, &[]));
                        }
                        continue;
                    }
                    if size < p.args.len() + 1 {
                        continue;
                    }
                    // enumerate argument size splits summing to size-1
                    let budget = size - 1;
                    let mut combos: Vec<(usize, Vec<TermId>)> = vec![(0, Vec::new())];
                    for (arg_index, arg) in p.args.iter().enumerate() {
                        let remaining_args = p.args.len() - arg_index - 1;
                        let mut next = Vec::new();
                        for (used, ids) in &combos {
                            let max_here = budget - used - remaining_args;
                            for arg_size in 1..=max_here {
                                let candidates = by_size
                                    .get(arg)
                                    .and_then(|per_size| per_size.get(&arg_size));
                                let Some(candidates) = candidates else {
                                    continue;
                                };
                                for &c in candidates {
                                    let mut ids2 = ids.clone();
                                    ids2.push(c);
                                    next.push((used + arg_size, ids2));
                                }
                            }
                        }
                        combos = next;
                    }
                    for (used, args) in combos {
                        if used != budget {
                            continue;
                        }
                        if let Ok(t) = arena.try_intern(op, &args) {
                            new_terms.push(t);
                        }
                    }
                }

                // observational-equivalence pruning + acceptance check
                for t in new_terms {
                    let Ok(out) = arena.eval_id(t, examples) else {
                        continue;
                    };
                    let sig: Vec<i64> = (0..out.len()).map(|j| out.as_i64(j)).collect();
                    let entry = signatures.entry(nt).or_default();
                    if examples.is_empty() || entry.insert(sig) {
                        if nt == grammar.start() && accept(arena, t, &out) {
                            return IdEnumerationResult::Found(t);
                        }
                        by_size
                            .get_mut(nt)
                            .expect("every nonterminal is pre-registered")
                            .entry(size)
                            .or_default()
                            .push(t);
                        added_any = true;
                        total_terms += 1;
                        if total_terms >= self.max_terms {
                            return IdEnumerationResult::NotFound {
                                size_bound: size,
                                exhausted: false,
                            };
                        }
                    }
                }
            }
            if added_any {
                largest_new_size = size;
            } else if size > max_arity * largest_new_size {
                // Every representative has size ≤ largest_new_size, so any
                // term buildable from representatives has size at most
                // 1 + max_arity·largest_new_size — and all of those sizes
                // have now been processed without discovering a new
                // observational class. The (quotiented) search space is
                // exhausted.
                return IdEnumerationResult::NotFound {
                    size_bound: size,
                    exhausted: !examples.is_empty(),
                };
            }
        }
        IdEnumerationResult::NotFound {
            size_bound: self.max_size,
            exhausted: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logic::{Formula, LinearExpr, Var};
    use sygus::{Example, GrammarBuilder, Sort, Spec, Symbol};

    fn g1_problem() -> Problem {
        // §2: grammar G1 (terms 3kx), spec f(x) = 2x + 2
        let grammar = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .nonterminal("S1", Sort::Int)
            .nonterminal("S2", Sort::Int)
            .nonterminal("S3", Sort::Int)
            .production("Start", Symbol::Plus, &["S1", "Start"])
            .production("Start", Symbol::Num(0), &[])
            .production("S1", Symbol::Plus, &["S2", "S3"])
            .production("S2", Symbol::Plus, &["S3", "S3"])
            .production("S3", Symbol::Var("x".to_string()), &[])
            .build()
            .unwrap();
        let spec = Spec::output_equals(
            LinearExpr::var(Var::new("x")).scale(2) + LinearExpr::constant(2),
            vec!["x".to_string()],
        );
        Problem::new("g1", grammar, spec)
    }

    #[test]
    fn finds_a_solution_when_one_exists() {
        // grammar of all sums of x and 1; spec f(x) = x + 2
        let grammar = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .production("Start", Symbol::Plus, &["Start", "Start"])
            .production("Start", Symbol::Num(1), &[])
            .production("Start", Symbol::Var("x".to_string()), &[])
            .build()
            .unwrap();
        let spec = Spec::output_equals(
            LinearExpr::var(Var::new("x")) + LinearExpr::constant(2),
            vec!["x".to_string()],
        );
        let problem = Problem::new("xplus2", grammar, spec);
        let examples = ExampleSet::for_single_var("x", [0, 5]);
        match Enumerator::new().solve(&problem, &examples) {
            EnumerationResult::Found(t) => {
                assert!(problem.satisfied_on_examples(&t, &examples).unwrap());
                assert!(problem.grammar().contains_term(&t));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn id_and_tree_front_ends_agree() {
        let grammar = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .production("Start", Symbol::Plus, &["Start", "Start"])
            .production("Start", Symbol::Num(1), &[])
            .production("Start", Symbol::Var("x".to_string()), &[])
            .build()
            .unwrap();
        let spec = Spec::output_equals(
            LinearExpr::var(Var::new("x")) + LinearExpr::constant(2),
            vec!["x".to_string()],
        );
        let problem = Problem::new("xplus2", grammar, spec);
        let examples = ExampleSet::for_single_var("x", [0, 5]);
        let mut arena = TermArena::new();
        let enumerator = Enumerator::new();
        let by_id = enumerator.solve_with_arena(&mut arena, &problem, &examples);
        let IdEnumerationResult::Found(id) = by_id else {
            panic!("unexpected {by_id:?}");
        };
        match enumerator.solve(&problem, &examples) {
            EnumerationResult::Found(t) => assert_eq!(arena.extract(id), t),
            other => panic!("unexpected {other:?}"),
        }
        assert!(!arena.is_empty(), "the search interned its candidates");
    }

    #[test]
    fn arena_reuse_across_example_sets_is_consistent() {
        // the CEGIS pattern: one arena, successive solve calls with growing
        // example sets — each call must behave exactly like a fresh solve
        let problem = g1_problem();
        let enumerator = Enumerator::new().with_max_size(8);
        let mut shared = TermArena::new();
        for examples in [
            ExampleSet::for_single_var("x", [1]),
            ExampleSet::for_single_var("x", [1, 2]),
            ExampleSet::for_single_var("x", [1, 2, -3]),
        ] {
            let mut fresh = TermArena::new();
            let reused = enumerator.solve_with_arena(&mut shared, &problem, &examples);
            let isolated = enumerator.solve_with_arena(&mut fresh, &problem, &examples);
            match (reused, isolated) {
                (IdEnumerationResult::Found(a), IdEnumerationResult::Found(b)) => {
                    assert_eq!(shared.extract(a), fresh.extract(b));
                }
                (a, b) => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn g1_with_example_x1_is_unrealizable_and_search_saturates() {
        // On E = ⟨x=1⟩ the grammar produces only multiples of 3, so there are
        // finitely many observational classes... in fact infinitely many
        // (3, 6, 9, …), so the enumerator cannot prove unrealizability; it
        // must simply fail to find a solution up to the bound.
        let problem = g1_problem();
        let examples = ExampleSet::for_single_var("x", [1]);
        match Enumerator::new()
            .with_max_size(11)
            .solve(&problem, &examples)
        {
            EnumerationResult::NotFound { .. } => {}
            EnumerationResult::Found(t) => panic!("no solution should exist, found {t}"),
        }
    }

    #[test]
    fn saturation_detects_unrealizability_for_finite_languages() {
        // Start ::= Num(1) | Num(2): only two values, spec wants f(x) = 3.
        let grammar = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .production("Start", Symbol::Num(1), &[])
            .production("Start", Symbol::Num(2), &[])
            .build()
            .unwrap();
        let spec = Spec::output_equals(LinearExpr::constant(3), vec!["x".to_string()]);
        let problem = Problem::new("finite", grammar, spec);
        let examples = ExampleSet::for_single_var("x", [0]);
        match Enumerator::new().solve(&problem, &examples) {
            EnumerationResult::NotFound { exhausted, .. } => assert!(exhausted),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn observational_equivalence_prunes_duplicates() {
        // With one example x = 0, the terms x, x+x, x+x+x … all have output 0
        // and must collapse into one class, so a solution requiring constant 1
        // is found quickly even though the grammar is infinite.
        let grammar = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .production("Start", Symbol::Plus, &["Start", "Start"])
            .production("Start", Symbol::Var("x".to_string()), &[])
            .production("Start", Symbol::Num(1), &[])
            .build()
            .unwrap();
        let spec = Spec::new(
            Formula::gt(LinearExpr::var(Spec::output_var()), LinearExpr::constant(0)),
            vec!["x".to_string()],
            Sort::Int,
        );
        let problem = Problem::new("positive", grammar, spec);
        let examples = ExampleSet::from_examples([Example::from_pairs([("x", 0)])]);
        match Enumerator::new().solve(&problem, &examples) {
            EnumerationResult::Found(t) => {
                assert!(problem.satisfied_on_examples(&t, &examples).unwrap())
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn clia_enumeration() {
        // max2-like grammar, spec f(x,y) ≥ x ∧ f(x,y) ≥ y ∧ (f = x ∨ f = y)
        let grammar = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .nonterminal("B", Sort::Bool)
            .production("Start", Symbol::Var("x".to_string()), &[])
            .production("Start", Symbol::Var("y".to_string()), &[])
            .production("Start", Symbol::IfThenElse, &["B", "Start", "Start"])
            .production("B", Symbol::LessThan, &["Start", "Start"])
            .build()
            .unwrap();
        let out = LinearExpr::var(Spec::output_var());
        let x = LinearExpr::var(Var::new("x"));
        let y = LinearExpr::var(Var::new("y"));
        let spec = Spec::new(
            Formula::and(vec![
                Formula::ge(out.clone(), x.clone()),
                Formula::ge(out.clone(), y.clone()),
                Formula::or(vec![Formula::eq(out.clone(), x), Formula::eq(out, y)]),
            ]),
            vec!["x".to_string(), "y".to_string()],
            Sort::Int,
        );
        let problem = Problem::new("max2", grammar, spec);
        let examples = ExampleSet::from_examples([
            Example::from_pairs([("x", 1), ("y", 5)]),
            Example::from_pairs([("x", 4), ("y", 2)]),
        ]);
        match Enumerator::new().solve(&problem, &examples) {
            EnumerationResult::Found(t) => {
                assert!(problem.satisfied_on_examples(&t, &examples).unwrap());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_example_set_returns_smallest_term() {
        let problem = g1_problem();
        match Enumerator::new().solve(&problem, &ExampleSet::new()) {
            EnumerationResult::Found(t) => assert_eq!(t, Term::num(0)),
            other => panic!("unexpected {other:?}"),
        }
    }
}
