//! The shared log₂ latency histogram.
//!
//! This is the single percentile implementation for the whole workspace:
//! `bench::fuzz` folds per-(family, tool) latencies into it, `bench-serve`
//! summarizes load-run latencies with it, and the atomic
//! [`Histogram`](crate::Histogram) metric snapshots into it for quantile
//! queries and Prometheus exposition.

/// A log₂-bucketed latency histogram over microseconds: bucket `b` holds
/// durations in `[2^(b−1), 2^b)` µs. 48 buckets span sub-microsecond to
/// ~8.9 years, the merge is a plain `u64` add per bucket (commutative and
/// exact, unlike merging f64 sums), and quantiles come back as the upper
/// bucket edge — within 2× of the true value, plenty for a p50/p99 trend
/// line across nightly campaign artifacts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHist {
    buckets: [u64; BUCKETS],
    count: u64,
}

/// Number of log₂ buckets in a [`LatencyHist`].
pub const BUCKETS: usize = 48;

impl Default for LatencyHist {
    fn default() -> Self {
        LatencyHist {
            buckets: [0; BUCKETS],
            count: 0,
        }
    }
}

/// The bucket index for a duration in microseconds.
#[must_use]
pub fn bucket_of_micros(micros: u64) -> usize {
    if micros == 0 {
        0
    } else {
        (64 - micros.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

impl LatencyHist {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample given in milliseconds.
    pub fn record_millis(&mut self, millis: f64) {
        let micros = (millis * 1000.0).max(0.0) as u64;
        self.record_micros(micros);
    }

    /// Records one sample given in microseconds.
    pub fn record_micros(&mut self, micros: u64) {
        self.buckets[bucket_of_micros(micros)] += 1;
        self.count += 1;
    }

    /// Adds `n` samples directly to `bucket` (used when reconstructing a
    /// snapshot from an atomic [`Histogram`](crate::Histogram)).
    pub(crate) fn add_bucket(&mut self, bucket: usize, n: u64) {
        self.buckets[bucket] += n;
        self.count += n;
    }

    /// Folds another histogram into this one (exact, commutative).
    pub fn merge(&mut self, other: &LatencyHist) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
    }

    /// Total number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The raw per-bucket counts.
    #[must_use]
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// The upper edge (in milliseconds) of the bucket holding the
    /// `q`-quantile sample; `0.0` on an empty histogram.
    #[must_use]
    pub fn quantile_millis(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (bucket, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return (1u64 << bucket) as f64 / 1000.0;
            }
        }
        (1u64 << (BUCKETS - 1)) as f64 / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_and_merge() {
        let mut a = LatencyHist::default();
        for millis in [0.1, 0.2, 0.4, 0.8, 1.6] {
            a.record_millis(millis);
        }
        assert_eq!(a.count(), 5);
        // p50 of five log-spaced samples lands in the middle bucket; the
        // reported value is that bucket's upper edge, so it is >= the
        // true median and within 2x of it.
        let p50 = a.quantile_millis(0.50);
        assert!((0.4..=0.8 * 2.0).contains(&p50), "p50 = {p50}");
        let p99 = a.quantile_millis(0.99);
        assert!((1.6..=1.6 * 2.0).contains(&p99), "p99 = {p99}");

        let mut b = LatencyHist::default();
        b.record_millis(10.0);
        b.merge(&a);
        assert_eq!(b.count(), 6);
        assert!(b.quantile_millis(1.0) >= 10.0);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        assert_eq!(LatencyHist::default().quantile_millis(0.99), 0.0);
    }

    #[test]
    fn zero_and_huge_samples_clamp_to_edge_buckets() {
        let mut h = LatencyHist::default();
        h.record_micros(0);
        h.record_micros(u64::MAX);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[BUCKETS - 1], 1);
    }

    #[test]
    fn bucket_edges_are_powers_of_two() {
        assert_eq!(bucket_of_micros(1), 1);
        assert_eq!(bucket_of_micros(2), 2);
        assert_eq!(bucket_of_micros(3), 2);
        assert_eq!(bucket_of_micros(4), 3);
        assert_eq!(bucket_of_micros(1024), 11);
    }
}
