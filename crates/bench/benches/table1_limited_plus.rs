//! Criterion bench regenerating the LimitedPlus rows of Table 1.

use criterion::{criterion_group, criterion_main, Criterion};
use nay::check::check_unrealizable;
use nay::Mode;

fn bench_table1_plus(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_limited_plus");
    group.sample_size(10);
    for bench in bench::select(benchmarks::Family::LimitedPlus, true)
        .into_iter()
        .take(6)
    {
        group.bench_function(format!("naySL/{}", bench.name), |b| {
            b.iter(|| check_unrealizable(&bench.problem, &bench.witness_examples, &Mode::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1_plus);
criterion_main!(benches);
