//! Cancellation-latency tests: a token tripped *mid-run* is observed
//! within one loop iteration by both engines, so the portfolio's loser
//! aborts promptly instead of running to completion.

use logic::{Formula, LinearExpr, Var};
use nay::Nay;
use portfolio::{solve_nay, solve_nope, Cancel, NopeEngine, SolveVerdict};
use std::time::{Duration, Instant};
use sygus::{GrammarBuilder, Problem, Sort, Spec, Symbol};

fn var(name: &str) -> LinearExpr {
    LinearExpr::var(Var::new(name))
}

/// `mpg_ite1` from the LimitedConst family: nay needs a long CEGIS run
/// (hundreds of milliseconds in release, much more here) to prove it.
fn slow_for_nay() -> Problem {
    let grammar = GrammarBuilder::new("Start")
        .nonterminal("Start", Sort::Int)
        .nonterminal("Cond", Sort::Bool)
        .production("Start", Symbol::Var("x".to_string()), &[])
        .production("Start", Symbol::Var("y".to_string()), &[])
        .production("Start", Symbol::Num(0), &[])
        .production("Start", Symbol::Num(1), &[])
        .production("Start", Symbol::IfThenElse, &["Cond", "Start", "Start"])
        .production("Cond", Symbol::LessThan, &["Start", "Start"])
        .production("Cond", Symbol::And, &["Cond", "Cond"])
        .build()
        .unwrap();
    let below = Formula::lt(var("x"), LinearExpr::constant(0));
    let formula = Formula::and(vec![
        Formula::implies(
            below.clone(),
            Formula::eq(LinearExpr::var(Spec::output_var()), var("x")),
        ),
        Formula::implies(
            Formula::not(below),
            Formula::eq(
                LinearExpr::var(Spec::output_var()),
                var("x") + LinearExpr::constant(-3),
            ),
        ),
    ]);
    let spec = Spec::new(formula, vec!["x".to_string(), "y".to_string()], Sort::Int);
    Problem::new("mpg_ite1", grammar, spec)
}

/// `Start ::= x | 1 | Start + Start` with `f(x) = x + 2`: realizable on
/// every example set, so the nope example-growing loop keeps iterating
/// until its round budget — a controllable long-runner.
fn slow_for_nope() -> Problem {
    let grammar = GrammarBuilder::new("Start")
        .nonterminal("Start", Sort::Int)
        .production("Start", Symbol::Var("x".to_string()), &[])
        .production("Start", Symbol::Num(1), &[])
        .production("Start", Symbol::Plus, &["Start", "Start"])
        .build()
        .unwrap();
    let spec = Spec::output_equals(var("x") + LinearExpr::constant(2), vec!["x".to_string()]);
    Problem::new("xplus2", grammar, spec)
}

/// Trips the token after `delay` on a helper thread.
fn cancel_after(cancel: &Cancel, delay: Duration) -> std::thread::JoinHandle<()> {
    let remote = cancel.clone();
    std::thread::spawn(move || {
        std::thread::sleep(delay);
        remote.cancel();
    })
}

#[test]
fn nay_observes_a_mid_run_cancel() {
    let cancel = Cancel::new();
    let trip = cancel_after(&cancel, Duration::from_millis(2));
    let started = Instant::now();
    let outcome = solve_nay(&slow_for_nay(), &cancel, &Nay::new());
    let elapsed = started.elapsed();
    trip.join().unwrap();
    assert_eq!(outcome.verdict, SolveVerdict::Cancelled);
    // "promptly" means within one loop iteration, not a full run; one inner
    // CEGIS round on this problem is far below this generous ceiling.
    assert!(elapsed < Duration::from_secs(30), "took {elapsed:?}");
}

#[test]
fn nope_observes_a_mid_run_cancel() {
    let cancel = Cancel::new();
    // 10k example-growing rounds would take far longer than the whole test
    // suite; only a prompt cancellation can end this run.
    let engine = NopeEngine::new().with_max_rounds(10_000);
    let trip = cancel_after(&cancel, Duration::from_millis(2));
    let started = Instant::now();
    let outcome = solve_nope(&slow_for_nope(), &cancel, &engine);
    let elapsed = started.elapsed();
    trip.join().unwrap();
    assert_eq!(outcome.verdict, SolveVerdict::Cancelled);
    assert!(elapsed < Duration::from_secs(30), "took {elapsed:?}");
}
