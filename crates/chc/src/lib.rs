//! Constrained Horn clauses (CHCs) and an approximate Horn solver.
//!
//! §4.3 of the paper observes that the GFA equations of a SyGuS-with-examples
//! problem can be encoded as constrained Horn clauses (one predicate per
//! nonterminal, Example 4.7) and handed to an off-the-shelf Horn solver such
//! as Spacer; this is the `nayHorn` mode of the tool. This crate provides:
//!
//! * [`encode`] — the CHC encoding itself (printable in an SMT-LIB-like
//!   syntax),
//! * [`domain`] — a numeric abstract domain (intervals × congruences per
//!   example, three-valued Booleans for Boolean nonterminals),
//! * [`HornSolver`] — a sound, incomplete solver that discharges the Horn
//!   query by abstract interpretation with widening over that domain.
//!
//! The abstract-interpretation solver replaces Z3/Spacer (unavailable in this
//! reproduction); like Spacer it either *proves* the query unsatisfiable —
//! establishing unrealizability — or gives up with `Unknown`. See DESIGN.md
//! for the substitution rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod domain;
pub mod encode;
mod solver;

pub use encode::{HornClause, HornSystem, PredicateApp};
pub use solver::{HornSolver, HornVerdict};
