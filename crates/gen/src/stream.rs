//! The deterministic instance stream: seeded, deduplicated, and rendered
//! to SyGuS-IF text on demand.
//!
//! The stream is an infinite iterator — callers `take(count)` from it — in
//! the style of a streaming data generator: per-instance state is derived
//! from `(base_seed, draw_index)` alone, so instance `i` is the same bytes
//! whether the consumer materializes a corpus directory or pipes problems
//! straight into the solving engines, and regardless of platform or
//! worker count. The only memory the stream keeps is one `u64` fingerprint
//! per *emitted* instance (for deduplication), keeping a full corpus-scale
//! sweep bounded.

use crate::builder::{build, Built};
use crate::families::{Expectation, Family, Scale};
use crate::rng::{instance_seed, GenRng};
use std::collections::BTreeSet;
use std::path::Path;
use sygus::parser::problem_to_sygus;
use sygus::{Problem, Term};

/// The generator configuration: a base seed, the families to draw from
/// (round-robin), and the scaling knobs.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Base seed of the sweep; everything else derives from it.
    pub seed: u64,
    /// Families to emit, in round-robin order. Must be non-empty.
    pub families: Vec<Family>,
    /// Scaling knobs applied to every instance.
    pub scale: Scale,
}

impl GenConfig {
    /// The default configuration for a seed: all families, default scale.
    pub fn new(seed: u64) -> GenConfig {
        GenConfig {
            seed,
            families: Family::ALL.to_vec(),
            scale: Scale::default(),
        }
    }

    /// Restricts the sweep to the given families.
    pub fn with_families(mut self, families: Vec<Family>) -> GenConfig {
        assert!(!families.is_empty(), "at least one family is required");
        self.families = families;
        self
    }

    /// The family drawn at one draw index (round-robin over
    /// [`GenConfig::families`]).
    pub fn family_at(&self, draw_index: u64) -> Family {
        self.families[(draw_index % self.families.len() as u64) as usize]
    }

    /// Builds the instance at one draw index — a **pure function** of
    /// `(config, draw_index)`, with no stream state whatsoever: instance
    /// `i` is the same bytes no matter which shard or worker constructs
    /// it, in what order, or how many times. This is the property the
    /// sharded fuzz driver leans on (1BRC-style): the index space
    /// `0..count` can be split into arbitrary ranges, each rebuilt locally
    /// from seeds, with no generator thread and no corpus ever
    /// materialized.
    ///
    /// Unlike [`ProblemStream`], there is **no deduplication** — the
    /// instance is named by its draw index and repeated content across
    /// indices is allowed (dedup requires global memory, which is exactly
    /// what a constant-memory million-instance sweep cannot afford).
    pub fn instance_at(&self, draw_index: u64) -> GeneratedInstance {
        let family = self.family_at(draw_index);
        let seed = instance_seed(self.seed, draw_index);
        let mut rng = GenRng::from_seed(seed);
        let built = build(family, &mut rng, &self.scale);
        GeneratedInstance {
            family,
            index: draw_index,
            seed,
            expected: built.expected,
            witness: built.witness,
            problem: built
                .problem
                .with_name(GeneratedInstance::name_for(family, draw_index)),
        }
    }
}

/// A dedup-free iterator over [`GenConfig::instance_at`] for the draw
/// indices `start..end` — one shard of a fuzz campaign's index space. The
/// stream holds no per-instance state: memory is `O(1)` in the shard
/// length, and two shards covering the same range yield identical
/// instances.
#[derive(Clone, Debug)]
pub struct ShardStream {
    config: GenConfig,
    next: u64,
    end: u64,
}

impl ShardStream {
    /// The shard covering draw indices `start..end` (empty when
    /// `start >= end`).
    pub fn new(config: GenConfig, start: u64, end: u64) -> ShardStream {
        assert!(
            !config.families.is_empty(),
            "at least one family is required"
        );
        ShardStream {
            config,
            next: start,
            end,
        }
    }
}

impl Iterator for ShardStream {
    type Item = GeneratedInstance;

    fn next(&mut self) -> Option<GeneratedInstance> {
        if self.next >= self.end {
            return None;
        }
        let instance = self.config.instance_at(self.next);
        self.next += 1;
        Some(instance)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.end - self.next) as usize;
        (remaining, Some(remaining))
    }
}

/// One emitted instance: the problem plus everything needed to reproduce,
/// name, and judge it.
#[derive(Clone, Debug)]
pub struct GeneratedInstance {
    /// The family the instance belongs to.
    pub family: Family,
    /// Emission index (0-based, contiguous over the stream's output).
    pub index: u64,
    /// The instance's own seed: `GenRng::from_seed(seed)` rebuilds exactly
    /// this instance via [`crate::builder::build`], independent of the
    /// stream position it was emitted at.
    pub seed: u64,
    /// The by-construction verdict class.
    pub expected: Expectation,
    /// A witness term, present iff `expected` is realizable.
    pub witness: Option<Term>,
    /// The generated problem, named [`GeneratedInstance::name`].
    pub problem: Problem,
}

impl GeneratedInstance {
    /// The instance's benchmark name: `gen_<family>_<index>` (zero-padded
    /// so lexicographic and numeric order agree).
    pub fn name(&self) -> String {
        Self::name_for(self.family, self.index)
    }

    fn name_for(family: Family, index: u64) -> String {
        format!("gen_{}_{:05}", family.name(), index)
    }

    /// Renders the instance as a SyGuS-IF `.sl` document with a
    /// reproducibility header.
    pub fn to_sl(&self) -> String {
        format!(
            "; generated by `reproduce gen` — do not edit by hand\n\
             ; family={} instance_seed={} expected={}\n{}",
            self.family.name(),
            self.seed,
            self.expected.name(),
            problem_to_sygus(&self.problem, "f")
        )
    }
}

/// How many consecutive duplicate draws the stream tolerates before
/// concluding the configured families' instance space is exhausted and
/// ending the stream (instead of spinning forever on, say,
/// `--families max_gap --count 10000` when the family only has a few
/// dozen distinct instances).
const MAX_CONSECUTIVE_DUPLICATES: u64 = 10_000;

/// The deduplicated instance stream (unbounded until the configured
/// families' instance space is exhausted). See the module docs.
#[derive(Clone, Debug)]
pub struct ProblemStream {
    config: GenConfig,
    draw_index: u64,
    emitted: u64,
    seen: BTreeSet<u64>,
    /// Sticky exhaustion: once the duplicate cap trips, later `next()`
    /// calls return `None` immediately instead of re-scanning another
    /// [`MAX_CONSECUTIVE_DUPLICATES`] draws per call.
    exhausted: bool,
}

impl ProblemStream {
    /// Creates the stream for a configuration.
    pub fn new(config: GenConfig) -> ProblemStream {
        assert!(
            !config.families.is_empty(),
            "at least one family is required"
        );
        ProblemStream {
            config,
            draw_index: 0,
            emitted: 0,
            seen: BTreeSet::new(),
            exhausted: false,
        }
    }

    /// Builds the instance of one draw index without advancing the stream
    /// (the pure function underneath the iterator).
    fn draw(&self, draw_index: u64) -> (Family, u64, Built) {
        let family =
            self.config.families[(draw_index % self.config.families.len() as u64) as usize];
        let seed = instance_seed(self.config.seed, draw_index);
        let mut rng = GenRng::from_seed(seed);
        let built = build(family, &mut rng, &self.config.scale);
        (family, seed, built)
    }
}

impl Iterator for ProblemStream {
    type Item = GeneratedInstance;

    fn next(&mut self) -> Option<GeneratedInstance> {
        if self.exhausted {
            return None;
        }
        let mut consecutive_duplicates = 0u64;
        loop {
            if consecutive_duplicates >= MAX_CONSECUTIVE_DUPLICATES {
                self.exhausted = true;
                return None; // instance space exhausted
            }
            let (family, seed, built) = self.draw(self.draw_index);
            self.draw_index += 1;
            if !self.seen.insert(built.problem.fingerprint()) {
                consecutive_duplicates += 1;
                continue; // duplicate content; draw again
            }
            let index = self.emitted;
            self.emitted += 1;
            return Some(GeneratedInstance {
                family,
                index,
                seed,
                expected: built.expected,
                witness: built.witness,
                problem: built
                    .problem
                    .with_name(GeneratedInstance::name_for(family, index)),
            });
        }
    }
}

/// Writes `count` instances of the stream into `dir` as `.sl` files
/// (creating the directory), returning the emitted instances' metadata.
///
/// Output is byte-identical for a fixed `(config, count)`: file names,
/// contents, and set of files depend only on the configuration. To uphold
/// the set guarantee without ever destroying data (the target may be a
/// checked-in corpus whose promoted instances share the `gen_*.sl` naming
/// scheme), the call *refuses* a directory holding generated files this
/// configuration does not produce — point it at a clean directory or
/// remove the strays first. Non-generated files are ignored.
///
/// # Errors
/// Propagates I/O errors with the offending path; fails loudly on stale
/// `gen_*.sl` files as described above (before writing anything).
pub fn write_corpus(
    dir: &Path,
    count: usize,
    config: GenConfig,
) -> Result<Vec<GeneratedInstance>, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create `{}`: {e}", dir.display()))?;
    let instances: Vec<GeneratedInstance> = ProblemStream::new(config).take(count).collect();
    let fresh: BTreeSet<String> = instances
        .iter()
        .map(|i| format!("{}.sl", i.name()))
        .collect();
    let dir_entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read `{}`: {e}", dir.display()))?;
    let mut stale: Vec<String> = Vec::new();
    for dir_entry in dir_entries {
        let dir_entry = dir_entry.map_err(|e| format!("cannot read `{}`: {e}", dir.display()))?;
        let Ok(file_name) = dir_entry.file_name().into_string() else {
            continue;
        };
        if file_name.starts_with("gen_")
            && file_name.ends_with(".sl")
            && !fresh.contains(&file_name)
        {
            stale.push(file_name);
        }
    }
    if !stale.is_empty() {
        stale.sort();
        return Err(format!(
            "`{}` holds {} generated file(s) this configuration does not produce (e.g. `{}`): \
             write into a clean directory, or remove the stale files first",
            dir.display(),
            stale.len(),
            stale[0]
        ));
    }
    for instance in &instances {
        let path = dir.join(format!("{}.sl", instance.name()));
        std::fs::write(&path, instance.to_sl())
            .map_err(|e| format!("cannot write `{}`: {e}", path.display()))?;
    }
    Ok(instances)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_deduplicated() {
        let take = |seed: u64| -> Vec<(String, u64)> {
            ProblemStream::new(GenConfig::new(seed))
                .take(50)
                .map(|i| (i.name(), i.problem.fingerprint()))
                .collect()
        };
        let a = take(42);
        let b = take(42);
        assert_eq!(a, b, "same seed, same stream");
        let fingerprints: BTreeSet<u64> = a.iter().map(|(_, fp)| *fp).collect();
        assert_eq!(fingerprints.len(), 50, "emitted instances are distinct");
        let c = take(43);
        assert_ne!(a, c, "different seeds diverge");
    }

    #[test]
    fn emission_indices_are_contiguous_and_names_sort() {
        let instances: Vec<_> = ProblemStream::new(GenConfig::new(7)).take(20).collect();
        for (i, instance) in instances.iter().enumerate() {
            assert_eq!(instance.index, i as u64);
            assert_eq!(instance.problem.name(), instance.name());
        }
    }

    #[test]
    fn instances_reproduce_from_their_own_seed() {
        // The header's instance_seed alone rebuilds the instance, without
        // replaying the stream.
        let config = GenConfig::new(11);
        for instance in ProblemStream::new(config.clone()).take(25) {
            let mut rng = GenRng::from_seed(instance.seed);
            let rebuilt = crate::builder::build(instance.family, &mut rng, &config.scale);
            assert_eq!(
                rebuilt.problem.fingerprint(),
                instance.problem.fingerprint(),
                "instance_seed must reproduce {}",
                instance.name()
            );
            assert_eq!(rebuilt.expected, instance.expected);
        }
    }

    #[test]
    fn generated_sl_text_parses_back_to_the_same_fingerprint() {
        for instance in ProblemStream::new(GenConfig::new(3)).take(40) {
            let text = instance.to_sl();
            let parsed = sygus::parser::parse_problem(&text, &instance.name())
                .unwrap_or_else(|e| panic!("{} does not parse: {e}\n{text}", instance.name()));
            assert_eq!(
                parsed.fingerprint(),
                instance.problem.fingerprint(),
                "{} round-trips to different content",
                instance.name()
            );
        }
    }

    #[test]
    fn family_restriction_is_honoured() {
        let config = GenConfig::new(1).with_families(vec![Family::ConstSum]);
        for instance in ProblemStream::new(config).take(10) {
            assert_eq!(instance.family, Family::ConstSum);
        }
    }

    #[test]
    fn instance_at_is_pure_and_shards_tile_the_index_space() {
        let config = GenConfig::new(99);
        // Purity: rebuilding the same index twice gives the same bytes.
        for index in [0u64, 1, 7, 31, 1000, 123_456] {
            let a = config.instance_at(index);
            let b = config.instance_at(index);
            assert_eq!(a.problem.fingerprint(), b.problem.fingerprint());
            assert_eq!(a.name(), b.name());
            assert_eq!(a.expected, b.expected);
        }
        // Tiling: three shards over 0..30 reproduce the single full shard,
        // instance for instance, regardless of the split.
        let serial: Vec<(String, u64)> = ShardStream::new(config.clone(), 0, 30)
            .map(|i| (i.name(), i.problem.fingerprint()))
            .collect();
        let mut tiled: Vec<(String, u64)> = Vec::new();
        for (start, end) in [(0, 11), (11, 19), (19, 30)] {
            tiled.extend(
                ShardStream::new(config.clone(), start, end)
                    .map(|i| (i.name(), i.problem.fingerprint())),
            );
        }
        assert_eq!(serial, tiled);
        assert_eq!(serial.len(), 30);
    }

    #[test]
    fn instance_at_covers_every_family_round_robin() {
        let config = GenConfig::new(5);
        for (offset, family) in Family::ALL.iter().enumerate() {
            assert_eq!(config.family_at(offset as u64), *family);
            assert_eq!(
                config.family_at(offset as u64 + Family::ALL.len() as u64),
                *family
            );
            assert_eq!(config.instance_at(offset as u64).family, *family);
        }
    }

    #[test]
    fn write_corpus_is_byte_identical_across_runs() {
        let base = std::env::temp_dir().join(format!("gen_stream_test_{}", std::process::id()));
        let dir_a = base.join("a");
        let dir_b = base.join("b");
        write_corpus(&dir_a, 30, GenConfig::new(42)).unwrap();
        write_corpus(&dir_b, 30, GenConfig::new(42)).unwrap();
        let read_all = |dir: &Path| -> Vec<(String, String)> {
            let mut files: Vec<_> = std::fs::read_dir(dir)
                .unwrap()
                .map(|e| e.unwrap().path())
                .collect();
            files.sort();
            files
                .into_iter()
                .map(|p| {
                    (
                        p.file_name().unwrap().to_string_lossy().into_owned(),
                        std::fs::read_to_string(&p).unwrap(),
                    )
                })
                .collect()
        };
        assert_eq!(read_all(&dir_a), read_all(&dir_b));
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn write_corpus_refuses_stale_generated_files_without_deleting() {
        let dir = std::env::temp_dir().join(format!("gen_stream_stale_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let list_dir = |dir: &Path| -> Vec<String> {
            let mut found: Vec<String> = std::fs::read_dir(dir)
                .unwrap()
                .map(|e| e.unwrap().file_name().into_string().unwrap())
                .collect();
            found.sort();
            found
        };
        // A big seed-42 run followed by a smaller seed-43 run into the
        // same directory would strand seed-42 files the new configuration
        // does not produce — and those could just as well be checked-in
        // promoted corpus instances, so nothing may be deleted: the call
        // must refuse, leaving the directory exactly as it was.
        write_corpus(&dir, 20, GenConfig::new(42)).unwrap();
        std::fs::write(dir.join("hand_written.sl"), "; not generated\n").unwrap();
        let before = list_dir(&dir);
        let err = write_corpus(&dir, 5, GenConfig::new(43)).unwrap_err();
        assert!(err.contains("does not produce"), "{err}");
        assert_eq!(list_dir(&dir), before, "refusal must not delete anything");
        // Re-running the original configuration is an in-place overwrite
        // of the same file set and stays allowed.
        write_corpus(&dir, 20, GenConfig::new(42)).unwrap();
        assert_eq!(list_dir(&dir), before);
        std::fs::remove_dir_all(&dir).ok();
    }
}
