//! Smoke test for the experiment harness: the quick-mode §8.1 summary must
//! keep producing a real report, so the `reproduce` driver cannot silently
//! rot as the solvers evolve.

#[test]
fn reproduce_summary_quick_mode_yields_a_report() {
    let report = bench::reproduce_summary(true);
    assert!(!report.trim().is_empty(), "summary report is empty");
    assert!(
        report.contains("solved-benchmark counts"),
        "summary report lost its header:\n{report}"
    );
    // One line per family plus the totals line and the paper's reference
    // numbers: the report must cover all three benchmark families.
    for family in ["LimitedPlus", "LimitedIf", "LimitedConst", "total", "paper"] {
        assert!(
            report.contains(family),
            "summary report lacks `{family}`:\n{report}"
        );
    }
    assert!(
        report.lines().count() >= 6,
        "summary report too short:\n{report}"
    );
}
