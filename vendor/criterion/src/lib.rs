//! Offline stand-in for the parts of the `criterion` crate this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the API surface the `crates/bench/benches/*.rs` targets need:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Semantics: under `cargo bench` (cargo passes `--bench` to `harness =
//! false` targets) every registered benchmark runs `sample_size` iterations
//! and the mean wall-clock time is printed. Under `cargo test` the binary
//! exits immediately, exactly like real criterion's test mode, so bench
//! targets never slow the test suite down. There are no statistics, plots,
//! or baselines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

/// Re-export of [`std::hint::black_box`], mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    enabled: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes `harness = false` bench executables with `--bench`
        // under `cargo bench`; anything else (notably `cargo test`) is test
        // mode, where measuring would only waste time.
        Criterion {
            enabled: std::env::args().any(|a| a == "--bench"),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Registers and (in bench mode) runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        run_one(self.enabled, &name, 10, |b| f(b));
        self
    }
}

/// A named collection of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Registers a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(self.criterion.enabled, &label, self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Registers an unparameterised benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_one(self.criterion.enabled, &label, self.sample_size, |b| f(b));
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

fn run_one(enabled: bool, label: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    if !enabled {
        return;
    }
    let mut bencher = Bencher {
        total_nanos: 0,
        iterations: 0,
        samples,
    };
    f(&mut bencher);
    let mean = bencher.total_nanos as f64 / bencher.iterations.max(1) as f64;
    println!(
        "{label:<50} {:>12.3} µs/iter ({} iters)",
        mean / 1e3,
        bencher.iterations
    );
}

/// A benchmark identifier: a function name plus a parameter rendering.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id such as `E2/8` from a name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into [`BenchmarkId`] for `bench_function` arguments.
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    total_nanos: u128,
    iterations: u64,
    samples: usize,
}

impl Bencher {
    /// Times `samples` calls of `routine`.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        for _ in 0..self.samples {
            let started = Instant::now();
            black_box(routine());
            self.total_nanos += started.elapsed().as_nanos();
            self.iterations += 1;
        }
    }
}

/// Expands to a function running each listed benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Expands to `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
