//! Sharding is an execution detail: for any (count, seed, shards, workers)
//! the merged aggregate and the per-instance verdicts must be identical to
//! the serial sweep's. This is the property that makes million-instance
//! campaigns trustworthy — CI can pick whatever parallelism the runner
//! offers without changing what is computed.

use bench::{run_fuzz, run_fuzz_observed, FuzzConfig, FuzzEngine};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;
use std::time::Duration;

/// Per-instance (tool, verdict) observations, keyed by draw index. A
/// `BTreeSet` per instance: the observer fires from worker threads in
/// arbitrary order, and the comparison must not depend on that order.
type VerdictMap = BTreeMap<u64, BTreeSet<(String, String)>>;

fn sweep(count: usize, seed: u64, shards: usize, jobs: usize) -> (String, VerdictMap) {
    let config = FuzzConfig {
        count,
        seed,
        engine: FuzzEngine::Nope,
        jobs,
        // Far beyond any nope solve on these scales: a timeout would make
        // verdicts machine-speed-dependent and the comparison flaky.
        timeout: Duration::from_secs(600),
        families: None,
        presolve: true,
        shards,
    };
    let verdicts: Mutex<VerdictMap> = Mutex::new(BTreeMap::new());
    let outcome = run_fuzz_observed(&config, |index, tool, verdict| {
        verdicts
            .lock()
            .unwrap()
            .entry(index)
            .or_default()
            .insert((tool.to_string(), verdict.to_string()));
    });
    assert_eq!(outcome.violations_total, 0, "oracle violations in sweep");
    (
        outcome.report.canonicalized().to_json(),
        verdicts.into_inner().unwrap(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any sharding of the index space merges to the serial result: same
    /// canonical report, same per-instance verdict sets.
    #[test]
    fn any_sharding_reproduces_the_serial_sweep(
        count in 1usize..=24,
        seed in 0u64..1_000,
        shards in 1usize..=6,
        workers in 1usize..=4,
    ) {
        let (serial_report, serial_verdicts) = sweep(count, seed, 1, 1);
        let (sharded_report, sharded_verdicts) = sweep(count, seed, shards, workers);
        prop_assert_eq!(
            &sharded_report, &serial_report,
            "merged aggregate diverged at count={} seed={} shards={} workers={}",
            count, seed, shards, workers
        );
        prop_assert_eq!(
            &sharded_verdicts, &serial_verdicts,
            "per-instance verdicts diverged at count={} seed={} shards={} workers={}",
            count, seed, shards, workers
        );
    }
}

/// The constant-memory regression test: at count 10⁵ the peak number of
/// simultaneously-live generated instances — the high-water mark of the
/// "queue" that the streaming design refuses to build — must equal the
/// worker count, exactly as it does at count 10³. Before the sharded
/// rewrite, peak memory scaled with `--count` (batches of instances and a
/// Vec of pending jobs); this pins the fix.
#[test]
fn peak_memory_is_independent_of_count() {
    let config = |count: usize| FuzzConfig {
        count,
        seed: 7,
        engine: FuzzEngine::Check,
        jobs: 2,
        timeout: Duration::from_secs(600),
        families: None,
        presolve: true,
        shards: 16,
    };
    let small = run_fuzz(&config(1_000));
    let large = run_fuzz(&config(100_000));
    assert_eq!(large.instances, 100_000);
    assert_eq!(large.violations_total, 0);
    assert!(
        large.mem.peak_live_instances <= 2,
        "peak {} live instances with 2 workers at count 1e5: memory scales with count",
        large.mem.peak_live_instances
    );
    assert_eq!(
        large.mem.peak_live_instances, small.mem.peak_live_instances,
        "peak memory moved between count 1e3 and 1e5"
    );
    // The per-(family, tool) aggregates are fixed-size too: same row
    // count at both scales, 100× the instances.
    assert_eq!(large.rows.len(), small.rows.len());
}
