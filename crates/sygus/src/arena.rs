//! A hash-consing term arena: structurally shared, `Copy`-indexed terms
//! with memoized example-vector evaluation.
//!
//! [`Term`] is a pointer-chasing tree (`Vec<Term>` children, `String`
//! variables) that the solver hot paths used to deep-clone on every grow
//! and prune step. [`TermArena`] replaces it on those paths: every distinct
//! subterm is *interned* exactly once and addressed by a `Copy`-able
//! [`TermId`]; building a compound term over already-interned children is a
//! single hash-table probe, and structurally identical terms receive
//! identical ids no matter where or when they are built. Variables are
//! interned too ([`VarId`]), so the arena's node representation ([`Op`])
//! carries no owned strings.
//!
//! On top of the identity structure the arena keeps a per-arena
//! memoization table for the example-vector semantics `⟦·⟧_E`
//! ([`TermArena::eval_id`]): the output vector of every distinct subterm is
//! computed once per example set, which is exactly what the enumerative
//! solver's observational-equivalence loop needs — a term of size `n` costs
//! `O(arity · |E|)` to evaluate instead of `O(n · |E|)`, because its
//! children were interned (and therefore evaluated) earlier.
//!
//! All traversals (interning, extraction, evaluation) use explicit stacks,
//! never recursion, so arena operations cannot overflow the call stack on
//! deeply nested terms.
//!
//! [`Term`] remains the owned-tree boundary type for parsing, printing and
//! serialization; [`TermArena::intern_term`] and [`TermArena::extract`]
//! convert losslessly between the two representations.
//!
//! # Example
//! ```
//! use sygus::{ExampleSet, Output, TermArena};
//!
//! let mut arena = TermArena::new();
//! let x = arena.var_leaf("x");
//! let one = arena.num(1);
//! let sum = arena.plus2(x, one); // (+ x 1)
//! // interning is idempotent: the same structure yields the same id
//! assert_eq!(arena.plus2(x, one), sum);
//! assert_eq!(arena.size(sum), 3);
//!
//! let examples = ExampleSet::for_single_var("x", [1, 2]);
//! assert_eq!(
//!     arena.eval_id(sum, &examples).unwrap(),
//!     Output::Int(vec![2, 3])
//! );
//!
//! // lossless round trip to the owned-tree boundary type
//! let term = arena.extract(sum);
//! assert_eq!(term.to_string(), "(+ x 1)");
//! assert_eq!(arena.intern_term(&term), sum);
//! ```

use crate::example::{ExampleSet, Output};
use crate::term::{Sort, Symbol, Term};
use crate::SygusError;
use std::collections::HashMap;

/// An interned input-variable name. `Copy`-able stand-in for the `String`
/// payloads of [`Symbol::Var`] / [`Symbol::NegVar`]; resolve it back with
/// [`TermArena::var_name`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VarId(u32);

impl VarId {
    /// The arena-local index of the variable (dense, in interning order).
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

/// An interned term. Ids are dense indices into one [`TermArena`]; two ids
/// from the *same* arena are equal iff the terms are structurally equal
/// (hash consing), and a term's children always carry smaller ids than the
/// term itself (children are interned first).
///
/// Ids from different arenas are unrelated; mixing them is a logic error
/// that debug builds catch on out-of-range access.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TermId(u32);

impl TermId {
    /// The arena-local index of the term (dense, in interning order).
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

/// The arena's compact, `Copy`-able symbol: [`Symbol`] with interned
/// variable names. Convert with [`TermArena::op_from_symbol`] and
/// [`TermArena::symbol_of_op`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// n-ary integer addition (n ≥ 1).
    Plus,
    /// Binary integer subtraction.
    Minus,
    /// An integer constant.
    Num(i64),
    /// An input variable.
    Var(VarId),
    /// A negated input variable (LIA⁺/CLIA⁺ grammars).
    NegVar(VarId),
    /// `ite(cond, then, else)`.
    IfThenElse,
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
    /// Boolean negation.
    Not,
    /// Integer comparison `a < b`.
    LessThan,
    /// Integer equality `a = b`.
    Equal,
}

impl Op {
    /// The output sort of the operator (mirrors [`Symbol::sort`]).
    pub fn sort(&self) -> Sort {
        match self {
            Op::Plus | Op::Minus | Op::Num(_) | Op::Var(_) | Op::NegVar(_) | Op::IfThenElse => {
                Sort::Int
            }
            Op::And | Op::Or | Op::Not | Op::LessThan | Op::Equal => Sort::Bool,
        }
    }

    /// The expected arity, or `None` for the variadic `Plus` (mirrors
    /// [`Symbol::arity`]).
    pub fn arity(&self) -> Option<usize> {
        match self {
            Op::Plus => None,
            Op::Minus => Some(2),
            Op::Num(_) | Op::Var(_) | Op::NegVar(_) => Some(0),
            Op::IfThenElse => Some(3),
            Op::And | Op::Or => Some(2),
            Op::Not => Some(1),
            Op::LessThan | Op::Equal => Some(2),
        }
    }

    /// The expected sort of the `i`-th argument (mirrors
    /// [`Symbol::arg_sort`]).
    pub fn arg_sort(&self, i: usize) -> Sort {
        match self {
            Op::IfThenElse => {
                if i == 0 {
                    Sort::Bool
                } else {
                    Sort::Int
                }
            }
            Op::And | Op::Or | Op::Not => Sort::Bool,
            _ => Sort::Int,
        }
    }
}

/// One interned node: its operator plus a `(start, len)` window into the
/// arena's flat child pool.
#[derive(Clone, Copy)]
struct Node {
    op: Op,
    children_start: u32,
    children_len: u32,
}

/// Splitmix64-style finalizer: one multiply-xor-shift round per word.
#[inline]
fn mix(hash: u64, v: u64) -> u64 {
    let mut x = hash ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x.wrapping_mul(0xbf58_476d_1ce4_e5b9)
}

/// Word-granular hash over the node's identity, used as the hash-cons
/// bucket key. This sits on the interning fast path (one call per
/// candidate term the enumerator or bounded search builds), so it mixes
/// whole 64-bit words instead of bytes.
fn node_hash(op: &Op, children: &[TermId]) -> u64 {
    let op_word = match op {
        Op::Plus => 1u64,
        Op::Minus => 2,
        Op::Num(c) => 3 | ((*c as u64) << 4),
        Op::Var(v) => 4 | (u64::from(v.0) << 4),
        Op::NegVar(v) => 5 | (u64::from(v.0) << 4),
        Op::IfThenElse => 6,
        Op::And => 7,
        Op::Or => 8,
        Op::Not => 9,
        Op::LessThan => 10,
        Op::Equal => 11,
    };
    let mut hash = mix(0xcbf2_9ce4_8422_2325, op_word);
    for c in children {
        hash = mix(hash, u64::from(c.0));
    }
    hash
}

/// The hash-consing arena: interns terms into `Copy`-able [`TermId`]s with
/// structural sharing, and memoizes their example-vector evaluation.
#[derive(Clone, Default)]
pub struct TermArena {
    nodes: Vec<Node>,
    child_pool: Vec<TermId>,
    /// Tree size (node count *with* duplication) per id; `u64` because a
    /// structurally shared DAG can denote an exponentially larger tree.
    sizes: Vec<u64>,
    /// hash → candidate ids with that hash (hash-cons buckets).
    dedup: HashMap<u64, Vec<TermId>>,
    var_names: Vec<String>,
    var_ids: HashMap<String, VarId>,
    /// Memoized `⟦·⟧_E` output vectors, valid exactly for the example set
    /// stored in `memo_examples` (compared structurally — no hash — so a
    /// stale memo can never be mistaken for a fresh one).
    memo: Vec<Option<Output>>,
    memo_examples: Option<ExampleSet>,
}

impl TermArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        TermArena::default()
    }

    /// Number of distinct terms interned so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of distinct variable names interned so far.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    // -- variables ---------------------------------------------------------

    /// Interns a variable name.
    pub fn var(&mut self, name: &str) -> VarId {
        if let Some(&id) = self.var_ids.get(name) {
            return id;
        }
        let id = VarId(u32::try_from(self.var_names.len()).expect("< 2^32 variables"));
        self.var_names.push(name.to_string());
        self.var_ids.insert(name.to_string(), id);
        id
    }

    /// The name behind an interned variable id.
    pub fn var_name(&self, id: VarId) -> &str {
        &self.var_names[id.index()]
    }

    // -- symbol conversion -------------------------------------------------

    /// Converts a [`Symbol`] into the arena's compact [`Op`], interning the
    /// variable name if there is one.
    pub fn op_from_symbol(&mut self, symbol: &Symbol) -> Op {
        match symbol {
            Symbol::Plus => Op::Plus,
            Symbol::Minus => Op::Minus,
            Symbol::Num(c) => Op::Num(*c),
            Symbol::Var(x) => Op::Var(self.var(x)),
            Symbol::NegVar(x) => Op::NegVar(self.var(x)),
            Symbol::IfThenElse => Op::IfThenElse,
            Symbol::And => Op::And,
            Symbol::Or => Op::Or,
            Symbol::Not => Op::Not,
            Symbol::LessThan => Op::LessThan,
            Symbol::Equal => Op::Equal,
        }
    }

    /// Converts an [`Op`] back into the owned [`Symbol`].
    pub fn symbol_of_op(&self, op: Op) -> Symbol {
        match op {
            Op::Plus => Symbol::Plus,
            Op::Minus => Symbol::Minus,
            Op::Num(c) => Symbol::Num(c),
            Op::Var(v) => Symbol::Var(self.var_name(v).to_string()),
            Op::NegVar(v) => Symbol::NegVar(self.var_name(v).to_string()),
            Op::IfThenElse => Symbol::IfThenElse,
            Op::And => Symbol::And,
            Op::Or => Symbol::Or,
            Op::Not => Symbol::Not,
            Op::LessThan => Symbol::LessThan,
            Op::Equal => Symbol::Equal,
        }
    }

    // -- interning ---------------------------------------------------------

    /// Interns `op(children…)`, checking arity and child sorts (the same
    /// validation as [`Term::apply`]).
    ///
    /// # Errors
    /// Returns a [`SygusError::SortError`] on an arity or sort mismatch.
    pub fn try_intern(&mut self, op: Op, children: &[TermId]) -> Result<TermId, SygusError> {
        match op.arity() {
            Some(a) if a != children.len() => {
                return Err(SygusError::SortError(format!(
                    "operator {op:?} expects {a} arguments, got {}",
                    children.len()
                )))
            }
            None if children.is_empty() => {
                return Err(SygusError::SortError(
                    "variadic Plus requires at least one argument".to_string(),
                ))
            }
            _ => {}
        }
        for (i, &c) in children.iter().enumerate() {
            let expected = op.arg_sort(i);
            if self.sort(c) != expected {
                return Err(SygusError::SortError(format!(
                    "argument {i} of {op:?} has sort {}, expected {expected}",
                    self.sort(c)
                )));
            }
        }
        Ok(self.intern(op, children))
    }

    /// Interns `op(children…)` without sort validation (the children must
    /// already satisfy `op`'s arity and argument sorts, which holds for
    /// anything built from a validated [`crate::Grammar`]). Identical
    /// structures always return the identical id.
    pub fn intern(&mut self, op: Op, children: &[TermId]) -> TermId {
        debug_assert!(
            self.try_validate(op, children),
            "ill-sorted intern of {op:?}"
        );
        let hash = node_hash(&op, children);
        if let Some(bucket) = self.dedup.get(&hash) {
            for &candidate in bucket {
                let node = self.nodes[candidate.index()];
                if node.op == op && self.children(candidate) == children {
                    return candidate;
                }
            }
        }
        let id = TermId(u32::try_from(self.nodes.len()).expect("< 2^32 interned terms"));
        let children_start = u32::try_from(self.child_pool.len()).expect("child pool fits u32");
        self.child_pool.extend_from_slice(children);
        self.nodes.push(Node {
            op,
            children_start,
            children_len: children.len() as u32,
        });
        let size = 1u64.saturating_add(
            children
                .iter()
                .fold(0u64, |acc, c| acc.saturating_add(self.sizes[c.index()])),
        );
        self.sizes.push(size);
        self.dedup.entry(hash).or_default().push(id);
        if self.memo_examples.is_some() {
            self.memo.push(None);
        }
        id
    }

    /// `true` when `op(children…)` passes the arity/sort checks (used by
    /// the `debug_assert` in [`TermArena::intern`]).
    fn try_validate(&self, op: Op, children: &[TermId]) -> bool {
        match op.arity() {
            Some(a) if a != children.len() => return false,
            None if children.is_empty() => return false,
            _ => {}
        }
        children
            .iter()
            .enumerate()
            .all(|(i, &c)| self.sort(c) == op.arg_sort(i))
    }

    // -- convenience constructors -----------------------------------------

    /// Interns the constant `Num(c)`.
    pub fn num(&mut self, c: i64) -> TermId {
        self.intern(Op::Num(c), &[])
    }

    /// Interns the variable leaf `Var(name)`.
    pub fn var_leaf(&mut self, name: &str) -> TermId {
        let v = self.var(name);
        self.intern(Op::Var(v), &[])
    }

    /// Interns the negated-variable leaf `NegVar(name)`.
    pub fn neg_var_leaf(&mut self, name: &str) -> TermId {
        let v = self.var(name);
        self.intern(Op::NegVar(v), &[])
    }

    /// Interns binary `Plus(a, b)`.
    pub fn plus2(&mut self, a: TermId, b: TermId) -> TermId {
        self.intern(Op::Plus, &[a, b])
    }

    /// Interns `Minus(a, b)`.
    pub fn minus2(&mut self, a: TermId, b: TermId) -> TermId {
        self.intern(Op::Minus, &[a, b])
    }

    /// Interns `IfThenElse(c, t, e)`; `c` must be Boolean-sorted.
    pub fn ite3(&mut self, c: TermId, t: TermId, e: TermId) -> TermId {
        self.try_intern(Op::IfThenElse, &[c, t, e])
            .expect("ite over a Boolean guard and integer branches")
    }

    /// Interns `LessThan(a, b)`.
    pub fn less_than2(&mut self, a: TermId, b: TermId) -> TermId {
        self.intern(Op::LessThan, &[a, b])
    }

    // -- accessors ---------------------------------------------------------

    /// The root operator of an interned term.
    pub fn op(&self, id: TermId) -> Op {
        self.nodes[id.index()].op
    }

    /// The child ids of an interned term (each strictly smaller than `id`).
    pub fn children(&self, id: TermId) -> &[TermId] {
        let node = &self.nodes[id.index()];
        let start = node.children_start as usize;
        &self.child_pool[start..start + node.children_len as usize]
    }

    /// The sort of an interned term.
    pub fn sort(&self, id: TermId) -> Sort {
        self.op(id).sort()
    }

    /// Number of nodes in the *tree* the id denotes (with duplication —
    /// structural sharing can make this exponentially larger than the
    /// number of distinct subterms). `O(1)`: sizes are computed at intern
    /// time from the children's sizes.
    pub fn size(&self, id: TermId) -> u64 {
        self.sizes[id.index()]
    }

    /// Height of the term a leaf has height 1. Iterative (explicit stack).
    pub fn height(&self, id: TermId) -> usize {
        // memo-free two-phase DFS over the distinct subterms of `id`
        let mut heights: HashMap<TermId, usize> = HashMap::new();
        let mut stack = vec![id];
        while let Some(&top) = stack.last() {
            if heights.contains_key(&top) {
                stack.pop();
                continue;
            }
            let pending: Vec<TermId> = self
                .children(top)
                .iter()
                .copied()
                .filter(|c| !heights.contains_key(c))
                .collect();
            if pending.is_empty() {
                let h = 1 + self
                    .children(top)
                    .iter()
                    .map(|c| heights[c])
                    .max()
                    .unwrap_or(0);
                heights.insert(top, h);
                stack.pop();
            } else {
                stack.extend(pending);
            }
        }
        heights[&id]
    }

    // -- conversion to/from the owned tree ---------------------------------

    /// Interns an owned [`Term`] bottom-up, sharing every subterm already
    /// in the arena. Iterative (explicit stack), so deeply nested terms
    /// cannot overflow the call stack.
    pub fn intern_term(&mut self, term: &Term) -> TermId {
        struct Frame<'a> {
            term: &'a Term,
            next_child: usize,
            child_ids: Vec<TermId>,
        }
        let mut stack = vec![Frame {
            term,
            next_child: 0,
            child_ids: Vec::with_capacity(term.children().len()),
        }];
        let mut result = None;
        while let Some(frame) = stack.last_mut() {
            if frame.next_child < frame.term.children().len() {
                let child = &frame.term.children()[frame.next_child];
                frame.next_child += 1;
                stack.push(Frame {
                    term: child,
                    next_child: 0,
                    child_ids: Vec::with_capacity(child.children().len()),
                });
            } else {
                let frame = stack.pop().expect("non-empty stack");
                let op = self.op_from_symbol(frame.term.symbol());
                let id = self.intern(op, &frame.child_ids);
                match stack.last_mut() {
                    Some(parent) => parent.child_ids.push(id),
                    None => result = Some(id),
                }
            }
        }
        result.expect("interning always produces a root id")
    }

    /// Extracts the owned [`Term`] tree behind an id. Iterative; note the
    /// result is a *tree*, so extracting a heavily shared DAG materializes
    /// every duplicate (check [`TermArena::size`] first when in doubt).
    pub fn extract(&self, id: TermId) -> Term {
        struct Frame {
            id: TermId,
            next_child: usize,
            children: Vec<Term>,
        }
        let mut stack = vec![Frame {
            id,
            next_child: 0,
            children: Vec::with_capacity(self.children(id).len()),
        }];
        let mut result = None;
        while let Some(frame) = stack.last_mut() {
            let child_ids = self.children(frame.id);
            if frame.next_child < child_ids.len() {
                let child = child_ids[frame.next_child];
                frame.next_child += 1;
                stack.push(Frame {
                    id: child,
                    next_child: 0,
                    children: Vec::with_capacity(self.children(child).len()),
                });
            } else {
                let frame = stack.pop().expect("non-empty stack");
                let symbol = self.symbol_of_op(self.op(frame.id));
                let term = Term::apply(symbol, frame.children)
                    .expect("interned terms are well-sorted by construction");
                match stack.last_mut() {
                    Some(parent) => parent.children.push(term),
                    None => result = Some(term),
                }
            }
        }
        result.expect("extraction always produces a root term")
    }

    // -- memoized evaluation -----------------------------------------------

    /// Evaluates the term on every example, memoizing the output vector of
    /// every distinct subterm (Def. 3.4's `⟦·⟧_E`, semantically identical
    /// to [`Term::eval_on`]).
    ///
    /// The memo table lives in the arena and is keyed to one example set
    /// at a time: calling with a different set clears and rebuilds it.
    /// Callers that interleave example sets should use one arena per set
    /// (or accept the rebuild cost).
    ///
    /// # Errors
    /// Returns an error when an input variable is not bound by some
    /// example; partial memo entries computed before the error remain
    /// valid.
    pub fn eval_id(&mut self, id: TermId, examples: &ExampleSet) -> Result<Output, SygusError> {
        if self.memo_examples.as_ref() != Some(examples) {
            self.memo.clear();
            self.memo.resize(self.nodes.len(), None);
            self.memo_examples = Some(examples.clone());
        } else if self.memo.len() < self.nodes.len() {
            self.memo.resize(self.nodes.len(), None);
        }
        if let Some(out) = &self.memo[id.index()] {
            return Ok(out.clone());
        }
        let mut stack = vec![id];
        while let Some(&top) = stack.last() {
            if self.memo[top.index()].is_some() {
                stack.pop();
                continue;
            }
            let mut ready = true;
            for &c in self.children(top) {
                if self.memo[c.index()].is_none() {
                    ready = false;
                    stack.push(c);
                }
            }
            if !ready {
                continue;
            }
            let out = self.eval_node(top, examples)?;
            self.memo[top.index()] = Some(out);
            stack.pop();
        }
        Ok(self.memo[id.index()].clone().expect("just computed"))
    }

    /// Evaluates one node from its (already memoized) children.
    fn eval_node(&self, id: TermId, examples: &ExampleSet) -> Result<Output, SygusError> {
        let dim = examples.len();
        let child_out = |k: usize| -> &Output {
            self.memo[self.children(id)[k].index()]
                .as_ref()
                .expect("children are memoized before their parent")
        };
        let int_at = |out: &Output, j: usize| out.as_i64(j);
        let bool_at = |out: &Output, j: usize| out.as_i64(j) != 0;
        let out = match self.op(id) {
            Op::Num(c) => Output::Int(vec![c; dim]),
            Op::Var(v) => Output::Int(examples.projection(self.var_name(v))?),
            Op::NegVar(v) => Output::Int(
                examples
                    .projection(self.var_name(v))?
                    .into_iter()
                    .map(|x| -x)
                    .collect(),
            ),
            Op::Plus => {
                let mut acc = vec![0i64; dim];
                for k in 0..self.children(id).len() {
                    let child = child_out(k);
                    for (a, j) in acc.iter_mut().zip(0..dim) {
                        *a += int_at(child, j);
                    }
                }
                Output::Int(acc)
            }
            Op::Minus => {
                let (a, b) = (child_out(0), child_out(1));
                Output::Int((0..dim).map(|j| int_at(a, j) - int_at(b, j)).collect())
            }
            Op::IfThenElse => {
                let (c, t, e) = (child_out(0), child_out(1), child_out(2));
                Output::Int(
                    (0..dim)
                        .map(|j| {
                            if bool_at(c, j) {
                                int_at(t, j)
                            } else {
                                int_at(e, j)
                            }
                        })
                        .collect(),
                )
            }
            Op::And => {
                let (a, b) = (child_out(0), child_out(1));
                Output::Bool((0..dim).map(|j| bool_at(a, j) && bool_at(b, j)).collect())
            }
            Op::Or => {
                let (a, b) = (child_out(0), child_out(1));
                Output::Bool((0..dim).map(|j| bool_at(a, j) || bool_at(b, j)).collect())
            }
            Op::Not => {
                let a = child_out(0);
                Output::Bool((0..dim).map(|j| !bool_at(a, j)).collect())
            }
            Op::LessThan => {
                let (a, b) = (child_out(0), child_out(1));
                Output::Bool((0..dim).map(|j| int_at(a, j) < int_at(b, j)).collect())
            }
            Op::Equal => {
                let (a, b) = (child_out(0), child_out(1));
                Output::Bool((0..dim).map(|j| int_at(a, j) == int_at(b, j)).collect())
            }
        };
        Ok(out)
    }
}

impl std::fmt::Debug for TermArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TermArena")
            .field("terms", &self.nodes.len())
            .field("vars", &self.var_names.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::Example;

    #[test]
    fn interning_is_idempotent_and_shares_structure() {
        let mut arena = TermArena::new();
        let x = arena.var_leaf("x");
        let one = arena.num(1);
        let a = arena.plus2(x, one);
        let b = arena.plus2(x, one);
        assert_eq!(a, b);
        assert_eq!(arena.len(), 3);
        // a structurally identical term built through the owned tree shares
        let owned = Term::plus(Term::var("x"), Term::num(1));
        assert_eq!(arena.intern_term(&owned), a);
        assert_eq!(arena.len(), 3, "no new nodes for a known structure");
    }

    #[test]
    fn children_have_smaller_ids() {
        let mut arena = TermArena::new();
        let x = arena.var_leaf("x");
        let s = arena.plus2(x, x);
        let t = arena.minus2(s, x);
        for &id in [s, t].iter() {
            for &c in arena.children(id) {
                assert!(c < id);
            }
        }
    }

    #[test]
    fn size_is_tree_size_even_under_sharing() {
        let mut arena = TermArena::new();
        let x = arena.var_leaf("x");
        // full binary tree of depth 40 as a 40-node DAG
        let mut t = x;
        for _ in 0..40 {
            t = arena.plus2(t, t);
        }
        assert_eq!(arena.size(t), (1u64 << 41) - 1);
        assert!(arena.len() <= 41);
        assert_eq!(arena.height(t), 41);
    }

    #[test]
    fn round_trip_matches_the_owned_tree() {
        let mut arena = TermArena::new();
        let owned = Term::ite(
            Term::less_than(Term::var("x"), Term::num(2)),
            Term::plus(Term::var("y"), Term::num(1)),
            Term::neg_var("x"),
        )
        .unwrap();
        let id = arena.intern_term(&owned);
        assert_eq!(arena.extract(id), owned);
        assert_eq!(arena.size(id), owned.size() as u64);
        let extracted = arena.extract(id);
        assert_eq!(arena.intern_term(&extracted), id);
    }

    #[test]
    fn try_intern_validates_like_term_apply() {
        let mut arena = TermArena::new();
        let x = arena.var_leaf("x");
        assert!(arena.try_intern(Op::And, &[x, x]).is_err());
        assert!(arena.try_intern(Op::Minus, &[x]).is_err());
        assert!(arena.try_intern(Op::Plus, &[]).is_err());
        let lt = arena.try_intern(Op::LessThan, &[x, x]).unwrap();
        assert!(arena.try_intern(Op::And, &[lt, lt]).is_ok());
    }

    #[test]
    fn eval_matches_term_eval_on_and_memoizes() {
        let mut arena = TermArena::new();
        let owned = Term::ite(
            Term::less_than(Term::var("x"), Term::num(2)),
            Term::num(0),
            Term::plus(Term::var("x"), Term::var("x")),
        )
        .unwrap();
        let id = arena.intern_term(&owned);
        let examples = ExampleSet::for_single_var("x", [1, 2]);
        assert_eq!(
            arena.eval_id(id, &examples).unwrap(),
            owned.eval_on(&examples).unwrap()
        );
        // second call hits the memo and returns the same value
        assert_eq!(
            arena.eval_id(id, &examples).unwrap(),
            Output::Int(vec![0, 4])
        );
        // a different example set invalidates the memo transparently
        let other = ExampleSet::for_single_var("x", [5]);
        assert_eq!(arena.eval_id(id, &other).unwrap(), Output::Int(vec![10]));
        // ... and the boolean guard evaluates correctly on its own
        let guard = arena.children(id)[0];
        assert_eq!(
            arena.eval_id(guard, &other).unwrap(),
            Output::Bool(vec![false])
        );
    }

    #[test]
    fn eval_reports_unbound_variables() {
        let mut arena = TermArena::new();
        let y = arena.var_leaf("y");
        let examples = ExampleSet::for_single_var("x", [1]);
        assert!(arena.eval_id(y, &examples).is_err());
    }

    #[test]
    fn memo_stays_valid_as_the_arena_grows() {
        let mut arena = TermArena::new();
        let examples = ExampleSet::from_examples([Example::from_pairs([("x", 3)])]);
        let x = arena.var_leaf("x");
        assert_eq!(arena.eval_id(x, &examples).unwrap(), Output::Int(vec![3]));
        // interning after an eval must keep the memo aligned with the ids
        let one = arena.num(1);
        let sum = arena.plus2(x, one);
        assert_eq!(arena.eval_id(sum, &examples).unwrap(), Output::Int(vec![4]));
        assert_eq!(arena.eval_id(x, &examples).unwrap(), Output::Int(vec![3]));
    }

    #[test]
    fn variables_intern_once() {
        let mut arena = TermArena::new();
        let a = arena.var("x");
        let b = arena.var("x");
        let c = arena.var("y");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(arena.var_name(a), "x");
        assert_eq!(arena.num_vars(), 2);
        let sym = Symbol::NegVar("y".to_string());
        let op = arena.op_from_symbol(&sym);
        assert_eq!(arena.symbol_of_op(op), sym);
    }

    #[test]
    fn deep_interning_does_not_recurse() {
        // a left-leaning chain of 100_000 Plus nodes: explicit-stack
        // interning, extraction, size and eval must all survive it
        let mut arena = TermArena::new();
        let one = arena.num(1);
        let mut t = one;
        for _ in 0..100_000 {
            t = arena.plus2(t, one);
        }
        assert_eq!(arena.size(t), 200_001);
        let examples = ExampleSet::for_single_var("x", [0]);
        assert_eq!(
            arena.eval_id(t, &examples).unwrap(),
            Output::Int(vec![100_001])
        );
        assert_eq!(arena.height(t), 100_001);
    }
}
