; mpg_ite1 — exported by `cargo run --example export_corpus`
(set-logic CLIA)
(synth-fun f ((x Int) (y Int)) Int
  ((Start Int (x y 0 1 (ite Cond Start Start)))
  (Cond Bool ((< Start Start) (and Cond Cond)))))
(declare-var x Int)
(declare-var y Int)
(constraint (or (>= x 0) (= (f x y) x)))
(constraint (or (< x 0) (= (f x y) (+ x -3))))
(check-synth)
