//! A SyGuS-IF-style front end: s-expression parsing of `synth-fun` problems
//! and a printer back to the same format.
//!
//! The supported fragment covers the LIA/CLIA benchmarks of the paper's
//! evaluation:
//!
//! * `(set-logic LIA)` / `(set-logic CLIA)` (recorded, not enforced),
//! * `(synth-fun f ((x Int) …) Int (<nonterminal decls>) (<grouped rules>))`,
//! * `(declare-var x Int)`,
//! * `(constraint <formula>)` where the formula uses `= < <= > >= + - *`
//!   (multiplication by constants only), `and`, `or`, `not`, `ite`, integer
//!   literals, declared variables, and single-invocation applications
//!   `(f x …)` of the synthesis function,
//! * `(check-synth)`.
//!
//! Every s-expression carries a byte-offset [`Span`] into the source text
//! and a [`LineIndex`] converts offsets to 1-based line/column positions,
//! so parse errors (and the static analyzer's diagnostics, see crate
//! `analyze`) can point at the offending token.

use crate::grammar::{Grammar, GrammarBuilder};
use crate::problem::Problem;
use crate::spec::Spec;
use crate::term::{Sort, Symbol};
use crate::{ParseError, SygusError};
use logic::{Formula, LinearExpr, Var};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A half-open byte range `[start, end)` into the source text.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Span {
    /// Byte offset of the first byte of the spanned region.
    pub start: u32,
    /// Byte offset one past the last byte of the spanned region.
    pub end: u32,
}

impl Span {
    /// Creates a span from byte offsets.
    pub fn new(start: u32, end: u32) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both operands.
    pub fn join(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// Byte-offset → line/column conversion for one source text.
///
/// Lines and columns are 1-based; columns count bytes within the line
/// (identical to character counts for the ASCII benchmark corpus).
#[derive(Clone, Debug)]
pub struct LineIndex {
    /// Byte offset at which each line starts; `line_starts[0] == 0`.
    line_starts: Vec<u32>,
}

impl LineIndex {
    /// Builds the index for a source text.
    pub fn new(text: &str) -> Self {
        let mut line_starts = vec![0u32];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push((i + 1) as u32);
            }
        }
        LineIndex { line_starts }
    }

    /// The 1-based `(line, column)` of a byte offset.
    pub fn position(&self, offset: u32) -> (u32, u32) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        ((line + 1) as u32, offset - self.line_starts[line] + 1)
    }
}

/// The payload of a spanned [`Sexp`]: an atom or a parenthesised list.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SexpKind {
    /// An atom (symbol or numeral).
    Atom(String),
    /// A parenthesised list.
    List(Vec<Sexp>),
}

/// An s-expression with the source span it was parsed from.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Sexp {
    /// Atom or list.
    pub kind: SexpKind,
    /// The byte range of the expression (for lists: including both
    /// parentheses).
    pub span: Span,
}

impl Sexp {
    /// The atom's text, if this is an atom.
    pub fn atom(&self) -> Option<&str> {
        match &self.kind {
            SexpKind::Atom(s) => Some(s),
            SexpKind::List(_) => None,
        }
    }

    /// The list items, if this is a list.
    pub fn list(&self) -> Option<&[Sexp]> {
        match &self.kind {
            SexpKind::List(l) => Some(l),
            SexpKind::Atom(_) => None,
        }
    }

    /// The source span of this expression.
    pub fn span(&self) -> Span {
        self.span
    }
}

/// Builds a [`SygusError::ParseError`] anchored at the start of `span`.
fn perr(idx: &LineIndex, span: Span, msg: impl Into<String>) -> SygusError {
    let (line, col) = idx.position(span.start);
    SygusError::ParseError(ParseError::new(line, col, msg))
}

enum Tok {
    Open,
    Close,
    Atom(String),
}

fn tokenize(input: &str) -> Vec<(Tok, Span)> {
    let mut tokens: Vec<(Tok, Span)> = Vec::new();
    let mut current = String::new();
    let mut current_start = 0u32;
    let flush = |current: &mut String, current_start: u32, end: usize, out: &mut Vec<_>| {
        if !current.is_empty() {
            out.push((
                Tok::Atom(std::mem::take(current)),
                Span::new(current_start, end as u32),
            ));
        }
    };
    let mut chars = input.char_indices().peekable();
    while let Some((i, c)) = chars.next() {
        match c {
            ';' => {
                flush(&mut current, current_start, i, &mut tokens);
                while let Some(&(_, n)) = chars.peek() {
                    if n == '\n' {
                        break;
                    }
                    chars.next();
                }
            }
            '(' | ')' => {
                flush(&mut current, current_start, i, &mut tokens);
                let tok = if c == '(' { Tok::Open } else { Tok::Close };
                tokens.push((tok, Span::new(i as u32, (i + 1) as u32)));
            }
            c if c.is_whitespace() => flush(&mut current, current_start, i, &mut tokens),
            c => {
                if current.is_empty() {
                    current_start = i as u32;
                }
                current.push(c);
            }
        }
    }
    flush(&mut current, current_start, input.len(), &mut tokens);
    tokens
}

/// Tokenises and parses a string into a sequence of spanned s-expressions.
///
/// Comments start with `;` and run to the end of the line.
///
/// # Errors
/// Returns a [`SygusError::ParseError`] (carrying the offending
/// parenthesis's position) on unbalanced parentheses.
pub fn parse_sexps(input: &str) -> Result<Vec<Sexp>, SygusError> {
    let idx = LineIndex::new(input);
    struct Frame {
        open: Span,
        items: Vec<Sexp>,
    }
    let mut stack: Vec<Frame> = vec![Frame {
        open: Span::new(0, 0),
        items: Vec::new(),
    }];
    for (tok, span) in tokenize(input) {
        match tok {
            Tok::Open => stack.push(Frame {
                open: span,
                items: Vec::new(),
            }),
            Tok::Close => {
                if stack.len() == 1 {
                    return Err(perr(&idx, span, "unbalanced ')'"));
                }
                let frame = stack.pop().expect("len checked above");
                let sexp = Sexp {
                    span: Span::new(frame.open.start, span.end),
                    kind: SexpKind::List(frame.items),
                };
                stack
                    .last_mut()
                    .expect("root frame remains")
                    .items
                    .push(sexp);
            }
            Tok::Atom(a) => stack
                .last_mut()
                .expect("stack never empty")
                .items
                .push(Sexp {
                    kind: SexpKind::Atom(a),
                    span,
                }),
        }
    }
    if stack.len() != 1 {
        let open = stack.last().expect("nonempty stack").open;
        return Err(perr(&idx, open, "unbalanced '('"));
    }
    Ok(stack.pop().expect("single frame").items)
}

fn parse_sort(s: &Sexp, idx: &LineIndex) -> Result<Sort, SygusError> {
    match s.atom() {
        Some("Int") => Ok(Sort::Int),
        Some("Bool") => Ok(Sort::Bool),
        other => Err(perr(idx, s.span, format!("unsupported sort {other:?}"))),
    }
}

struct SynthFun {
    name: String,
    params: Vec<(String, Sort)>,
    ret: Sort,
    grammar: Grammar,
}

fn parse_synth_fun(span: Span, items: &[Sexp], idx: &LineIndex) -> Result<SynthFun, SygusError> {
    // (synth-fun name ((x Int) ...) Ret (decls) (rules))
    if items.len() < 4 {
        return Err(perr(
            idx,
            span,
            "synth-fun needs a name, parameters and a return sort",
        ));
    }
    let name = items[1]
        .atom()
        .ok_or_else(|| perr(idx, items[1].span, "synth-fun name must be an atom"))?
        .to_string();
    let mut params = Vec::new();
    for p in items[2]
        .list()
        .ok_or_else(|| perr(idx, items[2].span, "synth-fun parameter list expected"))?
    {
        let pl = p
            .list()
            .ok_or_else(|| perr(idx, p.span, "parameter must be (name Sort)"))?;
        if pl.len() != 2 {
            return Err(perr(idx, p.span, "parameter must be (name Sort)"));
        }
        params.push((
            pl[0]
                .atom()
                .ok_or_else(|| perr(idx, pl[0].span, "parameter name must be an atom"))?
                .to_string(),
            parse_sort(&pl[1], idx)?,
        ));
    }
    let ret = parse_sort(&items[3], idx)?;

    // Grammar part: either SyGuS-IF v2 ((A Int) (B Bool)) ((A Int (rules)) ...)
    // or directly ((A Int (rules)) ...).
    let grouped_sexp = if items.len() >= 6 {
        &items[5]
    } else if items.len() == 5 {
        &items[4]
    } else {
        return Err(perr(idx, span, "synth-fun must declare a grammar"));
    };
    let grouped = grouped_sexp.list().ok_or_else(|| {
        perr(
            idx,
            grouped_sexp.span,
            "grouped grammar rules must be a list",
        )
    })?;

    // Collect nonterminal declarations first.
    let mut decls: Vec<(String, Sort)> = Vec::new();
    for g in grouped {
        let gl = g
            .list()
            .ok_or_else(|| perr(idx, g.span, "grammar group must be (Name Sort (rules…))"))?;
        if gl.len() < 3 {
            return Err(perr(
                idx,
                g.span,
                "grammar group must be (Name Sort (rules…))",
            ));
        }
        decls.push((
            gl[0]
                .atom()
                .ok_or_else(|| perr(idx, gl[0].span, "nonterminal name must be an atom"))?
                .to_string(),
            parse_sort(&gl[1], idx)?,
        ));
    }
    let start = decls
        .first()
        .ok_or_else(|| perr(idx, grouped_sexp.span, "grammar has no nonterminals"))?
        .0
        .clone();
    let nts: BTreeMap<String, Sort> = decls.iter().cloned().collect();
    let vars: BTreeMap<String, Sort> = params.iter().cloned().collect();

    let mut builder = GrammarBuilder::new(&start);
    for (n, s) in &decls {
        builder = builder.nonterminal(n, *s);
    }
    for g in grouped {
        let gl = g.list().expect("validated above");
        let lhs = gl[0].atom().expect("validated above");
        let rules = gl[2].list().ok_or_else(|| {
            perr(
                idx,
                gl[2].span,
                "grammar rules must be a parenthesised list",
            )
        })?;
        for rule in rules {
            builder = parse_rule(builder, lhs, rule, &nts, &vars, idx)?;
        }
    }
    Ok(SynthFun {
        name,
        params,
        ret,
        grammar: builder.build()?,
    })
}

fn parse_rule(
    builder: GrammarBuilder,
    lhs: &str,
    rule: &Sexp,
    nts: &BTreeMap<String, Sort>,
    vars: &BTreeMap<String, Sort>,
    idx: &LineIndex,
) -> Result<GrammarBuilder, SygusError> {
    match &rule.kind {
        SexpKind::Atom(a) => {
            if let Ok(c) = a.parse::<i64>() {
                Ok(builder.production(lhs, Symbol::Num(c), &[]))
            } else if vars.contains_key(a) {
                Ok(builder.production(lhs, Symbol::Var(a.clone()), &[]))
            } else if nts.contains_key(a) {
                Ok(builder.chain(lhs, a))
            } else if a == "true" || a == "false" {
                Err(perr(
                    idx,
                    rule.span,
                    "Boolean literals in grammars are not supported; use comparisons",
                ))
            } else {
                Err(perr(
                    idx,
                    rule.span,
                    format!("unknown grammar atom {a} in rules of {lhs}"),
                ))
            }
        }
        SexpKind::List(items) => {
            let op = items
                .first()
                .and_then(|s| s.atom())
                .ok_or_else(|| perr(idx, rule.span, "rule operator must be an atom"))?;
            let args: Result<Vec<&Sexp>, SygusError> = items[1..]
                .iter()
                .map(|s| {
                    if s.atom().is_some() {
                        Ok(s)
                    } else {
                        Err(perr(
                            idx,
                            s.span,
                            format!(
                                "nested terms in grammar rules are not supported (rule of {lhs}); \
                                 introduce an auxiliary nonterminal"
                            ),
                        ))
                    }
                })
                .collect();
            let args = args?;
            // Arguments must be nonterminals.
            for a in &args {
                let name = a.atom().expect("validated above");
                if !nts.contains_key(name) {
                    return Err(perr(
                        idx,
                        a.span,
                        format!("rule argument {name} of {lhs} is not a declared nonterminal"),
                    ));
                }
            }
            let arg_names: Vec<&str> = args.iter().map(|a| a.atom().expect("atom")).collect();
            let symbol = match op {
                "+" => Symbol::Plus,
                "-" => Symbol::Minus,
                "ite" => Symbol::IfThenElse,
                "and" => Symbol::And,
                "or" => Symbol::Or,
                "not" => Symbol::Not,
                "<" => Symbol::LessThan,
                "=" => Symbol::Equal,
                other => {
                    return Err(perr(
                        idx,
                        items[0].span,
                        format!("unsupported grammar operator {other}"),
                    ))
                }
            };
            Ok(builder.production(lhs, symbol, &arg_names))
        }
    }
}

/// Parses constraint terms into linear expressions (integer context).
fn parse_int_expr(
    sexp: &Sexp,
    fun: &SynthFun,
    declared: &BTreeMap<String, Sort>,
    idx: &LineIndex,
) -> Result<LinearExpr, SygusError> {
    match &sexp.kind {
        SexpKind::Atom(a) => {
            if let Ok(c) = a.parse::<i64>() {
                Ok(LinearExpr::constant(c))
            } else if declared.contains_key(a) || fun.params.iter().any(|(p, _)| p == a) {
                Ok(LinearExpr::var(Var::new(a.clone())))
            } else {
                Err(perr(
                    idx,
                    sexp.span,
                    format!("unknown variable {a} in constraint"),
                ))
            }
        }
        SexpKind::List(items) => {
            let op = items
                .first()
                .and_then(|s| s.atom())
                .ok_or_else(|| perr(idx, sexp.span, "operator must be an atom"))?;
            let operand = |i: usize| {
                items.get(i).ok_or_else(|| {
                    perr(
                        idx,
                        sexp.span,
                        format!("operator {op} is missing operand {i}"),
                    )
                })
            };
            match op {
                "+" => {
                    let mut sum = LinearExpr::zero();
                    for a in &items[1..] {
                        sum = sum + parse_int_expr(a, fun, declared, idx)?;
                    }
                    Ok(sum)
                }
                "-" => {
                    if items.len() == 2 {
                        Ok(parse_int_expr(&items[1], fun, declared, idx)?.scale(-1))
                    } else {
                        let mut acc = parse_int_expr(operand(1)?, fun, declared, idx)?;
                        for a in &items[2..] {
                            acc = acc - parse_int_expr(a, fun, declared, idx)?;
                        }
                        Ok(acc)
                    }
                }
                "*" => {
                    if items.len() != 3 {
                        return Err(perr(idx, sexp.span, "* must have exactly two operands"));
                    }
                    let a = parse_int_expr(&items[1], fun, declared, idx)?;
                    let b = parse_int_expr(&items[2], fun, declared, idx)?;
                    if a.is_constant() {
                        Ok(b.scale(a.constant_part()))
                    } else if b.is_constant() {
                        Ok(a.scale(b.constant_part()))
                    } else {
                        Err(perr(
                            idx,
                            sexp.span,
                            "non-linear multiplication is not supported",
                        ))
                    }
                }
                name if name == fun.name => {
                    // single-invocation application f(x̄)
                    for (arg, (param, _)) in items[1..].iter().zip(&fun.params) {
                        match arg.atom() {
                            Some(a) if a == param => {}
                            _ => {
                                return Err(perr(
                                    idx,
                                    arg.span,
                                    "only single-invocation applications f(x̄) on the declared \
                                     variables are supported",
                                ))
                            }
                        }
                    }
                    Ok(LinearExpr::var(Spec::output_var()))
                }
                other => Err(perr(
                    idx,
                    items[0].span,
                    format!("unsupported integer operator {other}"),
                )),
            }
        }
    }
}

fn parse_formula(
    sexp: &Sexp,
    fun: &SynthFun,
    declared: &BTreeMap<String, Sort>,
    idx: &LineIndex,
) -> Result<Formula, SygusError> {
    match &sexp.kind {
        SexpKind::Atom(a) if a == "true" => Ok(Formula::True),
        SexpKind::Atom(a) if a == "false" => Ok(Formula::False),
        SexpKind::Atom(_) => Err(perr(
            idx,
            sexp.span,
            "Boolean variables in constraints are not supported",
        )),
        SexpKind::List(items) => {
            let op = items
                .first()
                .and_then(|s| s.atom())
                .ok_or_else(|| perr(idx, sexp.span, "operator must be an atom"))?;
            let operand = |i: usize| {
                items.get(i).ok_or_else(|| {
                    perr(
                        idx,
                        sexp.span,
                        format!("operator {op} is missing operand {i}"),
                    )
                })
            };
            let int = |i: usize| parse_int_expr(operand(i)?, fun, declared, idx);
            match op {
                "=" => Ok(Formula::eq(int(1)?, int(2)?)),
                "<" => Ok(Formula::lt(int(1)?, int(2)?)),
                "<=" => Ok(Formula::le(int(1)?, int(2)?)),
                ">" => Ok(Formula::gt(int(1)?, int(2)?)),
                ">=" => Ok(Formula::ge(int(1)?, int(2)?)),
                "and" => Ok(Formula::and(
                    items[1..]
                        .iter()
                        .map(|s| parse_formula(s, fun, declared, idx))
                        .collect::<Result<Vec<_>, _>>()?,
                )),
                "or" => Ok(Formula::or(
                    items[1..]
                        .iter()
                        .map(|s| parse_formula(s, fun, declared, idx))
                        .collect::<Result<Vec<_>, _>>()?,
                )),
                "not" => Ok(Formula::not(parse_formula(
                    operand(1)?,
                    fun,
                    declared,
                    idx,
                )?)),
                "=>" => Ok(Formula::implies(
                    parse_formula(operand(1)?, fun, declared, idx)?,
                    parse_formula(operand(2)?, fun, declared, idx)?,
                )),
                "ite" => Ok(Formula::ite(
                    parse_formula(operand(1)?, fun, declared, idx)?,
                    parse_formula(operand(2)?, fun, declared, idx)?,
                    parse_formula(operand(3)?, fun, declared, idx)?,
                )),
                other => Err(perr(
                    idx,
                    items[0].span,
                    format!("unsupported Boolean operator {other}"),
                )),
            }
        }
    }
}

/// Parses a complete SyGuS-IF problem.
///
/// # Errors
/// Returns a [`SygusError::ParseError`] — carrying the offending token's
/// line and column — for unsupported or malformed input.
///
/// # Example
/// ```
/// let src = r#"
///   (set-logic LIA)
///   (synth-fun f ((x Int)) Int
///     ((Start Int) (X Int))
///     ((Start Int ((+ X Start) 0))
///      (X Int (x))))
///   (declare-var x Int)
///   (constraint (= (f x) (+ (* 2 x) 2)))
///   (check-synth)
/// "#;
/// let problem = sygus::parser::parse_problem(src, "doc").unwrap();
/// assert_eq!(problem.grammar().num_nonterminals(), 2);
/// ```
pub fn parse_problem(input: &str, name: &str) -> Result<Problem, SygusError> {
    let idx = LineIndex::new(input);
    let sexps = parse_sexps(input)?;
    let mut synth_fun: Option<SynthFun> = None;
    let mut declared: BTreeMap<String, Sort> = BTreeMap::new();
    // Declaration order, kept separately: the spec's input variables must
    // come out in the order the file declares them, not sorted, so that
    // printing a parsed problem reproduces the file.
    let mut declared_order: Vec<String> = Vec::new();
    let mut constraints: Vec<Sexp> = Vec::new();

    for s in &sexps {
        let Some(items) = s.list() else {
            return Err(perr(
                &idx,
                s.span,
                format!("top-level atoms are not valid SyGuS commands: {:?}", s.kind),
            ));
        };
        let Some(head) = items.first().and_then(|s| s.atom()) else {
            continue;
        };
        match head {
            "set-logic" | "check-synth" | "set-option" => {}
            "synth-fun" => synth_fun = Some(parse_synth_fun(s.span, items, &idx)?),
            "declare-var" => {
                let v = items
                    .get(1)
                    .and_then(|s| s.atom())
                    .ok_or_else(|| perr(&idx, s.span, "declare-var needs a name"))?;
                let sort = parse_sort(
                    items
                        .get(2)
                        .ok_or_else(|| perr(&idx, s.span, "declare-var needs a sort"))?,
                    &idx,
                )?;
                if declared.insert(v.to_string(), sort).is_none() {
                    declared_order.push(v.to_string());
                }
            }
            "constraint" => constraints.push(
                items
                    .get(1)
                    .ok_or_else(|| perr(&idx, s.span, "constraint needs a formula"))?
                    .clone(),
            ),
            other => {
                return Err(perr(
                    &idx,
                    items[0].span,
                    format!("unsupported SyGuS command {other}"),
                ))
            }
        }
    }

    let fun = synth_fun.ok_or_else(|| perr(&idx, Span::new(0, 0), "no synth-fun command found"))?;
    let formula = Formula::and(
        constraints
            .iter()
            .map(|c| parse_formula(c, &fun, &declared, &idx))
            .collect::<Result<Vec<_>, _>>()?,
    );
    // Inputs of the spec: the synth-fun's parameters (constraints are assumed
    // single-invocation, i.e. the universally quantified variables coincide
    // with the function arguments).
    let input_vars: Vec<String> = if declared_order.is_empty() {
        fun.params.iter().map(|(p, _)| p.clone()).collect()
    } else {
        declared_order
    };
    let spec = Spec::new(formula, input_vars, fun.ret);
    Ok(Problem::new(name, fun.grammar, spec))
}

/// Prints a grammar in the grouped SyGuS-IF rule format.
///
/// The start nonterminal is printed first (the format identifies the start
/// symbol positionally), so the output of this function parses back to the
/// same grammar via [`parse_problem`].
pub fn grammar_to_sygus(grammar: &Grammar) -> String {
    let mut out = String::new();
    let _ = write!(out, "(");
    let start_first: Vec<_> = std::iter::once(grammar.start())
        .chain(
            grammar
                .nonterminals()
                .iter()
                .filter(|n| *n != grammar.start()),
        )
        .collect();
    for (i, nt) in start_first.into_iter().enumerate() {
        if i > 0 {
            let _ = write!(out, "\n ");
        }
        let sort = grammar.sort_of(nt).expect("declared nonterminal");
        let _ = write!(out, "({nt} {sort} (");
        let rules: Vec<String> = grammar
            .productions_of(nt)
            .map(|p| {
                if p.args.is_empty() {
                    p.symbol.sygus_name()
                } else {
                    format!(
                        "({} {})",
                        p.symbol.sygus_name(),
                        p.args
                            .iter()
                            .map(|a| a.to_string())
                            .collect::<Vec<_>>()
                            .join(" ")
                    )
                }
            })
            .collect();
        let _ = write!(out, "{}))", rules.join(" "));
    }
    let _ = write!(out, ")");
    out
}

/// Prints a linear expression as a constraint-side s-expression. `app` is
/// the rendering of the synthesis-function application that stands in for
/// the reserved output variable.
fn linexpr_to_sygus(expr: &LinearExpr, app: &str) -> String {
    let render_var = |v: &Var| {
        if *v == Spec::output_var() {
            app.to_string()
        } else {
            v.name().to_string()
        }
    };
    let mut parts: Vec<String> = expr
        .terms()
        .map(|(v, c)| {
            let name = render_var(v);
            if c == 1 {
                name
            } else {
                format!("(* {c} {name})")
            }
        })
        .collect();
    let constant = expr.constant_part();
    if constant != 0 || parts.is_empty() {
        parts.push(constant.to_string());
    }
    if parts.len() == 1 {
        parts.pop().expect("len checked")
    } else {
        format!("(+ {})", parts.join(" "))
    }
}

/// Prints a formula as a constraint-side s-expression (`Ne` atoms become
/// `(not (= …))`, which [`parse_problem`] reads back as the equivalent
/// negated equality).
fn formula_to_sygus(formula: &Formula, app: &str) -> String {
    use logic::Rel;
    match formula {
        Formula::True => "true".to_string(),
        Formula::False => "false".to_string(),
        Formula::Atom(atom) => {
            let lhs = linexpr_to_sygus(&atom.lhs, app);
            let rhs = linexpr_to_sygus(&atom.rhs, app);
            match atom.rel {
                Rel::Eq => format!("(= {lhs} {rhs})"),
                Rel::Ne => format!("(not (= {lhs} {rhs}))"),
                Rel::Le => format!("(<= {lhs} {rhs})"),
                Rel::Lt => format!("(< {lhs} {rhs})"),
                Rel::Ge => format!("(>= {lhs} {rhs})"),
                Rel::Gt => format!("(> {lhs} {rhs})"),
            }
        }
        // A negated atom prints as the atom with the negated relation (and
        // `Ne` in turn as a negated equality): the printed form then
        // re-parses to the same normalized shape, keeping print ∘ parse a
        // fixpoint for double negations like `not (a ≠ b)`.
        Formula::Not(inner) => match inner.as_ref() {
            Formula::Atom(atom) => formula_to_sygus(&Formula::Atom(atom.negate()), app),
            other => format!("(not {})", formula_to_sygus(other, app)),
        },
        Formula::And(parts) => format!(
            "(and {})",
            parts
                .iter()
                .map(|p| formula_to_sygus(p, app))
                .collect::<Vec<_>>()
                .join(" ")
        ),
        Formula::Or(parts) => format!(
            "(or {})",
            parts
                .iter()
                .map(|p| formula_to_sygus(p, app))
                .collect::<Vec<_>>()
                .join(" ")
        ),
    }
}

/// Prints a complete problem in the SyGuS-IF fragment that
/// [`parse_problem`] reads, with `fun` as the synthesis-function name.
///
/// The output is a fixpoint of printing and parsing: for any problem in
/// the supported fragment,
/// `problem_to_sygus(&parse_problem(&problem_to_sygus(p, "f"), …), "f")`
/// equals `problem_to_sygus(p, "f")` — chain productions come out resolved
/// and `≠` atoms come out as negated equalities, exactly as the parser
/// normalizes them.
///
/// # Example
/// ```
/// use sygus::parser::{parse_problem, problem_to_sygus};
/// let src = r#"
///   (set-logic LIA)
///   (synth-fun f ((x Int)) Int ((Start Int ((+ Start Start) x 1))))
///   (declare-var x Int)
///   (constraint (= (f x) (+ x 2)))
///   (check-synth)
/// "#;
/// let problem = parse_problem(src, "doc").unwrap();
/// let printed = problem_to_sygus(&problem, "f");
/// let reparsed = parse_problem(&printed, "doc").unwrap();
/// assert_eq!(problem_to_sygus(&reparsed, "f"), printed);
/// ```
pub fn problem_to_sygus(problem: &Problem, fun: &str) -> String {
    let grammar = problem.grammar();
    let spec = problem.spec();
    let mut out = String::new();
    let logic = if grammar.is_lia() { "LIA" } else { "CLIA" };
    let _ = writeln!(out, "(set-logic {logic})");

    // The parameters are the spec's input variables plus any grammar
    // variable the spec does not mention (some generated benchmarks use
    // disjoint names); every parameter is also declared, so a reparse
    // reproduces the same variable set in the same order.
    let mut params: Vec<String> = spec.input_vars().to_vec();
    for v in grammar.variables() {
        if !params.contains(&v) {
            params.push(v);
        }
    }
    let param_decls: Vec<String> = params.iter().map(|x| format!("({x} Int)")).collect();
    let _ = writeln!(
        out,
        "(synth-fun {fun} ({}) {}",
        param_decls.join(" "),
        spec.output_sort()
    );
    let grammar_text = grammar_to_sygus(grammar).replace('\n', "\n ");
    let _ = writeln!(out, "  {grammar_text})");

    for x in &params {
        let _ = writeln!(out, "(declare-var {x} Int)");
    }

    let app = format!("({fun} {})", params.join(" "));
    // A top-level conjunction prints as one constraint per conjunct, which
    // is how SyGuS benchmarks are usually written; parse_problem conjoins
    // them back.
    let conjuncts: Vec<&Formula> = match spec.formula() {
        Formula::And(parts) => parts.iter().collect(),
        single => vec![single],
    };
    for c in conjuncts {
        let _ = writeln!(out, "(constraint {})", formula_to_sygus(c, app.as_str()));
    }
    let _ = writeln!(out, "(check-synth)");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::ExampleSet;
    use crate::term::Term;

    const SECTION2_LIA: &str = r#"
      ; the LIA problem of Section 2 (grammar G1)
      (set-logic LIA)
      (synth-fun f ((x Int)) Int
        ((Start Int) (S1 Int) (S2 Int) (S3 Int))
        ((Start Int ((+ S1 Start) 0))
         (S1 Int ((+ S2 S3)))
         (S2 Int ((+ S3 S3)))
         (S3 Int (x))))
      (declare-var x Int)
      (constraint (= (f x) (+ (* 2 x) 2)))
      (check-synth)
    "#;

    fn parse_err(input: &str) -> ParseError {
        match parse_problem(input, "err") {
            Err(SygusError::ParseError(e)) => e,
            other => panic!("expected a parse error, got {other:?}"),
        }
    }

    #[test]
    fn sexp_parsing() {
        let sexps = parse_sexps("(a (b 1) ; comment\n c)").unwrap();
        assert_eq!(sexps.len(), 1);
        match &sexps[0].kind {
            SexpKind::List(items) => assert_eq!(items.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_sexps("(a (b)").is_err());
        assert!(parse_sexps("a) b").is_err());
    }

    #[test]
    fn sexp_spans_cover_the_source() {
        let src = "(a (b 1)\n c)";
        let sexps = parse_sexps(src).unwrap();
        let top = &sexps[0];
        assert_eq!(top.span, Span::new(0, src.len() as u32));
        let items = top.list().unwrap();
        assert_eq!(
            &src[items[0].span.start as usize..items[0].span.end as usize],
            "a"
        );
        assert_eq!(
            &src[items[1].span.start as usize..items[1].span.end as usize],
            "(b 1)"
        );
        assert_eq!(
            &src[items[2].span.start as usize..items[2].span.end as usize],
            "c"
        );
    }

    #[test]
    fn line_index_positions() {
        let idx = LineIndex::new("ab\ncd\n\nx");
        assert_eq!(idx.position(0), (1, 1));
        assert_eq!(idx.position(1), (1, 2));
        assert_eq!(idx.position(3), (2, 1));
        assert_eq!(idx.position(4), (2, 2));
        assert_eq!(idx.position(6), (3, 1));
        assert_eq!(idx.position(7), (4, 1));
    }

    #[test]
    fn parse_errors_carry_line_and_column() {
        // the unknown grammar atom `y` sits on line 2
        let e =
            parse_err("(synth-fun f ((x Int)) Int\n  ((Start Int (y))))\n(constraint (= (f x) x))");
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("unknown grammar atom y"));
        assert_eq!(
            &"  ((Start Int (y))))"[e.col as usize - 1..e.col as usize],
            "y"
        );

        // an unbalanced close paren reports its own position
        let e = match parse_sexps("(a)\n)") {
            Err(SygusError::ParseError(e)) => e,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!((e.line, e.col), (2, 1));
        assert!(e.msg.contains("unbalanced ')'"));

        // unknown constraint variable, with column pointing at the token
        let e =
            parse_err("(synth-fun f ((x Int)) Int ((Start Int (x))))\n(constraint (= (f x) zz))");
        assert_eq!(e.line, 2);
        assert_eq!(e.col, 22);
        assert!(e.msg.contains("unknown variable zz"));
    }

    #[test]
    fn display_of_parse_errors_is_line_col_prefixed() {
        let e = parse_err("(unsupported-command)");
        let rendered = SygusError::ParseError(e).to_string();
        assert!(
            rendered.starts_with("parse error at 1:2:"),
            "unexpected rendering {rendered}"
        );
    }

    #[test]
    fn malformed_constraints_error_instead_of_panicking() {
        for bad in [
            "(constraint)",
            "(synth-fun f ((x Int)) Int ((Start Int (x))))\n(constraint (=))",
            "(synth-fun f ((x Int)) Int ((Start Int (x))))\n(constraint (not))",
            "(synth-fun f ((x Int)) Int ((Start Int (x))))\n(constraint (- ))",
        ] {
            assert!(
                matches!(parse_problem(bad, "bad"), Err(SygusError::ParseError(_))),
                "input {bad:?} must produce a parse error"
            );
        }
    }

    #[test]
    fn parses_the_section2_problem() {
        let p = parse_problem(SECTION2_LIA, "section2").unwrap();
        assert_eq!(p.grammar().num_nonterminals(), 4);
        assert_eq!(p.grammar().num_productions(), 5);
        assert!(p.grammar().is_lia());
        // spec: f(1) must be 4
        let e = crate::Example::from_pairs([("x", 1)]);
        assert!(p.spec().holds(&e, 4));
        assert!(!p.spec().holds(&e, 3));
    }

    #[test]
    fn parsed_grammar_generates_3kx() {
        let p = parse_problem(SECTION2_LIA, "section2").unwrap();
        let examples = ExampleSet::for_single_var("x", [1]);
        for t in p.grammar().terms_up_to_size(p.grammar().start(), 9, 100) {
            let out = t.eval_on(&examples).unwrap();
            let v = out.as_int().unwrap()[0];
            assert_eq!(v % 3, 0, "grammar G1 should only produce multiples of 3·x");
        }
    }

    #[test]
    fn chain_productions_are_resolved() {
        let src = r#"
          (synth-fun f ((x Int)) Int
            ((Start Int) (A Int))
            ((Start Int (A))
             (A Int (x 0))))
          (constraint (= (f x) x))
        "#;
        let p = parse_problem(src, "chain").unwrap();
        // Start has the copied productions of A
        assert!(p.grammar().contains_term(&Term::var("x")));
        assert!(p.grammar().contains_term(&Term::num(0)));
    }

    #[test]
    fn clia_grammar_parsing() {
        let src = r#"
          (set-logic CLIA)
          (synth-fun f ((x Int) (y Int)) Int
            ((Start Int) (B Bool))
            ((Start Int (x y 0 1 (+ Start Start) (ite B Start Start)))
             (B Bool ((< Start Start) (and B B) (not B)))))
          (declare-var x Int)
          (declare-var y Int)
          (constraint (>= (f x y) x))
          (constraint (>= (f x y) y))
          (constraint (or (= (f x y) x) (= (f x y) y)))
          (check-synth)
        "#;
        let p = parse_problem(src, "max2").unwrap();
        assert!(p.grammar().has_ite());
        assert_eq!(p.grammar().bool_nonterminals().len(), 1);
        assert_eq!(p.grammar().variables().len(), 2);
        // max(3,5) = 5 satisfies, 4 does not
        let e = crate::Example::from_pairs([("x", 3), ("y", 5)]);
        assert!(p.spec().holds(&e, 5));
        assert!(!p.spec().holds(&e, 4));
    }

    #[test]
    fn rejects_nonlinear_and_unknown() {
        let bad = r#"
          (synth-fun f ((x Int)) Int ((Start Int)) ((Start Int (x))))
          (declare-var x Int)
          (constraint (= (f x) (* x x)))
        "#;
        assert!(parse_problem(bad, "bad").is_err());
        let unknown = r#"
          (synth-fun f ((x Int)) Int ((Start Int)) ((Start Int (y))))
        "#;
        assert!(parse_problem(unknown, "bad").is_err());
    }

    #[test]
    fn grammar_printer_round_trips_through_parser() {
        let p = parse_problem(SECTION2_LIA, "section2").unwrap();
        let printed = grammar_to_sygus(p.grammar());
        assert!(printed.contains("(Start Int"));
        assert!(printed.contains("(+ S1 Start)"));
    }

    #[test]
    fn problem_printer_is_a_parse_fixpoint() {
        for src in [
            SECTION2_LIA,
            r#"
              (set-logic CLIA)
              (synth-fun f ((x Int) (y Int)) Int
                ((Start Int) (B Bool))
                ((Start Int (x y 0 1 (+ Start Start) (ite B Start Start)))
                 (B Bool ((< Start Start) (and B B) (not B)))))
              (declare-var x Int)
              (declare-var y Int)
              (constraint (>= (f x y) x))
              (constraint (>= (f x y) y))
              (constraint (or (= (f x y) x) (= (f x y) y)))
              (check-synth)
            "#,
        ] {
            let problem = parse_problem(src, "fixpoint").unwrap();
            let printed = problem_to_sygus(&problem, "f");
            let reparsed = parse_problem(&printed, "fixpoint").unwrap();
            assert_eq!(problem_to_sygus(&reparsed, "f"), printed);
        }
    }

    #[test]
    fn printer_preserves_verdict_relevant_structure() {
        let problem = parse_problem(SECTION2_LIA, "section2").unwrap();
        let printed = problem_to_sygus(&problem, "f");
        let reparsed = parse_problem(&printed, "section2").unwrap();
        assert_eq!(
            reparsed.grammar().num_nonterminals(),
            problem.grammar().num_nonterminals()
        );
        assert_eq!(
            reparsed.grammar().num_productions(),
            problem.grammar().num_productions()
        );
        assert_eq!(reparsed.spec().input_vars(), problem.spec().input_vars());
        let e = crate::Example::from_pairs([("x", 3)]);
        for out in -10..=10 {
            assert_eq!(
                reparsed.spec().holds(&e, out),
                problem.spec().holds(&e, out)
            );
        }
    }

    #[test]
    fn declare_var_order_is_preserved() {
        let src = r#"
          (synth-fun f ((x1 Int) (k Int)) Int ((Start Int (x1 k 0))))
          (declare-var x1 Int)
          (declare-var k Int)
          (constraint (= (f x1 k) x1))
        "#;
        let p = parse_problem(src, "order").unwrap();
        assert_eq!(p.spec().input_vars(), ["x1".to_string(), "k".to_string()]);
    }

    #[test]
    fn printer_handles_negative_coefficients_and_constants() {
        let src = r#"
          (synth-fun f ((x Int)) Int ((Start Int (x -3 (+ Start Start)))))
          (declare-var x Int)
          (constraint (= (f x) (- (* 2 x) 5)))
        "#;
        let problem = parse_problem(src, "neg").unwrap();
        let printed = problem_to_sygus(&problem, "f");
        let reparsed = parse_problem(&printed, "neg").unwrap();
        assert_eq!(problem_to_sygus(&reparsed, "f"), printed);
        let e = crate::Example::from_pairs([("x", 4)]);
        assert!(reparsed.spec().holds(&e, 3));
    }
}
