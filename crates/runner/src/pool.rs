//! A work-stealing thread pool for benchmark jobs, built on `std::thread`
//! and channels only.
//!
//! Jobs are distributed round-robin over per-worker deques; a worker pops
//! from the front of its own deque and, when that runs dry, steals from the
//! back of a sibling's. Because the job set is static (no job spawns new
//! jobs), a worker may exit as soon as every deque is empty.
//!
//! Each job body runs on a dedicated thread so that the worker can enforce a
//! wall-clock timeout with `recv_timeout`: a job that overruns is abandoned
//! (its thread keeps running detached until process exit) and reported as
//! [`JobStatus::TimedOut`] without stalling the pool, and a job that panics
//! is caught and reported as [`JobStatus::Crashed`] while its siblings keep
//! going.

use crate::timing::measure;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

/// How the pool executes a batch of jobs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoolConfig {
    /// Number of worker threads (clamped to at least 1).
    pub jobs: usize,
    /// Per-job wall-clock budget; `None` means unlimited.
    pub timeout: Option<Duration>,
}

impl PoolConfig {
    /// One worker, no timeout — equivalent to the old serial harness loop.
    pub fn serial() -> Self {
        PoolConfig {
            jobs: 1,
            timeout: None,
        }
    }

    /// As many workers as the machine advertises, no timeout.
    pub fn parallel() -> Self {
        PoolConfig {
            jobs: thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            timeout: None,
        }
    }

    /// Overrides the per-job timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig::serial()
    }
}

/// A unit of work: an identifier plus a closure producing a `T`.
pub struct Job<T> {
    /// Identifier echoed into the [`JobResult`] (e.g. `benchmark::tool`).
    pub id: String,
    run: Box<dyn FnOnce() -> T + Send + 'static>,
}

impl<T> Job<T> {
    /// Wraps a closure as a job.
    pub fn new(id: impl Into<String>, run: impl FnOnce() -> T + Send + 'static) -> Self {
        Job {
            id: id.into(),
            run: Box::new(run),
        }
    }

    /// Splits the job into its identifier and body (for executors outside
    /// this module, e.g. the warm pool).
    pub(crate) fn into_parts(self) -> (String, Box<dyn FnOnce() -> T + Send + 'static>) {
        (self.id, self.run)
    }
}

/// How a job's execution ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// The job ran to completion.
    Ok,
    /// The job exceeded the pool's wall-clock budget and was abandoned.
    TimedOut,
    /// The job panicked; the panic was contained to the job's thread.
    Crashed,
}

impl JobStatus {
    /// Stable serialization name used by the JSON report.
    pub fn as_str(&self) -> &'static str {
        match self {
            JobStatus::Ok => "ok",
            JobStatus::TimedOut => "timed_out",
            JobStatus::Crashed => "crashed",
        }
    }

    /// The more severe of two statuses (`Crashed` > `TimedOut` > `Ok`):
    /// the roll-up used when one entry reports on several jobs, e.g. a
    /// race's two engines or a family aggregate.
    pub fn worst(self, other: JobStatus) -> JobStatus {
        match (self, other) {
            (JobStatus::Crashed, _) | (_, JobStatus::Crashed) => JobStatus::Crashed,
            (JobStatus::TimedOut, _) | (_, JobStatus::TimedOut) => JobStatus::TimedOut,
            (JobStatus::Ok, JobStatus::Ok) => JobStatus::Ok,
        }
    }

    /// Inverse of [`JobStatus::as_str`].
    pub fn parse(s: &str) -> Option<JobStatus> {
        match s {
            "ok" => Some(JobStatus::Ok),
            "timed_out" => Some(JobStatus::TimedOut),
            "crashed" => Some(JobStatus::Crashed),
            _ => None,
        }
    }
}

/// The outcome of one job.
#[derive(Clone, Debug)]
pub struct JobResult<T> {
    /// The job's identifier.
    pub id: String,
    /// How execution ended.
    pub status: JobStatus,
    /// The job's value, present exactly when `status` is [`JobStatus::Ok`].
    pub output: Option<T>,
    /// Wall-clock time: the job body's own time when it completed, the
    /// budget when it timed out.
    pub elapsed: Duration,
    /// `true` when this job shared its sweep with an abandoned (timed-out)
    /// job thread. An abandoned thread keeps consuming CPU until process
    /// exit, so the wall-clock numbers of every job still running — or
    /// started — after the abandonment are inflated and should not gate
    /// slowdown comparisons.
    pub tainted: bool,
    /// Time the job spent queued before a worker picked it up. `Some` only
    /// on the [`WarmPool`](crate::WarmPool) path — the batch pool admits
    /// jobs straight onto workers, so there is no queue to wait in.
    pub queue_wait: Option<Duration>,
}

/// Runs every job and returns the results in submission order.
///
/// Results are position-stable: `results[i]` corresponds to `jobs[i]`
/// regardless of worker count or stealing, which is what makes the JSON
/// report deterministic across `--jobs 1` and `--jobs 8`.
pub fn run_jobs<T: Send + 'static>(jobs: Vec<Job<T>>, config: &PoolConfig) -> Vec<JobResult<T>> {
    let workers = config.jobs.max(1).min(jobs.len().max(1));
    let total = jobs.len();

    // Round-robin distribution over per-worker deques.
    type Deque<T> = Mutex<VecDeque<(usize, Job<T>)>>;
    let queues: Vec<Deque<T>> = (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (index, job) in jobs.into_iter().enumerate() {
        queues[index % workers]
            .lock()
            .unwrap()
            .push_back((index, job));
    }

    let slots: Vec<Mutex<Option<JobResult<T>>>> = (0..total).map(|_| Mutex::new(None)).collect();
    // Set when any job of this batch is abandoned on timeout; jobs finishing
    // afterwards are marked tainted (their timings overlapped a runaway
    // thread).
    let abandoned = AtomicBool::new(false);

    thread::scope(|scope| {
        for me in 0..workers {
            let queues = &queues;
            let slots = &slots;
            let abandoned = &abandoned;
            let timeout = config.timeout;
            scope.spawn(move || loop {
                // Own deque first (front), then steal from a sibling (back).
                let task = queues[me].lock().unwrap().pop_front().or_else(|| {
                    (1..workers)
                        .map(|offset| (me + offset) % workers)
                        .find_map(|victim| queues[victim].lock().unwrap().pop_back())
                });
                let Some((index, job)) = task else { break };
                *slots[index].lock().unwrap() = Some(execute(job, timeout, abandoned));
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every job produced a result")
        })
        .collect()
}

/// Runs one job on its own thread, enforcing the timeout from the worker.
/// `abandoned` is the batch-wide flag recording that some job thread has
/// been abandoned; a job finishing while it is set is marked tainted.
fn execute<T: Send + 'static>(
    job: Job<T>,
    timeout: Option<Duration>,
    abandoned: &AtomicBool,
) -> JobResult<T> {
    let Job { id, run } = job;
    let (tx, rx) = channel();
    let started = Instant::now();
    let spawned = thread::Builder::new()
        .name(format!("runner-job-{id}"))
        .spawn(move || {
            let (outcome, elapsed) = measure(|| catch_unwind(AssertUnwindSafe(run)));
            // The receiver is gone when the job already timed out; the
            // result is discarded in that case.
            let _ = tx.send((outcome, elapsed));
        });
    if spawned.is_err() {
        // Thread exhaustion (e.g. a long timeout-heavy sweep accumulating
        // abandoned job threads) must cost this one job, not panic the
        // scoped worker and lose every already-finished result.
        return JobResult {
            id,
            status: JobStatus::Crashed,
            output: None,
            elapsed: started.elapsed(),
            tainted: abandoned.load(Ordering::Acquire),
            queue_wait: None,
        };
    }

    let received = match timeout {
        Some(budget) => rx.recv_timeout(budget),
        None => rx.recv().map_err(|_| RecvTimeoutError::Disconnected),
    };
    // Taint is assessed when the job *finishes*: any job still in flight —
    // or started — after an abandonment shares CPU with the runaway thread.
    match received {
        Ok((Ok(output), elapsed)) => JobResult {
            id,
            status: JobStatus::Ok,
            output: Some(output),
            elapsed,
            tainted: abandoned.load(Ordering::Acquire),
            queue_wait: None,
        },
        Ok((Err(_panic), elapsed)) => JobResult {
            id,
            status: JobStatus::Crashed,
            output: None,
            elapsed,
            tainted: abandoned.load(Ordering::Acquire),
            queue_wait: None,
        },
        Err(RecvTimeoutError::Timeout) => {
            abandoned.store(true, Ordering::Release);
            JobResult {
                id,
                status: JobStatus::TimedOut,
                output: None,
                elapsed: timeout.expect("timeout error implies a budget"),
                tainted: true,
                queue_wait: None,
            }
        }
        Err(RecvTimeoutError::Disconnected) => JobResult {
            id,
            status: JobStatus::Crashed,
            output: None,
            elapsed: started.elapsed(),
            tainted: abandoned.load(Ordering::Acquire),
            queue_wait: None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        let jobs: Vec<Job<usize>> = (0..32)
            .map(|i| Job::new(format!("job-{i}"), move || i * i))
            .collect();
        let results = run_jobs(
            jobs,
            &PoolConfig {
                jobs: 8,
                timeout: None,
            },
        );
        assert_eq!(results.len(), 32);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.id, format!("job-{i}"));
            assert_eq!(r.status, JobStatus::Ok);
            assert_eq!(r.output, Some(i * i));
        }
    }

    #[test]
    fn zero_workers_is_clamped_to_one() {
        let results = run_jobs(
            vec![Job::new("only", || 7)],
            &PoolConfig {
                jobs: 0,
                timeout: None,
            },
        );
        assert_eq!(results[0].output, Some(7));
    }

    #[test]
    fn empty_job_list_is_fine() {
        let results: Vec<JobResult<()>> = run_jobs(vec![], &PoolConfig::parallel());
        assert!(results.is_empty());
    }

    #[test]
    fn status_names_round_trip() {
        for status in [JobStatus::Ok, JobStatus::TimedOut, JobStatus::Crashed] {
            assert_eq!(JobStatus::parse(status.as_str()), Some(status));
        }
        assert_eq!(JobStatus::parse("nope"), None);
    }
}
