//! Property-based tests for the SyGuS-IF printer/parser pair: for randomly
//! generated problems in the supported fragment, printing and parsing are
//! mutually inverse — `parse → print → parse` is the identity, observed as
//! a string fixpoint of `print ∘ parse` (the parser's only normalizations,
//! chain-production resolution and `≠`-elimination, are already applied to
//! everything the printer emits).
//!
//! Two generators feed the properties: the hand-rolled AST strategy below,
//! and the `gen` crate's seeded problem generator — every family of the
//! fuzzing catalogue must round-trip, which is what lets `reproduce fuzz`
//! treat a round-trip failure as a hard error.

use logic::{Formula, LinearExpr, Var};
use proptest::prelude::*;
use sygus::parser::{parse_problem, problem_to_sygus};
use sygus::{GrammarBuilder, Problem, Sort, Spec, Symbol};

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// A linear expression over `x`, `y`, and the reserved output variable.
fn arb_linexpr() -> impl Strategy<Value = LinearExpr> {
    (-5i64..=5, -3i64..=3, -3i64..=3, -2i64..=2).prop_map(|(constant, cx, cy, cout)| {
        LinearExpr::from_terms(
            [
                (Var::new("x"), cx),
                (Var::new("y"), cy),
                (Spec::output_var(), cout),
            ],
            constant,
        )
    })
}

fn arb_atom() -> impl Strategy<Value = Formula> {
    (arb_linexpr(), 0usize..6, arb_linexpr()).prop_map(|(lhs, rel, rhs)| match rel {
        0 => Formula::eq(lhs, rhs),
        1 => Formula::ne(lhs, rhs),
        2 => Formula::le(lhs, rhs),
        3 => Formula::lt(lhs, rhs),
        4 => Formula::ge(lhs, rhs),
        _ => Formula::gt(lhs, rhs),
    })
}

fn arb_formula() -> impl Strategy<Value = Formula> {
    arb_atom().prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(a, b, c)| Formula::and(vec![a, b, c])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::or(vec![a, b])),
            inner.clone().prop_map(Formula::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::implies(a, b)),
        ]
    })
}

/// A small well-sorted grammar over `x` and `y`: a `Plus`-closed integer
/// layer with two random constants, optionally a second chained
/// nonterminal, optionally a Boolean/`ite` layer.
fn arb_grammar_problem() -> impl Strategy<Value = Problem> {
    (
        -9i64..=9,
        -9i64..=9,
        prop_oneof![Just(false), Just(true)],
        prop_oneof![Just(false), Just(true)],
        arb_formula(),
    )
        .prop_map(|(c1, c2, two_levels, with_ite, formula)| {
            let mut builder = GrammarBuilder::new("Start")
                .nonterminal("Start", Sort::Int)
                .production("Start", Symbol::Var("x".to_string()), &[])
                .production("Start", Symbol::Num(c1), &[])
                .production("Start", Symbol::Plus, &["Start", "Start"]);
            if two_levels {
                builder = builder
                    .nonterminal("Leaf", Sort::Int)
                    .production("Leaf", Symbol::Var("y".to_string()), &[])
                    .production("Leaf", Symbol::Num(c2), &[])
                    .production("Start", Symbol::Plus, &["Leaf", "Start"]);
            }
            if with_ite {
                builder = builder
                    .nonterminal("Cond", Sort::Bool)
                    .production("Start", Symbol::IfThenElse, &["Cond", "Start", "Start"])
                    .production("Cond", Symbol::LessThan, &["Start", "Start"])
                    .production("Cond", Symbol::And, &["Cond", "Cond"])
                    .production("Cond", Symbol::Not, &["Cond"]);
            }
            let grammar = builder.build().expect("generated grammar is well-formed");
            let spec = Spec::new(formula, vec!["x".to_string(), "y".to_string()], Sort::Int);
            Problem::new("generated", grammar, spec)
        })
}

/// A problem drawn from the `gen` crate's family catalogue: any family,
/// any instance seed — the same construction path `reproduce fuzz`
/// streams through the engines.
fn arb_generated_problem() -> impl Strategy<Value = (Problem, String)> {
    (0u64..u64::MAX, 0usize..gen::Family::ALL.len()).prop_map(|(seed, family_index)| {
        let family = gen::Family::ALL[family_index];
        let mut rng = gen::GenRng::from_seed(seed);
        let built = gen::build(family, &mut rng, &gen::Scale::default());
        let label = format!("{family} seed {seed}");
        (built.problem, label)
    })
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `print ∘ parse` is a fixpoint on everything the printer emits.
    #[test]
    fn print_parse_print_is_identity(problem in arb_grammar_problem()) {
        let printed = problem_to_sygus(&problem, "f");
        let reparsed = parse_problem(&printed, "generated")
            .expect("printed problems parse back");
        prop_assert_eq!(problem_to_sygus(&reparsed, "f"), printed);
    }

    /// Parsing preserves the grammar shape and the spec's semantics on
    /// sampled inputs and outputs.
    #[test]
    fn reparsed_problems_are_semantically_equal(
        problem in arb_grammar_problem(),
        x in -7i64..=7,
        y in -7i64..=7,
        out in -9i64..=9,
    ) {
        let printed = problem_to_sygus(&problem, "f");
        let reparsed = parse_problem(&printed, "generated").expect("parse back");
        prop_assert_eq!(
            reparsed.grammar().num_nonterminals(),
            problem.grammar().num_nonterminals()
        );
        prop_assert_eq!(
            reparsed.grammar().num_productions(),
            problem.grammar().num_productions()
        );
        let example = sygus::Example::from_pairs([("x", x), ("y", y)]);
        prop_assert_eq!(
            reparsed.spec().holds(&example, out),
            problem.spec().holds(&example, out)
        );
    }

    /// Every problem the fuzzing generator can emit round-trips: the
    /// printed form parses back, `print ∘ parse` is a fixpoint, and the
    /// content fingerprint is preserved.
    #[test]
    fn generated_problems_round_trip((problem, label) in arb_generated_problem()) {
        let printed = problem_to_sygus(&problem, "f");
        let reparsed = parse_problem(&printed, "generated")
            .map_err(|e| TestCaseError::fail(format!("{label}: printed problem does not parse: {e}")))?;
        prop_assert_eq!(
            problem_to_sygus(&reparsed, "f"),
            printed,
            "print ∘ parse not a fixpoint for {}",
            label
        );
        prop_assert_eq!(
            reparsed.fingerprint(),
            problem.fingerprint(),
            "fingerprint changed across the round trip for {}",
            label
        );
    }
}
