//! Offline stand-in for the parts of the `rand` crate this workspace uses.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements exactly the API surface the workspace needs: `StdRng`,
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over integer
//! ranges. The generator is SplitMix64 — deterministic, seedable, and more
//! than good enough for drawing counterexample inputs; it makes no attempt
//! at cryptographic quality.

#![forbid(unsafe_code)]

use std::ops::{Bound, RangeBounds};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types that [`Rng::gen_range`] can sample.
pub trait SampleUniform: Copy {
    /// Widens to `i128` (every supported type fits).
    fn to_i128(self) -> i128;
    /// Narrows from `i128`; the value is always in range by construction.
    fn from_i128(v: i128) -> Self;
    /// The type's minimum, widened.
    const MIN_I128: i128;
    /// The type's maximum, widened.
    const MAX_I128: i128;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
            const MIN_I128: i128 = <$t>::MIN as i128;
            const MAX_I128: i128 = <$t>::MAX as i128;
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (any integer range form).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: RangeBounds<T>,
    {
        let lo = match range.start_bound() {
            Bound::Included(x) => x.to_i128(),
            Bound::Excluded(x) => x.to_i128() + 1,
            Bound::Unbounded => T::MIN_I128,
        };
        let hi = match range.end_bound() {
            Bound::Included(x) => x.to_i128(),
            Bound::Excluded(x) => x.to_i128() - 1,
            Bound::Unbounded => T::MAX_I128,
        };
        assert!(lo <= hi, "gen_range called with an empty range");
        let span = (hi - lo) as u128 + 1;
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        T::from_i128(lo + (wide % span) as i128)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

/// The standard deterministic generator (SplitMix64 underneath).
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-50..=50);
            assert!((-50..=50).contains(&v));
            let u: usize = rng.gen_range(0..10);
            assert!(u < 10);
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
