//! The two modes of the tool (§7): the exact semi-linear-set procedure
//! (`naySL`) and the approximate constrained-Horn-clause procedure
//! (`nayHorn`).

/// Which equation-solving back end `check_unrealizable` uses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Mode {
    /// naySL: the exact decision procedure over semi-linear sets (§5, §6).
    SemiLinear {
        /// Solve the GFA equations stratum by stratum (the SCC optimisation
        /// of §7). Turning this off reproduces the "no opt." series of Fig. 4.
        stratified: bool,
        /// Eagerly remove trivially-subsumed linear sets.
        prune: bool,
    },
    /// nayHorn: the sound-but-incomplete Horn-clause mode (§4.3), backed by
    /// the abstract-interpretation solver of the `chc` crate.
    Horn,
}

impl Default for Mode {
    fn default() -> Self {
        Mode::SemiLinear {
            stratified: true,
            prune: true,
        }
    }
}

impl Mode {
    /// The default naySL configuration (stratified, with pruning).
    pub fn semi_linear() -> Self {
        Mode::default()
    }

    /// naySL without the stratification optimisation.
    pub fn semi_linear_unstratified() -> Self {
        Mode::SemiLinear {
            stratified: false,
            prune: true,
        }
    }

    /// The nayHorn mode.
    pub fn horn() -> Self {
        Mode::Horn
    }

    /// A short human-readable name, used by the benchmark harness.
    pub fn name(&self) -> &'static str {
        match self {
            Mode::SemiLinear {
                stratified: true, ..
            } => "naySL",
            Mode::SemiLinear {
                stratified: false, ..
            } => "naySL(no-strat)",
            Mode::Horn => "nayHorn",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(Mode::default().name(), "naySL");
        assert_eq!(Mode::semi_linear_unstratified().name(), "naySL(no-strat)");
        assert_eq!(Mode::horn().name(), "nayHorn");
    }
}
