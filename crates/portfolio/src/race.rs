//! The racer: both engines on `runner`'s pool, first definitive verdict
//! wins, the loser is cancelled cooperatively.

use crate::engines::{solve_nay, solve_nope, NopeEngine, SolveVerdict};
use nay::Nay;
use runner::{measure, run_jobs, Cancel, Job, JobStatus, PoolConfig};
use std::time::Duration;
use sygus::{Problem, Term};

/// What one engine did inside a race: its verdict plus the wall-clock view
/// the pool measured for it.
#[derive(Clone, Debug)]
pub struct EngineReport {
    /// Engine name (`nay` or `nope`).
    pub engine: &'static str,
    /// How the engine's pool job ended (a diverging engine that exceeds the
    /// race timeout reports [`JobStatus::TimedOut`]).
    pub status: JobStatus,
    /// The engine's verdict ([`SolveVerdict::Cancelled`] when it lost and
    /// aborted on the shared token).
    pub verdict: SolveVerdict,
    /// Engine iterations (CEGIS iterations for `nay`, abstract fixpoint
    /// iterations for `nope`); 0 when the job did not complete.
    pub iterations: u64,
    /// The engine's peak term-arena size (see
    /// [`crate::EngineOutcome::arena_terms`]); 0 when the job did not
    /// complete.
    pub arena_terms: usize,
    /// The engine's own wall-clock milliseconds on the pool.
    pub millis: f64,
    /// `true` when the job shared the pool sweep with an abandoned
    /// (timed-out) job thread, making `millis` untrustworthy (see
    /// [`runner::JobResult::tainted`]).
    pub tainted: bool,
}

impl EngineReport {
    /// `true` when the engine aborted because the other engine won.
    pub fn was_cancelled(&self) -> bool {
        self.verdict == SolveVerdict::Cancelled
    }
}

/// The outcome of racing both engines on one problem.
#[derive(Clone, Debug)]
pub struct RaceReport {
    /// The portfolio's verdict: the winner's definitive verdict, or
    /// `Unknown` when neither engine settled the problem.
    pub verdict: SolveVerdict,
    /// Which engine produced the definitive verdict first, if any.
    pub winner: Option<&'static str>,
    /// The `nay` side of the race.
    pub nay: EngineReport,
    /// The `nope` side of the race.
    pub nope: EngineReport,
    /// Wall-clock milliseconds of the whole race (both engines, from
    /// submission to the last one stopping).
    pub wall_millis: f64,
    /// How long the losing engine kept running after the winner finished
    /// before it observed the cancellation — the portfolio's overhead over
    /// a hypothetical hard kill. `None` when there was no cancelled loser.
    pub loser_cancel_millis: Option<f64>,
    /// The verified solution term when the verdict is `Realizable`.
    pub solution: Option<Term>,
}

/// The portfolio configuration: one `nay` and one `nope` engine plus an
/// optional per-race wall-clock budget.
#[derive(Clone, Debug, Default)]
pub struct Portfolio {
    nay: Nay,
    nope: NopeEngine,
    timeout: Option<Duration>,
}

impl Portfolio {
    /// A portfolio with both engines at their default budgets.
    pub fn new() -> Self {
        Portfolio::default()
    }

    /// Replaces the `nay` engine configuration.
    pub fn with_nay(mut self, nay: Nay) -> Self {
        self.nay = nay;
        self
    }

    /// Replaces the `nope` engine configuration.
    pub fn with_nope(mut self, nope: NopeEngine) -> Self {
        self.nope = nope;
        self
    }

    /// Sets a wall-clock budget per engine job; an engine exceeding it is
    /// abandoned by the pool and reported as timed out.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Races both engines on the problem and returns the first definitive
    /// verdict, with per-engine timing and the loser's cancellation
    /// latency.
    ///
    /// Both engines run as jobs on `runner`'s work-stealing pool (two
    /// workers, so they genuinely overlap). Each engine trips the shared
    /// [`Cancel`] token the moment it reaches a definitive verdict; the
    /// other engine polls the token once per loop iteration and aborts.
    /// When an engine is inapplicable or out of budget it returns
    /// `Unknown` and the race simply degrades to the other engine's
    /// answer.
    pub fn race(&self, problem: &Problem) -> RaceReport {
        let cancel = Cancel::new();

        let nay_job = {
            let problem = problem.clone();
            let cancel = cancel.clone();
            let nay = self.nay.clone();
            Job::new("nay", move || {
                let outcome = solve_nay(&problem, &cancel, &nay);
                if outcome.verdict.is_definitive() {
                    cancel.cancel();
                }
                outcome
            })
        };
        let nope_job = {
            let problem = problem.clone();
            let cancel = cancel.clone();
            let nope = self.nope.clone();
            Job::new("nope", move || {
                let outcome = solve_nope(&problem, &cancel, &nope);
                if outcome.verdict.is_definitive() {
                    cancel.cancel();
                }
                outcome
            })
        };

        let config = PoolConfig {
            jobs: 2,
            timeout: self.timeout,
        };
        let (results, wall) = measure(|| run_jobs(vec![nay_job, nope_job], &config));
        // A timed-out engine's thread is abandoned, not killed; trip the
        // token so it exits at its next poll instead of burning CPU for the
        // rest of the process.
        cancel.cancel();

        let mut reports = results.into_iter().map(|result| {
            let millis = result.elapsed.as_secs_f64() * 1000.0;
            let (engine, verdict, iterations, arena_terms, solution) = match result.output {
                Some(outcome) => (
                    outcome.engine,
                    outcome.verdict,
                    outcome.iterations,
                    outcome.arena_terms,
                    outcome.solution,
                ),
                None => (
                    if result.id == "nay" { "nay" } else { "nope" },
                    SolveVerdict::Unknown,
                    0,
                    0,
                    None,
                ),
            };
            (
                EngineReport {
                    engine,
                    status: result.status,
                    verdict,
                    iterations,
                    arena_terms,
                    millis,
                    tainted: result.tainted,
                },
                solution,
            )
        });
        let (nay_report, nay_solution) = reports.next().expect("two jobs, two results");
        let (nope_report, _) = reports.next().expect("two jobs, two results");

        let (verdict, winner) = pick_winner(&nay_report, &nope_report);
        let loser_cancel_millis = match winner {
            Some("nay") if nope_report.was_cancelled() => {
                Some((nope_report.millis - nay_report.millis).max(0.0))
            }
            Some("nope") if nay_report.was_cancelled() => {
                Some((nay_report.millis - nope_report.millis).max(0.0))
            }
            _ => None,
        };
        RaceReport {
            verdict,
            winner,
            solution: if verdict == SolveVerdict::Realizable {
                nay_solution
            } else {
                None
            },
            nay: nay_report,
            nope: nope_report,
            wall_millis: wall.as_secs_f64() * 1000.0,
            loser_cancel_millis,
        }
    }
}

/// The winner policy: the definitive verdict whose engine finished first.
/// Both engines are sound, so two definitive verdicts always agree and the
/// tie-break by elapsed time is only about attribution, never about the
/// answer.
fn pick_winner(nay: &EngineReport, nope: &EngineReport) -> (SolveVerdict, Option<&'static str>) {
    let definitive = |r: &EngineReport| r.status == JobStatus::Ok && r.verdict.is_definitive();
    match (definitive(nay), definitive(nope)) {
        (true, true) => {
            if nay.millis <= nope.millis {
                (nay.verdict, Some("nay"))
            } else {
                (nope.verdict, Some("nope"))
            }
        }
        (true, false) => (nay.verdict, Some("nay")),
        (false, true) => (nope.verdict, Some("nope")),
        (false, false) => (SolveVerdict::Unknown, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_problems::{realizable_xplus2, section2_lia};

    #[test]
    fn race_proves_unrealizability() {
        let report = Portfolio::new().race(&section2_lia());
        assert_eq!(report.verdict, SolveVerdict::Unrealizable);
        assert!(report.winner.is_some());
        assert!(report.wall_millis >= 0.0);
        // the losing engine either also finished (fast problem) or was
        // cancelled; either way both sides report a status
        assert_eq!(report.nay.engine, "nay");
        assert_eq!(report.nope.engine, "nope");
    }

    #[test]
    fn race_finds_solutions_and_reports_the_winner() {
        let report = Portfolio::new().race(&realizable_xplus2());
        // only nay can prove realizability, so it must win
        assert_eq!(report.verdict, SolveVerdict::Realizable);
        assert_eq!(report.winner, Some("nay"));
        assert!(report.solution.is_some());
    }

    #[test]
    fn loser_latency_is_reported_when_the_loser_was_cancelled() {
        let report = Portfolio::new().race(&section2_lia());
        if let Some(latency) = report.loser_cancel_millis {
            assert!(latency >= 0.0);
            let loser = if report.winner == Some("nay") {
                &report.nope
            } else {
                &report.nay
            };
            assert!(loser.was_cancelled());
        }
    }

    #[test]
    fn degrades_gracefully_when_neither_engine_answers() {
        // Gconst (Ex. 3.8): unrealizable but beyond both engines — nay's
        // CEGIS cannot converge and nope's domain cannot refute it. The
        // race must settle on Unknown instead of hanging or panicking.
        let problem = crate::test_problems::gconst();
        let portfolio = Portfolio::new()
            .with_nay(
                Nay::new()
                    .with_max_iterations(2)
                    .with_random_range(-5, 5)
                    .with_enumerator(enumerative::Enumerator::new().with_max_size(7)),
            )
            .with_nope(NopeEngine::new().with_max_rounds(2));
        let report = portfolio.race(&problem);
        assert_eq!(report.verdict, SolveVerdict::Unknown);
        assert_eq!(report.winner, None);
        assert_eq!(report.loser_cancel_millis, None);
    }
}
