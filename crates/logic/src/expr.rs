//! Linear integer expressions `c + Σ aᵢ·xᵢ`.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};
use std::sync::Arc;

/// An interned integer variable name.
///
/// Variables are compared by name; cloning is cheap (reference counted).
///
/// # Example
/// ```
/// use logic::Var;
/// let x = Var::new("x");
/// assert_eq!(x.name(), "x");
/// assert_eq!(x, Var::new("x"));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(Arc<str>);

impl Var {
    /// Creates a variable with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Var(Arc::from(name.into().as_str()))
    }

    /// Creates an indexed variable `prefix_i`, useful for output vectors.
    pub fn indexed(prefix: &str, index: usize) -> Self {
        Var::new(format!("{prefix}_{index}"))
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Self {
        Var::new(s)
    }
}

/// A linear expression `constant + Σ coeffᵢ · varᵢ` over integers.
///
/// Expressions are kept normalized: variables with coefficient zero are
/// removed. All arithmetic is by-value and cheap for the small expressions
/// that arise in unrealizability queries.
///
/// # Example
/// ```
/// use logic::{LinearExpr, Var};
/// let x = LinearExpr::var(Var::new("x"));
/// let e = x.scale(3) + LinearExpr::constant(2);
/// assert_eq!(e.coeff(&Var::new("x")), 3);
/// assert_eq!(e.constant_part(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct LinearExpr {
    constant: i64,
    coeffs: BTreeMap<Var, i64>,
}

impl LinearExpr {
    /// The expression `0`.
    pub fn zero() -> Self {
        LinearExpr::default()
    }

    /// A constant expression.
    pub fn constant(c: i64) -> Self {
        LinearExpr {
            constant: c,
            coeffs: BTreeMap::new(),
        }
    }

    /// The expression consisting of a single variable with coefficient 1.
    pub fn var(v: Var) -> Self {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(v, 1);
        LinearExpr {
            constant: 0,
            coeffs,
        }
    }

    /// Builds an expression from an iterator of `(variable, coefficient)`
    /// pairs and a constant.
    pub fn from_terms(terms: impl IntoIterator<Item = (Var, i64)>, constant: i64) -> Self {
        let mut e = LinearExpr::constant(constant);
        for (v, c) in terms {
            e.add_term(v, c);
        }
        e
    }

    /// Adds `coeff · var` to the expression in place.
    pub fn add_term(&mut self, var: Var, coeff: i64) {
        let entry = self.coeffs.entry(var).or_insert(0);
        *entry += coeff;
        if *entry == 0 {
            // keep normalized
            let key = self
                .coeffs
                .iter()
                .find(|(_, c)| **c == 0)
                .map(|(v, _)| v.clone());
            if let Some(key) = key {
                self.coeffs.remove(&key);
            }
        }
    }

    /// The constant part of the expression.
    pub fn constant_part(&self) -> i64 {
        self.constant
    }

    /// The coefficient of `var` (zero if absent).
    pub fn coeff(&self, var: &Var) -> i64 {
        self.coeffs.get(var).copied().unwrap_or(0)
    }

    /// Iterates over `(variable, coefficient)` pairs with non-zero
    /// coefficients, in variable order.
    pub fn terms(&self) -> impl Iterator<Item = (&Var, i64)> {
        self.coeffs.iter().map(|(v, c)| (v, *c))
    }

    /// The set of variables occurring with a non-zero coefficient.
    pub fn vars(&self) -> impl Iterator<Item = &Var> {
        self.coeffs.keys()
    }

    /// `true` when the expression contains no variables.
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Multiplies the whole expression by `k`.
    pub fn scale(&self, k: i64) -> LinearExpr {
        if k == 0 {
            return LinearExpr::zero();
        }
        LinearExpr {
            constant: self.constant * k,
            coeffs: self
                .coeffs
                .iter()
                .map(|(v, c)| (v.clone(), c * k))
                .collect(),
        }
    }

    /// Substitutes `var` by the expression `by`.
    pub fn substitute(&self, var: &Var, by: &LinearExpr) -> LinearExpr {
        let c = self.coeff(var);
        if c == 0 {
            return self.clone();
        }
        let mut rest = self.clone();
        rest.coeffs.remove(var);
        rest + by.scale(c)
    }

    /// Evaluates the expression under the assignment given by `lookup`.
    ///
    /// Variables not covered by `lookup` are treated as 0.
    pub fn eval_with(&self, lookup: impl Fn(&Var) -> Option<i64>) -> i64 {
        let mut acc = self.constant;
        for (v, c) in &self.coeffs {
            acc += c * lookup(v).unwrap_or(0);
        }
        acc
    }
}

impl fmt::Debug for LinearExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for LinearExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.coeffs {
            if first {
                if *c == 1 {
                    write!(f, "{v}")?;
                } else if *c == -1 {
                    write!(f, "-{v}")?;
                } else {
                    write!(f, "{c}*{v}")?;
                }
                first = false;
            } else if *c >= 0 {
                if *c == 1 {
                    write!(f, " + {v}")?;
                } else {
                    write!(f, " + {c}*{v}")?;
                }
            } else if *c == -1 {
                write!(f, " - {v}")?;
            } else {
                write!(f, " - {}*{v}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

impl Add for LinearExpr {
    type Output = LinearExpr;
    fn add(self, rhs: LinearExpr) -> LinearExpr {
        let mut out = self;
        out.constant += rhs.constant;
        for (v, c) in rhs.coeffs {
            let entry = out.coeffs.entry(v).or_insert(0);
            *entry += c;
        }
        out.coeffs.retain(|_, c| *c != 0);
        out
    }
}

impl Sub for LinearExpr {
    type Output = LinearExpr;
    fn sub(self, rhs: LinearExpr) -> LinearExpr {
        self + (-rhs)
    }
}

impl Neg for LinearExpr {
    type Output = LinearExpr;
    fn neg(self) -> LinearExpr {
        self.scale(-1)
    }
}

impl Mul<i64> for LinearExpr {
    type Output = LinearExpr;
    fn mul(self, rhs: i64) -> LinearExpr {
        self.scale(rhs)
    }
}

impl From<i64> for LinearExpr {
    fn from(v: i64) -> Self {
        LinearExpr::constant(v)
    }
}

impl From<Var> for LinearExpr {
    fn from(v: Var) -> Self {
        LinearExpr::var(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Var {
        Var::new("x")
    }
    fn y() -> Var {
        Var::new("y")
    }

    #[test]
    fn build_and_query() {
        let e = LinearExpr::from_terms([(x(), 2), (y(), -1)], 5);
        assert_eq!(e.coeff(&x()), 2);
        assert_eq!(e.coeff(&y()), -1);
        assert_eq!(e.constant_part(), 5);
        assert_eq!(e.vars().count(), 2);
    }

    #[test]
    fn normalization_removes_zero_coeffs() {
        let e = LinearExpr::var(x()) - LinearExpr::var(x());
        assert!(e.is_constant());
        assert_eq!(e.constant_part(), 0);
    }

    #[test]
    fn arithmetic() {
        let e = LinearExpr::var(x()).scale(3) + LinearExpr::constant(2);
        let f = LinearExpr::var(x()) + LinearExpr::var(y());
        let g = e.clone() + f.clone();
        assert_eq!(g.coeff(&x()), 4);
        assert_eq!(g.coeff(&y()), 1);
        assert_eq!(g.constant_part(), 2);
        let h = e - f;
        assert_eq!(h.coeff(&x()), 2);
        assert_eq!(h.coeff(&y()), -1);
    }

    #[test]
    fn substitution() {
        // (2x + y + 1)[x := y + 3] = 3y + 7
        let e = LinearExpr::from_terms([(x(), 2), (y(), 1)], 1);
        let by = LinearExpr::var(y()) + LinearExpr::constant(3);
        let s = e.substitute(&x(), &by);
        assert_eq!(s.coeff(&x()), 0);
        assert_eq!(s.coeff(&y()), 3);
        assert_eq!(s.constant_part(), 7);
    }

    #[test]
    fn evaluation() {
        let e = LinearExpr::from_terms([(x(), 2), (y(), -1)], 5);
        let val = e.eval_with(|v| match v.name() {
            "x" => Some(3),
            "y" => Some(1),
            _ => None,
        });
        assert_eq!(val, 10);
    }

    #[test]
    fn display() {
        let e = LinearExpr::from_terms([(x(), 2), (y(), -1)], 5);
        assert_eq!(format!("{e}"), "2*x - y + 5");
        assert_eq!(format!("{}", LinearExpr::zero()), "0");
    }
}
